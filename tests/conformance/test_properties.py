"""Property tests for the mean-field ODE invariants.

The conformance table checks accuracy against the other backends at
hand-picked cells; these properties check *structure* across randomly
drawn parameter sets:

* mass conservation — survivor + absorbed mass is identically 1 along
  the whole trajectory (the kernel rows are stochastic and the
  absorption term moves mass, never creates it);
* monotonicity — the deterministic piece count, the completed-mass
  fraction, and the first-passage timeline are all non-decreasing;
* the swarm layer's limiting seed count — with no aborts the seed
  population converges to ``arrival_rate / seed_departure_rate``
  regardless of the level structure (every arriving leecher eventually
  seeds, Little's-law style);
* the Qiu-Srikant reduction — a single-level swarm system integrates
  to the *same* trajectory as the fluid baseline.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ModelParams
from repro.baselines.fluid import FluidModel
from repro.core.meanfield import SwarmMeanField, solve_mean_field

SETTINGS = dict(max_examples=15, deadline=None)

peer_params = st.builds(
    ModelParams,
    num_pieces=st.integers(4, 14),
    max_conns=st.integers(1, 3),
    ns_size=st.integers(2, 6),
    p_init=st.floats(0.2, 0.8),
    alpha=st.floats(0.05, 0.5),
    gamma=st.floats(0.05, 0.5),
    p_reenc=st.floats(0.3, 0.9),
    p_new=st.floats(0.3, 0.9),
)


@given(params=peer_params)
@settings(**SETTINGS)
def test_mass_is_conserved(params):
    solution = solve_mean_field(params, rtol=1e-7, atol=1e-10)
    total = (
        solution.trajectory.survivor_mass
        + solution.trajectory.completed_mass
    )
    np.testing.assert_allclose(total, 1.0, atol=1e-5)


@given(params=peer_params)
@settings(**SETTINGS)
def test_completion_and_timeline_are_monotone(params):
    solution = solve_mean_field(params)
    trajectory = solution.trajectory
    # Local integration error per component is bounded by the solver's
    # default atol (1e-7); dips within an order of magnitude of that
    # are integrator noise, not a real decrease.
    step_tol = 1e-6
    assert np.all(np.diff(trajectory.pieces_mean) >= -step_tol)
    assert np.all(np.diff(trajectory.completed_mass) >= -step_tol)
    assert np.all(np.diff(solution.timeline) >= 0.0)
    assert solution.timeline[0] == 0.0
    assert solution.timeline[-1] == solution.download_time
    assert solution.download_time > 0.0


@given(params=peer_params)
@settings(**SETTINGS)
def test_phase_rounds_partition_the_download(params):
    solution = solve_mean_field(params)
    assert all(v >= 0.0 for v in solution.phase_rounds.values())
    np.testing.assert_allclose(
        sum(solution.phase_rounds.values()),
        solution.download_time,
        rtol=1e-9,
    )


@given(
    arrival_rate=st.floats(0.5, 20.0),
    seed_departure_rate=st.floats(0.2, 3.0),
    levels=st.integers(1, 5),
    velocity=st.floats(0.5, 4.0),
)
@settings(**SETTINGS)
def test_limiting_seed_count(arrival_rate, seed_departure_rate, levels,
                             velocity):
    swarm = SwarmMeanField(
        level_velocity=np.full(levels, velocity),
        arrival_rate=arrival_rate,
        seed_departure_rate=seed_departure_rate,
    )
    horizon = 200.0 + 100.0 / seed_departure_rate
    trajectory = swarm.integrate(horizon, points=400)
    np.testing.assert_allclose(
        trajectory.seeds[-1],
        arrival_rate / seed_departure_rate,
        rtol=5e-3,
    )


@given(
    arrival_rate=st.floats(0.5, 10.0),
    upload_rate=st.floats(0.5, 2.0),
    download_rate=st.floats(0.5, 3.0),
    efficiency=st.floats(0.5, 1.0),
    abort_rate=st.floats(0.0, 0.3),
    seed_departure_rate=st.floats(0.3, 2.0),
    x0=st.floats(0.0, 10.0),
    y0=st.floats(0.0, 5.0),
)
@settings(**SETTINGS)
def test_single_level_swarm_is_qiu_srikant(
    arrival_rate, upload_rate, download_rate, efficiency, abort_rate,
    seed_departure_rate, x0, y0,
):
    fluid = FluidModel(
        arrival_rate=arrival_rate,
        upload_rate=upload_rate,
        download_rate=download_rate,
        efficiency=efficiency,
        abort_rate=abort_rate,
        seed_departure_rate=seed_departure_rate,
    )
    swarm = SwarmMeanField(
        level_velocity=np.array([download_rate]),
        arrival_rate=arrival_rate,
        upload_rate=upload_rate,
        efficiency=efficiency,
        abort_rate=abort_rate,
        seed_departure_rate=seed_departure_rate,
    )
    reference = fluid.integrate(50.0, x0=x0, y0=y0, points=120)
    reduced = swarm.integrate(50.0, x0=np.array([x0]), y0=y0, points=120)
    # Same state vector, same solver settings, same right-hand side up
    # to round-off: in capacity-limited states the per-level scaling
    # multiplies (``desired * cap/demand``) where the fluid model's
    # min() substitutes ``cap``, an ulp-level difference — so equality
    # holds to round-off, not bitwise.
    np.testing.assert_allclose(
        reduced.leechers[0], reference.leechers, rtol=1e-12, atol=1e-13,
    )
    np.testing.assert_allclose(
        reduced.seeds, reference.seeds, rtol=1e-12, atol=1e-13,
    )
