"""Cross-backend conformance: exact vs Monte Carlo vs mean-field.

A declarative table of parameter cells, each executed against every
backend that supports it through the one ``solve()`` front door.  The
cells sit in the overlap band — small enough for the exact
fundamental-matrix solve, large enough that the mean-field limit is
already accurate — so three independent derivations of the same
quantity (linear algebra on the full chain, sampled trajectories, and
the deterministic ODE closure) must agree within per-quantity
tolerances:

* **download_time** — the headline three-way check: the mean-field mean
  within ``dt_rtol`` (2%) of the exact solve *and* inside the batch
  Monte-Carlo 3-sigma confidence interval.
* **timeline** — relative agreement on the interior band
  ``[0.2 B, 0.9 B]`` (the continuization is least faithful within a
  round of the boundaries, which the band excludes by construction).
* **potential_ratio** — absolute agreement on ``[0.1 B, 0.8 B]``.
* **phases** — bootstrap/efficient/last expected rounds.

The stall-dominated cell (``ns_size=5``) participates in the
download-time check only: with a tiny potential set the per-peer
variance of the *path* (not just its endpoint) stays O(1) at every
swarm size, which is exactly where a mean-field trajectory is not the
right description — see the accuracy-regime column of the backend
table in docs/MODEL.md.
"""

import dataclasses
import math
from typing import Dict, Optional, Tuple

import numpy as np
import pytest

from repro.api import ModelParams, solve
from repro.core.phases import Phase


@dataclasses.dataclass(frozen=True)
class Cell:
    """One conformance cell: a parameter set plus its tolerances.

    Attributes:
        name: cell id in the pytest parametrization.
        params: keyword arguments for :class:`ModelParams`.
        runs: batch Monte-Carlo trajectories for the CI check.
        seed: the (fixed) Monte-Carlo seed — conformance must be
            deterministic, flakes are findings.
        dt_rtol: max relative error of the mean-field download time
            against the exact solve.
        timeline_rtol: max relative timeline error on ``[0.2B, 0.9B]``
            (None = cell opts out; see the stall cell).
        ratio_atol: max absolute potential-ratio error on
            ``[0.1B, 0.8B]`` (None = opt out).
        phase_tols: (bootstrap_atol, efficient_rtol, last_atol)
            (None = opt out).
    """

    name: str
    params: Dict[str, object]
    runs: int = 192
    seed: int = 2007
    dt_rtol: float = 0.02
    timeline_rtol: Optional[float] = 0.05
    ratio_atol: Optional[float] = 0.10
    phase_tols: Optional[Tuple[float, float, float]] = (0.35, 0.05, 0.6)


CELLS = (
    # Low p_init parks extra initial mass at i=0, stretching the exact
    # bootstrap tail the deterministic closure averages over — hence
    # the wider bootstrap tolerance on this cell.
    Cell(name="tiny", params=dict(num_pieces=24, max_conns=3, ns_size=8,
                                  p_init=0.35),
         phase_tols=(0.45, 0.05, 0.6)),
    Cell(name="small", params=dict(num_pieces=30, max_conns=3, ns_size=12)),
    Cell(name="asymmetric", params=dict(num_pieces=40, max_conns=4,
                                        ns_size=16, alpha=0.3, gamma=0.2)),
    Cell(name="wide", params=dict(num_pieces=60, max_conns=5, ns_size=20)),
    # Stall-dominated regime: mean download time still conforms, the
    # trajectory-shaped quantities are documented as out of regime.
    Cell(name="stall", params=dict(num_pieces=30, max_conns=3, ns_size=5),
         timeline_rtol=None, ratio_atol=None, phase_tols=None),
)


def _cells(predicate=lambda cell: True):
    chosen = [cell for cell in CELLS if predicate(cell)]
    return pytest.mark.parametrize(
        "cell", chosen, ids=[cell.name for cell in chosen]
    )


def _params(cell: Cell) -> ModelParams:
    return ModelParams(**cell.params)


def _band(num_pieces: int, lo: float, hi: float) -> slice:
    return slice(max(int(lo * num_pieces), 1), int(hi * num_pieces))


@_cells()
def test_download_time_three_way(cell, cache):
    """Exact, batch-MC, and mean-field agree on the expected rounds."""
    params = _params(cell)
    exact = solve(params, "download_time", "exact", cache=cache).payload
    field = solve(params, "download_time", "meanfield", cache=cache).payload
    sampled = solve(
        params, "download_time", "batch",
        cache=cache, runs=cell.runs, seed=cell.seed,
    ).payload

    assert field.mean == pytest.approx(exact.mean, rel=cell.dt_rtol)

    sem = sampled.std / math.sqrt(cell.runs)
    # The sampler must bracket the exact value (sanity on the CI
    # itself), and the mean-field value must sit inside the same CI.
    assert abs(sampled.mean - exact.mean) <= 3.0 * sem
    assert abs(field.mean - sampled.mean) <= 3.0 * sem


@_cells(lambda cell: cell.timeline_rtol is not None)
def test_timeline_band(cell, cache):
    """Mean-field first-passage rounds track the exact timeline."""
    params = _params(cell)
    exact = solve(params, "timeline", "exact", cache=cache).payload
    field = solve(params, "timeline", "meanfield", cache=cache).payload
    band = _band(params.num_pieces, 0.2, 0.9)
    np.testing.assert_allclose(
        field.mean_steps[band], exact.mean_steps[band],
        rtol=cell.timeline_rtol,
    )
    # Shared invariants of the deterministic backends.
    assert field.mean_steps[0] == 0.0
    assert field.runs == 0 and exact.runs == 0


@_cells(lambda cell: cell.ratio_atol is not None)
def test_potential_ratio_band(cell, cache):
    """Mean-field E[i/s] per piece level tracks the exact curve."""
    params = _params(cell)
    exact = solve(params, "potential_ratio", "exact", cache=cache).payload
    field = solve(params, "potential_ratio", "meanfield", cache=cache).payload
    band = _band(params.num_pieces, 0.1, 0.8)
    exact_band = exact.ratio[band]
    field_band = field.ratio[band]
    mask = ~np.isnan(exact_band) & ~np.isnan(field_band)
    assert mask.sum() >= (band.stop - band.start) // 2
    np.testing.assert_allclose(
        field_band[mask], exact_band[mask], atol=cell.ratio_atol,
    )


@_cells(lambda cell: cell.phase_tols is not None)
def test_phases(cell, cache):
    """Mean-field phase decomposition matches the exact one."""
    params = _params(cell)
    exact = solve(params, "phases", "exact", cache=cache).payload
    field = solve(params, "phases", "meanfield", cache=cache).payload
    boot_atol, eff_rtol, last_atol = cell.phase_tols
    assert field.mean[Phase.BOOTSTRAP] == pytest.approx(
        exact.mean[Phase.BOOTSTRAP], abs=boot_atol
    )
    assert field.mean[Phase.EFFICIENT] == pytest.approx(
        exact.mean[Phase.EFFICIENT], rel=eff_rtol
    )
    assert field.mean[Phase.LAST] == pytest.approx(
        exact.mean[Phase.LAST], abs=last_atol
    )
    assert field.dominant() is exact.dominant()
    occupancy_total = sum(field.occupancy.values())
    assert occupancy_total == pytest.approx(1.0)


def test_serial_overlap_on_smallest_cell(cache):
    """The per-trajectory sampler joins the overlap on the tiny cell.

    Serial Monte Carlo is the slowest backend, so the four-way check
    runs once, on the cheapest cell, rather than across the table.
    """
    cell = CELLS[0]
    params = _params(cell)
    runs = 128
    exact = solve(params, "download_time", "exact", cache=cache).payload
    field = solve(params, "download_time", "meanfield", cache=cache).payload
    serial = solve(
        params, "download_time", "serial",
        cache=cache, runs=runs, seed=cell.seed,
    ).payload
    sem = serial.std / math.sqrt(runs)
    assert abs(serial.mean - exact.mean) <= 3.0 * sem
    assert abs(field.mean - serial.mean) <= 3.0 * sem


@_cells()
def test_meanfield_serializes_like_every_backend(cell, cache):
    """The service payload shape is method-independent."""
    params = _params(cell)
    result = solve(params, "download_time", "meanfield", cache=cache)
    body = result.to_dict()
    assert body["method"] == "meanfield"
    assert body["result"]["runs"] == 0
    assert body["result"]["mean"] == pytest.approx(
        result.payload.mean
    )
    # NaN moments serialize as null, exactly like the exact engine's
    # NaN std entries do.
    assert body["result"]["std"] is None
