"""Edge and error behaviour of the mean-field backend.

The table, property, and golden suites exercise the happy path; this
file pins the boundaries — degenerate parameter sets, validation
rejections with actionable messages, and the convergence failure mode —
so the backend fails loudly and identically everywhere it is wired
(``solve()``, the cache, the service).
"""

import numpy as np
import pytest

from repro.api import ModelParams
from repro.core.meanfield import (
    SwarmMeanField,
    build_tables,
    solve_mean_field,
)
from repro.core.phases import Phase
from repro.errors import ConvergenceError, ParameterError


class TestSinglePieceDegenerate:
    """``B == 1``: the first round delivers the only piece, no ODE."""

    def test_solution_shape(self):
        solution = solve_mean_field(ModelParams(1, 2, 4))
        assert solution.download_time == 1.0
        assert solution.timeline.tolist() == [0.0, 1.0]
        assert solution.occupancy.tolist() == [1.0, 0.0]
        assert solution.phase_rounds == {
            Phase.BOOTSTRAP: 1.0,
            Phase.EFFICIENT: 0.0,
            Phase.LAST: 0.0,
        }
        assert solution.stats["nfev"] == 0
        assert solution.trajectory.completed_mass[-1] == 1.0

    def test_potential_probe_is_the_initial_draw(self):
        params = ModelParams(1, 2, 4, p_init=0.5)
        solution = solve_mean_field(params)
        assert np.isnan(solution.potential_ratio[0])
        # Bin(s, p_init) mean over s.
        assert solution.potential_ratio[1] == pytest.approx(0.5)


class TestValidation:
    def test_bad_tolerances(self):
        params = ModelParams(6, 2, 4)
        with pytest.raises(ParameterError, match="rtol/atol"):
            solve_mean_field(params, rtol=0.0)
        with pytest.raises(ParameterError, match="rtol/atol"):
            solve_mean_field(params, atol=-1e-9)
        with pytest.raises(ParameterError, match="drain_tol"):
            solve_mean_field(params, drain_tol=1.5)

    def test_bad_horizon(self):
        with pytest.raises(ParameterError, match="max_rounds"):
            solve_mean_field(ModelParams(6, 2, 4), max_rounds=1.0)

    def test_bad_p_curve_shape(self):
        with pytest.raises(ParameterError, match="p_curve"):
            build_tables(ModelParams(6, 2, 4), p_curve=np.zeros(3))

    def test_horizon_too_short_to_drain(self):
        with pytest.raises(ConvergenceError, match="did not drain"):
            solve_mean_field(ModelParams(30, 3, 12), max_rounds=5.0)


class TestSwarmValidation:
    def test_level_velocity(self):
        with pytest.raises(ParameterError, match="non-empty"):
            SwarmMeanField(level_velocity=np.zeros((0,)), arrival_rate=1.0)
        with pytest.raises(ParameterError, match="> 0"):
            SwarmMeanField(
                level_velocity=np.array([1.0, 0.0]), arrival_rate=1.0
            )

    @pytest.mark.parametrize(
        ("field", "value", "match"),
        [
            ("arrival_rate", -1.0, "arrival_rate"),
            ("upload_rate", 0.0, "upload_rate"),
            ("efficiency", 1.5, "efficiency"),
            ("abort_rate", -0.1, "abort_rate"),
            ("seed_departure_rate", 0.0, "seed_departure_rate"),
        ],
    )
    def test_rates(self, field, value, match):
        kwargs = {"level_velocity": np.ones(2), "arrival_rate": 1.0}
        kwargs[field] = value
        with pytest.raises(ParameterError, match=match):
            SwarmMeanField(**kwargs)

    def test_integrate_rejects_bad_grid(self):
        swarm = SwarmMeanField(level_velocity=np.ones(2), arrival_rate=1.0)
        with pytest.raises(ParameterError, match="horizon"):
            swarm.integrate(0.0)
        with pytest.raises(ParameterError, match="points"):
            swarm.integrate(10.0, points=1)
        with pytest.raises(ParameterError, match="x0"):
            swarm.integrate(10.0, x0=np.ones(3))


class TestSwarmFromPeerSolution:
    def test_velocities_are_reciprocal_occupancy(self, cache):
        params = ModelParams(12, 3, 6)
        solution = cache.meanfield_solution(params)
        swarm = SwarmMeanField.from_peer_solution(
            solution, arrival_rate=2.0
        )
        assert swarm.levels == params.num_pieces
        occupancy = solution.occupancy[:-1]
        positive = occupancy > 0
        np.testing.assert_allclose(
            swarm.level_velocity[positive],
            np.clip(1.0 / occupancy[positive], 1e-3, 1e3),
        )

    def test_trajectory_reaches_the_seed_balance(self, cache):
        params = ModelParams(12, 3, 6)
        swarm = SwarmMeanField.from_peer_solution(
            cache.meanfield_solution(params),
            arrival_rate=2.0,
            seed_departure_rate=1.0,
        )
        trajectory = swarm.integrate(300.0, points=300)
        assert trajectory.total_leechers().shape == trajectory.seeds.shape
        assert np.all(trajectory.total_leechers() >= -1e-9)
        # Aborts are zero: every arrival eventually seeds, so the seed
        # population settles at arrival_rate / seed_departure_rate.
        assert trajectory.seeds[-1] == pytest.approx(2.0, rel=5e-3)
        assert trajectory.completed[-1] > 0.0
