"""Pinned golden for the mean-field trajectory at paper scale.

The conformance table proves the mean-field backend agrees with the
other engines where they overlap; this golden pins its *own* output at
the paper's headline parameters (B=200, k=7, s=50) — far beyond the
exact engine's reach — so a future change to the closure (kernel
tables, continuization, round-boundary handling, solver tolerances)
shows up as a diff against recorded values rather than silently
shifting every large-scale answer.

The trajectory probes interpolate at fixed times instead of indexing
the solver's step grid, so the golden is robust to step-selection
differences across scipy versions while still pinning the path itself.
Tolerances are a few parts in 10**3 — far above integrator round-off,
far below the ~1% closure error a modelling change would introduce.
"""

import numpy as np
import pytest

from repro.api import ModelParams, solve
from repro.core.phases import Phase

PAPER = dict(num_pieces=200, max_conns=7, ns_size=50)

GOLDEN_DOWNLOAD_TIME = 43.087411971197945
#: timeline[level] at a spread of piece levels.
GOLDEN_TIMELINE = {
    1: 1.0,
    40: 10.459183676682667,
    80: 18.622448982806347,
    120: 26.7857142889288,
    160: 34.948979595051256,
    200: GOLDEN_DOWNLOAD_TIME,
}
#: potential_ratio[level] — rises to the mid-download plateau and
#: falls back toward the endgame, the Figure-1(a) shape.
GOLDEN_RATIO = {
    20: 0.9457121281460096,
    100: 0.9850433378930956,
    180: 0.9453023100373904,
}
GOLDEN_PHASES = {
    Phase.BOOTSTRAP: 2.000027955306484,
    Phase.EFFICIENT: 41.08738401589144,
    Phase.LAST: 0.0,
}
#: (time, pieces_mean, completed_mass) probes along the trajectory.
GOLDEN_TRAJECTORY = (
    (5.0, 15.699999985085345, 0.0),
    (25.0, 113.69999998424888, 0.0),
    (41.0, 192.09999998424584, 0.0),
    (43.0, 199.96488209528377, 0.7479229874581788),
)


@pytest.fixture(scope="module")
def solution(cache):
    return cache.meanfield_solution(ModelParams(**PAPER))


def test_download_time(solution):
    assert solution.download_time == pytest.approx(
        GOLDEN_DOWNLOAD_TIME, rel=5e-4
    )


def test_timeline_levels(solution):
    for level, rounds in GOLDEN_TIMELINE.items():
        assert solution.timeline[level] == pytest.approx(
            rounds, rel=1e-3
        ), f"timeline[{level}]"
    assert solution.timeline[0] == 0.0


def test_potential_ratio_levels(solution):
    for level, ratio in GOLDEN_RATIO.items():
        assert solution.potential_ratio[level] == pytest.approx(
            ratio, abs=2e-3
        ), f"potential_ratio[{level}]"
    assert np.isnan(solution.potential_ratio[0])


def test_phase_rounds(solution):
    assert solution.phase_rounds[Phase.BOOTSTRAP] == pytest.approx(
        GOLDEN_PHASES[Phase.BOOTSTRAP], abs=1e-3
    )
    assert solution.phase_rounds[Phase.EFFICIENT] == pytest.approx(
        GOLDEN_PHASES[Phase.EFFICIENT], rel=1e-3
    )
    assert solution.phase_rounds[Phase.LAST] == pytest.approx(0.0, abs=1e-6)


def test_trajectory_probes(solution):
    trajectory = solution.trajectory
    for t, pieces, completed in GOLDEN_TRAJECTORY:
        b = np.interp(t, trajectory.times, trajectory.pieces_mean)
        a = np.interp(t, trajectory.times, trajectory.completed_mass)
        assert b == pytest.approx(pieces, rel=1e-3), f"pieces_mean(t={t})"
        assert a == pytest.approx(completed, abs=5e-3), f"completed(t={t})"
    # The integration drains: essentially all mass completes.
    assert trajectory.completed_mass[-1] == pytest.approx(1.0, abs=1e-6)
    assert trajectory.survivor_mass[-1] <= 1e-6


def test_solve_front_door_matches_the_golden(cache):
    """`solve(..., method="meanfield")` reads off the same solution."""
    result = solve(
        ModelParams(**PAPER), "download_time", "meanfield", cache=cache
    )
    assert result.payload.mean == pytest.approx(
        GOLDEN_DOWNLOAD_TIME, rel=5e-4
    )
    assert result.payload.method == "meanfield"
