"""Shared fixtures for the cross-backend conformance suite."""

import pytest

from repro.runtime.cache import KernelCache


@pytest.fixture(scope="session")
def cache():
    """One kernel cache for the whole suite.

    The exact operator and the mean-field ODE solution of each
    conformance cell are both memoized here, so every per-quantity test
    reads from the same single solve per backend.
    """
    return KernelCache(max_entries=256)
