"""Smoke tests: the example scripts run end-to-end.

Each example is executed as a subprocess (its own interpreter, exactly
as a user would run it) and must exit cleanly with the expected
headline strings in its output.  Only the faster examples run here; the
slower studies are covered through their underlying runners' tests.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = {
    "quickstart.py": ["download-evolution Markov chain", "efficiency eta"],
    "trace_pipeline.py": ["Swarm selection", "Per-trace phase summary"],
    "baseline_comparison.py": ["Coupon system", "Fluid model"],
}


@pytest.mark.parametrize("script,expected", sorted(FAST_EXAMPLES.items()))
def test_example_runs(script, expected):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    completed = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    for token in expected:
        assert token in completed.stdout, (
            f"{script} output missing {token!r}"
        )


def test_all_examples_have_docstrings_and_main():
    for script in EXAMPLES_DIR.glob("*.py"):
        source = script.read_text()
        assert source.lstrip().startswith(('#!', '"""')), script.name
        assert '__main__' in source, f"{script.name} is not runnable"
