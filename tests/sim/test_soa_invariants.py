"""Property-based fuzzing of the soa swarm backend.

The soa mirror of ``test_fuzz_invariants.py``: Hypothesis draws random
configurations from the soa-supported subset (blind matching,
whole-piece transfers, global rarity) and the suite checks the
structural invariants of the array state after a run:

* the global replication counts match the packed bitfield matrix;
* per-slot held counts match their rows' popcounts;
* trading pairs reference live slots, are normalised (``a < b``) and
  unique, and leecher pair degrees respect ``k``;
* neighbor rows reference live slots without self-loops or duplicates;
* completed leechers leave (or become seeds) — no live leecher row is
  complete with immediate departure;
* metrics series stay within their domains;
* runs are deterministic per seed, with and without a fault plan.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults.plan import FaultPlan
from repro.sim.config import SimConfig
from repro.sim.soa import popcount_rows, unpack_rows
from repro.sim.swarm import Swarm


@st.composite
def soa_configs(draw):
    """Random configurations within the soa-supported subset."""
    return SimConfig(
        num_pieces=draw(st.integers(min_value=3, max_value=25)),
        max_conns=draw(st.integers(min_value=1, max_value=5)),
        ns_size=draw(st.integers(min_value=2, max_value=12)),
        arrival_process=draw(st.sampled_from(["poisson", "flash", "none"])),
        arrival_rate=draw(st.floats(min_value=0.0, max_value=2.0)),
        flash_size=draw(st.integers(min_value=0, max_value=10)),
        initial_leechers=draw(st.integers(min_value=0, max_value=20)),
        initial_distribution=draw(
            st.sampled_from(["empty", "uniform", "skewed"])
        ),
        initial_fill=draw(st.floats(min_value=0.0, max_value=1.0)),
        skew_factor=draw(st.floats(min_value=0.0, max_value=1.0)),
        num_seeds=draw(st.integers(min_value=0, max_value=2)),
        seed_upload_slots=draw(st.integers(min_value=0, max_value=3)),
        super_seeding=draw(st.booleans()),
        completed_become_seeds=draw(st.sampled_from([0.0, 5.0])),
        abort_rate=draw(st.floats(min_value=0.0, max_value=0.1)),
        piece_selection=draw(
            st.sampled_from(["rarest", "strict-rarest", "random"])
        ),
        strict_tft=draw(st.booleans()),
        optimistic_unchoke_prob=draw(st.floats(min_value=0.0, max_value=1.0)),
        optimistic_targets=draw(st.sampled_from(["starved", "empty"])),
        connection_failure_prob=draw(st.floats(min_value=0.0, max_value=0.5)),
        connection_setup_prob=draw(st.floats(min_value=0.0, max_value=1.0)),
        shake_threshold=draw(st.sampled_from([None, 0.8])),
        max_time=15.0,
        seed=draw(st.integers(min_value=0, max_value=10_000)),
    )


def _check_store_invariants(swarm):
    config = swarm.config
    store = swarm.store
    alive = np.flatnonzero(store.alive)

    # Replication registry mirrors the packed matrix.
    if alive.size:
        held = unpack_rows(store.bits[alive], config.num_pieces)
        np.testing.assert_array_equal(swarm.piece_counts, held.sum(axis=0))
        np.testing.assert_array_equal(
            store.counts[alive], popcount_rows(store.bits[alive])
        )
    else:
        assert not swarm.piece_counts.any()

    # Pairs: normalised, unique, live endpoints, degree caps.
    pairs = swarm._pairs
    if pairs.size:
        assert (pairs[:, 0] < pairs[:, 1]).all()
        assert store.alive[pairs].all()
        assert len({(int(a), int(b)) for a, b in pairs}) == pairs.shape[0]
        degree = np.bincount(pairs.ravel(), minlength=store.capacity)
        leech = alive[~store.is_seed[alive]]
        assert (degree[leech] <= config.max_conns).all()
        if config.strict_tft:
            # No leecher trades with a seed.
            assert not store.is_seed[pairs].any()

    # Neighbor rows: live targets, no self-loops, no duplicates.
    for slot in alive:
        if store.is_seed[slot]:
            continue  # seed rows are never enumerated (degree only)
        deg = int(store.nbr_deg[slot])
        assert 0 <= deg <= store.nbr.shape[1]
        row = store.nbr[slot, :deg]
        assert (row >= 0).all() and (row < store.capacity).all()
        assert store.alive[row].all()
        assert (row != slot).all()
        assert np.unique(row).size == deg

    # Immediate departure: live leechers are incomplete.
    if config.completed_become_seeds == 0 and alive.size:
        leech = alive[~store.is_seed[alive]]
        assert (store.counts[leech] < config.num_pieces).all()

    # Metric domains.
    _times, entropies = swarm.metrics.entropy_arrays()
    assert ((entropies >= 0) & (entropies <= 1)).all()
    _pt, leech_series, seed_series = swarm.metrics.population_arrays()
    assert (leech_series >= 0).all() and (seed_series >= 0).all()


@given(config=soa_configs())
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_soa_invariants_under_random_configs(config):
    swarm = Swarm(config, backend="soa")
    swarm.setup()
    swarm.engine.run_until(config.max_time)
    _check_store_invariants(swarm)


@given(config=soa_configs(), plan_seed=st.integers(0, 100))
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_soa_invariants_under_faults(config, plan_seed):
    plan = FaultPlan(
        churn_hazard=0.02,
        connection_break_prob=0.1,
        handshake_failure_prob=0.2,
        shake_failure_prob=0.2,
    )
    swarm = Swarm(config.with_changes(seed=plan_seed), backend="soa",
                  faults=plan)
    swarm.setup()
    swarm.engine.run_until(config.max_time)
    _check_store_invariants(swarm)
    stats = swarm.fault_injector.stats
    assert stats.total() >= 0


@given(config=soa_configs())
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_soa_runs_are_deterministic_per_seed(config):
    def run():
        swarm = Swarm(config, backend="soa")
        result = swarm.run()
        return result.fingerprint()

    assert run() == run()
