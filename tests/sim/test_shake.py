"""Tests for peer-set shaking (Section 7.1)."""

import pytest

from repro.sim.bitfield import Bitfield
from repro.sim.peer import Peer
from repro.sim.shake import maybe_shake
from repro.sim.tracker import Tracker


@pytest.fixture
def setup(rng):
    tracker = Tracker(ns_size=4, rng=rng)

    def spawn(pieces, *, is_seed=False):
        peer = Peer(tracker.new_peer_id(), 10, is_seed=is_seed)
        if pieces and not is_seed:
            peer.bitfield = Bitfield.from_pieces(10, pieces)
        tracker.register(peer)
        return peer

    return tracker, spawn


class TestMaybeShake:
    def test_below_threshold_no_shake(self, setup):
        tracker, spawn = setup
        peer = spawn([0, 1])  # 20%
        assert not maybe_shake(peer, tracker, 0.9, 5.0)
        assert not peer.shaken

    def test_shakes_at_threshold(self, setup):
        tracker, spawn = setup
        peer = spawn(list(range(9)))  # 90%
        old_neighbor = spawn([0])
        peer.neighbors.add(old_neighbor.peer_id)
        old_neighbor.neighbors.add(peer.peer_id)
        peer.partners.add(old_neighbor.peer_id)
        old_neighbor.partners.add(peer.peer_id)
        # Fresh peers for the re-announce to hand out.
        for _ in range(5):
            spawn([1])

        assert maybe_shake(peer, tracker, 0.9, 7.0)
        assert peer.shaken
        assert peer.stats.shaken_at == 7.0
        # Connections are severed symmetrically (the random re-announce
        # may legitimately hand the old neighbor back, but never as an
        # active connection).
        assert peer.peer_id not in old_neighbor.partners
        assert not peer.partners
        # Fresh neighbor set obtained from the tracker.
        assert len(peer.neighbors) > 0

    def test_shakes_only_once(self, setup):
        tracker, spawn = setup
        peer = spawn(list(range(9)))
        spawn([0])
        assert maybe_shake(peer, tracker, 0.9, 1.0)
        assert not maybe_shake(peer, tracker, 0.9, 2.0)

    def test_complete_peer_not_shaken(self, setup):
        tracker, spawn = setup
        peer = spawn(list(range(10)))
        assert not maybe_shake(peer, tracker, 0.9, 1.0)

    def test_seed_not_shaken(self, setup):
        tracker, spawn = setup
        seed = spawn([], is_seed=True)
        assert not maybe_shake(seed, tracker, 0.9, 1.0)
