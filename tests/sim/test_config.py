"""Tests for SimConfig validation."""

import pytest

from repro.errors import ParameterError
from repro.sim.config import SimConfig


def make(**over):
    base = dict(num_pieces=10)
    base.update(over)
    return SimConfig(**base)


class TestDefaults:
    def test_minimal_construction(self):
        config = make()
        assert config.max_conns == 7
        assert config.ns_size == 50
        assert config.piece_selection == "rarest"
        assert config.strict_tft is True

    def test_file_size(self):
        config = make(piece_size_bytes=1024)
        assert config.file_size_bytes == 10 * 1024

    def test_with_changes(self):
        config = make()
        changed = config.with_changes(max_conns=3)
        assert changed.max_conns == 3
        assert config.max_conns == 7

    def test_with_changes_revalidates(self):
        with pytest.raises(ParameterError):
            make().with_changes(arrival_rate=-1.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            make().num_pieces = 5


class TestValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_pieces", 0),
            ("max_conns", 0),
            ("ns_size", 0),
            ("piece_time", 0.0),
            ("piece_size_bytes", 0),
            ("arrival_process", "burst"),
            ("arrival_rate", -1.0),
            ("flash_size", -1),
            ("initial_leechers", -1),
            ("initial_distribution", "weird"),
            ("initial_fill", 1.5),
            ("skew_factor", -0.1),
            ("skewed_pieces", 11),
            ("num_seeds", -1),
            ("seed_upload_slots", -1),
            ("completed_become_seeds", -1.0),
            ("piece_selection", "rarest-ish"),
            ("optimistic_unchoke_prob", 2.0),
            ("optimistic_targets", "anyone"),
            ("connection_failure_prob", -0.5),
            ("connection_setup_prob", 1.5),
            ("matching", "perfect"),
            ("random_first_cutoff", -1),
            ("announce_interval", 0.0),
            ("shake_threshold", 0.0),
            ("shake_threshold", 1.5),
            ("max_time", 0.0),
        ],
    )
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ParameterError):
            make(**{field: value})

    def test_shake_threshold_none_allowed(self):
        assert make(shake_threshold=None).shake_threshold is None

    def test_shake_threshold_one_allowed(self):
        assert make(shake_threshold=1.0).shake_threshold == 1.0

    def test_strict_rarest_allowed(self):
        assert make(piece_selection="strict-rarest").piece_selection == "strict-rarest"

    def test_flash_process_allowed(self):
        config = make(arrival_process="flash", flash_size=10)
        assert config.flash_size == 10
