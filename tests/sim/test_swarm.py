"""Integration tests for the swarm orchestrator."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.swarm import Swarm, run_swarm
from repro.stability.entropy import replication_degrees


class TestBasicRuns:
    def test_downloads_complete(self, small_config):
        result = run_swarm(small_config)
        assert len(result.metrics.completed) > 0

    def test_deterministic_for_seed(self, small_config):
        a = run_swarm(small_config)
        b = run_swarm(small_config)
        assert len(a.metrics.completed) == len(b.metrics.completed)
        assert a.final_leechers == b.final_leechers
        assert [c.completed_at for c in a.metrics.completed] == [
            c.completed_at for c in b.metrics.completed
        ]

    def test_different_seeds_differ(self, small_config):
        a = run_swarm(small_config)
        b = run_swarm(small_config.with_changes(seed=99))
        assert (
            [c.completed_at for c in a.metrics.completed]
            != [c.completed_at for c in b.metrics.completed]
        )

    def test_round_count(self, small_config):
        result = run_swarm(small_config)
        assert result.total_rounds == int(
            small_config.max_time / small_config.piece_time
        )

    def test_setup_twice_rejected(self, small_config):
        swarm = Swarm(small_config)
        swarm.setup()
        with pytest.raises(SimulationError):
            swarm.setup()

    def test_population_log_populated(self, small_config):
        result = run_swarm(small_config)
        assert len(result.tracker_population_log) == result.total_rounds


class TestInvariants:
    def test_piece_counts_match_registry(self, small_config):
        swarm = Swarm(small_config)
        swarm.setup()
        swarm.engine.run_until(30.0)
        bitfields = [p.bitfield for p in swarm.tracker.peers()]
        expected = replication_degrees(bitfields, small_config.num_pieces)
        np.testing.assert_array_equal(swarm.piece_counts, expected)

    def test_neighbor_symmetry(self, small_config):
        swarm = Swarm(small_config)
        swarm.setup()
        swarm.engine.run_until(30.0)
        for peer in swarm.tracker.peers():
            for neighbor_id in peer.neighbors:
                neighbor = swarm.tracker.get(neighbor_id)
                assert neighbor is not None
                assert peer.peer_id in neighbor.neighbors

    def test_partner_symmetry_and_cap(self, small_config):
        swarm = Swarm(small_config)
        swarm.setup()
        swarm.engine.run_until(30.0)
        for peer in swarm.tracker.leechers():
            assert len(peer.partners) <= small_config.max_conns
            for partner_id in peer.partners:
                partner = swarm.tracker.get(partner_id)
                assert partner is not None
                assert peer.peer_id in partner.partners

    def test_completed_peers_departed(self, small_config):
        result = run_swarm(small_config)
        # Departure on completion: no registered leecher is complete.
        swarm = Swarm(small_config)
        swarm.setup()
        swarm.engine.run_until(small_config.max_time)
        for peer in swarm.tracker.leechers():
            assert not peer.bitfield.is_complete

    def test_strict_tft_partners_seedless(self, small_config):
        swarm = Swarm(small_config)
        swarm.setup()
        swarm.engine.run_until(30.0)
        seed_ids = {p.peer_id for p in swarm.tracker.seeds()}
        for peer in swarm.tracker.leechers():
            assert not (peer.partners & seed_ids)


class TestArrivalProcesses:
    def test_flash_crowd(self, small_config):
        config = small_config.with_changes(
            arrival_process="flash", flash_size=30, initial_leechers=0
        )
        swarm = Swarm(config)
        swarm.setup()
        leech, _seeds = swarm.tracker.counts()
        assert leech == 30

    def test_no_arrivals(self, small_config):
        config = small_config.with_changes(
            arrival_process="none", initial_leechers=10
        )
        result = run_swarm(config)
        # Everyone downloads and leaves; nobody arrives to replace them.
        assert result.final_leechers <= 10

    def test_poisson_brings_new_peers(self, small_config):
        config = small_config.with_changes(
            arrival_process="poisson", arrival_rate=2.0, initial_leechers=0
        )
        result = run_swarm(config)
        total_seen = result.final_leechers + len(result.metrics.completed)
        assert total_seen > 10


class TestSeedsAndLingering:
    def test_permanent_seeds_stay(self, small_config):
        result = run_swarm(small_config)
        assert result.final_seeds >= small_config.num_seeds

    def test_lingering_seeds_depart(self, small_config):
        config = small_config.with_changes(completed_become_seeds=5.0)
        swarm = Swarm(config)
        result = swarm.run()
        # Lingerers must eventually leave: every seed still present at
        # the horizon is either permanent or completed within the last
        # lingering window (its departure deadline lies beyond max_time).
        overdue = [
            peer
            for peer in swarm.tracker.seeds()
            if peer.seed_until is not None
            and peer.seed_until <= config.max_time
        ]
        assert not overdue
        assert result.final_seeds >= config.num_seeds

    def test_no_seed_uploads_when_no_slots(self, small_config):
        config = small_config.with_changes(
            seed_upload_slots=0,
            optimistic_unchoke_prob=0.0,
            initial_distribution="empty",
            arrival_process="none",
        )
        result = run_swarm(config)
        # Nobody can acquire a first piece: no downloads complete.
        assert len(result.metrics.completed) == 0


class TestInstrumentation:
    def test_instrumented_count(self, small_config):
        result = run_swarm(small_config, instrument_first=3)
        assert len(result.instrumented) == 3
        assert all(p.instrumented for p in result.instrumented)

    def test_instrumented_start_empty(self, small_config):
        config = small_config.with_changes(
            initial_distribution="uniform", initial_fill=0.9
        )
        swarm = Swarm(config, instrument_first=2, instrumented_start_empty=True)
        swarm.setup()
        for peer in swarm.instrumented_peers:
            assert peer.stats.piece_times == [] or peer.stats.piece_times

    def test_instrumented_series_recorded(self, small_config):
        result = run_swarm(small_config, instrument_first=2)
        for peer in result.instrumented:
            assert len(peer.stats.potential_series) > 0

    def test_avoid_seeds_blocks_seed_grants(self, small_config):
        config = small_config.with_changes(
            optimistic_unchoke_prob=0.0,
            arrival_process="none",
            initial_distribution="empty",
            initial_leechers=3,
        )
        # Only source of pieces would be seeds; instrumented peers refuse.
        result = run_swarm(
            config, instrument_first=3, instrumented_avoid_seeds=True
        )
        for peer in result.instrumented:
            assert peer.bitfield.count == 0


class TestShakeIntegration:
    def test_shaken_peers_marked(self, small_config):
        config = small_config.with_changes(
            shake_threshold=0.5, max_time=80.0
        )
        result = run_swarm(config)
        shaken = [c for c in result.metrics.completed if c.shaken]
        assert len(shaken) > 0
