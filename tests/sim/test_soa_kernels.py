"""Unit tests for the soa backend's array kernels.

Each kernel is checked against a straightforward scalar reference
(the ``Bitfield`` class, a per-group Python loop, or a brute-force
lexsort), including the fast paths that bypass the general code.
"""

import numpy as np
import pytest

from repro.sim.bitfield import Bitfield
from repro.sim.config import SimConfig
from repro.sim.soa import (
    PeerStore,
    ScratchArena,
    SoaSwarm,
    _contiguous_ranks,
    group_ranks,
    interest_flags,
    mask_from_words,
    pack_mask,
    pack_rows,
    popcount_rows,
    unpack_rows,
    weighted_pick_rows,
    words_for,
)


@pytest.mark.parametrize("num_pieces", [1, 7, 63, 64, 65, 70, 128, 200])
def test_pack_unpack_rows_round_trip(num_pieces):
    rng = np.random.default_rng(num_pieces)
    held = rng.random((17, num_pieces)) < 0.4
    packed = pack_rows(held)
    assert packed.shape == (17, words_for(num_pieces))
    assert packed.dtype == np.uint64
    np.testing.assert_array_equal(unpack_rows(packed, num_pieces), held)


@pytest.mark.parametrize("num_pieces", [1, 64, 70, 200])
def test_pack_rows_matches_bitfield_masks(num_pieces):
    """Row packing and the scalar ``Bitfield`` agree bit for bit."""
    rng = np.random.default_rng(3)
    held = rng.random((9, num_pieces)) < 0.5
    packed = pack_rows(held)
    for row, bools in zip(packed, held):
        pieces = [p for p in range(num_pieces) if bools[p]]
        mask = Bitfield.from_pieces(num_pieces, pieces)._mask
        assert mask_from_words(row) == mask
        np.testing.assert_array_equal(row, pack_mask(num_pieces, mask))


def test_pack_mask_high_bit():
    """Bit 63 set: the word value exceeds int64 range and must survive."""
    mask = 1 << 63
    words = pack_mask(64, mask)
    assert int(words[0]) == 1 << 63
    assert mask_from_words(words) == mask


def test_popcount_rows_matches_bitfield_count():
    rng = np.random.default_rng(11)
    held = rng.random((25, 130)) < 0.3
    counts = popcount_rows(pack_rows(held))
    np.testing.assert_array_equal(counts, held.sum(axis=1))


def test_interest_flags_matches_bitfield_reference():
    """Edge novelty flags equal the scalar subset comparisons."""
    rng = np.random.default_rng(5)
    num_pieces = 70
    held = rng.random((30, num_pieces)) < 0.5
    held[0, :] = False            # empty peer
    held[1, :] = True             # complete peer
    bits = pack_rows(held)
    src = rng.integers(0, 30, size=200)
    dst = rng.integers(0, 30, size=200)
    give_sd, give_ds = interest_flags(bits, src, dst)
    for k in range(src.size):
        s, d = held[src[k]], held[dst[k]]
        assert give_sd[k] == bool((s & ~d).any())
        assert give_ds[k] == bool((d & ~s).any())


def test_interest_flags_counts_path_is_exact():
    """The empty/complete count shortcut agrees with the full XOR path."""
    rng = np.random.default_rng(6)
    num_pieces = 40
    held = rng.random((50, num_pieces)) < 0.5
    held[:10, :] = False          # flash-crowd bootstrap: many empties
    held[10:14, :] = True
    bits = pack_rows(held)
    counts = popcount_rows(bits)
    src = rng.integers(0, 50, size=500)
    dst = rng.integers(0, 50, size=500)
    plain = interest_flags(bits, src, dst)
    fast = interest_flags(bits, src, dst, counts=counts,
                          num_pieces=num_pieces)
    np.testing.assert_array_equal(fast[0], plain[0])
    np.testing.assert_array_equal(fast[1], plain[1])


def test_interest_flags_counts_requires_num_pieces():
    bits = pack_rows(np.ones((2, 8), dtype=bool))
    counts = popcount_rows(bits)
    edge = np.array([0]), np.array([1])
    with pytest.raises(ValueError):
        interest_flags(bits, *edge, counts=counts)


def _rank_reference(keys, priority):
    """Brute-force group ranks: lexsort, then position within group."""
    order = np.lexsort((priority, keys))
    ranks = np.empty(keys.size, dtype=np.int64)
    for key in np.unique(keys):
        members = order[keys[order] == key]
        ranks[members] = np.arange(members.size)
    return ranks


def test_group_ranks_matches_reference():
    rng = np.random.default_rng(7)
    keys = rng.integers(0, 12, size=300)
    priority = rng.permutation(300)
    np.testing.assert_array_equal(
        group_ranks(keys, priority), _rank_reference(keys, priority)
    )


def test_group_ranks_ascending_priority_fast_path():
    """Already-ascending priorities take the single-sort branch."""
    rng = np.random.default_rng(8)
    keys = rng.integers(0, 9, size=120)
    priority = np.arange(120)
    np.testing.assert_array_equal(
        group_ranks(keys, priority), _rank_reference(keys, priority)
    )


def test_group_ranks_lexsort_fallback_on_huge_keys():
    """Keys too large for the fused int64 sort fall back to lexsort."""
    rng = np.random.default_rng(9)
    keys = rng.integers(0, 5, size=64) + (1 << 61)
    priority = rng.permutation(64)
    np.testing.assert_array_equal(
        group_ranks(keys, priority), _rank_reference(keys, priority)
    )


def test_group_ranks_empty_and_singleton():
    assert group_ranks(np.zeros(0, np.int64), np.zeros(0, np.int64)).size == 0
    np.testing.assert_array_equal(
        group_ranks(np.array([4]), np.array([0])), [0]
    )


def test_contiguous_ranks_matches_group_ranks():
    """For pre-grouped keys the sort-free rank equals the general one."""
    keys = np.repeat(np.array([3, 7, 7, 1, 9]), [2, 1, 3, 4, 2])
    expected = group_ranks(keys, np.arange(keys.size))
    np.testing.assert_array_equal(_contiguous_ranks(keys), expected)
    assert _contiguous_ranks(np.zeros(0, np.int64)).size == 0


def test_weighted_pick_rows_zero_rows_and_point_masses():
    rng = np.random.default_rng(10)
    weights = np.zeros((4, 6))
    weights[1, 3] = 2.5           # point mass -> always column 3
    weights[3, 0] = 1.0
    picks = weighted_pick_rows(weights, rng)
    assert picks[0] == -1 and picks[2] == -1
    assert picks[1] == 3 and picks[3] == 0
    assert weighted_pick_rows(np.zeros((0, 5)), rng).size == 0


def test_weighted_pick_rows_frequencies_track_weights():
    """The inverse-transform draw reproduces the weight distribution."""
    rng = np.random.default_rng(12)
    weights = np.tile(np.array([1.0, 2.0, 5.0]), (30_000, 1))
    picks = weighted_pick_rows(weights, rng)
    freq = np.bincount(picks, minlength=3) / picks.size
    np.testing.assert_allclose(freq, np.array([1, 2, 5]) / 8.0, atol=0.02)


# ----------------------------------------------------------------------
# Free-list kernels and the scratch arena
# ----------------------------------------------------------------------
def test_peer_store_allocate_release_matches_scalar_reference():
    """The vectorized free-list ops replay a scalar pop/append loop
    exactly, so slot recycling order (and thus checkpoints) is pinned."""
    store = PeerStore(32, num_pieces=10, nbr_width=4)
    reference = list(store.free)
    rng = np.random.default_rng(5)
    live: list = []
    for _ in range(200):
        if live and rng.random() < 0.45:
            pick = rng.permutation(len(live))[: rng.integers(1, 4)]
            slots = np.array([live[i] for i in pick], dtype=np.int64)
            live = [s for i, s in enumerate(live) if i not in set(pick)]
            store.release(slots)
            for slot in np.sort(slots):  # scalar reference: sorted appends
                reference.append(int(slot))
        else:
            count = int(rng.integers(1, 4))
            if count > len(reference):
                continue
            slots = store.allocate(count)
            expected = [reference.pop() for _ in range(count)]
            assert slots.tolist() == expected
            live.extend(slots.tolist())
        assert store.free == reference


def test_scratch_arena_reuses_buffers():
    arena = ScratchArena()
    first = arena.take("x", 8)
    assert arena.created == 1
    again = arena.take("x", 5)
    assert arena.created == 1
    assert np.shares_memory(first, again)
    assert again.size == 5


def test_scratch_arena_grows_and_switches_dtype():
    arena = ScratchArena()
    arena.take("x", 8)
    grown = arena.take("x", 20)
    assert arena.created == 2
    assert grown.size == 20
    # Growth is geometric: a slightly larger ask reuses the slack.
    assert arena.take("x", 16).size == 16
    assert arena.created == 2
    switched = arena.take("x", 4, np.bool_)
    assert switched.dtype == np.bool_
    assert arena.created == 3


def test_scratch_arena_views_are_reset():
    arena = ScratchArena()
    arena.take("z", 6)[:] = 7
    assert not arena.zeros("z", 6).any()
    np.testing.assert_array_equal(
        arena.full("z", 4, -1), np.full(4, -1, dtype=np.int64)
    )


def test_soa_steady_state_rounds_allocate_no_new_scratch():
    """After warm-up, rounds must not create new arena buffers: every
    per-round temporary is served from the reused slabs."""
    config = SimConfig(
        num_pieces=16,
        max_conns=2,
        ns_size=5,
        arrival_process="poisson",
        arrival_rate=0.5,
        initial_leechers=30,
        initial_distribution="uniform",
        initial_fill=0.7,
        num_seeds=2,
        seed_upload_slots=2,
        completed_become_seeds=0.0,
        abort_rate=0.05,
        shake_threshold=0.5,
        piece_selection="rarest",
        max_time=40.0,
        seed=3,
    )
    swarm = SoaSwarm(config)
    swarm.setup()
    while swarm._rounds < 10 and swarm.engine.step() is not None:
        pass
    assert swarm._rounds >= 10
    warm = swarm.scratch.created
    assert warm > 0
    capacity = swarm.store.capacity
    while swarm._rounds < 30 and swarm.engine.step() is not None:
        pass
    assert swarm._rounds >= 30
    assert swarm.store.capacity == capacity  # no slab growth mid-test
    assert swarm.scratch.created == warm
