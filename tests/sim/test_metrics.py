"""Tests for the metrics collector."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.sim.bitfield import Bitfield
from repro.sim.metrics import MetricsCollector
from repro.sim.peer import Peer
from repro.sim.tracker import Tracker


@pytest.fixture
def tracker(rng):
    return Tracker(ns_size=10, rng=rng)


def spawn(tracker, pieces, *, partners=(), is_seed=False):
    peer = Peer(tracker.new_peer_id(), 6, is_seed=is_seed)
    if pieces and not is_seed:
        peer.bitfield = Bitfield.from_pieces(6, pieces)
    peer.partners = set(partners)
    tracker.register(peer)
    return peer


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ParameterError):
            MetricsCollector(0)
        with pytest.raises(ParameterError):
            MetricsCollector(2, entropy_every=0)
        with pytest.raises(ParameterError):
            MetricsCollector(2, occupancy_warmup=1.0)
        with pytest.raises(ParameterError):
            MetricsCollector(2, occupancy_scope="some")


class TestPopulationAndEntropy:
    def test_population_series(self, tracker):
        metrics = MetricsCollector(2)
        spawn(tracker, [0])
        spawn(tracker, [], is_seed=True)
        metrics.on_round_end(1.0, tracker, {})
        times, leech, seeds = metrics.population_arrays()
        assert times.tolist() == [1.0]
        assert leech.tolist() == [1]
        assert seeds.tolist() == [1]

    def test_entropy_sampling_stride(self, tracker):
        metrics = MetricsCollector(2, entropy_every=2)
        spawn(tracker, [0])
        for t in (1.0, 2.0, 3.0, 4.0):
            metrics.on_round_end(t, tracker, {})
        times, values = metrics.entropy_arrays()
        assert times.tolist() == [2.0, 4.0]

    def test_entropy_of_empty_swarm_is_one(self, tracker):
        metrics = MetricsCollector(2)
        metrics.on_round_end(1.0, tracker, {})
        _times, values = metrics.entropy_arrays()
        assert values.tolist() == [1.0]

    def test_entropy_excluding_seeds(self, tracker):
        metrics = MetricsCollector(2, entropy_includes_seeds=False)
        spawn(tracker, [0])  # piece 0 once, others zero
        spawn(tracker, [], is_seed=True)
        metrics.on_round_end(1.0, tracker, {})
        _times, values = metrics.entropy_arrays()
        assert values[0] == 0.0  # pieces 1..5 unreplicated among leechers

    def test_empty_arrays_when_no_rounds(self):
        metrics = MetricsCollector(2)
        times, leech, seeds = metrics.population_arrays()
        assert times.size == 0
        e_times, e_values = metrics.entropy_arrays()
        assert e_times.size == 0


class TestOccupancy:
    def test_all_scope_counts_everyone(self, tracker):
        metrics = MetricsCollector(2, occupancy_scope="all")
        spawn(tracker, [0], partners={99})
        spawn(tracker, [])
        metrics.on_round_end(1.0, tracker, {})
        occupancy = metrics.occupancy()
        assert occupancy.tolist() == [0.5, 0.5, 0.0]

    def test_trading_scope_filters(self, tracker):
        metrics = MetricsCollector(2, occupancy_scope="trading")
        trading = spawn(tracker, [0], partners={99})
        spawn(tracker, [])          # bootstrap: no pieces
        starved = spawn(tracker, [1])  # last phase: empty potential set
        metrics.on_round_end(
            1.0, tracker,
            {trading.peer_id: 3, starved.peer_id: 0},
        )
        occupancy = metrics.occupancy()
        assert occupancy.tolist() == [0.0, 1.0, 0.0]

    def test_warmup_discards_early_rounds(self, tracker):
        metrics = MetricsCollector(2, occupancy_scope="all", occupancy_warmup=0.5)
        metrics.set_expected_rounds(4)
        peer = spawn(tracker, [0])
        # Rounds 1-2 are warmup; connect the peer only afterwards.
        metrics.on_round_end(1.0, tracker, {})
        metrics.on_round_end(2.0, tracker, {})
        peer.partners = {99, 98}
        metrics.on_round_end(3.0, tracker, {})
        metrics.on_round_end(4.0, tracker, {})
        assert metrics.occupancy().tolist() == [0.0, 0.0, 1.0]

    def test_occupancy_without_samples_raises(self):
        metrics = MetricsCollector(2)
        with pytest.raises(ParameterError):
            metrics.occupancy()

    def test_efficiency_value(self, tracker):
        metrics = MetricsCollector(2, occupancy_scope="all")
        spawn(tracker, [0], partners={7, 8})
        metrics.on_round_end(1.0, tracker, {})
        assert metrics.efficiency() == pytest.approx(1.0)

    def test_partner_overflow_clamped(self, tracker):
        metrics = MetricsCollector(2, occupancy_scope="all")
        spawn(tracker, [0], partners={1, 2, 3, 4})
        metrics.on_round_end(1.0, tracker, {})
        assert metrics.occupancy()[2] == 1.0


class TestCompletedDownloads:
    def test_records_download(self, tracker):
        metrics = MetricsCollector(2)
        peer = spawn(tracker, [0])
        peer.stats.joined_at = 1.0
        metrics.on_peer_complete(peer, 9.0)
        assert len(metrics.completed) == 1
        record = metrics.completed[0]
        assert record.duration == pytest.approx(8.0)
        assert record.peer_id == peer.peer_id

    def test_mean_duration(self, tracker):
        metrics = MetricsCollector(2)
        for finish in (5.0, 7.0):
            peer = spawn(tracker, [0])
            peer.stats.joined_at = 1.0
            metrics.on_peer_complete(peer, finish)
        assert metrics.mean_download_duration() == pytest.approx(5.0)

    def test_mean_duration_nan_when_empty(self):
        metrics = MetricsCollector(2)
        assert np.isnan(metrics.mean_download_duration())
