"""Tests for the curated scenario factories."""

import pytest

from repro.errors import ParameterError
from repro.sim.scenarios import (
    SCENARIOS,
    cold_start,
    flash_crowd,
    heterogeneous_bandwidth,
    starved_neighborhoods,
    steady_state,
    streaming,
)
from repro.sim.swarm import run_swarm


class TestFactories:
    @pytest.mark.parametrize("name,factory", sorted(SCENARIOS.items()))
    def test_all_scenarios_valid(self, name, factory):
        config = factory()
        assert config.num_pieces >= 1

    def test_overrides_apply(self):
        config = steady_state(max_conns=7, arrival_rate=9.0)
        assert config.max_conns == 7
        assert config.arrival_rate == 9.0

    def test_overrides_revalidated(self):
        with pytest.raises(ParameterError):
            steady_state(max_conns=0)

    def test_flash_crowd_size(self):
        config = flash_crowd(crowd=77)
        assert config.flash_size == 77
        assert config.arrival_process == "flash"
        with pytest.raises(ParameterError):
            flash_crowd(crowd=0)

    def test_cold_start_is_empty(self):
        assert cold_start().initial_distribution == "empty"

    def test_starved_is_clustered(self):
        config = starved_neighborhoods()
        assert config.ns_accept_factor == 1.0
        assert config.announce_interval >= 100.0

    def test_heterogeneous_classes(self):
        config = heterogeneous_bandwidth()
        assert config.bandwidth_classes is not None

    def test_streaming_is_windowed_non_strict(self):
        config = streaming()
        assert config.piece_selection == "windowed"
        assert config.strict_tft is False


class TestScenariosRun:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_scenarios_produce_downloads(self, name):
        factory = SCENARIOS[name]
        config = factory(seed=3).with_changes(max_time=60.0)
        result = run_swarm(config)
        assert result.total_rounds == 60
        assert len(result.metrics.completed) > 0, name
