"""Tests for the piece bitfield."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.sim.bitfield import Bitfield


def bitfields(num_pieces=12):
    return st.builds(
        lambda pieces: Bitfield.from_pieces(num_pieces, pieces),
        st.sets(st.integers(min_value=0, max_value=num_pieces - 1)),
    )


class TestConstruction:
    def test_empty(self):
        bf = Bitfield(8)
        assert bf.count == 0
        assert bf.is_empty
        assert not bf.is_complete

    def test_full(self):
        bf = Bitfield.full(8)
        assert bf.count == 8
        assert bf.is_complete

    def test_from_pieces(self):
        bf = Bitfield.from_pieces(8, [0, 3, 7])
        assert sorted(bf.pieces()) == [0, 3, 7]

    def test_from_pieces_out_of_range(self):
        with pytest.raises(ParameterError):
            Bitfield.from_pieces(8, [8])

    def test_invalid_size(self):
        with pytest.raises(ParameterError):
            Bitfield(0)

    def test_mask_outside_universe(self):
        with pytest.raises(ParameterError):
            Bitfield(4, mask=0b10000)

    def test_copy_is_independent(self):
        bf = Bitfield.from_pieces(8, [1])
        clone = bf.copy()
        clone.add(2)
        assert not bf.has(2)


class TestMutation:
    def test_add_new(self):
        bf = Bitfield(8)
        assert bf.add(3) is True
        assert bf.has(3)
        assert bf.count == 1

    def test_add_duplicate(self):
        bf = Bitfield.from_pieces(8, [3])
        assert bf.add(3) is False
        assert bf.count == 1

    def test_add_out_of_range(self):
        with pytest.raises(ParameterError):
            Bitfield(8).add(9)

    def test_completion_by_adds(self):
        bf = Bitfield(3)
        for piece in range(3):
            bf.add(piece)
        assert bf.is_complete


class TestQueries:
    def test_missing_count(self):
        bf = Bitfield.from_pieces(8, [0, 1])
        assert bf.missing_count() == 6

    def test_contains(self):
        bf = Bitfield.from_pieces(8, [2])
        assert 2 in bf
        assert 3 not in bf

    def test_len(self):
        assert len(Bitfield.from_pieces(8, [1, 2, 3])) == 3

    def test_exchangeable_pieces(self):
        mine = Bitfield.from_pieces(8, [0, 1])
        theirs = Bitfield.from_pieces(8, [1, 2, 3])
        assert mine.exchangeable_pieces_from(theirs) == [2, 3]

    def test_mutual_interest_true(self):
        a = Bitfield.from_pieces(8, [0])
        b = Bitfield.from_pieces(8, [1])
        assert a.mutual_interest(b)
        assert b.mutual_interest(a)

    def test_mutual_interest_subset_false(self):
        a = Bitfield.from_pieces(8, [0, 1])
        b = Bitfield.from_pieces(8, [0])
        assert not a.mutual_interest(b)
        assert not b.mutual_interest(a)

    def test_mutual_interest_identical_false(self):
        a = Bitfield.from_pieces(8, [0, 1])
        b = Bitfield.from_pieces(8, [0, 1])
        assert not a.mutual_interest(b)

    def test_interested_in(self):
        a = Bitfield.from_pieces(8, [0])
        b = Bitfield.from_pieces(8, [0, 1])
        assert a.interested_in(b)
        assert not b.interested_in(a)

    def test_incompatible_sizes(self):
        with pytest.raises(ParameterError):
            Bitfield(4).mutual_interest(Bitfield(5))

    def test_hash_eq(self):
        a = Bitfield.from_pieces(8, [0, 1])
        b = Bitfield.from_pieces(8, [1, 0])
        assert a == b
        assert hash(a) == hash(b)
        assert a != Bitfield.from_pieces(8, [0])

    def test_repr(self):
        assert repr(Bitfield.from_pieces(8, [1, 2])) == "Bitfield(2/8)"


class TestProperties:
    @given(a=bitfields(), b=bitfields())
    @settings(max_examples=80)
    def test_mutual_interest_symmetric(self, a, b):
        assert a.mutual_interest(b) == b.mutual_interest(a)

    @given(a=bitfields(), b=bitfields())
    @settings(max_examples=80)
    def test_mutual_iff_both_interested(self, a, b):
        assert a.mutual_interest(b) == (a.interested_in(b) and b.interested_in(a))

    @given(a=bitfields(), b=bitfields())
    @settings(max_examples=80)
    def test_exchangeable_disjoint_from_holdings(self, a, b):
        for piece in a.exchangeable_pieces_from(b):
            assert not a.has(piece)
            assert b.has(piece)

    @given(a=bitfields())
    @settings(max_examples=50)
    def test_count_matches_iteration(self, a):
        assert a.count == len(list(a.pieces()))
