"""Equivalence: sharded backend vs soa (exact) and object (statistical).

Two layers, matching the backend's contract:

* ``shards=1`` hosts a single unmodified in-process SoA swarm, so its
  fingerprint must be *identical* to ``backend="soa"`` — byte-for-byte,
  including under fault plans and poisson arrivals.
* ``shards >= 2`` partitions the population: per-shard neighbor sets,
  coordinator-owned arrivals and round-boundary migration change the
  trajectory, so individual runs differ while ensemble statistics must
  agree.  These tests reuse the PR-8 statistical gates (seed-averaged
  completions, download times, connection probabilities, efficiency)
  against the object reference engine.
"""

import numpy as np
import pytest

from repro.faults.plan import FaultPlan, OutageWindow
from repro.sim.config import SimConfig
from repro.sim.metrics import MetricsCollector
from repro.sim.swarm import run_swarm

SEEDS = (0, 1, 2)


def steady_config(**overrides):
    """A dense steady swarm, big enough that a 4-way split still gives
    every shard a healthy neighborhood (>= ns_size peers per shard)."""
    base = dict(
        num_pieces=40,
        max_conns=3,
        ns_size=15,
        arrival_process="poisson",
        arrival_rate=8.0,
        initial_leechers=240,
        initial_distribution="uniform",
        initial_fill=0.5,
        num_seeds=4,
        seed_upload_slots=2,
        optimistic_unchoke_prob=0.5,
        connection_setup_prob=0.8,
        connection_failure_prob=0.1,
        matching="blind",
        piece_selection="rarest",
        max_time=60.0,
    )
    base.update(overrides)
    return SimConfig(**base)


def ensemble(config, backend, **swarm_kwargs):
    """Seed-averaged observables for one backend."""
    completed, duration, p_new, p_re, eta = [], [], [], [], []
    for seed in SEEDS:
        metrics = MetricsCollector(
            config.max_conns, entropy_every=1_000_000, occupancy_warmup=0.25
        )
        result = run_swarm(
            config.with_changes(seed=seed), metrics=metrics,
            backend=backend, **swarm_kwargs,
        )
        assert result.backend == backend
        completed.append(len(metrics.completed))
        duration.append(metrics.mean_download_duration())
        stats = result.connection_stats
        p_new.append(stats.p_new())
        p_re.append(stats.p_reenc())
        eta.append(metrics.efficiency())
    return {
        "completed": float(np.mean(completed)),
        "duration": float(np.mean(duration)),
        "p_new": float(np.mean(p_new)),
        "p_reenc": float(np.mean(p_re)),
        "eta": float(np.mean(eta)),
    }


class TestSingleShardIsExact:
    def test_fingerprint_identical_to_soa(self):
        config = steady_config(
            initial_leechers=80, arrival_rate=4.0, max_time=30.0, seed=7
        )
        soa = run_swarm(config, backend="soa")
        sharded = run_swarm(config, backend="sharded", shards=1)
        assert sharded.backend == "sharded"
        assert sharded.fingerprint() == soa.fingerprint()

    def test_fingerprint_identical_under_faults(self):
        config = steady_config(
            initial_leechers=60, arrival_rate=3.0, max_time=25.0, seed=11
        )
        plan = FaultPlan(
            churn_hazard=0.01,
            connection_break_prob=0.02,
            handshake_failure_prob=0.05,
            outages=(OutageWindow(8.0, 14.0, "stale"),),
        )
        soa = run_swarm(config, backend="soa", faults=plan)
        sharded = run_swarm(config, backend="sharded", shards=1, faults=plan)
        assert sharded.fingerprint() == soa.fingerprint()
        assert sharded.fault_stats.to_dict() == soa.fault_stats.to_dict()

    def test_flash_crowd_fingerprint_identical(self):
        config = steady_config(
            initial_leechers=0,
            arrival_process="flash",
            arrival_rate=0.0,
            flash_size=90,
            initial_fill=0.0,
            max_time=40.0,
            seed=5,
        )
        soa = run_swarm(config, backend="soa")
        sharded = run_swarm(config, backend="sharded", shards=1)
        assert sharded.fingerprint() == soa.fingerprint()


@pytest.mark.parametrize("shards", (2, 4))
def test_sharded_backend_is_statistically_equivalent(shards):
    """The PR-8 ensemble gates, sharded vs the object reference."""
    config = steady_config()
    obj = ensemble(config, "object")
    sharded = ensemble(config, "sharded", shards=shards)

    assert obj["completed"] > 0 and sharded["completed"] > 0
    rel_completed = (
        abs(sharded["completed"] - obj["completed"]) / obj["completed"]
    )
    assert rel_completed < 0.10, (obj, sharded)
    rel_duration = (
        abs(sharded["duration"] - obj["duration"]) / obj["duration"]
    )
    assert rel_duration < 0.10, (obj, sharded)
    assert abs(sharded["p_new"] - obj["p_new"]) < 0.05, (obj, sharded)
    assert abs(sharded["p_reenc"] - obj["p_reenc"]) < 0.03, (obj, sharded)
    assert abs(sharded["eta"] - obj["eta"]) < 0.05, (obj, sharded)


def test_sharded_runs_are_deterministic_for_a_fixed_seed():
    config = steady_config(
        initial_leechers=100, arrival_rate=4.0, max_time=30.0, seed=13
    )
    first = run_swarm(config, backend="sharded", shards=3)
    second = run_swarm(config, backend="sharded", shards=3)
    assert first.fingerprint() == second.fingerprint()
    # A different shard count is a different (but valid) trajectory.
    other = run_swarm(config, backend="sharded", shards=2)
    assert other.fingerprint() != first.fingerprint()
