"""Tests for the discrete-event engine."""

import pytest

from repro.errors import ParameterError, SimulationError
from repro.sim.engine import DiscreteEventEngine, Event


@pytest.fixture
def engine():
    return DiscreteEventEngine()


class TestScheduling:
    def test_time_order(self, engine):
        fired = []
        engine.register("x", lambda t, e: fired.append(t))
        engine.schedule_at(3.0, Event("x"))
        engine.schedule_at(1.0, Event("x"))
        engine.schedule_at(2.0, Event("x"))
        engine.run_until(10.0)
        assert fired == [1.0, 2.0, 3.0]

    def test_fifo_tie_break(self, engine):
        fired = []
        engine.register("x", lambda t, e: fired.append(e.payload))
        for tag in ("a", "b", "c"):
            engine.schedule_at(1.0, Event("x", tag))
        engine.run_until(10.0)
        assert fired == ["a", "b", "c"]

    def test_schedule_in(self, engine):
        engine.register("x", lambda t, e: None)
        engine.schedule_in(5.0, Event("x"))
        assert engine.peek_time() == 5.0

    def test_schedule_in_past_rejected(self, engine):
        engine.register("x", lambda t, e: None)
        engine.schedule_at(5.0, Event("x"))
        engine.run_until(5.0)
        with pytest.raises(SimulationError):
            engine.schedule_at(4.0, Event("x"))

    def test_negative_delay_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.schedule_in(-1.0, Event("x"))


class TestDispatch:
    def test_unregistered_kind_raises(self, engine):
        engine.schedule_at(1.0, Event("mystery"))
        with pytest.raises(SimulationError):
            engine.run_until(2.0)

    def test_double_registration_rejected(self, engine):
        engine.register("x", lambda t, e: None)
        with pytest.raises(ParameterError):
            engine.register("x", lambda t, e: None)

    def test_step_returns_event(self, engine):
        engine.register("x", lambda t, e: None)
        engine.schedule_at(1.0, Event("x", "payload"))
        event = engine.step()
        assert event.payload == "payload"

    def test_step_empty_returns_none(self, engine):
        assert engine.step() is None

    def test_handlers_can_reschedule(self, engine):
        count = [0]

        def handler(t, e):
            count[0] += 1
            if count[0] < 3:
                engine.schedule_in(1.0, Event("x"))

        engine.register("x", handler)
        engine.schedule_at(1.0, Event("x"))
        engine.run_until(100.0)
        assert count[0] == 3


class TestNonFiniteTimes:
    """Regression: NaN-keyed heap entries compare False against
    everything, silently corrupting the heap so run_until exits with
    events still pending instead of raising.  The engine must reject
    non-finite times up front."""

    @pytest.mark.parametrize(
        "bad_time", [float("nan"), float("inf"), float("-inf")]
    )
    def test_schedule_at_rejects_non_finite(self, engine, bad_time):
        engine.register("x", lambda t, e: None)
        with pytest.raises(SimulationError, match="non-finite"):
            engine.schedule_at(bad_time, Event("x"))

    def test_schedule_in_rejects_nan_delay(self, engine):
        engine.register("x", lambda t, e: None)
        with pytest.raises(SimulationError):
            engine.schedule_in(float("nan"), Event("x"))

    def test_handler_scheduling_nan_raises_not_silently_stops(self, engine):
        fired = []

        def handler(t, e):
            fired.append(t)
            engine.schedule_at(float("nan"), Event("x"))

        engine.register("x", handler)
        engine.schedule_at(1.0, Event("x"))
        with pytest.raises(SimulationError):
            engine.run_until(10.0)
        assert fired == [1.0]

    def test_corrupt_queue_tripwire(self, engine):
        # schedule_at validates inputs, so a backwards pop can only
        # come from behind-the-back queue mutation; step must trip.
        engine.register("x", lambda t, e: None)
        engine.schedule_at(5.0, Event("x"))
        engine.run_until(5.0)
        engine._queue.append((1.0, -1, Event("x")))
        with pytest.raises(SimulationError, match="corrupt"):
            engine.step()


class TestPreDispatchHooks:
    def test_hooks_observe_every_dispatch_in_order(self, engine):
        seen = []
        engine.register("x", lambda t, e: seen.append(("handler", t)))
        engine.add_pre_dispatch_hook(lambda t, e: seen.append(("hook", t)))
        engine.schedule_at(1.0, Event("x"))
        engine.schedule_at(2.0, Event("x"))
        engine.run_until(10.0)
        assert seen == [
            ("hook", 1.0), ("handler", 1.0),
            ("hook", 2.0), ("handler", 2.0),
        ]

    def test_multiple_hooks_run_in_registration_order(self, engine):
        order = []
        engine.register("x", lambda t, e: None)
        engine.add_pre_dispatch_hook(lambda t, e: order.append("first"))
        engine.add_pre_dispatch_hook(lambda t, e: order.append("second"))
        engine.schedule_at(1.0, Event("x"))
        engine.run_until(2.0)
        assert order == ["first", "second"]

    def test_hook_sees_monotone_clock(self, engine):
        times = []
        engine.register("x", lambda t, e: None)
        engine.add_pre_dispatch_hook(lambda t, e: times.append(t))
        for t in (3.0, 1.0, 2.0, 1.0):
            engine.schedule_at(t, Event("x"))
        engine.run_until(10.0)
        assert times == sorted(times)


class TestRunUntil:
    def test_respects_horizon(self, engine):
        fired = []
        engine.register("x", lambda t, e: fired.append(t))
        engine.schedule_at(1.0, Event("x"))
        engine.schedule_at(5.0, Event("x"))
        handled = engine.run_until(3.0)
        assert handled == 1
        assert fired == [1.0]
        assert engine.pending_events == 1

    def test_clock_advances_to_horizon(self, engine):
        engine.run_until(7.0)
        assert engine.now == 7.0

    def test_max_events_guard(self, engine):
        def handler(t, e):
            engine.schedule_in(0.0, Event("x"))

        engine.register("x", handler)
        engine.schedule_at(0.0, Event("x"))
        with pytest.raises(SimulationError):
            engine.run_until(1.0, max_events=50)

    def test_processed_counter(self, engine):
        engine.register("x", lambda t, e: None)
        for t in (1.0, 2.0):
            engine.schedule_at(t, Event("x"))
        engine.run_until(10.0)
        assert engine.processed_events == 2

    def test_peek_time_none_when_empty(self, engine):
        assert engine.peek_time() is None
