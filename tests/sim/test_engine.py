"""Tests for the discrete-event engine."""

import pytest

from repro.errors import ParameterError, SimulationError
from repro.sim.engine import DiscreteEventEngine, Event


@pytest.fixture
def engine():
    return DiscreteEventEngine()


class TestScheduling:
    def test_time_order(self, engine):
        fired = []
        engine.register("x", lambda t, e: fired.append(t))
        engine.schedule_at(3.0, Event("x"))
        engine.schedule_at(1.0, Event("x"))
        engine.schedule_at(2.0, Event("x"))
        engine.run_until(10.0)
        assert fired == [1.0, 2.0, 3.0]

    def test_fifo_tie_break(self, engine):
        fired = []
        engine.register("x", lambda t, e: fired.append(e.payload))
        for tag in ("a", "b", "c"):
            engine.schedule_at(1.0, Event("x", tag))
        engine.run_until(10.0)
        assert fired == ["a", "b", "c"]

    def test_schedule_in(self, engine):
        engine.register("x", lambda t, e: None)
        engine.schedule_in(5.0, Event("x"))
        assert engine.peek_time() == 5.0

    def test_schedule_in_past_rejected(self, engine):
        engine.register("x", lambda t, e: None)
        engine.schedule_at(5.0, Event("x"))
        engine.run_until(5.0)
        with pytest.raises(SimulationError):
            engine.schedule_at(4.0, Event("x"))

    def test_negative_delay_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.schedule_in(-1.0, Event("x"))


class TestDispatch:
    def test_unregistered_kind_raises(self, engine):
        engine.schedule_at(1.0, Event("mystery"))
        with pytest.raises(SimulationError):
            engine.run_until(2.0)

    def test_double_registration_rejected(self, engine):
        engine.register("x", lambda t, e: None)
        with pytest.raises(ParameterError):
            engine.register("x", lambda t, e: None)

    def test_step_returns_event(self, engine):
        engine.register("x", lambda t, e: None)
        engine.schedule_at(1.0, Event("x", "payload"))
        event = engine.step()
        assert event.payload == "payload"

    def test_step_empty_returns_none(self, engine):
        assert engine.step() is None

    def test_handlers_can_reschedule(self, engine):
        count = [0]

        def handler(t, e):
            count[0] += 1
            if count[0] < 3:
                engine.schedule_in(1.0, Event("x"))

        engine.register("x", handler)
        engine.schedule_at(1.0, Event("x"))
        engine.run_until(100.0)
        assert count[0] == 3


class TestRunUntil:
    def test_respects_horizon(self, engine):
        fired = []
        engine.register("x", lambda t, e: fired.append(t))
        engine.schedule_at(1.0, Event("x"))
        engine.schedule_at(5.0, Event("x"))
        handled = engine.run_until(3.0)
        assert handled == 1
        assert fired == [1.0]
        assert engine.pending_events == 1

    def test_clock_advances_to_horizon(self, engine):
        engine.run_until(7.0)
        assert engine.now == 7.0

    def test_max_events_guard(self, engine):
        def handler(t, e):
            engine.schedule_in(0.0, Event("x"))

        engine.register("x", handler)
        engine.schedule_at(0.0, Event("x"))
        with pytest.raises(SimulationError):
            engine.run_until(1.0, max_events=50)

    def test_processed_counter(self, engine):
        engine.register("x", lambda t, e: None)
        for t in (1.0, 2.0):
            engine.schedule_at(t, Event("x"))
        engine.run_until(10.0)
        assert engine.processed_events == 2

    def test_peek_time_none_when_empty(self, engine):
        assert engine.peek_time() is None
