"""Property-based fuzzing of the swarm simulator.

Hypothesis draws random (small) configurations and the suite checks the
structural invariants that must hold under *any* configuration:

* replication counts match the registry exactly;
* neighbor and partner relations are symmetric;
* partner counts never exceed ``k``; partners are never seeds under
  strict tit-for-tat;
* piece holdings never decrease; completed peers are never registered
  leechers (with immediate departure);
* metrics series stay within their domains.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim.config import SimConfig
from repro.sim.swarm import Swarm
from repro.stability.entropy import replication_degrees


@st.composite
def swarm_configs(draw):
    num_pieces = draw(st.integers(min_value=3, max_value=25))
    max_conns = draw(st.integers(min_value=1, max_value=5))
    ns_size = draw(st.integers(min_value=2, max_value=12))
    return SimConfig(
        num_pieces=num_pieces,
        max_conns=max_conns,
        ns_size=ns_size,
        arrival_process=draw(st.sampled_from(["poisson", "flash", "none"])),
        arrival_rate=draw(st.floats(min_value=0.0, max_value=2.0)),
        flash_size=draw(st.integers(min_value=0, max_value=10)),
        initial_leechers=draw(st.integers(min_value=0, max_value=20)),
        initial_distribution=draw(
            st.sampled_from(["empty", "uniform", "skewed"])
        ),
        initial_fill=draw(st.floats(min_value=0.0, max_value=1.0)),
        skew_factor=draw(st.floats(min_value=0.0, max_value=1.0)),
        blocks_per_piece=draw(st.integers(min_value=1, max_value=3)),
        num_seeds=draw(st.integers(min_value=0, max_value=2)),
        seed_upload_slots=draw(st.integers(min_value=0, max_value=3)),
        super_seeding=draw(st.booleans()),
        completed_become_seeds=draw(st.sampled_from([0.0, 5.0])),
        abort_rate=draw(st.floats(min_value=0.0, max_value=0.1)),
        piece_selection=draw(
            st.sampled_from(["rarest", "strict-rarest", "random"])
        ),
        strict_tft=draw(st.booleans()),
        optimistic_unchoke_prob=draw(st.floats(min_value=0.0, max_value=1.0)),
        optimistic_targets=draw(st.sampled_from(["starved", "empty"])),
        connection_failure_prob=draw(st.floats(min_value=0.0, max_value=0.5)),
        connection_setup_prob=draw(st.floats(min_value=0.0, max_value=1.0)),
        matching=draw(st.sampled_from(["blind", "greedy"])),
        shake_threshold=draw(st.sampled_from([None, 0.8])),
        max_time=15.0,
        seed=draw(st.integers(min_value=0, max_value=10_000)),
    )


@given(config=swarm_configs())
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_swarm_invariants_under_random_configs(config):
    swarm = Swarm(config)
    swarm.setup()
    swarm.engine.run_until(config.max_time)
    tracker = swarm.tracker

    # Replication counts mirror the registry.
    bitfields = [p.bitfield for p in tracker.peers()]
    expected = replication_degrees(bitfields, config.num_pieces)
    np.testing.assert_array_equal(swarm.piece_counts, expected)

    registered_ids = {p.peer_id for p in tracker.peers()}
    for peer in tracker.peers():
        # Relations reference live peers and are symmetric.
        assert peer.neighbors <= registered_ids
        assert peer.partners <= registered_ids
        for neighbor_id in peer.neighbors:
            assert peer.peer_id in tracker.get(neighbor_id).neighbors
        for partner_id in peer.partners:
            assert peer.peer_id in tracker.get(partner_id).partners
        # Capacity bounds.
        if not peer.is_seed:
            assert len(peer.partners) <= config.max_conns
        # Immediate departure: registered leechers are incomplete.
        if not peer.is_seed and config.completed_become_seeds == 0:
            assert not peer.bitfield.is_complete
        # Strict TFT: no leecher trades with a seed.
        if config.strict_tft and not peer.is_seed:
            for partner_id in peer.partners:
                assert not tracker.get(partner_id).is_seed

    # Monotone per-peer histories.  Initial-population peers may start
    # pre-filled, so the acquisition log covers at most B pieces.
    for download in swarm.metrics.completed:
        times = download.stats.piece_times
        assert times == sorted(times)
        assert len(times) <= config.num_pieces

    # Metric domains.
    _times, entropies = swarm.metrics.entropy_arrays()
    assert ((entropies >= 0) & (entropies <= 1)).all()
    _pt, leech, seeds = swarm.metrics.population_arrays()
    assert (leech >= 0).all() and (seeds >= 0).all()


@given(config=swarm_configs())
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_runs_are_deterministic_per_seed(config):
    def run():
        swarm = Swarm(config)
        swarm.setup()
        swarm.engine.run_until(config.max_time)
        return (
            swarm.piece_counts.tolist(),
            sorted(p.peer_id for p in swarm.tracker.peers()),
            len(swarm.metrics.completed),
        )

    assert run() == run()
