"""Statistical equivalence: soa backend vs the object reference engine.

The two backends make the same protocol decisions with the same
probabilities but consume their RNG streams differently, so individual
runs differ while ensemble statistics must agree.  These tests average
a few seeds per configuration on both backends and compare the headline
observables — completions, download times, connection probabilities and
efficiency — within tolerances a few times wider than the measured
backend gap (1-3%) to stay robust to seed noise.
"""

import numpy as np
import pytest

from repro.sim.config import SimConfig
from repro.sim.metrics import MetricsCollector
from repro.sim.swarm import run_swarm

SEEDS = (0, 1, 2)


def steady_config(**overrides):
    """A dense steady swarm (the fig. 3/4(a) shape, shortened)."""
    base = dict(
        num_pieces=40,
        max_conns=3,
        ns_size=20,
        arrival_process="poisson",
        arrival_rate=4.0,
        initial_leechers=80,
        initial_distribution="uniform",
        initial_fill=0.5,
        num_seeds=1,
        seed_upload_slots=2,
        optimistic_unchoke_prob=0.5,
        connection_setup_prob=0.8,
        connection_failure_prob=0.1,
        matching="blind",
        piece_selection="rarest",
        max_time=60.0,
    )
    base.update(overrides)
    return SimConfig(**base)


CONFIGS = {
    "steady": steady_config(),
    # Longer horizon: the sparse regime's bootstrap transient (where the
    # backends differ most) must not dominate the completion count.
    "sparse-fill": steady_config(
        initial_fill=0.3, arrival_rate=2.0, max_time=100.0
    ),
    "small": steady_config(
        num_pieces=20, initial_leechers=30, ns_size=10, max_conns=2
    ),
}


def ensemble(config, backend):
    """Seed-averaged observables for one backend."""
    completed, duration, p_new, p_re, eta = [], [], [], [], []
    for seed in SEEDS:
        metrics = MetricsCollector(
            config.max_conns, entropy_every=1_000_000, occupancy_warmup=0.25
        )
        result = run_swarm(
            config.with_changes(seed=seed), metrics=metrics, backend=backend
        )
        assert result.backend == backend
        completed.append(len(metrics.completed))
        duration.append(metrics.mean_download_duration())
        stats = result.connection_stats
        p_new.append(stats.p_new())
        p_re.append(stats.p_reenc())
        eta.append(metrics.efficiency())
    return {
        "completed": float(np.mean(completed)),
        "duration": float(np.mean(duration)),
        "p_new": float(np.mean(p_new)),
        "p_reenc": float(np.mean(p_re)),
        "eta": float(np.mean(eta)),
    }


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_soa_backend_is_statistically_equivalent(name):
    config = CONFIGS[name]
    obj = ensemble(config, "object")
    soa = ensemble(config, "soa")

    assert obj["completed"] > 0 and soa["completed"] > 0
    rel_completed = abs(soa["completed"] - obj["completed"]) / obj["completed"]
    assert rel_completed < 0.10, (obj, soa)
    rel_duration = abs(soa["duration"] - obj["duration"]) / obj["duration"]
    assert rel_duration < 0.10, (obj, soa)
    assert abs(soa["p_new"] - obj["p_new"]) < 0.05, (obj, soa)
    assert abs(soa["p_reenc"] - obj["p_reenc"]) < 0.03, (obj, soa)
    assert abs(soa["eta"] - obj["eta"]) < 0.05, (obj, soa)
