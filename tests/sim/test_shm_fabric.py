"""Unit tests for the shared-memory shard fabric (`repro.sim.shm`).

Exercises the coordinator/worker block protocol in-process: payload
roundtrips through both ends, double-buffer stamp validation, the
coordinator-driven growth protocol, byte accounting, and segment
lifecycle (every name must vanish from the OS namespace on close).
"""

from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.shm import (
    SEGMENT_PREFIX,
    ShardFabric,
    WorkerFabric,
    migration_row_bytes,
)

NUM_PIECES = 7
WORDS = 1


def _segment_exists(name: str) -> bool:
    """Whether ``name`` still exists in the OS shm namespace."""
    try:
        probe = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    # The attach re-registers the name with the resource tracker; that
    # is a set-insert no-op here because every probed segment is owned
    # (and later unlinked, which unregisters) by this same process.
    probe.close()
    return True


def _migration_rows(n: int, words: int = WORDS, base: int = 0) -> dict:
    return {
        "peer_id": np.arange(base, base + n, dtype=np.int64),
        "counts": np.full(n, 3, dtype=np.int64),
        "upload_capacity": np.full(n, 2, dtype=np.int64),
        "bits": np.full((n, words), 5, dtype=np.uint64),
        "seeded": np.full((n, words), 1, dtype=np.uint64),
        "joined_at": np.full(n, 1.5, dtype=np.float64),
        "seed_until": np.full(n, -1.0, dtype=np.float64),
        "first_piece_at": np.full(n, 2.5, dtype=np.float64),
        "prelast_at": np.full(n, -1.0, dtype=np.float64),
        "shaken_at": np.full(n, -1.0, dtype=np.float64),
        "is_seed": np.zeros(n, dtype=np.bool_),
        "shaken": np.zeros(n, dtype=np.bool_),
    }


def _report(conn_counts, piece_counts) -> dict:
    return {
        "n_leech": 11,
        "n_seeds": 2,
        "stats": (4, 1, 9, 6),
        "conn_counts": conn_counts,
        "seed_uploads": 3,
        "piece_counts": piece_counts,
    }


@pytest.fixture
def fabric():
    fab = ShardFabric(1, NUM_PIECES, WORDS, conn_rows=8, migration_rows=4)
    try:
        yield fab
    finally:
        fab.close()


@pytest.fixture
def ends(fabric):
    worker = WorkerFabric(fabric.spec(0))
    try:
        yield fabric, worker
    finally:
        worker.close()


def test_broadcast_roundtrip_and_double_buffer(ends):
    fabric, worker = ends
    first = np.arange(NUM_PIECES, dtype=np.int64)
    second = first + 100
    fabric.write_broadcast(first, 1)
    fabric.write_broadcast(second, 2)
    # Round 2 landed in the other slot, so round 1 is still readable.
    np.testing.assert_array_equal(worker.read_broadcast(1), first)
    np.testing.assert_array_equal(worker.read_broadcast(2), second)
    view = worker.read_broadcast(2)
    assert not view.flags.writeable


def test_broadcast_stale_stamp_raises(ends):
    fabric, worker = ends
    fabric.write_broadcast(np.zeros(NUM_PIECES, dtype=np.int64), 1)
    with pytest.raises(SimulationError, match="stamp mismatch"):
        worker.read_broadcast(3)  # same slot parity, wrong round


def test_report_roundtrip(ends):
    fabric, worker = ends
    pieces = np.arange(NUM_PIECES, dtype=np.int64) * 2
    conn = np.array([4, 4, 3], dtype=np.int64)
    worker.write_report(_report(conn, pieces), 1)
    out = fabric.read_report(0, 1)
    assert out["n_leech"] == 11
    assert out["n_seeds"] == 2
    assert out["stats"] == (4, 1, 9, 6)
    assert out["seed_uploads"] == 3
    np.testing.assert_array_equal(out["conn_counts"], conn)
    np.testing.assert_array_equal(out["piece_counts"], pieces)
    # piece_counts is a copy: a later round must not mutate it.
    worker.write_report(_report(None, pieces + 1), 3)
    np.testing.assert_array_equal(out["piece_counts"], pieces)
    assert fabric.read_report(0, 3)["conn_counts"] is None


def test_report_conn_overflow_raises(ends):
    fabric, worker = ends
    pieces = np.zeros(NUM_PIECES, dtype=np.int64)
    with pytest.raises(SimulationError, match="overflow"):
        worker.write_report(
            _report(np.zeros(9, dtype=np.int64), pieces), 1
        )


def test_migration_roundtrip_both_directions(ends):
    fabric, worker = ends
    rows = _migration_rows(3)
    fabric.write_inbox(0, rows, 1)
    got = worker.read_inbox(1)
    for name, column in rows.items():
        np.testing.assert_array_equal(got[name], column)
    # Empty batches travel as None.
    fabric.write_inbox(0, None, 2)
    assert worker.read_inbox(2) is None
    worker.write_outbox(_migration_rows(2, base=50), 1)
    back = fabric.read_outbox(0, 1)
    np.testing.assert_array_equal(
        back["peer_id"], np.arange(50, 52, dtype=np.int64)
    )
    with pytest.raises(SimulationError, match="stamp mismatch"):
        worker.read_inbox(4)


def test_migration_overflow_raises(ends):
    fabric, worker = ends
    with pytest.raises(SimulationError, match="overflow"):
        fabric.write_inbox(0, _migration_rows(5), 1)  # capacity 4


def test_ensure_grows_blocks_and_worker_reattaches(ends):
    fabric, worker = ends
    old_names = set(fabric.segment_names())
    assert fabric.ensure(0, conn_rows=8, inbox_rows=4, outbox_rows=4) is None
    assert fabric.grows == 0
    updates = fabric.ensure(0, conn_rows=9, inbox_rows=40, outbox_rows=4)
    assert set(updates) == {"report", "inbox"}
    assert fabric.grows == 2
    # Growth at least doubles, and at least fits the request.
    assert updates["report"][1] >= 16
    assert updates["inbox"][1] >= 40
    # The replaced segments are unlinked immediately.
    replaced = old_names - set(fabric.segment_names())
    assert len(replaced) == 2
    for name in replaced:
        assert not _segment_exists(name)
    worker.apply_updates(updates)
    rows = _migration_rows(40)
    fabric.write_inbox(0, rows, 1)
    np.testing.assert_array_equal(
        worker.read_inbox(1)["peer_id"], rows["peer_id"]
    )
    conn = np.full(9, 4, dtype=np.int64)
    worker.write_report(
        _report(conn, np.zeros(NUM_PIECES, dtype=np.int64)), 1
    )
    np.testing.assert_array_equal(
        fabric.read_report(0, 1)["conn_counts"], conn
    )


def test_byte_counters(ends):
    fabric, worker = ends
    assert fabric.bytes_broadcast == 0 and fabric.bytes_migrated == 0
    fabric.write_broadcast(np.zeros(NUM_PIECES, dtype=np.int64), 1)
    assert fabric.bytes_broadcast == 8 * NUM_PIECES  # shards=1
    row_bytes = migration_row_bytes(WORDS)
    fabric.write_inbox(0, _migration_rows(3), 1)
    assert fabric.bytes_migrated == 3 * row_bytes
    worker.write_outbox(_migration_rows(2), 1)
    fabric.read_outbox(0, 1)
    # Each leg counts: inbox write + outbox read.
    assert fabric.bytes_migrated == 5 * row_bytes


def test_close_unlinks_every_segment():
    fabric = ShardFabric(3, NUM_PIECES, WORDS, conn_rows=8, migration_rows=4)
    names = fabric.segment_names()
    # 1 broadcast + 3 shards x (report, inbox, outbox).
    assert len(names) == 10
    assert all(name.startswith(SEGMENT_PREFIX) for name in names)
    assert all(_segment_exists(name) for name in names)
    fabric.close()
    for name in names:
        assert not _segment_exists(name)
    fabric.close()  # idempotent


def test_close_unlinks_despite_attached_worker():
    fabric = ShardFabric(1, NUM_PIECES, WORDS, conn_rows=8, migration_rows=4)
    worker = WorkerFabric(fabric.spec(0))
    names = fabric.segment_names()
    fabric.close()
    for name in names:
        assert not _segment_exists(name)
    worker.close()
