"""Tests for SimConfig serialization (experiment reproducibility)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.sim.config import SimConfig


class TestRoundTrip:
    def test_dict_round_trip(self):
        config = SimConfig(num_pieces=20, max_conns=3, arrival_rate=2.5)
        assert SimConfig.from_dict(config.to_dict()) == config

    def test_json_round_trip(self):
        config = SimConfig(
            num_pieces=20,
            bandwidth_classes=((0.25, 1), (0.75, 4)),
            shake_threshold=0.9,
        )
        assert SimConfig.from_json(config.to_json()) == config

    def test_bandwidth_classes_become_lists_in_dict(self):
        config = SimConfig(num_pieces=5, bandwidth_classes=((1.0, 2),))
        data = config.to_dict()
        assert data["bandwidth_classes"] == [[1.0, 2]]

    def test_none_bandwidth_preserved(self):
        config = SimConfig(num_pieces=5)
        assert SimConfig.from_dict(config.to_dict()).bandwidth_classes is None

    def test_json_is_stable(self):
        config = SimConfig(num_pieces=5)
        assert config.to_json() == config.to_json()

    @given(
        num_pieces=st.integers(min_value=1, max_value=100),
        max_conns=st.integers(min_value=1, max_value=10),
        arrival_rate=st.floats(min_value=0.0, max_value=10.0),
        piece_selection=st.sampled_from(["rarest", "strict-rarest", "random"]),
        strict_tft=st.booleans(),
    )
    @settings(max_examples=30)
    def test_property_round_trip(
        self, num_pieces, max_conns, arrival_rate, piece_selection, strict_tft
    ):
        config = SimConfig(
            num_pieces=num_pieces,
            max_conns=max_conns,
            arrival_rate=arrival_rate,
            piece_selection=piece_selection,
            strict_tft=strict_tft,
        )
        assert SimConfig.from_json(config.to_json()) == config


class TestValidationOnLoad:
    def test_unknown_field_rejected(self):
        with pytest.raises(ParameterError):
            SimConfig.from_dict({"num_pieces": 5, "warp_speed": True})

    def test_invalid_values_rejected(self):
        data = SimConfig(num_pieces=5).to_dict()
        data["max_conns"] = 0
        with pytest.raises(ParameterError):
            SimConfig.from_dict(data)

    def test_invalid_bandwidth_rejected(self):
        data = SimConfig(num_pieces=5).to_dict()
        data["bandwidth_classes"] = [[0.5, 1]]  # fractions must sum to 1
        with pytest.raises(ParameterError):
            SimConfig.from_dict(data)
