"""Tests for the tracker."""

import pytest

from repro.errors import SimulationError
from repro.sim.peer import Peer
from repro.sim.tracker import Tracker


@pytest.fixture
def tracker(rng):
    return Tracker(ns_size=4, rng=rng)


def add_peer(tracker, *, is_seed=False):
    peer = Peer(tracker.new_peer_id(), 10, is_seed=is_seed)
    tracker.register(peer)
    return peer


class TestRegistry:
    def test_ids_are_unique(self, tracker):
        ids = {tracker.new_peer_id() for _ in range(100)}
        assert len(ids) == 100

    def test_register_and_get(self, tracker):
        peer = add_peer(tracker)
        assert tracker.get(peer.peer_id) is peer
        assert peer.peer_id in tracker
        assert len(tracker) == 1

    def test_double_register_rejected(self, tracker):
        peer = add_peer(tracker)
        with pytest.raises(SimulationError):
            tracker.register(peer)

    def test_deregister_unknown_rejected(self, tracker):
        with pytest.raises(SimulationError):
            tracker.deregister(99)

    def test_counts(self, tracker):
        add_peer(tracker)
        add_peer(tracker)
        add_peer(tracker, is_seed=True)
        assert tracker.counts() == (2, 1)

    def test_iteration_orders_by_id(self, tracker):
        peers = [add_peer(tracker) for _ in range(5)]
        assert [p.peer_id for p in tracker.peers()] == sorted(
            p.peer_id for p in peers
        )

    def test_leechers_and_seeds_split(self, tracker):
        add_peer(tracker)
        add_peer(tracker, is_seed=True)
        assert all(not p.is_seed for p in tracker.leechers())
        assert all(p.is_seed for p in tracker.seeds())


class TestAnnounce:
    def test_symmetric_relation(self, tracker):
        a = add_peer(tracker)
        b = add_peer(tracker)
        added = tracker.announce(a)
        assert added == 1
        assert b.peer_id in a.neighbors
        assert a.peer_id in b.neighbors

    def test_capped_at_ns_size(self, tracker):
        peers = [add_peer(tracker) for _ in range(10)]
        tracker.announce(peers[0])
        assert len(peers[0].neighbors) == tracker.ns_size

    def test_want_limits_handout(self, tracker):
        peers = [add_peer(tracker) for _ in range(10)]
        added = tracker.announce(peers[0], want=2)
        assert added == 2

    def test_full_candidates_declined(self, tracker):
        # Fill b past the inbound acceptance cap (2 * ns_size); the
        # announcing peer must skip it.
        peers = [add_peer(tracker) for _ in range(7)]
        b = peers[1]
        b.neighbors = set(range(100, 100 + tracker.accept_cap))
        a = peers[0]
        tracker.announce(a)
        assert b.peer_id not in a.neighbors

    def test_above_request_target_still_accepts(self, tracker):
        # Between ns_size and accept_cap, candidates accept inbound
        # relations (soft cap: avoids clique partitioning in bursts).
        peers = [add_peer(tracker) for _ in range(7)]
        b = peers[1]
        b.neighbors = set(range(100, 100 + tracker.ns_size))  # at target
        a = peers[0]
        tracker.announce(a, want=tracker.ns_size)
        # b is eligible; with 5 other candidates and want=4 it is chosen
        # with high probability across the handout, but we only assert
        # eligibility indirectly: a's set filled to its target.
        assert len(a.neighbors) == tracker.ns_size

    def test_accept_cap_below_ns_rejected(self, rng):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            Tracker(ns_size=10, rng=rng, accept_cap=5)

    def test_seeds_accept_unlimited(self, tracker):
        seed = add_peer(tracker, is_seed=True)
        seed.neighbors = {100, 101, 102, 103}
        a = add_peer(tracker)
        tracker.announce(a)
        assert seed.peer_id in a.neighbors

    def test_unregistered_announcer_rejected(self, tracker):
        ghost = Peer(999, 10)
        with pytest.raises(SimulationError):
            tracker.announce(ghost)

    def test_no_self_neighboring(self, tracker):
        a = add_peer(tracker)
        tracker.announce(a)
        assert a.peer_id not in a.neighbors


class TestDeregistration:
    def test_scrubs_neighbor_sets(self, tracker):
        a = add_peer(tracker)
        b = add_peer(tracker)
        tracker.announce(a)
        b.partners.add(a.peer_id)
        a.partners.add(b.peer_id)
        tracker.deregister(a.peer_id)
        assert a.peer_id not in b.neighbors
        assert a.peer_id not in b.partners

    def test_returns_peer(self, tracker):
        a = add_peer(tracker)
        assert tracker.deregister(a.peer_id) is a
        assert a.peer_id not in tracker


class TestBootstrapBias:
    def test_trapped_first_in_candidate_order(self, rng):
        tracker = Tracker(ns_size=2, rng=rng, bias_bootstrap=True)
        peers = [add_peer(tracker) for _ in range(8)]
        trapped = peers[5]
        tracker.report_bootstrap_trapped(trapped.peer_id, True)
        newcomer = add_peer(tracker)
        tracker.announce(newcomer, want=1)
        assert trapped.peer_id in newcomer.neighbors

    def test_untrap(self, rng):
        tracker = Tracker(ns_size=2, rng=rng, bias_bootstrap=True)
        peer = add_peer(tracker)
        tracker.report_bootstrap_trapped(peer.peer_id, True)
        tracker.report_bootstrap_trapped(peer.peer_id, False)
        assert peer.peer_id not in tracker.bootstrap_trapped

    def test_deregister_clears_trap(self, rng):
        tracker = Tracker(ns_size=2, rng=rng, bias_bootstrap=True)
        peer = add_peer(tracker)
        tracker.report_bootstrap_trapped(peer.peer_id, True)
        tracker.deregister(peer.peer_id)
        assert peer.peer_id not in tracker.bootstrap_trapped


class TestPopulationLog:
    def test_records_counts(self, tracker):
        add_peer(tracker)
        add_peer(tracker, is_seed=True)
        tracker.log_population(5.0)
        assert tracker.population_log == [(5.0, 1, 1)]
