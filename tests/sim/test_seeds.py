"""Tests for seed upload planning."""

import pytest

from repro.sim.bitfield import Bitfield
from repro.sim.peer import Peer
from repro.sim.seeds import plan_seed_uploads
from repro.sim.tracker import Tracker


@pytest.fixture
def setup(rng):
    tracker = Tracker(ns_size=20, rng=rng)
    seed = Peer(tracker.new_peer_id(), 6, is_seed=True)
    tracker.register(seed)

    def spawn_leecher(pieces):
        peer = Peer(tracker.new_peer_id(), 6)
        peer.bitfield = Bitfield.from_pieces(6, pieces)
        tracker.register(peer)
        seed.neighbors.add(peer.peer_id)
        peer.neighbors.add(seed.peer_id)
        return peer

    return tracker, seed, spawn_leecher


class TestPlanSeedUploads:
    def test_grants_limited_by_slots(self, setup, rng):
        tracker, seed, spawn = setup
        for _ in range(5):
            spawn([])
        grants = plan_seed_uploads(seed, tracker, 2, "random", rng)
        assert len(grants) == 2

    def test_one_grant_per_receiver(self, setup, rng):
        tracker, seed, spawn = setup
        spawn([])
        grants = plan_seed_uploads(seed, tracker, 5, "random", rng)
        receivers = [r for r, _ in grants]
        assert len(receivers) == len(set(receivers))

    def test_zero_slots(self, setup, rng):
        tracker, seed, spawn = setup
        spawn([])
        assert plan_seed_uploads(seed, tracker, 0, "random", rng) == []

    def test_complete_neighbors_skipped(self, setup, rng):
        tracker, seed, spawn = setup
        done = spawn(list(range(6)))
        grants = plan_seed_uploads(seed, tracker, 3, "random", rng)
        assert all(receiver != done.peer_id for receiver, _ in grants)

    def test_blocked_receivers_skipped(self, setup, rng):
        tracker, seed, spawn = setup
        blocked = spawn([])
        grants = plan_seed_uploads(
            seed, tracker, 3, "random", rng,
            blocked_receivers={blocked.peer_id},
        )
        assert all(receiver != blocked.peer_id for receiver, _ in grants)

    def test_grants_are_needed_pieces(self, setup, rng):
        tracker, seed, spawn = setup
        partial = spawn([0, 1, 2])
        for _ in range(10):
            grants = plan_seed_uploads(seed, tracker, 1, "random", rng)
            for receiver, piece in grants:
                assert piece in (3, 4, 5)

    def test_no_interested_neighbors(self, setup, rng):
        tracker, seed, spawn = setup
        assert plan_seed_uploads(seed, tracker, 3, "random", rng) == []


class TestSuperSeeding:
    def test_offers_distinct_pieces_first(self, setup, rng):
        tracker, seed, spawn = setup
        for _ in range(6):
            spawn([])
        offered = set()
        for _ in range(3):
            grants = plan_seed_uploads(
                seed, tracker, 2, "random", rng, super_seeding=True
            )
            for _receiver, piece in grants:
                assert piece not in offered
                offered.add(piece)
        assert len(offered) == 6

    def test_resets_after_full_injection(self, setup, rng):
        tracker, seed, spawn = setup
        spawn([])
        seed.seeded_pieces = set(range(6))  # everything injected once
        grants = plan_seed_uploads(
            seed, tracker, 1, "random", rng, super_seeding=True
        )
        assert len(grants) == 1  # restriction reset, upload proceeds
