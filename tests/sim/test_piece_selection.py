"""Tests for piece-selection strategies."""

import collections

import pytest

from repro.errors import ParameterError
from repro.sim.bitfield import Bitfield
from repro.sim.peer import Peer
from repro.sim.piece_selection import (
    neighborhood_rarity,
    select_piece,
)
from repro.sim.tracker import Tracker


class TestSelectPiece:
    def test_only_needed_pieces(self, rng):
        receiver = Bitfield.from_pieces(8, [0, 1])
        sender = Bitfield.from_pieces(8, [0, 1, 2, 3])
        for _ in range(30):
            piece = select_piece(receiver, sender, "random", rng)
            assert piece in (2, 3)

    def test_none_when_nothing_needed(self, rng):
        receiver = Bitfield.from_pieces(8, [0, 1])
        sender = Bitfield.from_pieces(8, [0])
        assert select_piece(receiver, sender, "random", rng) is None

    def test_exclude_respected(self, rng):
        receiver = Bitfield(8)
        sender = Bitfield.from_pieces(8, [0, 1])
        piece = select_piece(receiver, sender, "random", rng, exclude={0})
        assert piece == 1

    def test_exclude_everything_gives_none(self, rng):
        receiver = Bitfield(8)
        sender = Bitfield.from_pieces(8, [0])
        assert select_piece(receiver, sender, "random", rng, exclude={0}) is None

    def test_unknown_policy(self, rng):
        with pytest.raises(ParameterError):
            select_piece(Bitfield(4), Bitfield.full(4), "best", rng)

    def test_strict_rarest_picks_argmin(self, rng):
        receiver = Bitfield.from_pieces(8, [0, 1, 2, 3])  # above cutoff
        sender = Bitfield.full(8)
        rarity = {4: 10, 5: 1, 6: 10, 7: 10}
        for _ in range(20):
            assert select_piece(
                receiver, sender, "strict-rarest", rng, rarity=rarity
            ) == 5

    def test_noisy_rarest_prefers_rare(self, rng):
        receiver = Bitfield.from_pieces(8, [0, 1, 2, 3])
        sender = Bitfield.full(8)
        rarity = {4: 1, 5: 20, 6: 20, 7: 20}
        counts = collections.Counter(
            select_piece(receiver, sender, "rarest", rng, rarity=rarity)
            for _ in range(300)
        )
        assert counts[4] > 250  # (1+1)^-3 vs (20+1)^-3: ~1000x preference

    def test_random_first_cutoff_overrides_rarest(self, rng):
        receiver = Bitfield.from_pieces(8, [0])  # below default cutoff of 4
        sender = Bitfield.full(8)
        rarity = {p: (1 if p == 7 else 50) for p in range(8)}
        counts = collections.Counter(
            select_piece(receiver, sender, "strict-rarest", rng, rarity=rarity)
            for _ in range(200)
        )
        # Random fallback: piece 7 must NOT dominate.
        assert counts[7] < 100

    def test_cutoff_configurable(self, rng):
        receiver = Bitfield.from_pieces(8, [0])
        sender = Bitfield.full(8)
        rarity = {p: (1 if p == 7 else 50) for p in range(8)}
        for _ in range(20):
            piece = select_piece(
                receiver, sender, "strict-rarest", rng,
                rarity=rarity, random_first_cutoff=0,
            )
            assert piece == 7

    def test_no_rarity_degrades_to_random(self, rng):
        receiver = Bitfield.from_pieces(8, [0, 1, 2, 3])
        sender = Bitfield.full(8)
        pieces = {
            select_piece(receiver, sender, "rarest", rng) for _ in range(100)
        }
        assert len(pieces) > 1


class TestNeighborhoodRarity:
    def test_counts_within_neighbor_set(self, rng):
        tracker = Tracker(ns_size=10, rng=rng)
        center = Peer(tracker.new_peer_id(), 6)
        tracker.register(center)
        holdings = [[0, 1], [1, 2], [1]]
        for pieces in holdings:
            other = Peer(tracker.new_peer_id(), 6)
            other.bitfield = Bitfield.from_pieces(6, pieces)
            tracker.register(other)
            center.neighbors.add(other.peer_id)
        rarity = neighborhood_rarity(center, tracker)
        assert rarity == {0: 1, 1: 3, 2: 1}

    def test_departed_neighbors_ignored(self, rng):
        tracker = Tracker(ns_size=10, rng=rng)
        center = Peer(tracker.new_peer_id(), 6)
        tracker.register(center)
        center.neighbors.add(999)  # never registered
        assert neighborhood_rarity(center, tracker) == {}
