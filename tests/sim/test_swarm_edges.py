"""Edge-case and configuration-variant tests for the swarm."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.sim.config import SimConfig
from repro.sim.swarm import Swarm, run_swarm


def base_config(**over):
    base = dict(
        num_pieces=25, max_conns=3, ns_size=12,
        initial_leechers=25, initial_distribution="uniform",
        initial_fill=0.5, arrival_rate=1.0, num_seeds=1,
        seed_upload_slots=2, max_time=60.0, seed=11,
    )
    base.update(over)
    return SimConfig(**base)


class TestRarityViews:
    def test_neighborhood_view_runs(self):
        result = run_swarm(base_config(), rarity_view="neighborhood")
        assert len(result.metrics.completed) > 0

    def test_unknown_view_rejected(self):
        with pytest.raises(ParameterError):
            Swarm(base_config(), rarity_view="psychic")

    def test_views_agree_on_health(self):
        global_view = run_swarm(base_config(), rarity_view="global")
        local_view = run_swarm(base_config(), rarity_view="neighborhood")
        # Both views keep the swarm productive; durations comparable.
        assert len(local_view.metrics.completed) > 0.5 * len(
            global_view.metrics.completed
        )


class TestPieceTimeScaling:
    def test_rounds_scale_with_piece_time(self):
        fast = run_swarm(base_config(piece_time=1.0, max_time=60.0))
        slow = run_swarm(base_config(piece_time=2.0, max_time=60.0))
        assert fast.total_rounds == 60
        assert slow.total_rounds == 30

    def test_durations_scale_with_piece_time(self):
        fast = run_swarm(base_config(piece_time=1.0, max_time=60.0))
        slow = run_swarm(base_config(piece_time=2.0, max_time=120.0))
        # Same number of rounds; wall-clock durations ~2x.
        ratio = (
            slow.metrics.mean_download_duration()
            / fast.metrics.mean_download_duration()
        )
        assert 1.4 < ratio < 2.8


class TestDegenerateConfigs:
    def test_single_piece_file(self):
        result = run_swarm(base_config(num_pieces=1, initial_distribution="empty"))
        assert len(result.metrics.completed) > 0

    def test_no_initial_population_poisson_only(self):
        result = run_swarm(base_config(initial_leechers=0, arrival_rate=2.0))
        assert len(result.metrics.completed) > 0

    def test_zero_arrivals_zero_population(self):
        result = run_swarm(
            base_config(
                initial_leechers=0, arrival_process="none", num_seeds=1
            )
        )
        assert result.final_leechers == 0
        assert len(result.metrics.completed) == 0

    def test_no_seeds_prefilled_swarm_still_trades(self):
        result = run_swarm(base_config(num_seeds=0))
        assert len(result.metrics.completed) > 0

    def test_k_one(self):
        result = run_swarm(base_config(max_conns=1))
        assert len(result.metrics.completed) > 0
        swarm = Swarm(base_config(max_conns=1))
        swarm.setup()
        swarm.engine.run_until(30.0)
        assert all(
            len(p.partners) <= 1 for p in swarm.tracker.leechers()
        )

    def test_negative_instrument_rejected(self):
        with pytest.raises(ParameterError):
            Swarm(base_config(), instrument_first=-1)


class TestAnnounceRefill:
    def test_depleted_neighbor_sets_refill(self):
        # High churn through completions: peers whose neighbors left
        # must regain neighbors via periodic re-announce.
        config = base_config(
            arrival_rate=2.0, announce_interval=2.0, max_time=80.0
        )
        swarm = Swarm(config)
        swarm.setup()
        swarm.engine.run_until(config.max_time)
        leechers = list(swarm.tracker.leechers())
        if len(leechers) > 5:
            # Nearly everyone should hold a healthy neighbor set.
            fractions = [
                len(p.neighbors) / config.ns_size for p in leechers
            ]
            assert np.median(fractions) > 0.5
