"""Tests for connection maintenance and formation."""

import pytest

from repro.errors import ParameterError
from repro.sim.bitfield import Bitfield
from repro.sim.choking import drop_stale_connections, fill_open_slots
from repro.sim.peer import Peer
from repro.sim.peer_selection import potential_set_sizes
from repro.sim.tracker import Tracker


@pytest.fixture
def swarm(rng):
    tracker = Tracker(ns_size=20, rng=rng)

    def spawn(pieces):
        peer = Peer(tracker.new_peer_id(), 6)
        peer.bitfield = Bitfield.from_pieces(6, pieces)
        tracker.register(peer)
        return peer

    return tracker, spawn


def connect(a, b):
    a.partners.add(b.peer_id)
    b.partners.add(a.peer_id)
    a.neighbors.add(b.peer_id)
    b.neighbors.add(a.peer_id)


class TestDropStale:
    def test_keeps_mutually_interested(self, swarm, rng):
        tracker, spawn = swarm
        a, b = spawn([0]), spawn([1])
        connect(a, b)
        dropped = drop_stale_connections([a, b], tracker, rng)
        assert dropped == 0
        assert b.peer_id in a.partners

    def test_drops_exhausted(self, swarm, rng):
        tracker, spawn = swarm
        a, b = spawn([0, 1]), spawn([0, 1])
        connect(a, b)
        dropped = drop_stale_connections([a, b], tracker, rng)
        assert dropped == 1
        assert not a.partners and not b.partners

    def test_exogenous_failure(self, swarm, rng):
        tracker, spawn = swarm
        a, b = spawn([0]), spawn([1])
        connect(a, b)
        dropped = drop_stale_connections(
            [a, b], tracker, rng, failure_prob=1.0
        )
        assert dropped == 1

    def test_departed_partner_cleaned(self, swarm, rng):
        tracker, spawn = swarm
        a = spawn([0])
        a.partners.add(777)  # partner no longer registered
        dropped = drop_stale_connections([a], tracker, rng)
        assert dropped == 1
        assert not a.partners

    def test_non_strict_keeps_one_directional(self, swarm, rng):
        tracker, spawn = swarm
        a, b = spawn([0]), spawn([0, 1])
        connect(a, b)
        assert drop_stale_connections([a, b], tracker, rng, strict_tft=False) == 0
        assert drop_stale_connections([a, b], tracker, rng, strict_tft=True) == 1

    def test_each_pair_checked_once(self, swarm, rng):
        tracker, spawn = swarm
        a, b = spawn([0, 1]), spawn([0, 1])
        connect(a, b)
        # With a 50% exogenous failure probability, double-checking the
        # pair would bias the drop rate; the count is either 0 or 1.
        dropped = drop_stale_connections([a, b], tracker, rng, failure_prob=0.5)
        assert dropped == 1  # interest exhausted anyway


class TestFillOpenSlots:
    def _potential(self, peers, tracker):
        return potential_set_sizes(peers, tracker)

    def test_greedy_fills_up_to_k(self, swarm, rng):
        tracker, spawn = swarm
        center = spawn([0])
        others = [spawn([1 + i]) for i in range(4)]
        for other in others:
            center.neighbors.add(other.peer_id)
            other.neighbors.add(center.peer_id)
        peers = [center] + others
        formed = fill_open_slots(
            peers, self._potential(peers, tracker), tracker, 2, rng,
            matching="greedy",
        )
        assert len(center.partners) == 2
        assert formed >= 2

    def test_symmetry(self, swarm, rng):
        tracker, spawn = swarm
        a, b = spawn([0]), spawn([1])
        a.neighbors.add(b.peer_id)
        b.neighbors.add(a.peer_id)
        peers = [a, b]
        fill_open_slots(peers, self._potential(peers, tracker), tracker, 2, rng)
        assert (b.peer_id in a.partners) == (a.peer_id in b.partners)

    def test_setup_prob_zero_forms_none(self, swarm, rng):
        tracker, spawn = swarm
        a, b = spawn([0]), spawn([1])
        a.neighbors.add(b.peer_id)
        b.neighbors.add(a.peer_id)
        peers = [a, b]
        formed = fill_open_slots(
            peers, self._potential(peers, tracker), tracker, 2, rng,
            setup_prob=0.0,
        )
        assert formed == 0

    def test_busy_candidates_blind_waste(self, swarm, rng):
        tracker, spawn = swarm
        a, b, c = spawn([0]), spawn([1]), spawn([2])
        for x, y in [(a, b), (a, c), (b, c)]:
            x.neighbors.add(y.peer_id)
            y.neighbors.add(x.peer_id)
        # b and c are saturated with each other at k=1.
        b.partners.add(c.peer_id)
        c.partners.add(b.peer_id)
        peers = [a, b, c]
        formed = fill_open_slots(
            peers, self._potential(peers, tracker), tracker, 1, rng,
            matching="blind",
        )
        assert formed == 0
        assert not a.partners

    def test_never_exceeds_k(self, swarm, rng):
        tracker, spawn = swarm
        center = spawn([0])
        others = [spawn([1 + (i % 5)]) for i in range(10)]
        for other in others:
            center.neighbors.add(other.peer_id)
            other.neighbors.add(center.peer_id)
        peers = [center] + others
        for _ in range(5):
            fill_open_slots(
                peers, self._potential(peers, tracker), tracker, 3, rng
            )
        assert len(center.partners) <= 3

    def test_unknown_matching_rejected(self, swarm, rng):
        tracker, spawn = swarm
        a = spawn([0])
        with pytest.raises(ParameterError):
            fill_open_slots([a], {}, tracker, 2, rng, matching="magic")

    def test_empty_potential_no_ops(self, swarm, rng):
        tracker, spawn = swarm
        a = spawn([0])
        formed = fill_open_slots([a], {a.peer_id: []}, tracker, 2, rng)
        assert formed == 0
