"""Tests for potential sets and encounter candidates."""

import pytest

from repro.sim.bitfield import Bitfield
from repro.sim.peer import Peer
from repro.sim.peer_selection import (
    is_bootstrap_trapped,
    potential_set,
    potential_set_sizes,
)
from repro.sim.tracker import Tracker


@pytest.fixture
def swarm(rng):
    tracker = Tracker(ns_size=10, rng=rng)

    def spawn(pieces, *, is_seed=False):
        peer = Peer(tracker.new_peer_id(), 6, is_seed=is_seed)
        if not is_seed:
            peer.bitfield = Bitfield.from_pieces(6, pieces)
        tracker.register(peer)
        return peer

    return tracker, spawn


class TestPotentialSet:
    def test_mutual_interest_required(self, swarm):
        tracker, spawn = swarm
        center = spawn([0])
        tradable = spawn([1])
        subset = spawn([0])      # identical: nothing to swap
        superset = spawn([0, 1])  # center has nothing for it
        for other in (tradable, subset, superset):
            center.neighbors.add(other.peer_id)
        assert potential_set(center, tracker) == [tradable.peer_id]

    def test_seeds_excluded(self, swarm):
        tracker, spawn = swarm
        center = spawn([0])
        seed = spawn([], is_seed=True)
        center.neighbors.add(seed.peer_id)
        assert potential_set(center, tracker) == []

    def test_non_strict_one_directional(self, swarm):
        tracker, spawn = swarm
        center = spawn([0])
        superset = spawn([0, 1])
        center.neighbors.add(superset.peer_id)
        assert potential_set(center, tracker, strict_tft=True) == []
        assert potential_set(center, tracker, strict_tft=False) == [
            superset.peer_id
        ]

    def test_departed_neighbors_skipped(self, swarm):
        tracker, spawn = swarm
        center = spawn([0])
        center.neighbors.add(12345)
        assert potential_set(center, tracker) == []

    def test_empty_peer_has_no_potential(self, swarm):
        tracker, spawn = swarm
        center = spawn([])
        rich = spawn([0, 1, 2])
        center.neighbors.add(rich.peer_id)
        assert potential_set(center, tracker) == []

    def test_batch_sizes(self, swarm):
        tracker, spawn = swarm
        a = spawn([0])
        b = spawn([1])
        a.neighbors.add(b.peer_id)
        b.neighbors.add(a.peer_id)
        result = potential_set_sizes([a, b], tracker)
        assert result == {a.peer_id: [b.peer_id], b.peer_id: [a.peer_id]}


class TestBootstrapTrapped:
    def test_trapped_with_one_piece_no_potential(self, swarm):
        _tracker, spawn = swarm
        peer = spawn([0])
        assert is_bootstrap_trapped(peer, 0)

    def test_not_trapped_with_potential(self, swarm):
        _tracker, spawn = swarm
        peer = spawn([0])
        assert not is_bootstrap_trapped(peer, 2)

    def test_not_trapped_with_many_pieces(self, swarm):
        _tracker, spawn = swarm
        peer = spawn([0, 1, 2])
        assert not is_bootstrap_trapped(peer, 0)  # that's the last phase

    def test_seed_never_trapped(self, swarm):
        _tracker, spawn = swarm
        seed = spawn([], is_seed=True)
        assert not is_bootstrap_trapped(seed, 0)
