"""Property-based fuzzing of the sharded swarm backend.

Hypothesis draws random configurations from the soa-supported subset
plus sharding knobs (shard count, migration mix, fault plans) and the
suite checks the cross-shard structural invariants on coordinated
snapshot documents:

* peer-id conservation — no id is lost or duplicated across shard
  boundaries or in-flight migration batches, and ids never exceed the
  coordinator's allocation watermark;
* global ``piece_counts`` consistency — the coordinator's per-shard
  ledger sums to exactly the replication counts recomputed from every
  shard's packed bitfields plus the in-flight rows;
* alive/seed mask consistency — per-shard populations match the store
  masks, globally and per document;
* deterministic fingerprints for fixed seeds, with and without fault
  plans, and across mid-run re-sharding.
"""

import os
import signal
from multiprocessing import shared_memory

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.faults.plan import FaultPlan
from repro.sim.config import SimConfig
from repro.sim.sharded import restore_sharded_swarm
from repro.sim.soa import popcount_rows, words_for
from repro.sim.swarm import Swarm


@st.composite
def sharded_configs(draw):
    """Random configurations within the sharded-supported subset."""
    return SimConfig(
        num_pieces=draw(st.integers(min_value=3, max_value=25)),
        max_conns=draw(st.integers(min_value=1, max_value=4)),
        ns_size=draw(st.integers(min_value=2, max_value=10)),
        arrival_process=draw(st.sampled_from(["poisson", "flash", "none"])),
        arrival_rate=draw(st.floats(min_value=0.0, max_value=2.0)),
        flash_size=draw(st.integers(min_value=0, max_value=12)),
        initial_leechers=draw(st.integers(min_value=0, max_value=24)),
        initial_distribution=draw(
            st.sampled_from(["empty", "uniform", "skewed"])
        ),
        initial_fill=draw(st.floats(min_value=0.0, max_value=1.0)),
        num_seeds=draw(st.integers(min_value=0, max_value=3)),
        seed_upload_slots=draw(st.integers(min_value=0, max_value=3)),
        completed_become_seeds=draw(st.sampled_from([0.0, 5.0])),
        abort_rate=draw(st.floats(min_value=0.0, max_value=0.1)),
        piece_selection=draw(
            st.sampled_from(["rarest", "strict-rarest", "random"])
        ),
        optimistic_unchoke_prob=draw(st.floats(min_value=0.0, max_value=1.0)),
        connection_failure_prob=draw(st.floats(min_value=0.0, max_value=0.5)),
        connection_setup_prob=draw(st.floats(min_value=0.0, max_value=1.0)),
        max_time=10.0,
        seed=draw(st.integers(min_value=0, max_value=10_000)),
    )


def _document_peers(document):
    """(ids, is_seed, bits) across every shard doc and in-flight batch."""
    words = words_for(SimConfig.from_dict(document["config"]).num_pieces)
    ids, seeds, bits = [], [], []
    for shard_doc in document["shard_docs"]:
        block = shard_doc["store"]
        ids.extend(int(v) for v in block["peer_id"])
        seeds.extend(bool(v) for v in block["is_seed"])
        bits.extend([int(w) for w in row] for row in block["bits"])
    for rows in document["coordinator"]["pending_rows"]:
        if rows is not None:
            ids.extend(int(v) for v in rows["peer_id"])
            seeds.extend(bool(v) for v in rows["is_seed"])
            bits.extend([int(w) for w in row] for row in rows["bits"])
    bits_array = (
        np.asarray(bits, dtype=np.uint64).reshape(len(ids), words)
        if ids
        else np.zeros((0, words), dtype=np.uint64)
    )
    return (
        np.asarray(ids, dtype=np.int64),
        np.asarray(seeds, dtype=bool),
        bits_array,
    )


def _check_document_invariants(document):
    config = SimConfig.from_dict(document["config"])
    coordinator = document["coordinator"]
    ids, seeds, bits = _document_peers(document)

    # Peer-id conservation: unique ids, all under the allocation mark.
    assert np.unique(ids).size == ids.size
    if ids.size:
        assert ids.min() >= 0
        assert ids.max() < int(coordinator["global_next_id"])

    # Global replication ledger == recomputed sum over every shard's
    # packed bits plus the in-flight migration rows.
    ledger = np.zeros(config.num_pieces, dtype=np.int64)
    for state in coordinator["shard_state"]:
        ledger += np.asarray(state["piece_counts"], dtype=np.int64)
    from repro.sim.soa import unpack_rows

    recomputed = (
        unpack_rows(bits, config.num_pieces).sum(axis=0)
        if ids.size
        else np.zeros(config.num_pieces, dtype=np.int64)
    )
    np.testing.assert_array_equal(ledger, recomputed)

    # Alive/seed mask consistency, per shard document and globally.
    for shard_doc in document["shard_docs"]:
        block = shard_doc["store"]
        sw = shard_doc["swarm"]
        assert sw["n_leech"] + sw["n_seeds"] == len(block["slots"])
        assert sum(bool(v) for v in block["is_seed"]) == sw["n_seeds"]
        if len(block["slots"]):
            held = np.array(
                [[int(w) for w in row] for row in block["bits"]],
                dtype=np.uint64,
            )
            np.testing.assert_array_equal(
                np.asarray(block["counts"], dtype=np.int64),
                popcount_rows(held),
            )
    total_ledger = sum(
        state["n_leech"] + state["n_seeds"]
        for state in coordinator["shard_state"]
    )
    assert total_ledger == ids.size
    assert int(seeds.sum()) == sum(
        state["n_seeds"] for state in coordinator["shard_state"]
    )


@given(
    config=sharded_configs(),
    shards=st.integers(min_value=2, max_value=4),
    mix=st.floats(min_value=0.0, max_value=0.3),
)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_snapshot_invariants_under_random_configs(config, shards, mix):
    swarm = Swarm(config, backend="sharded", shards=shards, shard_mix=mix)
    try:
        for _ in range(4):
            if not swarm.step_round():
                break
        _check_document_invariants(swarm.snapshot())
    finally:
        swarm.close()


@given(
    config=sharded_configs(),
    shards=st.integers(min_value=2, max_value=3),
    plan_seed=st.integers(0, 100),
)
@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_snapshot_invariants_under_faults(config, shards, plan_seed):
    plan = FaultPlan(
        churn_hazard=0.02,
        connection_break_prob=0.1,
        handshake_failure_prob=0.2,
        salt=plan_seed,
    )
    swarm = Swarm(
        config, backend="sharded", shards=shards, shard_mix=0.1, faults=plan
    )
    try:
        for _ in range(4):
            if not swarm.step_round():
                break
        _check_document_invariants(swarm.snapshot())
    finally:
        swarm.close()


@given(
    config=sharded_configs(),
    shards=st.integers(min_value=2, max_value=4),
)
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_migration_conserves_peer_ids_between_rounds(config, shards):
    """Between two snapshots, departures are exactly the recorded
    completions: ``alive(t2) + completed == alive(t1) + arrivals``.

    Aborts and churn are disabled and completions depart immediately
    (``completed_become_seeds=0``), so the only ways a peer id can
    appear or vanish are coordinator-assigned arrivals and recorded
    completions — migration itself must conserve the id multiset.
    """
    config = config.with_changes(abort_rate=0.0, completed_become_seeds=0.0)
    swarm = Swarm(config, backend="sharded", shards=shards, shard_mix=0.25)
    try:
        for _ in range(2):
            if not swarm.step_round():
                break
        first = swarm.snapshot()
        completed_before = len(swarm.metrics.completed)
        for _ in range(3):
            if not swarm.step_round():
                break
        second = swarm.snapshot()
        departed = {
            int(record.peer_id)
            for record in swarm.metrics.completed[completed_before:]
        }
        ids_before = set(
            int(v) for v in _document_peers(first)[0]
        )
        ids_after = set(
            int(v) for v in _document_peers(second)[0]
        )
        arrivals = set(range(
            int(first["coordinator"]["global_next_id"]),
            int(second["coordinator"]["global_next_id"]),
        ))
        assert ids_after | departed == ids_before | arrivals
        assert ids_after.isdisjoint(departed)
    finally:
        swarm.close()


@given(
    config=sharded_configs(),
    shards=st.integers(min_value=2, max_value=3),
    new_shards=st.integers(min_value=2, max_value=4),
)
@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_mid_run_resharding_conserves_state(config, shards, new_shards):
    """Checkpoint at N, repartition to M: ids and pieces carry over
    exactly, the resumed run completes, and it is deterministic."""
    swarm = Swarm(config, backend="sharded", shards=shards, shard_mix=0.1)
    try:
        for _ in range(3):
            if not swarm.step_round():
                break
        document = swarm.snapshot()
    finally:
        swarm.close()

    ids_before, seeds_before, _ = _document_peers(document)
    resharded = restore_sharded_swarm(document, shards=new_shards)
    try:
        second = resharded.snapshot()
    finally:
        resharded.close()
    _check_document_invariants(second)
    ids_after, seeds_after, _ = _document_peers(second)
    assert sorted(ids_before.tolist()) == sorted(ids_after.tolist())
    assert int(seeds_before.sum()) == int(seeds_after.sum())

    first_run = restore_sharded_swarm(document, shards=new_shards).run()
    second_run = restore_sharded_swarm(document, shards=new_shards).run()
    assert first_run.fingerprint() == second_run.fingerprint()


@given(config=sharded_configs(), shards=st.integers(min_value=1, max_value=3))
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_sharded_runs_are_deterministic_per_seed(config, shards):
    def run():
        return Swarm(
            config, backend="sharded", shards=shards, shard_mix=0.1
        ).run().fingerprint()

    assert run() == run()


# ----------------------------------------------------------------------
# Shared-memory fabric lifecycle: no segment may outlive its swarm.
# ----------------------------------------------------------------------
def _segment_exists(name: str) -> bool:
    """Whether ``name`` still exists in the OS shm namespace."""
    try:
        probe = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    probe.close()
    return True


def _lifecycle_config(**overrides) -> SimConfig:
    base = dict(
        num_pieces=8,
        max_conns=2,
        ns_size=4,
        arrival_process="poisson",
        arrival_rate=0.5,
        initial_leechers=12,
        initial_distribution="uniform",
        initial_fill=0.3,
        num_seeds=2,
        seed_upload_slots=2,
        piece_selection="rarest",
        max_time=10.0,
        seed=7,
    )
    base.update(overrides)
    return SimConfig(**base)


def test_fabric_segments_unlinked_after_normal_close():
    swarm = Swarm(_lifecycle_config(), backend="sharded", shards=2)
    assert swarm.step_round()
    names = swarm.fabric_segment_names()
    assert len(names) == 1 + 3 * 2  # broadcast + per-shard triples
    assert all(_segment_exists(name) for name in names)
    swarm.close()
    for name in names:
        assert not _segment_exists(name)


def test_fabric_segments_recreated_after_sigkilled_worker():
    """Recovery tears the whole fabric down and builds a fresh one; the
    dead generation's segments must be gone the moment recovery ends."""
    swarm = Swarm(_lifecycle_config(), backend="sharded", shards=2)
    try:
        for _ in range(3):
            assert swarm.step_round()
        old_names = swarm.fabric_segment_names()
        os.kill(swarm.worker_pids()[0], signal.SIGKILL)
        assert swarm.step_round()  # notices the death, recovers, steps
        assert swarm.worker_restarts == 1
        new_names = swarm.fabric_segment_names()
        assert set(old_names).isdisjoint(new_names)
        for name in old_names:
            assert not _segment_exists(name)
        assert all(_segment_exists(name) for name in new_names)
    finally:
        swarm.close()
    for name in new_names:
        assert not _segment_exists(name)


def test_fabric_segments_unlinked_after_coordinator_exception():
    """``run()`` must clean the fabric even when it dies mid-flight —
    here via restart-budget exhaustion with every worker SIGKILLed."""
    swarm = Swarm(
        _lifecycle_config(), backend="sharded", shards=2,
        max_worker_restarts=0,
    )
    assert swarm.step_round()
    names = swarm.fabric_segment_names()
    assert all(_segment_exists(name) for name in names)
    for pid in swarm.worker_pids():
        os.kill(pid, signal.SIGKILL)
    with pytest.raises(SimulationError, match="restart budget"):
        swarm.run()
    for name in names:
        assert not _segment_exists(name)


def test_fabric_growth_unlinks_replaced_segments():
    """A migration burst beyond the initial row capacity grows blocks
    in place; the replaced segments disappear immediately."""
    config = _lifecycle_config(
        initial_leechers=400, arrival_process="none", arrival_rate=0.0,
        max_time=4.0,
    )
    swarm = Swarm(config, backend="sharded", shards=2, shard_mix=0.5)
    try:
        for _ in range(2):
            assert swarm.step_round()
        assert swarm._fabric.grows >= 1
        names = swarm.fabric_segment_names()
        assert all(_segment_exists(name) for name in names)
    finally:
        swarm.close()
    for name in names:
        assert not _segment_exists(name)
