"""Tests for sub-piece (block) transfer granularity."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.sim.config import SimConfig
from repro.sim.swarm import Swarm, run_swarm
from repro.stability.entropy import replication_degrees


def config(blocks, **over):
    base = dict(
        num_pieces=20, max_conns=3, ns_size=12,
        initial_leechers=25, initial_distribution="uniform",
        initial_fill=0.5, arrival_rate=1.0, num_seeds=1,
        seed_upload_slots=2, max_time=80.0, seed=6,
        blocks_per_piece=blocks,
    )
    base.update(over)
    return SimConfig(**base)


class TestBlockGranularity:
    def test_validation(self):
        with pytest.raises(ParameterError):
            config(0)

    def test_downloads_complete_with_blocks(self):
        result = run_swarm(config(4))
        assert len(result.metrics.completed) > 0

    def test_blocks_slow_downloads(self):
        whole = run_swarm(config(1))
        blocky = run_swarm(config(4))
        assert (
            blocky.metrics.mean_download_duration()
            > whole.metrics.mean_download_duration()
        )

    def test_first_piece_latency_grows(self):
        """The bootstrap cost of assembling the first piece block by
        block — the paper's motivation for distinguishing blocks."""
        def mean_first(result):
            firsts = [
                c.stats.piece_times[0] - c.joined_at
                for c in result.metrics.completed
                if c.stats.piece_times
            ]
            return float(np.mean(firsts))

        whole = run_swarm(config(1))
        blocky = run_swarm(config(4))
        assert mean_first(blocky) > mean_first(whole)

    def test_partial_pieces_not_in_replication_counts(self):
        swarm = Swarm(config(4))
        swarm.setup()
        swarm.engine.run_until(30.0)
        bitfields = [p.bitfield for p in swarm.tracker.peers()]
        expected = replication_degrees(bitfields, 20)
        np.testing.assert_array_equal(swarm.piece_counts, expected)

    def test_partial_progress_disjoint_from_bitfield(self):
        swarm = Swarm(config(4))
        swarm.setup()
        swarm.engine.run_until(30.0)
        for peer in swarm.tracker.leechers():
            for piece, received in peer.block_progress.items():
                assert not peer.bitfield.has(piece)
                assert 1 <= received < 4

    def test_block_count_conservation(self):
        """Every completed download received exactly B verified pieces."""
        result = run_swarm(config(4))
        for download in result.metrics.completed:
            # piece_times only records completed (verified) pieces; a
            # pre-filled initial peer records the remainder.
            assert len(download.stats.piece_times) <= 20

    def test_whole_piece_mode_has_no_progress_state(self):
        swarm = Swarm(config(1))
        swarm.setup()
        swarm.engine.run_until(30.0)
        for peer in swarm.tracker.peers():
            assert peer.block_progress == {}
