"""Property-based invariants of the simulator under fault injection.

Hypothesis draws random (small) configurations *and* random FaultPlans
— every fault kind, intensities up to saturation, tracker outages — and
checks that no injected failure can break the simulator's structural
invariants:

* conservation: replication counts match the registry exactly, so no
  peer ever holds a piece it never received, and departures retract
  exactly the pieces the departing peer held;
* per-peer piece counts never exceed ``B``; acquisition logs are
  monotone in time;
* the event clock is monotone across every dispatch (observed through
  the same pre-dispatch hook the injector uses);
* the run terminates at its horizon;
* relations stay symmetric and within capacity;
* a zero-intensity plan is bit-identical to no plan at all.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults import FaultPlan, OutageWindow
from repro.sim.config import SimConfig
from repro.sim.swarm import Swarm
from repro.stability.entropy import replication_degrees

MAX_TIME = 15.0


@st.composite
def fault_plans(draw):
    outages = []
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        start = draw(st.floats(min_value=0.0, max_value=MAX_TIME))
        length = draw(st.floats(min_value=0.5, max_value=MAX_TIME))
        outages.append(OutageWindow(
            start, start + length, draw(st.sampled_from(["empty", "stale"]))
        ))
    return FaultPlan(
        churn_hazard=draw(st.floats(min_value=0.0, max_value=0.3)),
        connection_break_prob=draw(st.floats(min_value=0.0, max_value=1.0)),
        handshake_failure_prob=draw(st.floats(min_value=0.0, max_value=1.0)),
        shake_failure_prob=draw(st.floats(min_value=0.0, max_value=1.0)),
        outages=tuple(outages),
        salt=draw(st.integers(min_value=0, max_value=3)),
    )


@st.composite
def swarm_configs(draw):
    return SimConfig(
        num_pieces=draw(st.integers(min_value=3, max_value=20)),
        max_conns=draw(st.integers(min_value=1, max_value=4)),
        ns_size=draw(st.integers(min_value=2, max_value=10)),
        arrival_process=draw(st.sampled_from(["poisson", "flash", "none"])),
        arrival_rate=draw(st.floats(min_value=0.0, max_value=2.0)),
        flash_size=draw(st.integers(min_value=0, max_value=8)),
        initial_leechers=draw(st.integers(min_value=0, max_value=15)),
        initial_distribution=draw(st.sampled_from(["empty", "uniform"])),
        initial_fill=draw(st.floats(min_value=0.0, max_value=1.0)),
        num_seeds=draw(st.integers(min_value=0, max_value=2)),
        seed_upload_slots=draw(st.integers(min_value=0, max_value=3)),
        completed_become_seeds=draw(st.sampled_from([0.0, 5.0])),
        abort_rate=draw(st.floats(min_value=0.0, max_value=0.1)),
        piece_selection=draw(st.sampled_from(["rarest", "random"])),
        strict_tft=draw(st.booleans()),
        optimistic_unchoke_prob=draw(st.floats(min_value=0.0, max_value=1.0)),
        connection_failure_prob=draw(st.floats(min_value=0.0, max_value=0.5)),
        connection_setup_prob=draw(st.floats(min_value=0.0, max_value=1.0)),
        matching=draw(st.sampled_from(["blind", "greedy"])),
        shake_threshold=draw(st.sampled_from([None, 0.8])),
        max_time=MAX_TIME,
        seed=draw(st.integers(min_value=0, max_value=10_000)),
    )


@given(config=swarm_configs(), plan=fault_plans())
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_invariants_hold_under_random_fault_plans(config, plan):
    swarm = Swarm(config, faults=plan)
    clock = []
    swarm.engine.add_pre_dispatch_hook(lambda t, e: clock.append(t))
    swarm.setup()
    swarm.engine.run_until(config.max_time)
    tracker = swarm.tracker

    # Termination: the horizon was reached, nothing left before it.
    assert swarm.engine.now >= config.max_time
    peek = swarm.engine.peek_time()
    assert peek is None or peek > config.max_time

    # The event clock is monotone across every dispatch.
    assert all(a <= b for a, b in zip(clock, clock[1:]))

    # Conservation: registry counts mirror the surviving bitfields, so
    # no peer holds a piece it never received (acquisitions are the only
    # way counts grow; churned departures retract exactly their pieces).
    bitfields = [p.bitfield for p in tracker.peers()]
    expected = replication_degrees(bitfields, config.num_pieces)
    np.testing.assert_array_equal(swarm.piece_counts, expected)
    assert (swarm.piece_counts >= 0).all()

    registered_ids = {p.peer_id for p in tracker.peers()}
    for peer in tracker.peers():
        # Piece counts never exceed B.
        assert peer.bitfield.count <= config.num_pieces
        # Acquisition logs are monotone in time.
        times = peer.stats.piece_times
        assert times == sorted(times)
        # Relations are symmetric, reference live peers, respect k.
        assert peer.neighbors <= registered_ids
        assert peer.partners <= registered_ids
        for neighbor_id in peer.neighbors:
            assert peer.peer_id in tracker.get(neighbor_id).neighbors
        for partner_id in peer.partners:
            assert peer.peer_id in tracker.get(partner_id).partners
        if not peer.is_seed:
            assert len(peer.partners) <= config.max_conns

    # The injector only ever fired faults the plan allows, and every
    # churned peer went through the abort bookkeeping.
    stats = swarm.fault_injector.stats
    assert swarm.metrics.abort_count() >= stats.peers_churned
    if plan.churn_hazard == 0.0:
        assert stats.peers_churned == 0
    if plan.connection_break_prob == 0.0:
        assert stats.connections_broken == 0
    if plan.handshake_failure_prob == 0.0:
        assert stats.handshakes_failed == 0
    if plan.shake_failure_prob == 0.0 or config.shake_threshold is None:
        assert stats.shakes_failed == 0
    if not plan.outages:
        assert stats.announces_empty == 0
        assert stats.announces_stale == 0


@given(config=swarm_configs(), salt=st.integers(min_value=0, max_value=5))
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_zero_intensity_plan_is_bit_identical_to_no_plan(config, salt):
    def run(faults):
        swarm = Swarm(config, faults=faults)
        swarm.setup()
        swarm.engine.run_until(config.max_time)
        return (
            swarm.piece_counts.tolist(),
            sorted(p.peer_id for p in swarm.tracker.peers()),
            sorted(
                (p.peer_id, p.bitfield.count, tuple(sorted(p.partners)))
                for p in swarm.tracker.peers()
            ),
            len(swarm.metrics.completed),
            swarm.connection_stats.__dict__.copy(),
            list(swarm.tracker.population_log),
        )

    assert run(None) == run(FaultPlan(salt=salt))


@given(config=swarm_configs(), plan=fault_plans())
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_faulted_runs_are_deterministic_per_seed(config, plan):
    def run():
        swarm = Swarm(config, faults=plan)
        swarm.setup()
        swarm.engine.run_until(config.max_time)
        return (
            swarm.piece_counts.tolist(),
            sorted(p.peer_id for p in swarm.tracker.peers()),
            swarm.fault_injector.stats.to_dict(),
        )

    assert run() == run()
