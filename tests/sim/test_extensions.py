"""Tests for the simulator extensions: aborts and heterogeneous bandwidth."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.sim.config import SimConfig
from repro.sim.swarm import Swarm, run_swarm
from repro.stability.entropy import replication_degrees


def seeded_config(**over):
    base = dict(
        num_pieces=40, max_conns=4, ns_size=20,
        initial_leechers=40, initial_distribution="uniform",
        initial_fill=0.5, arrival_rate=2.0, num_seeds=1,
        seed_upload_slots=2, max_time=80.0, seed=5,
    )
    base.update(over)
    return SimConfig(**base)


class TestAbortRate:
    def test_aborts_recorded(self):
        result = run_swarm(seeded_config(abort_rate=0.05))
        assert result.metrics.abort_count() > 0

    def test_no_aborts_by_default(self):
        result = run_swarm(seeded_config())
        assert result.metrics.abort_count() == 0

    def test_aborts_reduce_completions(self):
        calm = run_swarm(seeded_config())
        churny = run_swarm(seeded_config(abort_rate=0.08))
        assert len(churny.metrics.completed) < len(calm.metrics.completed)

    def test_abort_records_progress(self):
        result = run_swarm(seeded_config(abort_rate=0.05))
        for _time, pieces in result.metrics.aborted:
            assert 0 <= pieces <= 40

    def test_piece_counts_stay_consistent(self):
        swarm = Swarm(seeded_config(abort_rate=0.05))
        swarm.setup()
        swarm.engine.run_until(40.0)
        bitfields = [p.bitfield for p in swarm.tracker.peers()]
        expected = replication_degrees(bitfields, 40)
        np.testing.assert_array_equal(swarm.piece_counts, expected)

    def test_validation(self):
        with pytest.raises(ParameterError):
            seeded_config(abort_rate=1.5)


class TestBandwidthClasses:
    def test_classes_assigned(self):
        swarm = Swarm(seeded_config(bandwidth_classes=((0.5, 1), (0.5, 4))))
        swarm.setup()
        capacities = {p.upload_capacity for p in swarm.tracker.leechers()}
        assert capacities <= {1, 4}
        assert len(capacities) == 2  # both classes present in 40 peers

    def test_seeds_unconstrained(self):
        swarm = Swarm(seeded_config(bandwidth_classes=((1.0, 1),)))
        swarm.setup()
        for seed in swarm.tracker.seeds():
            assert seed.upload_capacity is None

    def test_homogeneous_default(self):
        swarm = Swarm(seeded_config())
        swarm.setup()
        assert all(
            p.upload_capacity is None for p in swarm.tracker.leechers()
        )

    def test_tft_couples_directions(self):
        """Slow uploaders download slower under strict tit-for-tat."""
        result = run_swarm(
            seeded_config(
                num_pieces=60, initial_leechers=60, max_time=120.0,
                bandwidth_classes=((0.5, 1), (0.5, 4)),
            )
        )
        slow = [c.duration for c in result.metrics.completed
                if c.upload_capacity == 1]
        fast = [c.duration for c in result.metrics.completed
                if c.upload_capacity == 4]
        assert slow and fast
        assert np.mean(slow) > np.mean(fast)

    def test_capacity_caps_throughput(self):
        # With capacity 1 everywhere, nobody can receive more than ~1
        # piece per round on average (swaps need both budgets).
        result = run_swarm(
            seeded_config(bandwidth_classes=((1.0, 1),), max_time=60.0)
        )
        for download in result.metrics.completed[:20]:
            times = download.stats.piece_times
            if len(times) < 10:
                continue
            span = times[-1] - times[0]
            if span > 0:
                rate = (len(times) - 1) / span
                # Budget 1 upload/round allows at most ~1 swap + 1
                # seed/donation grant per round.
                assert rate <= 2.5

    @pytest.mark.parametrize(
        "classes",
        [
            (),
            ((0.5, 1),),                 # fractions must sum to 1
            ((1.0, 0),),                 # capacity must be >= 1
            ((-0.5, 1), (1.5, 2)),       # fractions must be > 0
            ((1.0, 1, 3),),              # entries are pairs
        ],
    )
    def test_validation(self, classes):
        with pytest.raises(ParameterError):
            seeded_config(bandwidth_classes=classes)
