"""Tests for peer state and statistics."""

import pytest

from repro.sim.peer import Peer


class TestPeerBasics:
    def test_leecher_starts_empty(self):
        peer = Peer(1, 10)
        assert peer.num_pieces_held == 0
        assert not peer.is_seed
        assert not peer.is_complete

    def test_seed_starts_full(self):
        seed = Peer(2, 10, is_seed=True)
        assert seed.is_complete
        assert seed.num_pieces_held == 10

    def test_completion_ratio(self):
        peer = Peer(1, 10)
        peer.bitfield.add(0)
        peer.bitfield.add(1)
        assert peer.completion_ratio() == pytest.approx(0.2)

    def test_open_slots(self):
        peer = Peer(1, 10)
        peer.partners = {5, 6}
        assert peer.open_slots(4) == 2
        assert peer.open_slots(2) == 0
        assert peer.open_slots(1) == 0  # never negative

    def test_repr(self):
        peer = Peer(3, 10)
        text = repr(peer)
        assert "id=3" in text
        assert "leecher" in text

    def test_hash_and_eq_by_id(self):
        a = Peer(1, 10)
        b = Peer(1, 10)
        c = Peer(2, 10)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c


class TestRecording:
    def test_record_piece_tracks_times(self):
        peer = Peer(1, 3, joined_at=5.0)
        for piece, t in [(0, 6.0), (1, 7.0), (2, 8.0)]:
            peer.bitfield.add(piece)
            peer.record_piece(t)
        assert peer.stats.piece_times == [6.0, 7.0, 8.0]
        assert peer.stats.completed_at == 8.0
        assert peer.stats.download_duration() == pytest.approx(3.0)

    def test_incomplete_has_no_duration(self):
        peer = Peer(1, 3)
        assert peer.stats.download_duration() is None

    def test_round_recording_only_when_instrumented(self):
        plain = Peer(1, 5)
        plain.record_round(1.0, 3)
        assert plain.stats.potential_series == []

        instrumented = Peer(2, 5, instrumented=True)
        instrumented.record_round(1.0, 3)
        assert instrumented.stats.potential_series == [(1.0, 3)]
        assert instrumented.stats.connection_series == [(1.0, 0)]

    def test_connection_series_tracks_partners(self):
        peer = Peer(1, 5, instrumented=True)
        peer.partners = {9, 8}
        peer.record_round(2.0, 1)
        assert peer.stats.connection_series == [(2.0, 2)]
