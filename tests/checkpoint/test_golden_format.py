"""Golden fixture for checkpoint format v1 + corrupt-file rejection.

A committed binary ``.ckpt`` fixture (container v1, schema v1) pins the
on-disk format: a build that changes the header layout, the canonical
JSON encoding, or the snapshot schema fails loudly here and must bump
the relevant version (and regenerate) rather than silently emitting
checkpoints old readers mis-parse.  Regenerate after an *intentional*
format change with::

    REPRO_REGEN_GOLDENS=1 python -m pytest tests/checkpoint/test_golden_format.py

The rejection tests mutate copies of the fixture byte-by-byte: every
corruption mode (truncation, bit flips, wrong magic/version/length)
must surface as :class:`~repro.errors.CheckpointError`, never as a
silent restart or a garbage resume.
"""

import json
import os
from pathlib import Path

import pytest

from ckpt_helpers import replay_config, replay_fault_plan, snapshot_at_round
from repro.checkpoint import (
    CheckpointStore,
    read_checkpoint,
    write_checkpoint,
)
from repro.checkpoint.format import CHECKPOINT_MAGIC, _HEADER, dumps_payload
from repro.errors import CheckpointError
from repro.sim.swarm import Swarm

GOLDEN_DIR = Path(__file__).parent / "goldens"
GOLDEN_CKPT = GOLDEN_DIR / "checkpoint_v1.ckpt"
GOLDEN_JSON = GOLDEN_DIR / "checkpoint_v1.json"
REGEN = os.environ.get("REPRO_REGEN_GOLDENS") == "1"

#: The fixture snapshot: round 10 of the replay swarm with the full
#: fault plan attached (fault state exercises every schema section).
GOLDEN_ROUND = 10


def generate_document() -> dict:
    document = snapshot_at_round(
        replay_config(), GOLDEN_ROUND, faults=replay_fault_plan()
    )
    return json.loads(dumps_payload(document).decode("utf-8"))


@pytest.fixture(scope="module")
def golden() -> dict:
    if REGEN:
        GOLDEN_DIR.mkdir(exist_ok=True)
        document = generate_document()
        write_checkpoint(document, GOLDEN_CKPT)
        fingerprint = Swarm.resume(read_checkpoint(GOLDEN_CKPT)).run().fingerprint()
        GOLDEN_JSON.write_text(
            json.dumps(
                {"document": document, "resumed_fingerprint": fingerprint},
                sort_keys=True,
                indent=1,
            )
            + "\n"
        )
    assert GOLDEN_CKPT.exists() and GOLDEN_JSON.exists(), (
        "missing checkpoint golden fixtures; regenerate with "
        "REPRO_REGEN_GOLDENS=1"
    )
    return json.loads(GOLDEN_JSON.read_text())


# ----------------------------------------------------------------------
# Drift detection
# ----------------------------------------------------------------------
def test_container_reads_back_the_committed_document(golden):
    assert read_checkpoint(GOLDEN_CKPT) == golden["document"]


def test_current_schema_matches_committed_v1_document(golden):
    """Schema drift fails loudly.

    The snapshot this build emits for the fixture scenario must equal
    the committed v1 document *exactly* — any added, removed, renamed,
    or reordered field (or behavioural drift in the simulator itself)
    lands here, and the fix is a deliberate SCHEMA_VERSION bump plus
    regeneration, never a silent change.
    """
    assert generate_document() == golden["document"]


def test_committed_container_bytes_are_stable(golden):
    """Re-encoding the committed document reproduces the file's bytes."""
    payload = dumps_payload(golden["document"])
    assert GOLDEN_CKPT.read_bytes()[_HEADER.size:] == payload


def test_resume_from_golden_reproduces_pinned_fingerprint(golden):
    result = Swarm.resume(read_checkpoint(GOLDEN_CKPT)).run()
    assert result.fingerprint() == golden["resumed_fingerprint"]


# ----------------------------------------------------------------------
# Corrupt / truncated / alien files are rejected
# ----------------------------------------------------------------------
def _mutated(tmp_path, mutate) -> Path:
    raw = bytearray(GOLDEN_CKPT.read_bytes())
    out = tmp_path / "mutant.ckpt"
    out.write_bytes(bytes(mutate(raw)))
    return out


def test_missing_file_rejected(tmp_path):
    with pytest.raises(CheckpointError, match="does not exist"):
        read_checkpoint(tmp_path / "nope.ckpt")


def test_truncated_header_rejected(golden, tmp_path):
    path = _mutated(tmp_path, lambda raw: raw[: _HEADER.size - 3])
    with pytest.raises(CheckpointError, match="truncated"):
        read_checkpoint(path)


def test_truncated_payload_rejected(golden, tmp_path):
    path = _mutated(tmp_path, lambda raw: raw[:-10])
    with pytest.raises(CheckpointError):
        read_checkpoint(path)


def test_flipped_payload_byte_fails_crc(golden, tmp_path):
    def flip(raw):
        raw[_HEADER.size + len(raw) // 2] ^= 0xFF
        return raw

    with pytest.raises(CheckpointError, match="CRC"):
        read_checkpoint(_mutated(tmp_path, flip))


def test_alien_magic_rejected(golden, tmp_path):
    def stomp(raw):
        raw[: len(CHECKPOINT_MAGIC)] = b"NOTACKPT"
        return raw

    with pytest.raises(CheckpointError, match="magic"):
        read_checkpoint(_mutated(tmp_path, stomp))


def test_future_container_version_rejected(golden, tmp_path):
    def bump(raw):
        magic, version, length, crc = _HEADER.unpack_from(raw)
        _HEADER.pack_into(raw, 0, magic, version + 1, length, crc)
        return raw

    with pytest.raises(CheckpointError, match="version"):
        read_checkpoint(_mutated(tmp_path, bump))


def test_unsupported_schema_version_rejected(golden, tmp_path):
    document = dict(golden["document"])
    document["schema_version"] = 999
    with pytest.raises(CheckpointError, match="schema version"):
        Swarm.resume(document)


def test_structurally_gutted_document_rejected(golden):
    document = json.loads(json.dumps(golden["document"]))
    del document["engine"]
    with pytest.raises(CheckpointError, match="invalid"):
        Swarm.resume(document)


def test_store_rejects_path_escaping_keys(tmp_path):
    store = CheckpointStore(tmp_path)
    for bad in ("", "../up", "a/b", ".hidden", "-dash-first", "sp ace"):
        with pytest.raises(CheckpointError, match="invalid checkpoint key"):
            store.path_for(bad)
    assert store.path_for("stability-B3").name == "stability-B3.ckpt"


def test_store_lists_and_clears_checkpoints(golden, tmp_path):
    store = CheckpointStore(tmp_path / "fresh")
    assert list(store.keys()) == []
    assert store.clear() == 0  # directory does not even exist yet

    document = golden["document"]
    for key in ("b0-t1", "b0-t0"):
        write_checkpoint(document, store.path_for(key))
    # A stray temp file from a killed writer is swept by clear() too.
    (store.directory / "b0-t0.ckpt.tmp.12345").write_bytes(b"debris")

    assert list(store.keys()) == ["b0-t0", "b0-t1"]  # sorted
    assert store.exists("b0-t0") and not store.exists("b9-t9")
    assert store.clear() == 2
    assert list(store.keys()) == []
    assert not list(store.directory.glob("*.tmp.*"))
