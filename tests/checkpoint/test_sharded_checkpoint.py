"""Sharded checkpointing: worker death, resume, elastic re-sharding.

The sharded backend reuses the soa snapshot document as its per-shard
block and the PR-2 crash-recovery machinery for shard-worker death, so
the guarantees under test compose the two:

* a SIGKILLed shard worker rolls every shard back to the latest
  coordinated snapshot and replays — the finished run is
  fingerprint-identical to an uninterrupted one;
* an abandoned run resumes from its checkpoint file through
  ``run_swarm_with_checkpoints`` with an identical fingerprint;
* a checkpoint taken at ``shards=2`` resumes at ``shards=4``
  (checkpoint -> repartition -> resume) deterministically, conserving
  every peer id.
"""

import os
import signal

import pytest

from repro.checkpoint.format import read_checkpoint
from repro.checkpoint.store import run_swarm_with_checkpoints
from repro.errors import CheckpointError, SimulationError
from repro.sim.config import SimConfig
from repro.sim.sharded import restore_sharded_swarm
from repro.sim.swarm import Swarm, run_swarm


def sharded_config(**overrides):
    base = dict(
        num_pieces=30,
        max_conns=3,
        ns_size=12,
        arrival_process="poisson",
        arrival_rate=3.0,
        initial_leechers=60,
        initial_distribution="uniform",
        initial_fill=0.5,
        num_seeds=2,
        seed_upload_slots=2,
        piece_selection="rarest",
        max_time=25.0,
        seed=7,
    )
    base.update(overrides)
    return SimConfig(**base)


def test_sigkilled_shard_worker_resumes_fingerprint_identical(tmp_path):
    """The acceptance criterion: kill one worker mid-run, finish, and
    match the uninterrupted run byte-for-byte."""
    config = sharded_config()
    baseline = run_swarm(config, backend="sharded", shards=2)

    path = str(tmp_path / "shards.repro-ckpt")
    swarm = Swarm(
        config, backend="sharded", shards=2,
        checkpoint_every=5, checkpoint_path=path,
    )
    for _ in range(8):
        assert swarm.step_round()
    victim = swarm.worker_pids()[1]
    os.kill(victim, signal.SIGKILL)
    result = swarm.run()
    assert swarm.worker_restarts == 1
    assert result.fingerprint() == baseline.fingerprint()


def test_worker_death_without_checkpoints_replays_from_round_zero():
    config = sharded_config(max_time=15.0)
    baseline = run_swarm(config, backend="sharded", shards=2)

    swarm = Swarm(config, backend="sharded", shards=2)
    for _ in range(4):
        assert swarm.step_round()
    os.kill(swarm.worker_pids()[0], signal.SIGKILL)
    result = swarm.run()
    assert swarm.worker_restarts == 1
    assert result.fingerprint() == baseline.fingerprint()


def test_restart_budget_exhaustion_raises():
    config = sharded_config(max_time=15.0)
    swarm = Swarm(
        config, backend="sharded", shards=2, max_worker_restarts=0
    )
    assert swarm.step_round()
    os.kill(swarm.worker_pids()[0], signal.SIGKILL)
    with pytest.raises(SimulationError, match="restart budget"):
        swarm.run()
    swarm.close()


def test_abandoned_run_resumes_from_checkpoint_file(tmp_path):
    """Coordinator death: relaunch picks up the latest coordinated
    snapshot via the standard checkpoint entry point."""
    config = sharded_config()
    baseline = run_swarm(config, backend="sharded", shards=2)

    path = tmp_path / "shards.repro-ckpt"
    swarm = Swarm(
        config, backend="sharded", shards=2,
        checkpoint_every=6, checkpoint_path=str(path),
    )
    for _ in range(9):
        assert swarm.step_round()
    swarm.close()  # the coordinator "dies" with 9 rounds done, 6 saved

    result = run_swarm_with_checkpoints(
        config, checkpoint_path=path, backend="sharded", shards=2
    )
    assert result.resumed_from_round == 6
    assert result.backend == "sharded"
    assert result.fingerprint() == baseline.fingerprint()


def test_solo_shard_checkpoint_resumes_identical_to_soa(tmp_path):
    """shards=1 checkpoints through the soa document and stays exact."""
    config = sharded_config(max_time=20.0)
    baseline = run_swarm(config, backend="soa")

    path = tmp_path / "solo.repro-ckpt"
    swarm = Swarm(
        config, backend="sharded", shards=1,
        checkpoint_every=7, checkpoint_path=str(path),
    )
    for _ in range(10):
        assert swarm.step_round()
    document = read_checkpoint(path)
    assert document["backend"] == "sharded"
    assert document["shards"] == 1

    result = run_swarm_with_checkpoints(
        config, checkpoint_path=path, backend="sharded", shards=1
    )
    assert result.resumed_from_round == 7
    assert result.fingerprint() == baseline.fingerprint()


def test_reshard_on_resume_two_to_four(tmp_path):
    """Checkpoint at N=2, resume at N=4: completes, conserves peers,
    and is deterministic (two identical repartitioned resumes)."""
    config = sharded_config()
    path = tmp_path / "reshard.repro-ckpt"
    swarm = Swarm(
        config, backend="sharded", shards=2,
        checkpoint_every=6, checkpoint_path=str(path),
    )
    for _ in range(6):
        assert swarm.step_round()
    swarm.close()

    document = read_checkpoint(path)
    peers_at_checkpoint = sum(
        state["n_leech"] + state["n_seeds"]
        for state in document["coordinator"]["shard_state"]
    )
    assert peers_at_checkpoint > 0

    first = run_swarm_with_checkpoints(
        config, checkpoint_path=path, backend="sharded", shards=4
    )
    assert first.resumed_from_round == 6
    assert first.total_rounds == int(config.max_time)
    second = restore_sharded_swarm(read_checkpoint(path), shards=4).run()
    assert first.fingerprint() == second.fingerprint()

    # The repartitioned trajectory differs from the 2-shard one (the
    # equivalence tests bound how much), but it must still be a
    # complete, checkpoint-resumable run.
    same_count = restore_sharded_swarm(read_checkpoint(path)).run()
    assert same_count.total_rounds == first.total_rounds


def test_reshard_to_single_worker_is_rejected(tmp_path):
    config = sharded_config(max_time=10.0)
    path = tmp_path / "down.repro-ckpt"
    swarm = Swarm(
        config, backend="sharded", shards=2,
        checkpoint_every=3, checkpoint_path=str(path),
    )
    for _ in range(3):
        assert swarm.step_round()
    swarm.close()
    with pytest.raises(CheckpointError, match="shards=1"):
        restore_sharded_swarm(read_checkpoint(path), shards=1)


def test_structurally_invalid_sharded_document_raises(tmp_path):
    from repro.checkpoint.schema import SCHEMA_VERSION, restore_swarm

    with pytest.raises(CheckpointError, match="structurally invalid"):
        restore_swarm({
            "schema_version": SCHEMA_VERSION,
            "backend": "sharded",
            "shards": 2,
            "config": sharded_config().to_dict(),
        })
