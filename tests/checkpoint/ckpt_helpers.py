"""Shared helpers for the checkpoint test layer.

The helpers build *mid-run* snapshots at exact round boundaries: a
swarm is stepped until the requested round's handler has returned —
the same program point the periodic ``checkpoint_every`` hook runs at —
and :meth:`~repro.sim.swarm.Swarm.snapshot` is taken there.
"""

from __future__ import annotations

from repro.faults.plan import FaultPlan, OutageWindow
from repro.sim.config import SimConfig
from repro.sim.swarm import Swarm


def replay_config(seed: int = 11, max_time: float = 30.0) -> SimConfig:
    """A small swarm that exercises every checkpointed subsystem.

    Shaking, connection churn, and seed departure are all enabled so a
    snapshot carries non-trivial state for each component.
    """
    return SimConfig(
        num_pieces=24,
        max_conns=3,
        ns_size=12,
        arrival_process="poisson",
        arrival_rate=1.5,
        initial_leechers=18,
        initial_distribution="uniform",
        initial_fill=0.5,
        num_seeds=1,
        seed_upload_slots=2,
        optimistic_unchoke_prob=0.5,
        connection_setup_prob=0.8,
        connection_failure_prob=0.1,
        shake_threshold=0.9,
        max_time=max_time,
        seed=seed,
    )


def replay_fault_plan() -> FaultPlan:
    """A plan that touches every injector code path inside 30 sim-units."""
    return FaultPlan(
        churn_hazard=0.01,
        connection_break_prob=0.05,
        handshake_failure_prob=0.05,
        shake_failure_prob=0.2,
        outages=(
            OutageWindow(8.0, 13.0, mode="stale"),
            OutageWindow(18.0, 22.0, mode="empty"),
        ),
    )


def run_to_round(config: SimConfig, round_number: int, *, faults=None) -> Swarm:
    """Step a fresh swarm until ``round_number`` rounds have dispatched.

    Stops early if the event queue drains first (short runs); the
    caller's snapshot is then an end-of-run snapshot, which must still
    resume to an identical (trivially complete) result.
    """
    swarm = Swarm(config, faults=faults)
    swarm.setup()
    while swarm._rounds < round_number:
        if swarm.engine.step() is None:
            break
    return swarm


def snapshot_at_round(config: SimConfig, round_number: int, *, faults=None) -> dict:
    """Snapshot document of ``config``'s run at the given round boundary."""
    return run_to_round(config, round_number, faults=faults).snapshot()
