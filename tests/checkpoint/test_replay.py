"""Replay equivalence: resume(snapshot) ≡ the uninterrupted run.

The load-bearing guarantee of the checkpoint subsystem, pinned two
ways:

* hypothesis chooses the snapshot round (and whether a fault plan is
  active); a swarm snapshotted there and resumed must produce a
  ``SwarmResult`` with the *same fingerprint* as the run that was never
  interrupted — covering RNG positions, event order, peer state,
  tracker state, potential-set caching, and fault streams all at once;
* the production path (``run_swarm_with_checkpoints``) resumed from its
  own on-disk snapshot reproduces the fingerprint through the full
  serialize → CRC → deserialize cycle.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from ckpt_helpers import replay_config, replay_fault_plan, snapshot_at_round
from repro.checkpoint import (
    read_checkpoint,
    result_fingerprint,
    run_swarm_with_checkpoints,
    write_checkpoint,
)
from repro.checkpoint.format import dumps_payload
from repro.errors import CheckpointError
from repro.sim.swarm import Swarm, run_swarm

# Uninterrupted baseline fingerprints, computed once per fault setting
# (hypothesis replays many rounds against the same two baselines).
_BASELINES = {}


def baseline_fingerprint(with_faults: bool) -> str:
    if with_faults not in _BASELINES:
        faults = replay_fault_plan() if with_faults else None
        result = run_swarm(replay_config(), faults=faults)
        _BASELINES[with_faults] = result.fingerprint()
    return _BASELINES[with_faults]


@given(
    round_number=st.integers(min_value=1, max_value=28),
    with_faults=st.booleans(),
)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_resume_matches_uninterrupted_fingerprint(round_number, with_faults):
    """Any snapshot round, with or without an active FaultPlan."""
    faults = replay_fault_plan() if with_faults else None
    document = snapshot_at_round(
        replay_config(), round_number, faults=faults
    )
    # Serialization round-trip in memory: the resumed swarm must work
    # from exactly what a reader would hand it, not live objects.
    document = json.loads(dumps_payload(document).decode("utf-8"))
    resumed = Swarm.resume(document)
    result = resumed.run()
    assert result.fingerprint() == baseline_fingerprint(with_faults)
    assert result.resumed_from_round is not None


def test_resume_through_disk_container(tmp_path):
    """write → read → resume reproduces the fingerprint byte-for-byte."""
    path = tmp_path / "replay.ckpt"
    document = snapshot_at_round(
        replay_config(), 14, faults=replay_fault_plan()
    )
    write_checkpoint(document, path)
    restored_doc = read_checkpoint(path)
    result = Swarm.resume(restored_doc).run()
    assert result.fingerprint() == baseline_fingerprint(True)
    assert result.resumed_from_round == 14


@pytest.mark.parametrize("with_faults", [False, True])
def test_production_path_resumes_own_snapshot(tmp_path, with_faults):
    """run_swarm_with_checkpoints: fresh run, then resume from its file."""
    faults = replay_fault_plan() if with_faults else None
    config = replay_config()
    path = tmp_path / "prod.ckpt"
    fresh = run_swarm_with_checkpoints(
        config, checkpoint_path=path, checkpoint_every=6, faults=faults
    )
    assert fresh.resumed_from_round is None
    assert fresh.checkpoints_written > 0
    assert path.is_file()
    assert fresh.fingerprint() == baseline_fingerprint(with_faults)

    resumed = run_swarm_with_checkpoints(
        config, checkpoint_path=path, checkpoint_every=6
    )
    assert resumed.resumed_from_round is not None
    assert resumed.fingerprint() == fresh.fingerprint()


def test_resume_refuses_mismatched_config(tmp_path):
    path = tmp_path / "mismatch.ckpt"
    config = replay_config()
    run_swarm_with_checkpoints(
        config, checkpoint_path=path, checkpoint_every=6
    )
    other = config.with_changes(seed=config.seed + 1)
    with pytest.raises(CheckpointError, match="different"):
        run_swarm_with_checkpoints(
            other, checkpoint_path=path, checkpoint_every=6
        )


def test_fingerprint_ignores_run_control_fields(tmp_path):
    """Checkpointing itself must not change the fingerprint.

    ``checkpoints_written`` / ``resumed_from_round`` differ between an
    uninterrupted run and a resumed one by construction; the fingerprint
    summary excludes them (and wall time), or replay equivalence could
    never hold.
    """
    plain = run_swarm(replay_config())
    summary_fields = result_fingerprint(plain)
    assert isinstance(summary_fields, str) and len(summary_fields) == 64
    # Same simulation with snapshots enabled: identical fingerprint.
    checkpointed = run_swarm_with_checkpoints(
        replay_config(),
        checkpoint_path=tmp_path / "fp.ckpt",
        checkpoint_every=5,
    )
    assert checkpointed.fingerprint() == plain.fingerprint()
