"""Soa-backend checkpointing: round-trip, faults, SIGKILL relaunch.

The soa snapshot stores dense per-slot arrays plus the free-list order;
these tests pin the acceptance property — resume is *fingerprint
identical* to the uninterrupted run — through the same three layers the
object backend is tested through: schema round-trip, on-disk container,
and a SIGKILLed process relaunched against its snapshot.
"""

import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from ckpt_helpers import replay_fault_plan
from repro.checkpoint.format import read_checkpoint, write_checkpoint
from repro.checkpoint.schema import restore_swarm
from repro.checkpoint.store import run_swarm_with_checkpoints
from repro.errors import CheckpointError
from repro.sim.config import SimConfig
from repro.sim.swarm import Swarm, run_swarm


def soa_replay_config(seed: int = 11, max_time: float = 30.0) -> SimConfig:
    """A small soa-compatible swarm touching every checkpointed field.

    ``num_pieces=70`` spans two bitfield words and sets bit 63 of the
    first, so the uint64 → JSON int → uint64 round-trip is exercised on
    values above ``2**63``.
    """
    return SimConfig(
        num_pieces=70,
        max_conns=3,
        ns_size=12,
        arrival_process="poisson",
        arrival_rate=1.5,
        initial_leechers=18,
        initial_distribution="uniform",
        initial_fill=0.5,
        num_seeds=1,
        seed_upload_slots=2,
        optimistic_unchoke_prob=0.5,
        connection_setup_prob=0.8,
        connection_failure_prob=0.1,
        shake_threshold=0.9,
        completed_become_seeds=4.0,
        abort_rate=0.01,
        max_time=max_time,
        seed=seed,
    )


def soa_snapshot_at_round(config, round_number, *, faults=None):
    swarm = Swarm(config, backend="soa", faults=faults)
    swarm.setup()
    while swarm._rounds < round_number:
        if swarm.engine.step() is None:
            break
    return swarm.snapshot()


@pytest.mark.parametrize("boundary", [1, 5, 14])
def test_soa_resume_is_fingerprint_identical(boundary):
    config = soa_replay_config()
    reference = run_swarm(config, backend="soa").fingerprint()
    document = soa_snapshot_at_round(config, boundary)
    assert document["backend"] == "soa"
    resumed = restore_swarm(document)
    result = resumed.run()
    assert result.resumed_from_round == boundary
    assert result.backend == "soa"
    assert result.fingerprint() == reference


def test_soa_snapshot_survives_the_container(tmp_path):
    """NaN-able columns and uint64 bit words must pass canonical JSON."""
    config = soa_replay_config(seed=23)
    document = soa_snapshot_at_round(config, 8)
    path = tmp_path / "soa.ckpt"
    write_checkpoint(document, path)
    result = restore_swarm(read_checkpoint(path)).run()
    assert result.fingerprint() == run_swarm(config, backend="soa").fingerprint()


def test_soa_resume_with_fault_plan_replays_fault_stream():
    config = soa_replay_config(seed=29)
    plan = replay_fault_plan()
    reference = run_swarm(config, backend="soa", faults=plan)
    document = soa_snapshot_at_round(config, 9, faults=plan)
    result = restore_swarm(document).run()
    assert result.fingerprint() == reference.fingerprint()
    assert result.fault_stats.to_dict() == reference.fault_stats.to_dict()


def test_soa_periodic_checkpoints_do_not_perturb_the_run(tmp_path):
    config = soa_replay_config(seed=37)
    path = str(tmp_path / "periodic.ckpt")
    swarm = Swarm(
        config, backend="soa", checkpoint_every=4, checkpoint_path=path
    )
    result = swarm.run()
    assert result.checkpoints_written >= 2
    assert result.fingerprint() == run_swarm(config, backend="soa").fingerprint()


def test_soa_swarm_resume_classmethod_dispatches():
    config = soa_replay_config(seed=41)
    document = soa_snapshot_at_round(config, 6)
    swarm = Swarm.resume(document)
    assert swarm.backend == "soa"
    assert swarm.run().fingerprint() == run_swarm(
        config, backend="soa"
    ).fingerprint()


def test_soa_snapshot_rejects_wrong_schema_version():
    document = soa_snapshot_at_round(soa_replay_config(seed=43), 3)
    document["schema_version"] = 99
    with pytest.raises(CheckpointError, match="schema version"):
        restore_swarm(document)


def test_soa_snapshot_rejects_structural_damage():
    document = soa_snapshot_at_round(soa_replay_config(seed=47), 3)
    del document["store"]["free"]
    with pytest.raises(CheckpointError, match="structurally invalid"):
        restore_swarm(document)


def test_sigkilled_soa_run_resumes_on_relaunch(tmp_path):
    """Kill a checkpointing soa run outright; relaunch must resume."""
    ckpt = Path(tmp_path) / "soa-kill.ckpt"
    script = textwrap.dedent(
        f"""
        import os, signal
        from repro.sim.swarm import Swarm
        from test_soa_checkpoint import soa_replay_config

        swarm = Swarm(
            soa_replay_config(seed=53),
            backend="soa",
            checkpoint_path={str(ckpt)!r},
            checkpoint_every=4,
        )
        swarm.setup()
        while swarm.checkpoints_written < 2:
            if swarm.engine.step() is None:
                break
        os.kill(os.getpid(), signal.SIGKILL)
        """
    )
    import repro

    env = os.environ.copy()
    src_dir = str(Path(repro.__file__).resolve().parents[1])
    here = str(Path(__file__).resolve().parent)
    env["PYTHONPATH"] = os.pathsep.join(
        [src_dir, here]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    victim = subprocess.run(
        [sys.executable, "-c", script],
        env=env,
        capture_output=True,
        text=True,
    )
    assert victim.returncode == -signal.SIGKILL, victim.stderr
    assert ckpt.is_file(), "the victim died before writing its snapshots"

    config = soa_replay_config(seed=53)
    result = run_swarm_with_checkpoints(
        config, checkpoint_path=ckpt, checkpoint_every=4, backend="soa"
    )
    assert result.resumed_from_round is not None
    assert result.resumed_from_round >= 8  # two 4-round snapshots landed
    assert result.fingerprint() == run_swarm(config, backend="soa").fingerprint()
