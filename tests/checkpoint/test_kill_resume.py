"""Kill-mid-sweep resume: SIGKILL, relaunch, bit-identical results.

Two kill scenarios, both ending in a diff against the serial
uninterrupted run:

* a *pool worker* is SIGKILLed after its task's first snapshot lands;
  the executor's crash recovery (PR 3) re-runs the task, which finds
  the snapshot and resumes instead of recomputing finished rounds;
* the *whole process* is SIGKILLed mid-sweep (a subprocess, so pytest
  survives); a second process relaunches the identical sweep with the
  same ``checkpoint_dir`` and must complete from the snapshots, with
  the resume counted in telemetry and every series bit-identical to a
  sweep that never died.
"""

import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

from ckpt_helpers import replay_config
from repro.runtime.executor import ExperimentExecutor, TaskSpec
from repro.sim.swarm import Swarm, run_swarm
from repro.stability.experiments import run_stability_sweep


def kill_worker_after_first_snapshot(config, *, checkpoint_path=None,
                                     checkpoint_every=0):
    """Task for the pool: dies by SIGKILL once, resumes on re-dispatch.

    First dispatch (no snapshot on disk yet): run until the periodic
    hook writes one, then SIGKILL our own worker process — the harshest
    interruption a pool can see.  Any later dispatch finds the snapshot
    and resumes to completion.
    """
    from repro.checkpoint.store import run_swarm_with_checkpoints

    if not os.path.isfile(checkpoint_path):
        swarm = Swarm(
            config,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
        )
        swarm.setup()
        while swarm.checkpoints_written == 0:
            if swarm.engine.step() is None:
                break
        os.kill(os.getpid(), signal.SIGKILL)
    result = run_swarm_with_checkpoints(
        config,
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
    )
    return result.fingerprint(), result.resumed_from_round


def test_sigkilled_pool_worker_resumes_from_snapshot(tmp_path):
    configs = [replay_config(seed=31), replay_config(seed=32)]
    executor = ExperimentExecutor(
        workers=2, max_attempts=2, checkpoint_dir=str(tmp_path)
    )
    outcomes = executor.run(
        [
            TaskSpec(
                kill_worker_after_first_snapshot,
                (config,),
                checkpoint_interval=4,
                checkpoint_key=f"kill-{config.seed}",
            )
            for config in configs
        ]
    )
    for config, (fingerprint, resumed_from) in zip(configs, outcomes):
        assert resumed_from is not None, "task must resume, not restart"
        assert fingerprint == run_swarm(config).fingerprint()


def _sweep_kwargs(checkpoint_dir=None):
    kwargs = dict(
        arrival_rate=4.0,
        initial_leechers=60,
        max_time=40.0,
        seed=5,
        entropy_every=4,
        workers=1,
    )
    if checkpoint_dir is not None:
        kwargs["checkpoint_dir"] = str(checkpoint_dir)
        kwargs["checkpoint_every"] = 4
    return kwargs


def test_sigkilled_sweep_process_resumes_on_relaunch(tmp_path):
    """The acceptance scenario: kill the sweep outright, relaunch, diff.

    The victim process steps the exact swarm ``run_stability_sweep``
    would run (same config, same metrics, same checkpoint key) and
    SIGKILLs itself after two snapshots; the relaunch goes through the
    real sweep entry point.
    """
    ckpt = Path(tmp_path) / "stability-B3.ckpt"
    script = textwrap.dedent(
        f"""
        import os, signal
        from repro.sim.metrics import MetricsCollector
        from repro.sim.swarm import Swarm
        from repro.stability.experiments import stability_config

        config = stability_config(
            3, arrival_rate=4.0, initial_leechers=60, max_time=40.0, seed=5
        )
        swarm = Swarm(
            config,
            metrics=MetricsCollector(
                config.max_conns, entropy_every=4, entropy_includes_seeds=True
            ),
            checkpoint_path={str(ckpt)!r},
            checkpoint_every=4,
        )
        swarm.setup()
        while swarm.checkpoints_written < 2:
            if swarm.engine.step() is None:
                break
        os.kill(os.getpid(), signal.SIGKILL)
        """
    )
    import repro

    env = os.environ.copy()
    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = os.pathsep.join(
        [src_dir] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    victim = subprocess.run(
        [sys.executable, "-c", script],
        env=env,
        capture_output=True,
        text=True,
    )
    assert victim.returncode == -signal.SIGKILL, victim.stderr
    assert ckpt.is_file(), "the victim died before writing its snapshots"

    resumed_runs, telemetry = run_stability_sweep(
        [3], **_sweep_kwargs(checkpoint_dir=tmp_path)
    )
    assert telemetry.resumes == 1
    resumed = resumed_runs[3]
    assert resumed.result.resumed_from_round is not None
    assert resumed.result.resumed_from_round >= 8  # two 4-round snapshots

    serial_runs, _ = run_stability_sweep([3], **_sweep_kwargs())
    serial = serial_runs[3]
    assert resumed.result.fingerprint() == serial.result.fingerprint()
    assert resumed.population.tolist() == serial.population.tolist()
    assert resumed.entropy.tolist() == serial.entropy.tolist()
    assert resumed.times.tolist() == serial.times.tolist()
    assert resumed.diverged == serial.diverged
    assert resumed.entropy_recovered == serial.entropy_recovered
