"""Snapshot round-trip properties, per stateful component.

Replay equivalence (``test_replay``) is the end-to-end guarantee; these
tests localise it.  Each stateful component — RNG streams, Bitfield,
event engine, tracker, choker counters, potential-set cache,
FaultInjector — is snapshotted, pushed through the JSON layer, restored
into a *fresh* object, and then driven forward to show the restored
copy behaves identically.  The headline property ties them together:
re-snapshotting a restored swarm reproduces the original document
byte-for-byte.
"""

import json

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from ckpt_helpers import replay_config, replay_fault_plan, run_to_round
from repro.checkpoint.format import dumps_payload
from repro.checkpoint.schema import _sanitize_rng_state, snapshot_swarm
from repro.faults.injector import FaultInjector
from repro.sim.bitfield import Bitfield
from repro.sim.engine import DiscreteEventEngine, Event
from repro.sim.swarm import Swarm


def json_trip(document: dict) -> dict:
    """What a reader hands the restore path: canonical JSON round-trip."""
    return json.loads(dumps_payload(document).decode("utf-8"))


# ----------------------------------------------------------------------
# RNG streams
# ----------------------------------------------------------------------
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    warmup=st.integers(min_value=0, max_value=500),
)
@settings(max_examples=30, deadline=None)
def test_rng_state_roundtrip_preserves_stream(seed, warmup):
    rng = np.random.default_rng(seed)
    rng.random(warmup)
    state = json_trip(_sanitize_rng_state(rng.bit_generator.state))

    fresh = np.random.default_rng(0)
    fresh.bit_generator.state = state
    assert fresh.random(64).tolist() == rng.random(64).tolist()
    assert fresh.integers(0, 1 << 30, 16).tolist() == (
        rng.integers(0, 1 << 30, 16).tolist()
    )


# ----------------------------------------------------------------------
# Bitfield
# ----------------------------------------------------------------------
@given(data=st.data(), num_pieces=st.integers(min_value=1, max_value=120))
@settings(max_examples=50, deadline=None)
def test_bitfield_mask_roundtrip(data, num_pieces):
    held = data.draw(
        st.sets(st.integers(min_value=0, max_value=num_pieces - 1))
    )
    field = Bitfield(num_pieces)
    for piece in held:
        field.add(piece)
    restored = Bitfield(num_pieces, int(field.mask))
    assert set(restored.pieces()) == held
    assert restored.count == len(held)
    assert restored.mask == field.mask


# ----------------------------------------------------------------------
# Event engine
# ----------------------------------------------------------------------
def test_engine_roundtrip_replays_identical_event_sequence():
    def build(record):
        engine = DiscreteEventEngine()
        for kind in ("round", "arrival", "announce"):
            engine.register(
                kind, lambda t, e, k=kind: record.append((t, k, e.payload))
            )
        return engine

    log_a: list = []
    engine = build(log_a)
    # Same-time events exercise the seq tie-breaker; payloads ride too.
    for i in range(12):
        engine.schedule_at(float(i % 4), Event("round", payload=i))
        engine.schedule_at(float(i % 4), Event("arrival"))
    engine.schedule_at(2.0, Event("announce", payload=[1, 2]))
    for _ in range(7):
        engine.step()

    state = json_trip(engine.snapshot_state())
    log_b: list = []
    restored = build(log_b)
    restored.restore_state(state)
    assert restored.now == engine.now
    assert restored.processed_events == engine.processed_events
    assert restored.pending_events == engine.pending_events

    while engine.step() is not None:
        pass
    while restored.step() is not None:
        pass
    assert log_b == log_a[7:]
    # A second snapshot of the drained pair agrees too.
    assert json_trip(restored.snapshot_state()) == json_trip(
        engine.snapshot_state()
    )


# ----------------------------------------------------------------------
# FaultInjector
# ----------------------------------------------------------------------
def test_fault_injector_roundtrip_preserves_fault_stream():
    plan = replay_fault_plan()
    injector = FaultInjector(plan, root_seed=42)
    injector.observe(9.0)  # inside the stale outage window
    for _ in range(40):
        injector.churn_peer()
        injector.break_connection()
        injector.fail_handshake()
    injector.fail_shake()

    state = json_trip(injector.snapshot_state())
    restored = FaultInjector(plan, root_seed=42)
    restored.restore_state(state)

    assert restored.now == injector.now
    assert restored.stats.to_dict() == injector.stats.to_dict()
    draws_a = [
        (injector.churn_peer(), injector.break_connection(),
         injector.fail_handshake(), injector.fail_shake())
        for _ in range(60)
    ]
    draws_b = [
        (restored.churn_peer(), restored.break_connection(),
         restored.fail_handshake(), restored.fail_shake())
        for _ in range(60)
    ]
    assert draws_a == draws_b
    assert restored.stats.to_dict() == injector.stats.to_dict()


# ----------------------------------------------------------------------
# Tracker, choker counters, potential sets, metrics — via the swarm
# ----------------------------------------------------------------------
def test_restored_swarm_resnapshot_is_byte_identical():
    """snapshot(restore(doc)) == doc, to the canonical byte.

    The strongest localisation: if any component restored into a
    subtly different shape (an order, a dtype, a missed counter), its
    re-snapshot would differ.
    """
    swarm = run_to_round(replay_config(), 15, faults=replay_fault_plan())
    document = json_trip(swarm.snapshot())
    restored = Swarm.resume(document)
    assert dumps_payload(snapshot_swarm(restored)) == dumps_payload(document)


def test_tracker_registry_restored_in_live_iteration_order():
    swarm = run_to_round(replay_config(), 12)
    document = json_trip(swarm.snapshot())
    restored = Swarm.resume(document)

    live, back = swarm.tracker, restored.tracker
    assert [p.peer_id for p in back.peers()] == [
        p.peer_id for p in live.peers()
    ]
    assert back._next_id == live._next_id
    assert back._bootstrap_trapped == live._bootstrap_trapped
    assert back.population_log == live.population_log
    for mine, theirs in zip(live.peers(), back.peers()):
        assert theirs.bitfield.mask == mine.bitfield.mask
        assert theirs.neighbors == mine.neighbors
        assert theirs.partners == mine.partners
        assert theirs.block_progress == mine.block_progress


def test_choker_counters_and_potential_cache_restored():
    swarm = run_to_round(replay_config(), 12)
    document = json_trip(swarm.snapshot())
    restored = Swarm.resume(document)

    assert restored.connection_stats.__dict__ == swarm.connection_stats.__dict__
    assert restored._potential_sets._dirty == swarm._potential_sets._dirty
    assert restored._potential_sets._cache == swarm._potential_sets._cache
    assert restored.piece_counts.tolist() == swarm.piece_counts.tolist()


def test_restored_potential_listener_still_fires():
    """The dirty-set listener must survive restore (in-place mutation).

    Regression for the silent-divergence bug: rebinding ``_dirty`` to a
    fresh set orphans the tracker's bound-method listener, and resumed
    runs drift only when fault churn makes neighborhoods change.
    """
    swarm = run_to_round(replay_config(), 10)
    restored = Swarm.resume(json_trip(swarm.snapshot()))
    restored._potential_sets._dirty.clear()
    some_peer = next(iter(restored.tracker.peers()))
    restored.tracker.notify_neighbors_changed(some_peer.peer_id)
    assert some_peer.peer_id in restored._potential_sets._dirty
