"""Seed accounting: a resumed run consumes *zero* extra RNG draws.

The PR-2 runtime re-derives a task's seed per attempt so retried tasks
explore fresh streams.  Checkpointable tasks must do the opposite —
resume the *original* stream — or a resume would silently fork the
trajectory.  Pinned here from both ends:

* simulator end: the final ``bit_generator`` state of a resumed run
  equals the uninterrupted run's, for the swarm stream *and* the fault
  injector's isolated stream — the resume consumed exactly the draws
  the uninterrupted run would have, no more, no fewer;
* runtime end: ``TaskSpec.for_attempt`` leaves checkpointable tasks'
  seeds untouched on retries, while non-checkpointable tasks still get
  the PR-2 per-attempt re-derivation.
"""

import json

import pytest

from ckpt_helpers import replay_config, replay_fault_plan, run_to_round
from repro.checkpoint.format import dumps_payload
from repro.runtime.executor import _ATTEMPT_SALT, TaskSpec
from repro.runtime.seeding import derive_seed
from repro.sim.swarm import Swarm


def _final_states(swarm: Swarm) -> tuple:
    injector = swarm.fault_injector
    return (
        swarm.rng.bit_generator.state,
        None if injector is None else injector.rng.bit_generator.state,
    )


@pytest.mark.parametrize("with_faults", [False, True])
@pytest.mark.parametrize("snapshot_round", [1, 9, 20])
def test_resumed_run_ends_on_identical_rng_states(with_faults, snapshot_round):
    faults = replay_fault_plan() if with_faults else None
    config = replay_config()

    uninterrupted = Swarm(config, faults=faults)
    uninterrupted.run()

    partial = run_to_round(config, snapshot_round, faults=faults)
    document = json.loads(dumps_payload(partial.snapshot()).decode("utf-8"))
    resumed = Swarm.resume(document)
    resumed.run()

    assert _final_states(resumed) == _final_states(uninterrupted)


def test_restore_does_not_advance_rng_before_run():
    """Restoring alone must not draw: state out == state in."""
    partial = run_to_round(replay_config(), 7)
    state_at_snapshot = partial.rng.bit_generator.state
    document = json.loads(dumps_payload(partial.snapshot()).decode("utf-8"))
    resumed = Swarm.resume(document)
    assert resumed.rng.bit_generator.state == state_at_snapshot


class TestForAttemptExemption:
    def test_checkpointable_task_keeps_seed_on_retry(self):
        spec = TaskSpec(
            divmod, (7, 3), seed_index=0, checkpoint_interval=5
        )
        assert spec.for_attempt(2) is spec
        assert spec.for_attempt(5) is spec

    def test_non_checkpointable_task_still_reseeds(self):
        spec = TaskSpec(divmod, (7, 3), seed_index=0)
        retried = spec.for_attempt(2)
        assert retried is not spec
        assert retried.args[0] == derive_seed(7, _ATTEMPT_SALT, 2)

    def test_first_attempt_is_identity_either_way(self):
        for interval in (0, 5):
            spec = TaskSpec(
                divmod, (7, 3), seed_index=0, checkpoint_interval=interval
            )
            assert spec.for_attempt(1) is spec
