"""Seed accounting: a resumed run consumes *zero* extra RNG draws.

The PR-2 runtime re-derives a task's seed per attempt so retried tasks
explore fresh streams.  Checkpointable tasks must do the opposite —
resume the *original* stream — or a resume would silently fork the
trajectory.  Pinned here from both ends:

* simulator end: the final ``bit_generator`` state of a resumed run
  equals the uninterrupted run's, for the swarm stream *and* the fault
  injector's isolated stream — the resume consumed exactly the draws
  the uninterrupted run would have, no more, no fewer;
* runtime end: ``TaskSpec.for_attempt`` leaves checkpointable tasks'
  seeds untouched on retries, while non-checkpointable tasks still get
  the PR-2 per-attempt re-derivation.
"""

import json

import numpy as np
import pytest

from ckpt_helpers import replay_config, replay_fault_plan, run_to_round
from repro.checkpoint.format import dumps_payload
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.runtime.executor import _ATTEMPT_SALT, TaskSpec
from repro.runtime.seeding import derive_seed
from repro.sim.swarm import Swarm, run_swarm


def _final_states(swarm: Swarm) -> tuple:
    injector = swarm.fault_injector
    return (
        swarm.rng.bit_generator.state,
        None if injector is None else injector.rng.bit_generator.state,
    )


@pytest.mark.parametrize("with_faults", [False, True])
@pytest.mark.parametrize("snapshot_round", [1, 9, 20])
def test_resumed_run_ends_on_identical_rng_states(with_faults, snapshot_round):
    faults = replay_fault_plan() if with_faults else None
    config = replay_config()

    uninterrupted = Swarm(config, faults=faults)
    uninterrupted.run()

    partial = run_to_round(config, snapshot_round, faults=faults)
    document = json.loads(dumps_payload(partial.snapshot()).decode("utf-8"))
    resumed = Swarm.resume(document)
    resumed.run()

    assert _final_states(resumed) == _final_states(uninterrupted)


def test_restore_does_not_advance_rng_before_run():
    """Restoring alone must not draw: state out == state in."""
    partial = run_to_round(replay_config(), 7)
    state_at_snapshot = partial.rng.bit_generator.state
    document = json.loads(dumps_payload(partial.snapshot()).decode("utf-8"))
    resumed = Swarm.resume(document)
    assert resumed.rng.bit_generator.state == state_at_snapshot


class TestBatchedMaskDrawAccounting:
    """The vectorized fault masks keep the stream-consumption contract.

    A zero-probability plan must return all-false masks *without*
    consuming any RNG draws (the zero-intensity bit-identity
    guarantee); a non-zero plan must consume exactly one batched
    ``random(count)`` — the same stream positions as ``count``
    sequential scalar draws.
    """

    MASKS = ("churn_mask", "break_mask", "handshake_mask", "shake_mask")

    def test_zero_probability_masks_consume_no_draws(self):
        injector = FaultInjector(FaultPlan(), 3)
        before = injector.rng.bit_generator.state
        for name in self.MASKS:
            mask = getattr(injector, name)(17)
            assert mask.shape == (17,) and not mask.any()
        assert injector.rng.bit_generator.state == before
        assert injector.stats.total() == 0

    def test_nonzero_masks_consume_exactly_one_batched_draw(self):
        plan = FaultPlan(
            churn_hazard=0.4,
            connection_break_prob=0.4,
            handshake_failure_prob=0.4,
            shake_failure_prob=0.4,
        )
        injector = FaultInjector(plan, 3)
        reference = np.random.default_rng()
        reference.bit_generator.state = injector.rng.bit_generator.state
        for name in self.MASKS:
            expected = reference.random(17) < 0.4
            np.testing.assert_array_equal(
                getattr(injector, name)(17), expected
            )
        assert (
            injector.rng.bit_generator.state
            == reference.bit_generator.state
        )

    def test_empty_count_masks_consume_no_draws(self):
        plan = FaultPlan(churn_hazard=0.5)
        injector = FaultInjector(plan, 3)
        before = injector.rng.bit_generator.state
        assert injector.churn_mask(0).size == 0
        assert injector.rng.bit_generator.state == before

    @pytest.mark.parametrize("backend", ["object", "soa"])
    def test_zero_intensity_plan_is_bit_identical_to_no_plan(self, backend):
        """``plan.scaled(0)`` and ``faults=None`` share one trajectory.

        The deterministic outputs must match bit for bit apart from the
        ``fault_stats`` presence marker (None without a plan, all-zero
        counters with one) — the injector fired nothing and, thanks to
        the zero-probability gating, drew nothing.
        """
        from repro.checkpoint.fingerprint import result_summary

        config = replay_config()
        plan = replay_fault_plan().scaled(0.0)
        assert not plan.outages  # outages would perturb announces
        plain = result_summary(run_swarm(config, backend=backend))
        faulted_result = run_swarm(config, faults=plan, backend=backend)
        faulted = result_summary(faulted_result)
        assert faulted_result.fault_stats.total() == 0
        assert plain.pop("fault_stats") is None
        assert faulted.pop("fault_stats") is not None
        assert faulted == plain


class TestForAttemptExemption:
    def test_checkpointable_task_keeps_seed_on_retry(self):
        spec = TaskSpec(
            divmod, (7, 3), seed_index=0, checkpoint_interval=5
        )
        assert spec.for_attempt(2) is spec
        assert spec.for_attempt(5) is spec

    def test_non_checkpointable_task_still_reseeds(self):
        spec = TaskSpec(divmod, (7, 3), seed_index=0)
        retried = spec.for_attempt(2)
        assert retried is not spec
        assert retried.args[0] == derive_seed(7, _ATTEMPT_SALT, 2)

    def test_first_attempt_is_identity_either_way(self):
        for interval in (0, 5):
            spec = TaskSpec(
                divmod, (7, 3), seed_index=0, checkpoint_interval=interval
            )
            assert spec.for_attempt(1) is spec
