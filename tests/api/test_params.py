"""Canonicalization and cache-key tests for `repro.api.ModelParams`."""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.api import ModelParams
from repro.core.parameters import ModelParameters
from repro.core.piece_distribution import PieceCountDistribution
from repro.errors import ParameterError


def make(**overrides):
    kwargs = dict(num_pieces=10, max_conns=3, ns_size=6)
    kwargs.update(overrides)
    return ModelParams(**kwargs)


class TestCanonicalization:
    def test_numpy_ints_become_builtin_int(self):
        p = ModelParams(
            num_pieces=np.int64(10), max_conns=np.int32(3), ns_size=np.int64(6)
        )
        assert type(p.num_pieces) is int
        assert type(p.max_conns) is int
        assert type(p.ns_size) is int
        assert p == make()

    def test_numpy_floats_become_builtin_float(self):
        p = make(alpha=np.float64(0.25), p_reenc=np.float32(0.5))
        assert type(p.alpha) is float
        assert type(p.p_reenc) is float
        assert p.alpha == 0.25

    def test_integer_valued_float_accepted(self):
        assert make(num_pieces=10.0).num_pieces == 10

    def test_fractional_int_rejected(self):
        with pytest.raises(ParameterError, match="num_pieces must be an integer"):
            make(num_pieces=10.5)

    def test_non_numeric_int_rejected(self):
        with pytest.raises(ParameterError, match="max_conns must be an integer"):
            make(max_conns="three")

    def test_non_numeric_float_rejected(self):
        with pytest.raises(ParameterError, match="alpha must be a number"):
            make(alpha="often")

    def test_negative_zero_folds_to_zero(self):
        p = make(alpha=-0.0)
        assert str(p.alpha) == "0.0"
        assert p.cache_key() == make(alpha=0.0).cache_key()

    def test_parent_validation_still_applies(self):
        with pytest.raises(ParameterError):
            make(num_pieces=0)


class TestOf:
    def test_wraps_plain_parameters(self):
        plain = ModelParameters(num_pieces=10, max_conns=3, ns_size=6)
        p = ModelParams.of(plain)
        assert isinstance(p, ModelParams)
        assert p == make()

    def test_identity_on_already_canonical(self):
        p = make()
        assert ModelParams.of(p) is p

    def test_overrides(self):
        p = ModelParams.of(make(), alpha=0.9)
        assert p.alpha == 0.9
        assert p.num_pieces == 10

    def test_rejects_non_parameters(self):
        with pytest.raises(ParameterError, match="expected ModelParameters"):
            ModelParams.of({"num_pieces": 10})


class TestJsonRoundTrip:
    def test_uniform_phi_serializes_none(self):
        assert make().to_dict()["phi"] is None

    def test_round_trip_uniform(self):
        p = make(alpha=0.3, gamma=0.4, p_reenc=0.6, p_new=0.8)
        assert ModelParams.from_dict(p.to_dict()) == p

    def test_round_trip_nonuniform_phi(self):
        pmf = np.zeros(10)
        pmf[2] = 0.5
        pmf[7] = 0.5
        p = make(phi=PieceCountDistribution(10, pmf))
        payload = p.to_dict()
        assert payload["phi"] == pmf.tolist()
        back = ModelParams.from_dict(payload)
        assert back == p
        assert back.cache_key() == p.cache_key()

    def test_from_dict_unknown_field(self):
        with pytest.raises(ParameterError, match="unknown parameter field"):
            ModelParams.from_dict(
                {"num_pieces": 10, "max_conns": 3, "ns_size": 6, "pieces": 9}
            )

    def test_from_dict_missing_required(self):
        with pytest.raises(
            ParameterError, match=r"missing required parameter field"
        ) as excinfo:
            ModelParams.from_dict({"num_pieces": 10})
        assert "max_conns" in str(excinfo.value)
        assert "ns_size" in str(excinfo.value)

    def test_from_dict_rejects_non_mapping(self):
        with pytest.raises(ParameterError, match="params must be a mapping"):
            ModelParams.from_dict([10, 3, 6])


class TestCacheKey:
    # Pinned digest: the key is a documented stable identifier — if this
    # changes, every persisted cache and service client key rolls over.
    PINNED = "796dbdb4cd162edfeb590a49e54c43393a8660734aeb04f04f8719f082e28a6f"

    def test_pinned_value(self):
        assert make().cache_key() == self.PINNED

    def test_equal_params_equal_keys(self):
        assert make().cache_key() == make().cache_key()

    def test_numpy_and_literal_agree(self):
        numpy_built = ModelParams(
            num_pieces=np.int64(10), max_conns=np.int64(3),
            ns_size=np.int64(6), alpha=np.float64(0.2),
        )
        assert numpy_built.cache_key() == make(alpha=0.2).cache_key()

    @pytest.mark.parametrize(
        "change",
        [
            {"num_pieces": 11},
            {"max_conns": 4},
            {"ns_size": 7},
            {"p_init": 0.3},
            {"alpha": 0.21},
            {"gamma": 0.5},
            {"p_reenc": 0.71},
            {"p_new": 0.69},
        ],
    )
    def test_any_field_changes_key(self, change):
        assert make(**change).cache_key() != make().cache_key()

    def test_phi_changes_key(self):
        pmf = np.zeros(10)
        pmf[4] = 1.0
        assert (
            make(phi=PieceCountDistribution(10, pmf)).cache_key()
            != make().cache_key()
        )

    def test_independent_of_pythonhashseed(self):
        script = (
            "from repro.api import ModelParams; "
            "print(ModelParams(num_pieces=10, max_conns=3, "
            "ns_size=6).cache_key())"
        )
        keys = set()
        for hash_seed in ("0", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env.setdefault("PYTHONPATH", "src")
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True, env=env,
            )
            keys.add(out.stdout.strip())
        assert keys == {self.PINNED}
