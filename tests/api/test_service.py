"""Service tests: coalescing semantics and the HTTP endpoint surface."""

import asyncio
import http.client
import json
import threading

import pytest

from repro.api import ModelParams, Query
from repro.runtime.cache import KernelCache
from repro.service import SolverService, start_background_server

PARAMS = {"num_pieces": 8, "max_conns": 2, "ns_size": 4}
SOLVE_BODY = {"params": PARAMS, "quantity": "download_time", "method": "exact"}


def request(port, method, path, body=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        payload = None if body is None else json.dumps(body)
        conn.request(method, path, body=payload)
        response = conn.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        conn.close()


@pytest.fixture
def service():
    service = SolverService(cache=KernelCache(), max_workers=2)
    yield service
    service.close()


@pytest.fixture
def server():
    handle = start_background_server(cache=KernelCache(), max_workers=2)
    yield handle
    handle.close()


class TestCoalescing:
    def test_concurrent_identical_queries_solve_once(self, service):
        query = Query.make(ModelParams(**PARAMS), "download_time", "exact")

        async def fan():
            return await asyncio.gather(
                *(service.solve_async(query) for _ in range(6))
            )

        results = asyncio.run(fan())
        assert sorted(outcome for _p, outcome in results) == (
            ["coalesced"] * 5 + ["miss"]
        )
        assert service.solve_count == 1
        payloads = [payload for payload, _outcome in results]
        assert all(payload == payloads[0] for payload in payloads)

    def test_repeat_is_a_result_cache_hit(self, service):
        query = Query.make(ModelParams(**PARAMS), "download_time", "exact")

        async def one():
            return await service.solve_async(query)

        _, first = asyncio.run(one())
        _, second = asyncio.run(one())
        assert (first, second) == ("miss", "hit")
        assert service.solve_count == 1

    def test_distinct_queries_solve_separately(self, service):
        base = ModelParams(**PARAMS)
        queries = [
            Query.make(base, "download_time", "exact"),
            Query.make(ModelParams.of(base, alpha=0.4), "download_time", "exact"),
        ]

        async def fan():
            return await asyncio.gather(
                *(service.solve_async(q) for q in queries)
            )

        outcomes = [outcome for _p, outcome in asyncio.run(fan())]
        assert outcomes == ["miss", "miss"]
        assert service.solve_count == 2

    def test_failed_solve_clears_inflight(self, service):
        bad = Query.make(ModelParams(**PARAMS), "transient", "exact")

        async def one():
            return await service.solve_async(bad)

        for _ in range(2):  # the second call must not hang on a dead future
            with pytest.raises(Exception, match="horizon"):
                asyncio.run(one())
        assert service.solve_count == 0


class TestHttpEndpoints:
    def test_health(self, server):
        status, body = request(server.port, "GET", "/health")
        assert status == 200
        assert body["status"] == "ok"
        assert body["uptime_s"] >= 0

    def test_solve_miss_then_hit(self, server):
        status, first = request(server.port, "POST", "/solve", SOLVE_BODY)
        assert status == 200
        assert first["outcome"] == "miss"
        assert first["quantity"] == "download_time"
        assert first["method"] == "exact"
        assert first["result"]["mean"] > 0
        status, second = request(server.port, "POST", "/solve", SOLVE_BODY)
        assert status == 200
        assert second["outcome"] == "hit"
        assert second["result"] == first["result"]

    def test_concurrent_http_queries_solve_once(self, server):
        outcomes = []
        lock = threading.Lock()

        def worker():
            _status, body = request(server.port, "POST", "/solve", SOLVE_BODY)
            with lock:
                outcomes.append(body["outcome"])

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(outcomes) == 6
        assert outcomes.count("miss") == 1
        assert set(outcomes) <= {"miss", "coalesced", "hit"}
        assert server.service.solve_count == 1

    def test_sweep_counts_distinct_queries(self, server):
        body = {
            "params": PARAMS,
            "quantity": "download_time",
            "method": "exact",
            "grid": {"alpha": [0.2, 0.3, 0.4], "gamma": [0.2, 0.5]},
        }
        status, payload = request(server.port, "POST", "/sweep", body)
        assert status == 200
        assert payload["count"] == 6
        assert payload["distinct"] == 6
        grids = [point["grid"] for point in payload["results"]]
        assert {"alpha": 0.2, "gamma": 0.5} in grids
        assert all(point["result"]["mean"] > 0 for point in payload["results"])

    def test_sweep_redundant_grid_solves_once(self, server):
        body = {
            "params": PARAMS,
            "quantity": "download_time",
            "method": "exact",
            "grid": {"alpha": [0.2, 0.2]},
        }
        status, payload = request(server.port, "POST", "/sweep", body)
        assert status == 200
        assert payload["count"] == 2
        assert payload["distinct"] == 1
        assert server.service.solve_count == 1

    def test_stats_shape(self, server):
        request(server.port, "POST", "/solve", SOLVE_BODY)
        status, stats = request(server.port, "GET", "/stats")
        assert status == 200
        assert stats["queries"]["total"] >= 1
        assert stats["queries"]["misses"] >= 1
        assert stats["solves"] == 1
        assert set(stats["kernel_cache"]) >= {
            "entries", "bytes", "hits", "misses", "evictions",
            "max_entries", "max_bytes",
        }
        assert stats["result_cache"]["entries"] == 1
        assert "POST /solve" in stats["endpoints"]
        assert stats["endpoints"]["POST /solve"]["requests"] >= 1

    def test_bad_params_maps_to_400(self, server):
        bad = {"params": {"num_pieces": 8}, "quantity": "download_time"}
        status, body = request(server.port, "POST", "/solve", bad)
        assert status == 400
        assert "missing required parameter field" in body["error"]

    def test_unknown_quantity_maps_to_400(self, server):
        bad = dict(SOLVE_BODY, quantity="magic")
        status, body = request(server.port, "POST", "/solve", bad)
        assert status == 400
        assert "unknown quantity" in body["error"]

    def test_invalid_json_maps_to_400(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=60)
        try:
            conn.request("POST", "/solve", body="{not json")
            response = conn.getresponse()
            assert response.status == 400
            assert "not valid JSON" in json.loads(response.read())["error"]
        finally:
            conn.close()

    def test_unknown_path_maps_to_404(self, server):
        status, body = request(server.port, "GET", "/nope")
        assert status == 404
        assert "/solve" in body["error"]

    def test_wrong_verb_maps_to_405(self, server):
        status, _ = request(server.port, "POST", "/health", {})
        assert status == 405
        status, _ = request(server.port, "GET", "/solve")
        assert status == 405

    def test_sweep_rejects_oversized_grid(self, server):
        body = {
            "params": PARAMS,
            "quantity": "download_time",
            "grid": {"alpha": [0.001 * i for i in range(5000)]},
        }
        status, payload = request(server.port, "POST", "/sweep", body)
        assert status == 400
        assert "limit" in payload["error"]
