"""Regression lock on the ``method="auto"`` selection boundaries.

The three-tier selector is documented in
:func:`repro.api._resolve_auto`: with ``cap`` the exact-engine state
budget (the ``max_states`` option, defaulting to the sparse engine's
:data:`~repro.core.sparse.DEFAULT_MAX_STATES`) and ``states`` the
transient-space size ``B (k+1)(s+1)``,

* ``states <= cap``                            → ``exact``
* ``cap < states <= MEANFIELD_STATE_FACTOR*cap`` → ``batch``
* above                                          → ``meanfield``

These tests pin the thresholds *exactly* — both comparisons are
inclusive on the left tier — so a future off-by-one in the selector
fails here rather than silently shifting which engine answers
production queries.
"""

import pytest

from repro.api import (
    MEANFIELD_STATE_FACTOR,
    ModelParams,
    Query,
    solve,
)
from repro.core.methods import Method
from repro.core.sparse import DEFAULT_MAX_STATES

#: 10 * 4 * 7 = 280 transient states.
PARAMS = ModelParams(num_pieces=10, max_conns=3, ns_size=6)
STATES = 280


class TestDocumentedThresholds:
    @pytest.mark.parametrize(
        ("max_states", "expected"),
        [
            # Exact exactly up to the cap (inclusive).
            (STATES, Method.EXACT),
            (STATES + 1, Method.EXACT),
            # One below the cap tips into the batch band.
            (STATES - 1, Method.BATCH),
            # Batch exactly up to factor * cap (inclusive)...
            (STATES // MEANFIELD_STATE_FACTOR, Method.BATCH),
            # ...and one below that boundary tips into mean-field.
            (STATES // MEANFIELD_STATE_FACTOR - 1, Method.MEANFIELD),
            (1, Method.MEANFIELD),
        ],
        ids=[
            "cap-equals-states",
            "cap-above-states",
            "cap-one-below",
            "factor-boundary",
            "factor-one-below",
            "cap-minimal",
        ],
    )
    def test_max_states_boundaries(self, max_states, expected):
        query = Query.make(PARAMS, "download_time", max_states=max_states)
        assert query.method is expected

    def test_factor_boundary_is_the_documented_multiple(self):
        # The table above relies on 280 dividing evenly by the factor;
        # keep that assumption explicit so a factor change re-derives it.
        assert STATES % MEANFIELD_STATE_FACTOR == 0

    def test_default_cap_small_space_is_exact(self):
        assert STATES <= DEFAULT_MAX_STATES
        assert Query.make(PARAMS, "download_time").method is Method.EXACT

    def test_default_cap_mid_band_is_batch(self):
        mid = ModelParams(num_pieces=500, max_conns=20, ns_size=50)
        states = 500 * 21 * 51
        assert DEFAULT_MAX_STATES < states
        assert states <= MEANFIELD_STATE_FACTOR * DEFAULT_MAX_STATES
        assert Query.make(mid, "download_time").method is Method.BATCH

    def test_default_cap_large_space_is_meanfield(self):
        big = ModelParams(num_pieces=2000, max_conns=30, ns_size=60)
        states = 2000 * 31 * 61
        assert states > MEANFIELD_STATE_FACTOR * DEFAULT_MAX_STATES
        assert Query.make(big, "download_time").method is Method.MEANFIELD

    @pytest.mark.parametrize(
        "quantity", ["timeline", "download_time", "phases", "potential_ratio"]
    )
    def test_every_meanfield_quantity_uses_the_selector(self, quantity):
        query = Query.make(PARAMS, quantity, max_states=1)
        assert query.method is Method.MEANFIELD

    def test_transient_stays_exact_at_any_scale(self):
        big = ModelParams(num_pieces=2000, max_conns=30, ns_size=60)
        assert Query.make(big, "transient", horizon=5).method is Method.EXACT


class TestResolvedMethodReporting:
    def test_max_states_leaves_the_resolved_query(self):
        # The steering option must not leak into engines that cannot
        # consume it (it would fail option validation there).
        for max_states, resolved in (
            (100, Method.BATCH),
            (1, Method.MEANFIELD),
        ):
            query = Query.make(
                PARAMS, "download_time", max_states=max_states
            )
            assert query.method is resolved
            assert dict(query.options) == {}

    def test_result_reports_meanfield_resolution(self):
        result = solve(PARAMS, "download_time", "auto", max_states=1)
        assert result.method is Method.MEANFIELD
        assert result.payload.method == "meanfield"
        assert result.to_dict()["method"] == "meanfield"

    def test_result_reports_exact_resolution(self):
        result = solve(PARAMS, "download_time", "auto")
        assert result.method is Method.EXACT
        assert result.payload.method == "exact"
