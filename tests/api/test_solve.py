"""Tests for the unified `repro.api.solve` front door.

Covers the quantity/method vocabulary, ``auto`` resolution, option
validation, the JSON view, and — the contract the deprecation shims
promise — bit-identical results between each historical entry point and
the `solve()` call that replaces it.
"""

import json

import numpy as np
import pytest

import repro
from repro.api import DownloadTimeResult, ModelParams, Quantity, Query, solve
from repro.core.exact import (
    PotentialRatioExact,
    TransientResult,
    exact_potential_ratio,
    propagate_distribution,
)
from repro.core.methods import Method
from repro.core.sparse import solve_fundamental
from repro.core.timeline import (
    PhaseStatistics,
    TimelineResult,
    mean_timeline,
    phase_duration_statistics,
)
from repro.errors import ParameterError
from repro.runtime.cache import KernelCache


@pytest.fixture
def params():
    return ModelParams(num_pieces=10, max_conns=3, ns_size=6)


@pytest.fixture
def cache():
    return KernelCache()


class TestVocabulary:
    @pytest.mark.parametrize(
        "alias, quantity",
        [
            ("ratio", Quantity.POTENTIAL_RATIO),
            ("fig1a", Quantity.POTENTIAL_RATIO),
            ("first_passage", Quantity.TIMELINE),
            ("mean_download_time", Quantity.DOWNLOAD_TIME),
            ("TTD", Quantity.DOWNLOAD_TIME),
            ("phase_durations", Quantity.PHASES),
            ("distribution", Quantity.TRANSIENT),
        ],
    )
    def test_quantity_aliases(self, alias, quantity):
        assert Quantity.parse(alias) is quantity

    def test_unknown_quantity_lists_choices(self, params):
        with pytest.raises(ParameterError) as excinfo:
            solve(params, "magic")
        message = str(excinfo.value)
        assert "unknown quantity 'magic'" in message
        assert "'potential_ratio'" in message
        assert "aliases" in message

    def test_non_string_quantity_rejected(self, params):
        with pytest.raises(ParameterError, match="quantity must be a string"):
            solve(params, 7)

    def test_disallowed_method_lists_choices(self, params):
        with pytest.raises(ParameterError) as excinfo:
            solve(params, "timeline", method="dict")
        message = str(excinfo.value)
        assert "method 'dict' is not valid here" in message
        assert "'exact'" in message and "'batch'" in message

    def test_unknown_option_lists_accepted(self, params):
        with pytest.raises(ParameterError) as excinfo:
            solve(params, "timeline", method="exact", runs=8)
        message = str(excinfo.value)
        assert "unknown option(s) ['runs']" in message
        assert "drop_tol" in message


class TestAutoResolution:
    def test_small_space_goes_exact(self, params):
        assert Query.make(params, "timeline").method is Method.EXACT

    def test_large_space_goes_batch(self):
        big = ModelParams(num_pieces=500, max_conns=20, ns_size=50)
        assert Query.make(big, "timeline").method is Method.BATCH

    def test_max_states_option_steers_auto(self, params):
        # params has 280 transient states: over a cap of 100 but within
        # the 8x batch band, so auto lands on the sampler.
        query = Query.make(params, "download_time", max_states=100)
        assert query.method is Method.BATCH

    def test_transient_auto_is_exact(self):
        big = ModelParams(num_pieces=500, max_conns=20, ns_size=50)
        assert Query.make(big, "transient", horizon=5).method is Method.EXACT


class TestQueryCacheKey:
    def test_identical_queries_share_a_key(self, params):
        a = Query.make(params, "download_time", "exact")
        b = Query.make(params, "download_time", "exact")
        assert a.cache_key() == b.cache_key()

    def test_pinned_value(self, params):
        assert Query.make(params, "download_time", "exact").cache_key() == (
            "cd6fb9fec63159dd3cd62f3498ffac79bdc9eb75d1c53ed1f10410e27282c623"
        )

    def test_method_quantity_and_options_distinguish(self, params):
        base = Query.make(params, "timeline", "batch", runs=8, seed=0)
        assert (
            Query.make(params, "timeline", "serial", runs=8, seed=0).cache_key()
            != base.cache_key()
        )
        assert (
            Query.make(params, "timeline", "batch", runs=9, seed=0).cache_key()
            != base.cache_key()
        )
        assert (
            Query.make(params, "phases", "batch", runs=8, seed=0).cache_key()
            != base.cache_key()
        )

    def test_option_order_is_canonical(self, params):
        a = Query.make(params, "timeline", "batch", runs=8, seed=0)
        b = Query.make(params, "timeline", "batch", seed=0, runs=8)
        assert a.options == b.options
        assert a.cache_key() == b.cache_key()


class TestDispatch:
    def test_potential_ratio_payload_types(self, params, cache):
        exact = solve(params, "potential_ratio", "exact", cache=cache)
        assert isinstance(exact.payload, PotentialRatioExact)
        assert exact.stats["transient_states"] > 0
        sampled = solve(
            params, "potential_ratio", "batch", cache=cache, runs=4, seed=0
        )
        assert sampled.payload.observations.shape[0] > 0

    def test_timeline_payload(self, params, cache):
        result = solve(params, "timeline", "exact", cache=cache)
        assert isinstance(result.payload, TimelineResult)
        assert result.payload.runs == 0
        assert result.payload.mean_steps.shape == (params.num_pieces + 1,)

    def test_download_time_payload(self, params, cache):
        result = solve(params, "download_time", "exact", cache=cache)
        assert isinstance(result.payload, DownloadTimeResult)
        assert result.payload.runs == 0
        assert result.payload.mean > 0

    def test_phases_payload(self, params, cache):
        result = solve(params, "phases", "exact", cache=cache)
        assert isinstance(result.payload, PhaseStatistics)

    def test_transient_payload(self, params, cache):
        result = solve(params, "transient", cache=cache, horizon=5)
        assert isinstance(result.payload, TransientResult)
        assert result.stats == {"horizon": 5}

    def test_transient_requires_horizon(self, params, cache):
        with pytest.raises(ParameterError, match="needs a 'horizon' option"):
            solve(params, "transient", cache=cache)

    def test_result_to_dict_is_json_ready(self, params, cache):
        for quantity, options in [
            ("potential_ratio", {}),
            ("timeline", {}),
            ("download_time", {}),
            ("phases", {}),
            ("transient", {"horizon": 4}),
        ]:
            view = solve(params, quantity, cache=cache, **options).to_dict()
            encoded = json.loads(json.dumps(view))
            assert encoded["quantity"] == quantity
            assert encoded["params"]["num_pieces"] == params.num_pieces

    def test_top_level_export(self, params):
        assert repro.solve is solve
        assert repro.ModelParams is ModelParams


class TestShimEquivalence:
    """The deprecated entry points must match `solve()` bit-for-bit."""

    def test_exact_potential_ratio_sparse(self, params, cache):
        with pytest.warns(DeprecationWarning, match="exact_potential_ratio"):
            old = exact_potential_ratio(cache.chain(params))
        new = solve(params, "potential_ratio", "exact", cache=cache).payload
        assert np.array_equal(old.ratio, new.ratio, equal_nan=True)
        assert np.array_equal(old.occupancy, new.occupancy)
        assert old.pruned_mass == new.pruned_mass

    def test_exact_potential_ratio_dict(self, params, cache):
        with pytest.warns(DeprecationWarning):
            old = exact_potential_ratio(
                cache.chain(params), method="dict", horizon=40
            )
        new = solve(
            params, "potential_ratio", "dict", cache=cache, horizon=40
        ).payload
        assert np.array_equal(old.ratio, new.ratio, equal_nan=True)
        assert old.pruned_mass == new.pruned_mass

    def test_propagate_distribution(self, params, cache):
        with pytest.warns(DeprecationWarning, match="propagate_distribution"):
            old = propagate_distribution(cache.chain(params), 6)
        new = solve(params, "transient", cache=cache, horizon=6).payload
        assert np.array_equal(old.completion_pmf, new.completion_pmf)
        assert np.array_equal(old.expected_pieces, new.expected_pieces)
        assert old.pruned_mass == new.pruned_mass

    @pytest.mark.parametrize("method, batch", [("batch", True), ("serial", False)])
    def test_mean_timeline(self, params, cache, method, batch):
        with pytest.warns(DeprecationWarning, match="mean_timeline"):
            old = mean_timeline(
                cache.chain(params), runs=8, seed=3, batch=batch
            )
        new = solve(
            params, "timeline", method, cache=cache, runs=8, seed=3
        ).payload
        assert np.array_equal(old.mean_steps, new.mean_steps, equal_nan=True)
        assert np.array_equal(old.std_steps, new.std_steps, equal_nan=True)
        assert old.runs == new.runs

    def test_solve_fundamental_moments(self, params, cache):
        with pytest.warns(DeprecationWarning, match="solve_fundamental"):
            old = solve_fundamental(cache.chain(params))
        new = solve(params, "download_time", "exact", cache=cache).payload
        assert old.mean_download_time == new.mean
        assert old.variance_download_time == new.variance
        timeline = solve(params, "timeline", "exact", cache=cache).payload
        assert np.array_equal(old.timeline, timeline.mean_steps)

    def test_phases_matches_direct_call(self, params, cache):
        direct = phase_duration_statistics(
            cache.chain(params), method=Method.EXACT
        )
        via_solve = solve(params, "phases", "exact", cache=cache).payload
        assert direct.mean == via_solve.mean
        assert direct.occupancy == via_solve.occupancy
