"""One parametrized lock on the whole deprecated-shim layer.

Each historical entry point retired by the unified ``solve()`` front
door survives as a thin forwarding shim.  The shim contract has two
halves, and this test pins both for every shim in one table:

* exactly **one** ``DeprecationWarning`` per call — a refactor that
  routes a shim through another shim would double-warn, and one that
  drops the warning would silently un-deprecate it;
* **bit-identical** payloads against the equivalent ``solve()`` call —
  the promise that let historical callers migrate without re-validating
  their numbers, which future backend edits must not erode.
"""

import dataclasses
import warnings
from typing import Callable

import numpy as np
import pytest

from repro.api import ModelParams, solve
from repro.core.exact import exact_potential_ratio, propagate_distribution
from repro.core.sparse import solve_fundamental
from repro.core.timeline import mean_timeline


@pytest.fixture
def params():
    return ModelParams(num_pieces=10, max_conns=3, ns_size=6)


@dataclasses.dataclass(frozen=True)
class ShimCase:
    """One deprecated entry point and its ``solve()`` replacement.

    Attributes:
        name: the shim's public name (also the expected substring of
            its warning message).
        call_shim: invokes the deprecated entry point.
        call_solve: invokes the equivalent ``solve()`` query.
        pairs: maps ``(old, new)`` results to the value pairs that must
            match bit-for-bit.
    """

    name: str
    call_shim: Callable
    call_solve: Callable
    pairs: Callable


SHIMS = (
    ShimCase(
        name="exact_potential_ratio",
        call_shim=lambda chain, params: exact_potential_ratio(chain),
        call_solve=lambda params: solve(
            params, "potential_ratio", "exact"
        ).payload,
        pairs=lambda old, new: [
            (old.ratio, new.ratio),
            (old.occupancy, new.occupancy),
            (old.pruned_mass, new.pruned_mass),
        ],
    ),
    ShimCase(
        name="propagate_distribution",
        call_shim=lambda chain, params: propagate_distribution(chain, 6),
        call_solve=lambda params: solve(
            params, "transient", horizon=6
        ).payload,
        pairs=lambda old, new: [
            (old.completion_pmf, new.completion_pmf),
            (old.completion_cdf, new.completion_cdf),
            (old.expected_pieces, new.expected_pieces),
            (old.expected_potential, new.expected_potential),
            (old.pruned_mass, new.pruned_mass),
        ],
    ),
    ShimCase(
        name="solve_fundamental",
        call_shim=lambda chain, params: solve_fundamental(chain),
        call_solve=lambda params: solve(
            params, "download_time", "exact"
        ).payload,
        pairs=lambda old, new: [
            (old.mean_download_time, new.mean),
            (old.std_download_time, new.std),
            (old.variance_download_time, new.variance),
        ],
    ),
    ShimCase(
        name="mean_timeline",
        call_shim=lambda chain, params: mean_timeline(
            chain, runs=8, seed=3, batch=True
        ),
        call_solve=lambda params: solve(
            params, "timeline", "batch", runs=8, seed=3
        ).payload,
        pairs=lambda old, new: [
            (old.mean_steps, new.mean_steps),
            (old.std_steps, new.std_steps),
            (old.runs, new.runs),
        ],
    ),
)


@pytest.mark.parametrize("case", SHIMS, ids=[case.name for case in SHIMS])
def test_shim_warns_once_and_matches_solve(case, params):
    from repro.runtime.cache import shared_cache

    chain = shared_cache().chain(params)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        old = case.call_shim(chain, params)
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1, (
        f"{case.name} emitted {len(deprecations)} DeprecationWarnings, "
        f"expected exactly 1"
    )
    assert case.name in str(deprecations[0].message)
    assert "repro.api.solve" in str(deprecations[0].message)

    new = case.call_solve(params)
    for index, (old_value, new_value) in enumerate(case.pairs(old, new)):
        if isinstance(old_value, np.ndarray):
            assert np.array_equal(old_value, new_value, equal_nan=True), (
                f"{case.name} pair {index} differs"
            )
        else:
            assert old_value == new_value, f"{case.name} pair {index} differs"
