"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.parameters import ModelParameters
from repro.sim.config import SimConfig


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_params() -> ModelParameters:
    """A small model parameter set (fast exact analysis possible)."""
    return ModelParameters(num_pieces=10, max_conns=3, ns_size=6)


@pytest.fixture
def small_config() -> SimConfig:
    """A small, fast swarm configuration."""
    return SimConfig(
        num_pieces=20,
        max_conns=3,
        ns_size=10,
        arrival_process="poisson",
        arrival_rate=1.0,
        initial_leechers=15,
        initial_distribution="uniform",
        initial_fill=0.5,
        num_seeds=1,
        seed_upload_slots=2,
        optimistic_unchoke_prob=0.5,
        max_time=60.0,
        seed=7,
    )
