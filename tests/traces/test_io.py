"""Tests for trace persistence."""

import json

import pytest

from repro.errors import TraceError
from repro.traces.io import read_trace_jsonl, write_trace_csv, write_trace_jsonl
from repro.traces.schema import ClientTrace, TraceSample


def sample_trace(client="c1", n=5):
    trace = ClientTrace(
        client_id=client,
        swarm_id="swarm-x",
        num_pieces=10,
        piece_size_bytes=100,
        started_at=0.0,
        completed_at=float(n) if n >= 10 else None,
    )
    for idx in range(n):
        trace.append(TraceSample(float(idx), idx * 100, idx % 4, idx % 3))
    return trace


class TestJsonlRoundTrip:
    def test_single_trace(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        original = sample_trace()
        write_trace_jsonl([original], path)
        loaded = read_trace_jsonl(path)
        assert len(loaded) == 1
        restored = loaded[0]
        assert restored.client_id == original.client_id
        assert restored.swarm_id == original.swarm_id
        assert restored.num_pieces == original.num_pieces
        assert restored.times() == original.times()
        assert restored.bytes_series() == original.bytes_series()
        assert restored.potential_series() == original.potential_series()

    def test_multiple_traces(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        traces = [sample_trace("a", 3), sample_trace("b", 7)]
        write_trace_jsonl(traces, path)
        loaded = read_trace_jsonl(path)
        assert [t.client_id for t in loaded] == ["a", "b"]
        assert [len(t.samples) for t in loaded] == [3, 7]

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        write_trace_jsonl([], path)
        assert read_trace_jsonl(path) == []

    def test_completed_at_preserved(self, tmp_path):
        path = tmp_path / "t.jsonl"
        trace = sample_trace()
        trace.completed_at = 42.0
        write_trace_jsonl([trace], path)
        assert read_trace_jsonl(path)[0].completed_at == 42.0


class TestJsonlErrors:
    def test_sample_before_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"type": "sample", "t": 1, "bytes": 0,
                                    "pss": 0, "conns": 0}) + "\n")
        with pytest.raises(TraceError):
            read_trace_jsonl(path)

    def test_unknown_record_type(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"type": "mystery"}) + "\n")
        with pytest.raises(TraceError):
            read_trace_jsonl(path)

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(TraceError):
            read_trace_jsonl(path)

    def test_sample_count_mismatch(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        header = {
            "type": "header", "client_id": "c", "swarm_id": "s",
            "num_pieces": 4, "piece_size_bytes": 10, "started_at": 0.0,
            "completed_at": None, "num_samples": 2,
        }
        sample = {"type": "sample", "t": 1.0, "bytes": 0, "pss": 0, "conns": 0}
        path.write_text(json.dumps(header) + "\n" + json.dumps(sample) + "\n")
        with pytest.raises(TraceError):
            read_trace_jsonl(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace_jsonl([sample_trace(n=2)], path)
        content = path.read_text()
        path.write_text(content.replace("\n", "\n\n"))
        assert len(read_trace_jsonl(path)[0].samples) == 2


class TestCsv:
    def test_export(self, tmp_path):
        path = tmp_path / "t.csv"
        write_trace_csv(sample_trace(n=3), path)
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("time,")
        assert len(lines) == 4
