"""Tests for trace analysis (segmentation, classification, swarm filter)."""

import pytest

from repro.errors import ParameterError, TraceError
from repro.traces.analysis import (
    classify_swarm,
    classify_trace,
    download_rate_series,
    phase_segments,
    summarize_trace,
)
from repro.traces.schema import ClientTrace, TraceSample


def build_trace(rows, *, num_pieces=10, piece_size=100):
    """rows: list of (time, pieces_downloaded, potential_size)."""
    trace = ClientTrace(
        client_id="c",
        swarm_id="s",
        num_pieces=num_pieces,
        piece_size_bytes=piece_size,
        started_at=rows[0][0] if rows else 0.0,
    )
    for time, pieces, pss in rows:
        trace.append(TraceSample(time, pieces * piece_size, pss, min(pss, 4)))
    return trace


def smooth_rows(num_pieces=10):
    return [(float(t), min(t, num_pieces), 8) for t in range(num_pieces + 2)]


def bootstrap_rows(stall=10, num_pieces=10):
    rows = [(float(t), 1 if t > 0 else 0, 0) for t in range(stall)]
    start = stall
    for j in range(2, num_pieces + 1):
        rows.append((float(start), j, 5))
        start += 1
    return rows


def last_phase_rows(tail=10, num_pieces=10):
    rows = [(float(t), min(t, num_pieces - 1), 6) for t in range(num_pieces)]
    t0 = len(rows)
    for t in range(tail):
        rows.append((float(t0 + t), num_pieces - 1, 1))
    rows.append((float(t0 + tail), num_pieces, 1))
    return rows


class TestPhaseSegments:
    def test_smooth_trace(self):
        segments = phase_segments(build_trace(smooth_rows()))
        assert segments.bootstrap <= 1.0
        assert segments.efficient > 0

    def test_bootstrap_trace(self):
        segments = phase_segments(build_trace(bootstrap_rows()))
        assert segments.bootstrap >= 8.0

    def test_last_phase_trace(self):
        segments = phase_segments(build_trace(last_phase_rows()))
        assert segments.last >= 5.0

    def test_durations_sum_to_total(self):
        segments = phase_segments(build_trace(last_phase_rows()))
        assert segments.bootstrap + segments.efficient + segments.last == (
            pytest.approx(segments.total)
        )

    def test_empty_trace_rejected(self):
        trace = ClientTrace("c", "s", 10, 100, 0.0)
        with pytest.raises(TraceError):
            phase_segments(trace)


class TestClassifyTrace:
    def test_smooth(self):
        assert classify_trace(build_trace(smooth_rows())) == "smooth"

    def test_bootstrap(self):
        assert classify_trace(build_trace(bootstrap_rows(stall=12))) == "bootstrap"

    def test_last(self):
        assert classify_trace(build_trace(last_phase_rows(tail=12))) == "last"

    def test_short_stall_not_bootstrap(self):
        assert classify_trace(build_trace(bootstrap_rows(stall=3))) == "smooth"

    def test_threshold_configurable(self):
        trace = build_trace(bootstrap_rows(stall=5))
        assert classify_trace(trace, significant_samples=4) == "bootstrap"

    def test_empty(self):
        trace = ClientTrace("c", "s", 10, 100, 0.0)
        assert classify_trace(trace) == "empty"

    def test_completion_samples_not_counted_as_starved(self):
        # A finished download sitting at 100% with pss 0 is not "last".
        rows = [(float(t), min(t, 10), 8) for t in range(11)]
        rows += [(float(11 + t), 10, 0) for t in range(20)]
        assert classify_trace(build_trace(rows)) == "smooth"


class TestDownloadRate:
    def test_constant_rate(self):
        trace = build_trace(smooth_rows())
        times, rates = download_rate_series(trace, window=3.0)
        # Mid-trace the rate is one piece (100 bytes) per unit time.
        assert rates[5] == pytest.approx(100.0)

    def test_zero_rate_during_stall(self):
        trace = build_trace(bootstrap_rows())
        _times, rates = download_rate_series(trace, window=3.0)
        assert rates[6] == pytest.approx(0.0)

    def test_window_validation(self):
        with pytest.raises(ParameterError):
            download_rate_series(build_trace(smooth_rows()), window=0.0)

    def test_short_trace(self):
        trace = build_trace([(0.0, 0, 0)])
        times, rates = download_rate_series(trace)
        assert rates.tolist() == [0.0]


class TestClassifySwarm:
    def _log(self, totals, step=30.0):
        return [(idx * step, total, 1) for idx, total in enumerate(totals)]

    def test_stable(self):
        log = self._log([100] * 12)
        assert classify_swarm(log, resolution=60.0) == "stable"

    def test_flash_crowd(self):
        log = self._log([10, 10, 30, 60, 120, 240, 480, 900, 1600, 3000])
        assert classify_swarm(log, resolution=60.0) == "flash_crowd"

    def test_dying(self):
        log = self._log([1000, 800, 500, 300, 150, 60, 20, 5, 2, 1])
        assert classify_swarm(log, resolution=60.0) == "dying"

    def test_unknown_short(self):
        assert classify_swarm(self._log([10, 10]), resolution=60.0) == "unknown"

    def test_unknown_empty(self):
        assert classify_swarm([]) == "unknown"


class TestSummarize:
    def test_fields(self):
        trace = build_trace(smooth_rows())
        summary = summarize_trace(trace)
        assert summary["client_id"] == "c"
        assert summary["complete"] is True
        assert summary["dominant_phase"] == "smooth"
        assert summary["samples"] == len(trace.samples)
