"""Tests for the trace schema."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceError
from repro.traces.schema import ClientTrace, TraceSample


def make_trace(samples=(), **over):
    kwargs = dict(
        client_id="c1",
        swarm_id="s1",
        num_pieces=10,
        piece_size_bytes=100,
        started_at=0.0,
    )
    kwargs.update(over)
    trace = ClientTrace(**kwargs)
    for sample in samples:
        trace.append(sample)
    return trace


class TestTraceSample:
    def test_valid(self):
        sample = TraceSample(1.0, 100, 3, 2)
        assert sample.cumulative_bytes == 100

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(time=1.0, cumulative_bytes=-1, potential_set_size=0, active_connections=0),
            dict(time=1.0, cumulative_bytes=0, potential_set_size=-1, active_connections=0),
            dict(time=1.0, cumulative_bytes=0, potential_set_size=0, active_connections=-1),
        ],
    )
    def test_negative_rejected(self, kwargs):
        with pytest.raises(TraceError):
            TraceSample(**kwargs)


class TestClientTrace:
    def test_file_size(self):
        assert make_trace().file_size_bytes == 1000

    def test_append_and_series(self):
        trace = make_trace([
            TraceSample(1.0, 100, 2, 1),
            TraceSample(2.0, 200, 3, 2),
        ])
        assert trace.times() == [1.0, 2.0]
        assert trace.bytes_series() == [100, 200]
        assert trace.potential_series() == [2, 3]
        assert trace.connection_series() == [1, 2]

    def test_append_time_regression_rejected(self):
        trace = make_trace([TraceSample(2.0, 100, 0, 0)])
        with pytest.raises(TraceError):
            trace.append(TraceSample(1.0, 100, 0, 0))

    def test_append_bytes_regression_rejected(self):
        trace = make_trace([TraceSample(1.0, 200, 0, 0)])
        with pytest.raises(TraceError):
            trace.append(TraceSample(2.0, 100, 0, 0))

    def test_append_beyond_file_size_rejected(self):
        trace = make_trace()
        with pytest.raises(TraceError):
            trace.append(TraceSample(1.0, 1100, 0, 0))

    def test_is_complete(self):
        trace = make_trace([TraceSample(1.0, 1000, 0, 0)])
        assert trace.is_complete
        assert not make_trace().is_complete

    def test_pieces_downloaded(self):
        trace = make_trace([TraceSample(1.0, 350, 0, 0)])
        assert trace.pieces_downloaded() == 3

    def test_duration(self):
        trace = make_trace(started_at=2.0, completed_at=12.0)
        assert trace.duration() == 10.0
        assert make_trace().duration() is None

    def test_invalid_metadata(self):
        with pytest.raises(TraceError):
            make_trace(num_pieces=0)
        with pytest.raises(TraceError):
            make_trace(piece_size_bytes=0)

    def test_validate_catches_constructed_violations(self):
        trace = make_trace()
        trace.samples.append(TraceSample(5.0, 100, 0, 0))
        trace.samples.append(TraceSample(4.0, 200, 0, 0))  # time regression
        with pytest.raises(TraceError):
            trace.validate()

    @given(
        byte_steps=st.lists(
            st.integers(min_value=0, max_value=100), min_size=1, max_size=30
        )
    )
    @settings(max_examples=40)
    def test_property_monotone_appends_accepted(self, byte_steps):
        trace = make_trace(num_pieces=100, piece_size_bytes=100)
        total = 0
        for idx, step in enumerate(byte_steps):
            total = min(total + step, trace.file_size_bytes)
            trace.append(TraceSample(float(idx), total, 0, 0))
        trace.validate()
        assert len(trace.samples) == len(byte_steps)
