"""Tests for the Figure-2 archetype generator."""

import pytest

from repro.errors import ParameterError
from repro.traces.analysis import classify_trace
from repro.traces.synthetic import (
    ARCHETYPES,
    archetype_config,
    generate_archetype,
)


class TestArchetypeConfigs:
    @pytest.mark.parametrize("kind", sorted(ARCHETYPES))
    def test_configs_valid(self, kind):
        config = archetype_config(kind)
        assert config.num_pieces > 0

    def test_unknown_kind(self):
        with pytest.raises(ParameterError):
            archetype_config("typo")

    def test_smooth_has_large_ns(self):
        smooth = archetype_config("smooth")
        last = archetype_config("last")
        assert smooth.ns_size > last.ns_size

    def test_bootstrap_has_high_fill(self):
        assert archetype_config("bootstrap").initial_fill > 0.8

    def test_seed_varies_config(self):
        assert archetype_config("smooth", seed=1).seed == 1


class TestGenerateArchetype:
    @pytest.mark.parametrize("kind", sorted(ARCHETYPES))
    def test_generates_matching_trace(self, kind):
        trace, config = generate_archetype(kind, seed=0)
        assert classify_trace(trace) == ARCHETYPES[kind].expected_phase
        assert trace.num_pieces == config.num_pieces
        trace.validate()

    def test_unknown_kind(self):
        with pytest.raises(ParameterError):
            generate_archetype("typo")

    def test_exhausted_attempts_reported(self, monkeypatch):
        # Force the classifier to never match.
        import repro.traces.synthetic as synthetic

        monkeypatch.setattr(
            synthetic, "classify_trace", lambda trace: "nothing"
        )
        with pytest.raises(RuntimeError):
            generate_archetype("smooth", seed=0, max_attempts=2)
