"""Tests for trace collection from simulated swarms."""

import pytest

from repro.errors import ParameterError
from repro.sim.peer import Peer
from repro.traces.collector import collect_traces, trace_from_peer


class TestTraceFromPeer:
    def test_requires_instrumented(self):
        peer = Peer(1, 10)
        with pytest.raises(ParameterError):
            trace_from_peer(peer, swarm_id="s", num_pieces=10, piece_size_bytes=100)

    def test_reconstructs_cumulative_bytes(self):
        peer = Peer(1, 4, joined_at=0.0, instrumented=True)
        # Pieces at t = 1, 2, 2; rounds sampled at t = 1, 2, 3.
        for piece, t in [(0, 1.0), (1, 2.0), (2, 2.0)]:
            peer.bitfield.add(piece)
            peer.record_piece(t)
        peer.stats.potential_series = [(1.0, 2), (2.0, 3), (3.0, 1)]
        peer.stats.connection_series = [(1.0, 1), (2.0, 2), (3.0, 1)]
        trace = trace_from_peer(
            peer, swarm_id="s", num_pieces=4, piece_size_bytes=100
        )
        assert trace.bytes_series() == [100, 300, 300]
        assert trace.potential_series() == [2, 3, 1]
        assert trace.connection_series() == [1, 2, 1]


class TestCollectTraces:
    def test_collects_requested_clients(self, small_config):
        traces = collect_traces(small_config, 3, avoid_seeds=False)
        assert len(traces) == 3
        for trace in traces:
            assert trace.num_pieces == small_config.num_pieces
            trace.validate()

    def test_swarm_id_recorded(self, small_config):
        traces = collect_traces(small_config, 1, swarm_id="my-swarm")
        assert traces[0].swarm_id == "my-swarm"

    def test_invalid_count(self, small_config):
        with pytest.raises(ParameterError):
            collect_traces(small_config, 0)

    def test_traces_have_samples(self, small_config):
        traces = collect_traces(small_config, 2)
        assert all(len(t.samples) > 0 for t in traces)
