"""Tests for the ASCII chart renderer."""

import numpy as np
import pytest

from repro.analysis.reporting import ascii_chart
from repro.errors import ParameterError


class TestAsciiChart:
    def test_basic_structure(self):
        text = ascii_chart({"a": [0, 1, 2, 3]}, width=20, height=5,
                           title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert len(lines) == 1 + 5 + 2  # title + rows + axis + legend
        assert "* a" in lines[-1]

    def test_extremes_labeled(self):
        text = ascii_chart({"a": [2.0, 10.0]}, width=10, height=4)
        assert "10" in text
        assert "2" in text

    def test_two_series_distinct_glyphs(self):
        text = ascii_chart({"up": [0, 1], "down": [1, 0]}, width=10, height=4)
        assert "*" in text and "o" in text
        assert "up" in text and "down" in text

    def test_flat_series_renders(self):
        text = ascii_chart({"flat": [5.0, 5.0, 5.0]}, width=10, height=4)
        assert text.count("*") >= 1

    def test_nan_values_skipped(self):
        values = [0.0, np.nan, 2.0]
        text = ascii_chart({"a": values}, width=9, height=4)
        assert "*" in text

    def test_monotone_series_slopes(self):
        text = ascii_chart({"a": list(range(50))}, width=30, height=6)
        rows = [line[12:] for line in text.splitlines()[:6]]
        first_cols = [row.find("*") for row in rows if "*" in row]
        # Higher values (earlier rows) appear further right.
        assert first_cols == sorted(first_cols, reverse=True)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(series={}),
            dict(series={"a": [1.0]}, width=4),
            dict(series={"a": [1.0]}, height=2),
            dict(series={"a": [np.nan]}),
        ],
    )
    def test_validation(self, kwargs):
        series = kwargs.pop("series")
        with pytest.raises(ParameterError):
            ascii_chart(series, **kwargs)

    def test_too_many_series_rejected(self):
        series = {f"s{i}": [0, 1] for i in range(9)}
        with pytest.raises(ParameterError):
            ascii_chart(series)
