"""Tests for validation metrics and figure shape predicates."""

import numpy as np
import pytest

from repro.analysis.validation import (
    compare_series,
    efficiency_shape,
    potential_ratio_shape,
    timeline_shape,
)
from repro.errors import ParameterError


class TestCompareSeries:
    def test_identical(self):
        a = np.array([1.0, 2.0, 3.0])
        comparison = compare_series(a, a)
        assert comparison.rmse == 0.0
        assert comparison.max_abs_error == 0.0
        assert comparison.correlation == pytest.approx(1.0)

    def test_known_offset(self):
        a = np.array([1.0, 2.0, 3.0])
        comparison = compare_series(a + 1.0, a)
        assert comparison.rmse == pytest.approx(1.0)
        assert comparison.max_abs_error == pytest.approx(1.0)

    def test_nan_handling(self):
        a = np.array([1.0, np.nan, 3.0])
        b = np.array([1.0, 2.0, 3.5])
        comparison = compare_series(a, b)
        assert comparison.max_abs_error == pytest.approx(0.5)

    def test_constant_series_nan_correlation(self):
        comparison = compare_series(np.ones(4), np.ones(4))
        assert np.isnan(comparison.correlation)

    def test_mismatched_shapes(self):
        with pytest.raises(ParameterError):
            compare_series(np.ones(3), np.ones(4))

    def test_all_nan_rejected(self):
        with pytest.raises(ParameterError):
            compare_series(np.full(3, np.nan), np.ones(3))


class TestPotentialRatioShape:
    def _ideal(self, num_pieces=100):
        pieces = np.arange(num_pieces + 1)
        # 0.5 at the edges, ~0.95 mid (the paper's Figure 1(a) shape).
        ratio = 0.5 + 0.45 * np.sin(np.pi * pieces / num_pieces)
        ratio[0] = 0.0
        return pieces, ratio

    def test_ideal_passes(self):
        pieces, ratio = self._ideal()
        checks = potential_ratio_shape(pieces, ratio)
        assert checks["mid_high"]
        assert checks["rises_from_start"]
        assert checks["falls_to_end"]

    def test_flat_low_curve_fails(self):
        pieces = np.arange(101)
        checks = potential_ratio_shape(pieces, np.full(101, 0.3))
        assert not checks["mid_high"]

    def test_monotone_rising_fails_fall_check(self):
        pieces = np.arange(101)
        checks = potential_ratio_shape(pieces, np.linspace(0, 1, 101))
        assert not checks["falls_to_end"]

    def test_too_short_rejected(self):
        with pytest.raises(ParameterError):
            potential_ratio_shape(np.arange(4), np.ones(4))


class TestTimelineShape:
    def test_valid_timeline(self):
        steps = np.linspace(0, 30, 11)
        checks = timeline_shape(steps, num_pieces=10, max_conns=2)
        assert checks["monotone"]
        assert checks["respects_parallelism_bound"]
        assert checks["finite"]

    def test_non_monotone_detected(self):
        steps = np.array([0.0, 2.0, 1.0, 3.0])
        checks = timeline_shape(steps, num_pieces=3, max_conns=1)
        assert not checks["monotone"]

    def test_too_fast_detected(self):
        steps = np.linspace(0, 2, 11)  # 10 pieces in 2 rounds at k=2
        checks = timeline_shape(steps, num_pieces=10, max_conns=2)
        assert not checks["respects_parallelism_bound"]

    def test_wrong_length_rejected(self):
        with pytest.raises(ParameterError):
            timeline_shape(np.zeros(5), num_pieces=10, max_conns=2)


class TestEfficiencyShape:
    def test_paper_shape_passes(self):
        k = np.arange(1, 9)
        eta = np.array([0.65, 0.9, 0.92, 0.93, 0.94, 0.94, 0.95, 0.95])
        checks = efficiency_shape(k, eta)
        assert checks["first_gain_dominates"]
        assert checks["first_gain_positive"]
        assert checks["plateau_after_two"]

    def test_monotone_linear_fails_dominance(self):
        k = np.arange(1, 6)
        eta = np.linspace(0.2, 1.0, 5)
        checks = efficiency_shape(k, eta)
        assert not checks["plateau_after_two"] or not checks["first_gain_dominates"]

    def test_must_start_at_one(self):
        with pytest.raises(ParameterError):
            efficiency_shape(np.arange(2, 6), np.ones(4))

    def test_too_short(self):
        with pytest.raises(ParameterError):
            efficiency_shape(np.array([1, 2]), np.array([0.5, 0.9]))
