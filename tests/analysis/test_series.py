"""Tests for series utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.series import bin_series, moving_average, step_interpolate
from repro.errors import ParameterError


class TestBinSeries:
    def test_averages_within_bins(self):
        times = np.array([0.1, 0.2, 1.1, 1.9])
        values = np.array([1.0, 3.0, 10.0, 20.0])
        centers, means = bin_series(times, values, 1.0)
        assert means.tolist() == [2.0, 15.0]

    def test_empty(self):
        centers, means = bin_series(np.array([]), np.array([]), 1.0)
        assert centers.size == 0

    def test_mismatched_shapes(self):
        with pytest.raises(ParameterError):
            bin_series(np.array([1.0]), np.array([1.0, 2.0]), 1.0)

    def test_bad_width(self):
        with pytest.raises(ParameterError):
            bin_series(np.array([1.0]), np.array([1.0]), 0.0)

    def test_gap_bins_dropped(self):
        times = np.array([0.0, 10.0])
        values = np.array([1.0, 2.0])
        centers, means = bin_series(times, values, 1.0)
        assert centers.size == 2


class TestMovingAverage:
    def test_window_one_is_identity(self):
        values = np.array([1.0, 5.0, 3.0])
        np.testing.assert_array_equal(moving_average(values, 1), values)

    def test_smooths(self):
        values = np.array([0.0, 10.0, 0.0, 10.0, 0.0])
        smoothed = moving_average(values, 3)
        assert smoothed[2] == pytest.approx(20.0 / 3)

    def test_edges_shrink(self):
        values = np.array([0.0, 10.0, 0.0])
        smoothed = moving_average(values, 3)
        assert smoothed[0] == pytest.approx(5.0)

    def test_bad_window(self):
        with pytest.raises(ParameterError):
            moving_average(np.array([1.0]), 0)

    @given(
        values=st.lists(
            st.floats(min_value=-100, max_value=100), min_size=1, max_size=40
        ),
        window=st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=50)
    def test_property_bounded_by_extremes(self, values, window):
        arr = np.array(values)
        smoothed = moving_average(arr, window)
        assert smoothed.min() >= arr.min() - 1e-9
        assert smoothed.max() <= arr.max() + 1e-9


class TestStepInterpolate:
    def test_locf(self):
        times = np.array([0.0, 2.0, 4.0])
        values = np.array([1.0, 2.0, 3.0])
        out = step_interpolate(times, values, np.array([0.5, 2.0, 3.9, 10.0]))
        assert out.tolist() == [1.0, 2.0, 2.0, 3.0]

    def test_before_first_sample(self):
        out = step_interpolate(
            np.array([5.0]), np.array([7.0]), np.array([1.0])
        )
        assert out.tolist() == [7.0]

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            step_interpolate(np.array([]), np.array([]), np.array([1.0]))

    def test_unsorted_rejected(self):
        with pytest.raises(ParameterError):
            step_interpolate(
                np.array([2.0, 1.0]), np.array([1.0, 2.0]), np.array([1.5])
            )

    def test_mismatched_rejected(self):
        with pytest.raises(ParameterError):
            step_interpolate(np.array([1.0]), np.array([1.0, 2.0]), np.array([]))
