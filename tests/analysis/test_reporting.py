"""Tests for plain-text reporting."""

import pytest

from repro.analysis.reporting import format_checks, format_series, format_table
from repro.errors import ParameterError


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["a", "bb"], [[1, 2.5], [33, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", " "}

    def test_column_alignment(self):
        text = format_table(["col"], [[1], [100]])
        lines = text.splitlines()
        assert len(lines[2]) == len(lines[3])

    def test_float_formatting(self):
        text = format_table(["x"], [[0.123456789]])
        assert "0.1235" in text

    def test_empty_headers_rejected(self):
        with pytest.raises(ParameterError):
            format_table([], [])

    def test_ragged_row_rejected(self):
        with pytest.raises(ParameterError):
            format_table(["a", "b"], [[1]])

    def test_nan_rendered(self):
        text = format_table(["x"], [[float("nan")]])
        assert "nan" in text


class TestFormatSeries:
    def test_small_series_full(self):
        text = format_series("name", [1, 2], [10, 20])
        assert "name" in text
        assert "10" in text and "20" in text

    def test_downsampling(self):
        xs = list(range(100))
        text = format_series("s", xs, xs, max_rows=10)
        data_lines = text.splitlines()[3:]
        assert len(data_lines) == 10

    def test_endpoints_kept(self):
        xs = list(range(100))
        text = format_series("s", xs, xs, max_rows=10)
        assert " 0" in text
        assert "99" in text

    def test_empty(self):
        assert "(empty)" in format_series("s", [], [])

    def test_mismatched_rejected(self):
        with pytest.raises(ParameterError):
            format_series("s", [1], [1, 2])

    def test_max_rows_validation(self):
        with pytest.raises(ParameterError):
            format_series("s", [1], [1], max_rows=1)

    def test_custom_labels(self):
        text = format_series("s", [1], [2], x_label="time", y_label="peers")
        assert "time" in text and "peers" in text


class TestFormatChecks:
    def test_pass_fail_rendering(self):
        text = format_checks("shape", {"good": True, "bad": False, "value": 1.5})
        assert "[PASS] good" in text
        assert "[FAIL] bad" in text
        assert "value = 1.5" in text
