"""Tests for the streaming-playback analysis."""

import numpy as np
import pytest

from repro.analysis.streaming import (
    availability_times,
    minimal_startup_delay,
    playback_stalls,
    swarm_streaming_summary,
)
from repro.errors import ParameterError


class TestAvailabilityTimes:
    def test_from_log(self):
        log = [(2.0, 1), (1.0, 0), (5.0, 2)]
        avail = availability_times(log, 3)
        assert avail.tolist() == [1.0, 2.0, 5.0]

    def test_prefilled_default_joined_at(self):
        avail = availability_times([(3.0, 1)], 3, joined_at=1.0)
        assert avail.tolist() == [1.0, 3.0, 1.0]

    def test_prefilled_excluded_is_inf(self):
        avail = availability_times(
            [(3.0, 1)], 3, prefilled_available=False
        )
        assert np.isinf(avail[0]) and np.isinf(avail[2])
        assert avail[1] == 3.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ParameterError):
            availability_times([(1.0, 5)], 3)


class TestPlaybackStalls:
    def test_in_order_arrival_no_stalls(self):
        # Pieces arrive exactly one per round, in order.
        avail = np.arange(10, dtype=float)
        result = playback_stalls(avail, startup_delay=1.0)
        assert result.stall_count == 0
        assert result.stalled_time == 0.0

    def test_late_piece_stalls(self):
        avail = np.array([0.0, 10.0, 2.0])
        result = playback_stalls(avail, startup_delay=0.0)
        # Piece 1 wanted at t=1 but ready at t=10: one 9-unit stall;
        # playback then resumes at t=11, piece 2 (ready t=2) is fine.
        assert result.stall_count == 1
        assert result.stalled_time == pytest.approx(9.0)

    def test_sufficient_startup_absorbs_stalls(self):
        avail = np.array([0.0, 10.0, 2.0])
        result = playback_stalls(avail, startup_delay=9.0)
        assert result.stall_count == 0

    def test_incomplete_rejected(self):
        with pytest.raises(ParameterError):
            playback_stalls(np.array([0.0, np.inf]))

    def test_validation(self):
        with pytest.raises(ParameterError):
            playback_stalls(np.array([0.0]), playback_interval=0.0)
        with pytest.raises(ParameterError):
            playback_stalls(np.array([0.0]), startup_delay=-1.0)


class TestMinimalStartupDelay:
    def test_closed_form_matches_simulation(self):
        rng = np.random.default_rng(4)
        avail = rng.uniform(0, 30, size=12)
        delay = minimal_startup_delay(avail)
        assert playback_stalls(avail, startup_delay=delay).stall_count == 0
        if delay > 0.01:
            shaved = playback_stalls(avail, startup_delay=delay - 0.01)
            assert shaved.stall_count > 0

    def test_in_order_needs_no_delay(self):
        avail = np.arange(8, dtype=float)
        assert minimal_startup_delay(avail) == 0.0

    def test_reverse_order_needs_full_delay(self):
        # Last piece index arrives first: playback must wait for index 0,
        # which arrives last.
        avail = np.array([3.0, 2.0, 1.0, 0.0])
        assert minimal_startup_delay(avail) == pytest.approx(3.0)


class TestSwarmSummary:
    BASE = dict(
        num_pieces=30, max_conns=3, ns_size=20,
        arrival_process="poisson", arrival_rate=1.5,
        initial_leechers=30, initial_distribution="uniform",
        initial_fill=0.5, num_seeds=1, seed_upload_slots=2,
        max_time=80.0, seed=2,
    )

    def _summary(self, policy, **over):
        from repro.sim.config import SimConfig
        from repro.sim.swarm import run_swarm

        config = SimConfig(**{**self.BASE, **over}, piece_selection=policy)
        result = run_swarm(config)
        summary = swarm_streaming_summary(
            result.metrics.completed, self.BASE["num_pieces"],
            playback_interval=0.5,
        )
        summary["completed"] = float(len(result.metrics.completed))
        return summary

    def test_sequential_starves_strict_tft_swarms(self):
        """Strict in-order selection kills mutual novelty: no arriving
        peer completes a full download under strict piece barter."""
        summary = self._summary("sequential")
        assert summary["downloads"] == 0.0

    def test_rarest_streams_fine_under_strict_tft(self):
        summary = self._summary("rarest")
        assert summary["downloads"] > 10
        assert np.isfinite(summary["mean_startup_delay"])

    def test_windowed_wins_startup_delay_without_piece_barter(self):
        """The [1] conclusion: in-order scheduling pays off once
        reciprocity is not strict piece-for-piece."""
        windowed = self._summary("windowed", strict_tft=False)
        rarest = self._summary("rarest", strict_tft=False)
        assert windowed["downloads"] > 10
        assert (
            windowed["mean_startup_delay"] < rarest["mean_startup_delay"]
        )

    def test_empty_gives_nan(self):
        summary = swarm_streaming_summary([], 10)
        assert summary["downloads"] == 0.0
        assert np.isnan(summary["mean_startup_delay"])
