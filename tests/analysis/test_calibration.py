"""Tests for trace-driven parameter calibration.

Ground truth comes from the model itself: traces are rendered from
chain trajectories with known parameters, and the estimators must
recover them.
"""

import math

import pytest

from repro.analysis.calibration import (
    calibrate_parameters,
    estimate_alpha,
    estimate_gamma,
    estimate_survival,
)
from repro.core.chain import DownloadChain
from repro.core.parameters import ModelParameters
from repro.errors import ParameterError
from repro.traces.schema import ClientTrace, TraceSample
from repro.traces.synthetic import trace_from_chain

TRUE_ALPHA = 0.25
TRUE_GAMMA = 0.15


@pytest.fixture(scope="module")
def model_traces():
    # Small neighbor set + small p_init: bootstrap and last-phase stalls
    # occur frequently, giving the estimators plenty of evidence.
    params = ModelParameters(
        num_pieces=30, max_conns=2, ns_size=3,
        p_init=0.2, alpha=TRUE_ALPHA, gamma=TRUE_GAMMA,
        p_reenc=0.6, p_new=0.6,
    )
    chain = DownloadChain(params)
    return [trace_from_chain(chain, seed=s) for s in range(120)]


class TestTraceFromChain:
    def test_valid_and_complete(self):
        chain = DownloadChain(ModelParameters(num_pieces=10, max_conns=2, ns_size=4))
        trace = trace_from_chain(chain, seed=0)
        trace.validate()
        assert trace.is_complete
        assert trace.completed_at is not None

    def test_bytes_track_pieces(self):
        chain = DownloadChain(ModelParameters(num_pieces=10, max_conns=2, ns_size=4))
        trace = trace_from_chain(chain, seed=1, piece_size_bytes=100)
        assert trace.bytes_series()[-1] == 1000


class TestEstimators:
    def test_alpha_recovered(self, model_traces):
        alpha, rounds, escapes = estimate_alpha(model_traces)
        assert rounds > 50, "fixture must generate bootstrap stalls"
        assert alpha == pytest.approx(TRUE_ALPHA, abs=0.08)

    def test_gamma_recovered(self, model_traces):
        gamma, rounds, _escapes = estimate_gamma(model_traces)
        assert rounds > 50, "fixture must generate last-phase stalls"
        assert gamma == pytest.approx(TRUE_GAMMA, abs=0.08)

    def test_survival_overestimates_but_tracks(self, model_traces):
        p_reenc, conn_rounds, drops = estimate_survival(model_traces)
        assert conn_rounds > 0
        # Moment estimator over-estimates (simultaneous drop+formation
        # cancel in the aggregate count) but must stay in range and
        # above the truth minus noise.
        assert 0.6 - 0.1 <= p_reenc <= 1.0

    def test_no_observations_gives_nan(self):
        trace = ClientTrace("c", "s", 10, 100, 0.0)
        trace.append(TraceSample(0.0, 500, 5, 2))
        alpha, rounds, _ = estimate_alpha([trace])
        assert rounds == 0
        assert math.isnan(alpha)


class TestCalibrateParameters:
    def test_round_trip(self, model_traces):
        params, result = calibrate_parameters(
            model_traces, max_conns=2, ns_size=3
        )
        assert params.num_pieces == 30
        assert params.alpha == pytest.approx(TRUE_ALPHA, abs=0.08)
        assert params.gamma == pytest.approx(TRUE_GAMMA, abs=0.08)
        assert result.bootstrap_escapes > 0

    def test_fallbacks_used_without_evidence(self):
        trace = ClientTrace("c", "s", 10, 100, 0.0)
        trace.append(TraceSample(0.0, 500, 5, 2))
        trace.append(TraceSample(1.0, 600, 5, 2))
        params, result = calibrate_parameters(
            [trace], max_conns=2, ns_size=4,
            fallback_alpha=0.33, fallback_gamma=0.44,
        )
        assert params.alpha == 0.33
        assert params.gamma == 0.44
        assert math.isnan(result.alpha)

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            calibrate_parameters([], max_conns=2, ns_size=4)

    def test_inconsistent_files_rejected(self):
        a = ClientTrace("a", "s", 10, 100, 0.0)
        b = ClientTrace("b", "s", 12, 100, 0.0)
        with pytest.raises(ParameterError):
            calibrate_parameters([a, b], max_conns=2, ns_size=4)

    def test_calibrated_model_reproduces_timeline(self, model_traces):
        """End-to-end: fit on traces, predict download times."""
        import numpy as np

        from repro.core.timeline import mean_timeline

        params, _ = calibrate_parameters(model_traces, max_conns=2, ns_size=3)
        chain = DownloadChain(params)
        predicted = mean_timeline(chain, runs=60, seed=9).total_download_time()
        observed = np.mean([t.duration() for t in model_traces])
        assert predicted == pytest.approx(observed, rel=0.35)