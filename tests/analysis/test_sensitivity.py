"""Tests for the parameter-sensitivity analysis."""

import pytest

from repro.analysis.sensitivity import sensitivity_analysis
from repro.core.parameters import ModelParameters
from repro.errors import ParameterError


@pytest.fixture(scope="module")
def baseline():
    return ModelParameters(
        num_pieces=40, max_conns=4, ns_size=8, alpha=0.1, gamma=0.1
    )


@pytest.fixture(scope="module")
def report(baseline):
    return sensitivity_analysis(baseline, runs=12, seed=3)


class TestSensitivityAnalysis:
    def test_all_sweepable_covered(self, report):
        names = {p.parameter for p in report.points}
        assert "max_conns" in names
        assert "alpha" in names
        assert "p_reenc" in names

    def test_max_conns_speeds_downloads(self, report):
        point = next(p for p in report.points if p.parameter == "max_conns")
        assert point.low_time > point.high_time
        assert point.elasticity < 0

    def test_connections_dominate_stall_escapes(self, report):
        """The trading-phase knobs outrank alpha/gamma at a healthy
        baseline (stalls are rare, so escape rates barely matter)."""
        by_name = {p.parameter: abs(p.elasticity) for p in report.points}
        assert by_name["max_conns"] > by_name["alpha"]
        assert by_name["max_conns"] > by_name["gamma"]

    def test_ranked_order(self, report):
        magnitudes = [abs(p.elasticity) for p in report.ranked()]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_subset_of_parameters(self, baseline):
        report = sensitivity_analysis(
            baseline, parameters=("alpha",), runs=6, seed=1
        )
        assert [p.parameter for p in report.points] == ["alpha"]

    def test_format(self, report):
        text = report.format()
        assert "elasticity" in text
        assert "max_conns" in text

    def test_unknown_parameter_rejected(self, baseline):
        with pytest.raises(ParameterError):
            sensitivity_analysis(baseline, parameters=("num_pieces",), runs=4)

    def test_bad_factor_rejected(self, baseline):
        with pytest.raises(ParameterError):
            sensitivity_analysis(baseline, factor=1.0, runs=4)

    def test_probabilities_stay_clamped(self, baseline):
        # p_reenc * 1.5 exceeds 1 and must be clamped, not rejected.
        report = sensitivity_analysis(
            baseline, parameters=("p_reenc",), factor=2.0, runs=6
        )
        point = report.points[0]
        assert point.high_value == 1.0
