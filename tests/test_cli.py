"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command(self):
        args = build_parser().parse_args(["run", "F1a", "--quick", "--seed", "3"])
        assert args.experiment == "F1a"
        assert args.quick is True
        assert args.seed == 3

    def test_run_defaults_serial_no_timing(self):
        args = build_parser().parse_args(["run", "F1a"])
        assert args.workers == 1
        assert args.timing is False

    def test_run_workers_and_timing_flags(self):
        args = build_parser().parse_args(
            ["run", "F1b", "--workers", "4", "--timing"]
        )
        assert args.workers == 4
        assert args.timing is True

    def test_stability_workers_flag(self):
        args = build_parser().parse_args(["stability", "3", "--workers", "2"])
        assert args.workers == 2

    def test_seeding_workers_flag(self):
        args = build_parser().parse_args(["seeding", "--workers", "3"])
        assert args.workers == 3

    def test_workers_rejects_non_integer(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "F1a", "--workers", "many"])

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.intensities == [0.0, 0.5, 1.0, 1.5, 2.0]
        assert args.replications == 2
        assert args.max_attempts == 2
        assert args.workers == 1

    def test_chaos_explicit_intensities(self):
        args = build_parser().parse_args(
            ["chaos", "0", "1", "2", "--quick", "--max-attempts", "3"]
        )
        assert args.intensities == [0.0, 1.0, 2.0]
        assert args.quick is True
        assert args.max_attempts == 3

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 8750
        assert args.solver_threads == 2
        assert args.max_entries == 128
        assert args.max_bytes_mb == 256

    def test_serve_flags(self):
        args = build_parser().parse_args(
            ["serve", "--port", "9000", "--max-bytes-mb", "0",
             "--solver-threads", "4"]
        )
        assert args.port == 9000
        assert args.max_bytes_mb == 0
        assert args.solver_threads == 4

    def test_run_method_is_free_form(self):
        args = build_parser().parse_args(
            ["run", "F1a", "--method", "monte-carlo"]
        )
        assert args.method == "monte-carlo"

    def test_run_backend_is_free_form(self):
        args = build_parser().parse_args(["run", "F3a", "--backend", "soa"])
        assert args.backend == "soa"
        assert build_parser().parse_args(["run", "F3a"]).backend is None

    def test_swarm_commands_default_object_backend(self):
        parser = build_parser()
        assert parser.parse_args(["stability", "3"]).backend == "object"
        assert parser.parse_args(["seeding"]).backend == "object"
        assert parser.parse_args(["chaos"]).backend == "object"
        assert parser.parse_args(
            ["scenario", "flash-crowd", "--backend", "soa"]
        ).backend == "soa"


class TestMain:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "F1a" in out
        assert "F3bc" in out
        assert "Figure 1(a)" in out

    def test_run_quick_f1a(self, capsys):
        assert main(["run", "F1a", "--quick", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1(a)" in out
        assert "PSS=" in out

    def test_run_with_timing_prints_telemetry(self, capsys):
        assert main(["run", "F2", "--quick", "--timing"]) == 0
        out = capsys.readouterr().out
        assert "timing:" in out
        assert "kernel cache:" in out

    def test_run_without_timing_omits_telemetry(self, capsys):
        assert main(["run", "F2", "--quick"]) == 0
        assert "timing:" not in capsys.readouterr().out

    def test_run_with_workers_matches_serial(self, capsys):
        assert main(["run", "F1a", "--quick", "--seed", "1"]) == 0
        serial = capsys.readouterr().out
        assert main([
            "run", "F1a", "--quick", "--seed", "1", "--workers", "2",
        ]) == 0
        assert capsys.readouterr().out == serial

    def test_run_rejects_bad_workers(self):
        from repro.errors import ParameterError

        with pytest.raises(ParameterError):
            main(["run", "F2", "--quick", "--workers", "-1"])

    def test_run_unknown_experiment(self):
        from repro.errors import ParameterError

        with pytest.raises(ParameterError):
            main(["run", "F99"])

    def test_run_method_alias_accepted(self, capsys):
        assert main([
            "run", "F1a", "--quick", "--seed", "1",
            "--method", "monte-carlo",
        ]) == 0
        assert "Figure 1(a)" in capsys.readouterr().out

    def test_run_method_meanfield_end_to_end(self, capsys):
        assert main([
            "run", "F1a", "--quick", "--seed", "1",
            "--method", "meanfield",
        ]) == 0
        assert "Figure 1(a)" in capsys.readouterr().out

    def test_run_unknown_method_lists_choices(self):
        from repro.errors import ParameterError

        with pytest.raises(ParameterError) as excinfo:
            main(["run", "F1a", "--quick", "--method", "bogus"])
        message = str(excinfo.value)
        assert "unknown method 'bogus'" in message
        assert "'exact'" in message and "'batch'" in message
        assert "'meanfield'" in message and "'mean-field'" in message

    def test_run_method_on_methodless_runner_warns(self, capsys):
        assert main(["run", "F2", "--quick", "--method", "exact"]) == 0
        assert "no method switch" in capsys.readouterr().err

    def test_run_soa_backend_end_to_end(self, capsys):
        assert main([
            "run", "F3a", "--quick", "--seed", "1",
            "--backend", "soa", "--timing",
        ]) == 0
        out = capsys.readouterr().out
        assert "Figure 3/4(a)" in out
        assert "backend: soa" in out

    def test_run_unknown_backend_lists_choices(self):
        from repro.errors import ParameterError

        with pytest.raises(ParameterError) as excinfo:
            main(["run", "F3a", "--quick", "--backend", "bogus"])
        message = str(excinfo.value)
        assert "unknown swarm backend 'bogus'" in message
        assert "'object'" in message and "'soa'" in message

    def test_run_backend_on_backendless_runner_warns(self, capsys):
        assert main(["run", "F2", "--quick", "--backend", "soa"]) == 0
        assert "no backend switch" in capsys.readouterr().err

    def test_scenario_backend_runs_soa(self, capsys):
        assert main([
            "scenario", "flash-crowd", "--horizon", "10",
            "--backend", "soa",
        ]) == 0
        assert "completed downloads" in capsys.readouterr().out

    def test_scenario_unknown_backend_rejected(self):
        from repro.errors import ParameterError

        with pytest.raises(ParameterError):
            main(["scenario", "flash-crowd", "--backend", "bogus"])

    def test_serve_rejects_bad_bounds(self):
        from repro.errors import ParameterError

        with pytest.raises(ParameterError):
            main(["serve", "--max-entries", "0"])
        with pytest.raises(ParameterError):
            main(["serve", "--max-bytes-mb", "-1"])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro-bt" in capsys.readouterr().out


class TestTraceAndCalibrate:
    def test_trace_then_calibrate(self, tmp_path, capsys):
        path = tmp_path / "traces.jsonl"
        assert main(["trace", "last", str(path), "--seed", "0"]) == 0
        assert path.exists()
        capsys.readouterr()
        assert main([
            "calibrate", str(path), "--max-conns", "4", "--ns-size", "6",
        ]) == 0
        out = capsys.readouterr().out
        assert "alpha" in out and "gamma" in out and "p_r" in out

    def test_trace_count(self, tmp_path, capsys):
        from repro.traces.io import read_trace_jsonl

        path = tmp_path / "many.jsonl"
        assert main(["trace", "smooth", str(path), "--count", "2"]) == 0
        assert len(read_trace_jsonl(path)) == 2

    def test_trace_rejects_unknown_archetype(self):
        with pytest.raises(SystemExit):
            main(["trace", "weird", "out.jsonl"])


class TestStabilityCommand:
    def test_sweep_output(self, capsys):
        assert main([
            "stability", "3", "10",
            "--arrival-rate", "8", "--initial", "80", "--horizon", "50",
        ]) == 0
        out = capsys.readouterr().out
        assert "final peers" in out
        assert "drift model" in out


class TestScenarioCommand:
    def test_list_scenarios(self, capsys):
        assert main(["scenario"]) == 0
        out = capsys.readouterr().out
        assert "steady-state" in out
        assert "flash-crowd" in out

    def test_run_scenario(self, capsys):
        assert main(["scenario", "steady-state", "--horizon", "30"]) == 0
        out = capsys.readouterr().out
        assert "completed downloads" in out
        assert "measured p_r" in out

    def test_unknown_scenario(self):
        from repro.errors import ParameterError

        with pytest.raises(ParameterError):
            main(["scenario", "warp-speed"])


class TestChaosCommand:
    def test_quick_sweep_output(self, capsys):
        assert main([
            "chaos", "0", "1", "--quick", "--replications", "1", "--timing",
        ]) == 0
        out = capsys.readouterr().out
        assert "Chaos sweep" in out
        assert "model eta" in out
        assert "timing:" in out

    def test_without_timing_omits_telemetry(self, capsys):
        assert main(["chaos", "0", "--quick", "--replications", "1"]) == 0
        assert "timing:" not in capsys.readouterr().out
