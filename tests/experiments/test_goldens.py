"""Golden-regression suite for the figure runners.

Each of the six experiment runners is executed at a reduced, fixed-seed
scale and its canonical JSON payload (``to_dict()`` with the
nondeterministic ``timing`` block stripped) is compared against a
checked-in fixture under ``tests/experiments/goldens/``.  Numeric
tolerances are tight (rel 1e-7): the fixtures pin the *values*, not
just the shapes, so any behavioural drift in the model, the simulator,
or the runtime shows up as a diff.

A seventh golden pins a raw swarm run — and the same fixture must be
reproduced bit-for-bit by a run with a zero-intensity
:class:`~repro.faults.plan.FaultPlan` attached, proving that wiring the
fault-injection hooks into the simulator did not perturb fault-free
behaviour.

Regenerate after an *intentional* behaviour change with::

    REPRO_REGEN_GOLDENS=1 python -m pytest tests/experiments/test_goldens.py
"""

import json
import os
from pathlib import Path

import pytest

from repro.experiments import (
    run_fig1a,
    run_fig1b,
    run_fig2,
    run_fig3a,
    run_fig3bc,
    run_fig3d,
)
from repro.experiments.result import to_jsonable
from repro.faults import FaultPlan
from repro.sim.config import SimConfig
from repro.sim.swarm import run_swarm

GOLDEN_DIR = Path(__file__).parent / "goldens"
REGEN = os.environ.get("REPRO_REGEN_GOLDENS") == "1"
REL_TOL = 1e-7
ABS_TOL = 1e-9

GOLDEN_CASES = {
    "F1a": lambda: run_fig1a(
        pss_values=(5, 20), num_pieces=40, runs=8, seed=0
    ),
    "F1b": lambda: run_fig1b(
        pss_values=(30,), num_pieces=30, model_runs=6, sim_instrument=2,
        max_time=120.0, seed=0,
    ),
    "F2": lambda: run_fig2(seed=0, max_attempts=8),
    "F3a": lambda: run_fig3a(
        k_values=(1, 2), num_pieces=30, seed=0,
        sim_kwargs={"initial_leechers": 30, "arrival_rate": 2.0,
                    "max_time": 50.0, "ns_size": 15},
    ),
    "F3bc": lambda: run_fig3bc(
        piece_counts=(3, 10), initial_leechers=80, arrival_rate=6.0,
        max_time=50.0, entropy_every=4, seed=0,
    ),
    "F3d": lambda: run_fig3d(
        num_pieces=40, window=4, initial_leechers=25, max_time=200.0,
        seed=0,
    ),
}


def canonical(payload: dict) -> dict:
    """JSON round-trip of a result payload with timing stripped."""
    payload = dict(to_jsonable(payload))
    payload.pop("timing", None)
    return json.loads(json.dumps(payload, sort_keys=True))


def assert_matches(actual, expected, path="$"):
    """Recursive equality with tight float tolerance; precise paths."""
    if isinstance(expected, dict):
        assert isinstance(actual, dict), f"{path}: expected dict"
        assert sorted(actual) == sorted(expected), (
            f"{path}: keys differ: {sorted(actual)} != {sorted(expected)}"
        )
        for key in expected:
            assert_matches(actual[key], expected[key], f"{path}.{key}")
    elif isinstance(expected, list):
        assert isinstance(actual, list), f"{path}: expected list"
        assert len(actual) == len(expected), (
            f"{path}: length {len(actual)} != {len(expected)}"
        )
        for index, (a, e) in enumerate(zip(actual, expected)):
            assert_matches(a, e, f"{path}[{index}]")
    elif isinstance(expected, float) and not isinstance(expected, bool):
        assert isinstance(actual, (int, float)), f"{path}: expected number"
        assert actual == pytest.approx(expected, rel=REL_TOL, abs=ABS_TOL), (
            f"{path}: {actual} != {expected}"
        )
    else:
        assert actual == expected, f"{path}: {actual!r} != {expected!r}"


def check_golden(name: str, payload: dict) -> None:
    golden_path = GOLDEN_DIR / f"{name}.json"
    actual = canonical(payload)
    if REGEN:
        GOLDEN_DIR.mkdir(exist_ok=True)
        golden_path.write_text(
            json.dumps(actual, sort_keys=True, indent=1) + "\n"
        )
        return
    assert golden_path.exists(), (
        f"missing golden fixture {golden_path}; regenerate with "
        f"REPRO_REGEN_GOLDENS=1"
    )
    expected = json.loads(golden_path.read_text())
    assert_matches(actual, expected)


@pytest.mark.parametrize("exp_id", sorted(GOLDEN_CASES))
def test_runner_matches_golden(exp_id):
    result = GOLDEN_CASES[exp_id]()
    check_golden(exp_id, result.to_dict())


# ----------------------------------------------------------------------
# Swarm golden + the zero-intensity fault-plan identity
# ----------------------------------------------------------------------
def _golden_swarm_config() -> SimConfig:
    return SimConfig(
        num_pieces=30,
        max_conns=3,
        ns_size=15,
        arrival_process="poisson",
        arrival_rate=2.0,
        initial_leechers=25,
        initial_distribution="uniform",
        initial_fill=0.5,
        num_seeds=1,
        seed_upload_slots=2,
        optimistic_unchoke_prob=0.5,
        connection_setup_prob=0.8,
        connection_failure_prob=0.1,
        shake_threshold=0.9,
        max_time=40.0,
        seed=11,
    )


def _swarm_summary(faults) -> dict:
    result = run_swarm(_golden_swarm_config(), faults=faults)
    stats = result.connection_stats
    return {
        "total_rounds": result.total_rounds,
        "final_leechers": result.final_leechers,
        "final_seeds": result.final_seeds,
        "seed_uploads": result.seed_upload_count,
        "events_processed": result.events_processed,
        "population_log": [list(row) for row in result.tracker_population_log],
        "connection_stats": dict(stats.__dict__),
        "completed": len(result.metrics.completed),
        "efficiency": result.metrics.efficiency(),
    }


def test_swarm_run_matches_golden():
    check_golden("swarm", _swarm_summary(faults=None))


def test_zero_intensity_plan_reproduces_swarm_golden_exactly():
    """A zero plan must be *bit-identical* to the fault-free golden.

    Tolerance here is exact equality, not approx: the injector draws
    from its own RNG stream and a zero plan draws nothing, so every
    float must come out identical to the fault-free fixture.
    """
    if REGEN:
        pytest.skip("fixture regenerated by the fault-free swarm test")
    golden = json.loads((GOLDEN_DIR / "swarm.json").read_text())
    summary = canonical(_swarm_summary(faults=FaultPlan()))
    assert summary == golden
