"""Tests for the seeding-study runner."""

import pytest

from repro.errors import ParameterError
from repro.experiments.seeding import run_seeding_study


@pytest.fixture(scope="module")
def study():
    return run_seeding_study(
        num_pieces=40,
        capacities=(2, 6),
        arrival_rate=2.0,
        initial_leechers=40,
        max_time=80.0,
        seed=1,
    )


class TestSeedingStudy:
    def test_all_points_present(self, study):
        labels = set(study.by_label())
        assert "capacity=2" in labels
        assert "capacity=6" in labels
        assert any("super-seeding" in label for label in labels)
        assert any("lingering" in label for label in labels)

    def test_capacity_speeds_downloads(self, study):
        points = study.by_label()
        assert (
            points["capacity=6"].mean_duration
            <= points["capacity=2"].mean_duration
        )

    def test_seed_upload_accounting(self, study):
        for point in study.points:
            assert point.seed_uploads >= 0
            if point.completed and point.seed_uploads:
                assert point.completions_per_seed_upload == pytest.approx(
                    point.completed / point.seed_uploads
                )

    def test_format(self, study):
        text = study.format()
        assert "Seeding study" in text
        assert "done/upload" in text

    def test_empty_capacities_rejected(self):
        with pytest.raises(ParameterError):
            run_seeding_study(capacities=())

    def test_optional_points_can_be_disabled(self):
        study = run_seeding_study(
            num_pieces=30, capacities=(4,), max_time=40.0,
            include_super_seeding=False, include_lingering=False,
        )
        assert len(study.points) == 1
