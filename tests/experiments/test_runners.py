"""Smoke-to-shape tests for the per-figure experiment runners.

Each runner is exercised at reduced scale; assertions target the shape
properties the paper's figures report, not absolute numbers.
"""

import numpy as np
import pytest

from repro.analysis.validation import efficiency_shape
from repro.experiments import (
    run_fig1a,
    run_fig1b,
    run_fig2,
    run_fig3a,
    run_fig3bc,
    run_fig3d,
)
from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.errors import ParameterError


class TestFig1a:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig1a(pss_values=(5, 20), num_pieces=50, runs=16, seed=0)

    def test_series_per_pss(self, result):
        assert set(result.ratios) == {5, 20}
        assert result.pieces.size == 51

    def test_ratio_bounds(self, result):
        for ratio in result.ratios.values():
            finite = ratio[np.isfinite(ratio)]
            assert (finite >= 0).all() and (finite <= 1).all()

    def test_mid_download_plateau(self, result):
        ratio = result.ratios[20]
        mid = ratio[20:30]
        assert np.nanmean(mid) > 0.7

    def test_format_prints_rows(self, result):
        text = result.format()
        assert "PSS=5" in text and "PSS=20" in text

    def test_empty_pss_rejected(self):
        with pytest.raises(ParameterError):
            run_fig1a(pss_values=())

    def test_exact_mode_matches_monte_carlo(self):
        mc = run_fig1a(
            pss_values=(6,), num_pieces=20, max_conns=3, runs=400, seed=1,
            method="monte-carlo",
        )
        exact = run_fig1a(
            pss_values=(6,), num_pieces=20, max_conns=3, method="exact"
        )
        assert mc.method == "monte-carlo" and exact.method == "exact"
        a, b = mc.ratios[6], exact.ratios[6]
        mask = np.isfinite(a) & np.isfinite(b)
        assert np.abs(a[mask] - b[mask]).max() < 0.08

    def test_paper_scale_exact_within_mc_confidence_band(self):
        # The acceptance check for the sparse engine: at the paper's
        # B=200, k=7, the exact curve must sit inside the batch
        # Monte-Carlo estimate's confidence band.
        from repro.core.batch import BatchChainSampler
        from repro.core.chain import DownloadChain

        pss = 40
        exact = run_fig1a(pss_values=(pss,), method="exact", seed=0)
        chain = DownloadChain(exact.params[pss])
        # Empirical confidence band: independent batch-MC replicates of
        # the pooled ratio give a per-b standard error directly.
        chunks = 8
        sampler = BatchChainSampler(chain)
        replicates = []
        for chunk in range(chunks):
            sums, counts = sampler.sample(
                192, seed=100 + chunk
            ).potential_accumulators()
            with np.errstate(invalid="ignore", divide="ignore"):
                replicates.append(
                    np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
                )
        replicates = np.stack(replicates)
        observed = np.isfinite(replicates).all(axis=0)
        mc_mean = np.where(observed, np.nanmean(replicates, axis=0), np.nan)
        sem = np.where(
            observed, np.nanstd(replicates, axis=0, ddof=1), np.nan
        ) / np.sqrt(chunks)
        curve = exact.ratios[pss]
        both = np.isfinite(curve) & observed
        assert both.sum() > 100
        band = 5.0 * sem[both] + 0.01
        assert np.all(np.abs(curve[both] - mc_mean[both]) <= band)

    def test_unknown_method_rejected(self):
        with pytest.raises(ParameterError):
            run_fig1a(num_pieces=20, method="magic")


class TestFig1b:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig1b(
            pss_values=(30,), num_pieces=40, model_runs=8,
            sim_instrument=4, max_time=200.0, seed=0,
        )

    def test_model_and_sim_aligned(self, result):
        assert result.model[30].size == 41
        assert result.sim[30].size == 41

    def test_model_monotone(self, result):
        assert (np.diff(result.model[30]) >= -1e-9).all()

    def test_sim_completed_someone(self, result):
        assert result.sim_completed[30] > 0

    def test_model_tracks_sim_at_large_pss(self, result):
        # Healthy-swarm agreement: totals within a factor of two.
        model_total = result.model[30][-1]
        sim_total = result.sim[30][-1]
        assert sim_total == pytest.approx(model_total, rel=1.0)

    def test_format(self, result):
        assert "timeline" in result.format()

    def test_empty_pss_rejected(self):
        with pytest.raises(ParameterError):
            run_fig1b(pss_values=())


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig2(seed=0)

    def test_all_archetypes_present(self, result):
        assert set(result.traces) == {"smooth", "last", "bootstrap"}

    def test_labels_match(self, result):
        assert result.labels == {
            "smooth": "smooth", "last": "last", "bootstrap": "bootstrap"
        }

    def test_traces_valid(self, result):
        for trace in result.traces.values():
            trace.validate()
            assert len(trace.samples) > 0

    def test_format(self, result):
        text = result.format()
        for panel in ("2(a,b)", "2(c,d)", "2(e,f)"):
            assert panel in text


class TestFig3a:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig3a(
            k_values=(1, 2, 3, 4),
            num_pieces=50,
            seed=0,
            sim_kwargs={"initial_leechers": 60, "arrival_rate": 3.0,
                        "max_time": 80.0, "ns_size": 25},
        )

    def test_model_upper_bounds_sim(self, result):
        assert (result.model_eta >= result.sim_eta - 0.05).all()

    def test_sim_jump_from_one_to_two(self, result):
        assert result.sim_eta[1] > result.sim_eta[0]

    def test_model_shape(self, result):
        checks = efficiency_shape(result.k_values, result.model_eta)
        assert checks["first_gain_positive"]
        assert checks["first_gain_dominates"]

    def test_format(self, result):
        assert "efficiency" in result.format()


class TestFig3bc:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig3bc(
            piece_counts=(3, 10), initial_leechers=150,
            arrival_rate=10.0, max_time=80.0, seed=0, entropy_every=4,
        )

    def test_b3_diverges(self, result):
        assert result.runs[3].diverged

    def test_b10_bounded(self, result):
        assert not result.runs[10].diverged

    def test_entropy_contrast(self, result):
        tail3 = result.entropy(3)[-10:].mean()
        tail10 = result.entropy(10)[-10:].mean()
        assert tail10 > tail3

    def test_format(self, result):
        text = result.format()
        assert "B=3" in text and "B=10" in text
        assert "DIVERGED" in text

    def test_empty_counts_rejected(self):
        with pytest.raises(ParameterError):
            run_fig3bc(piece_counts=())


class TestFig3d:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig3d(
            num_pieces=80, window=8, initial_leechers=40,
            max_time=350.0, seed=0,
        )

    def test_window_covered(self, result):
        assert result.ordinals.tolist() == [73, 74, 75, 76, 77, 78, 79, 80]
        assert result.ttd["normal"].size == 8

    def test_shake_helps_on_last_block(self, result):
        assert result.ttd["shake"][-1] < result.ttd["normal"][-1]

    def test_normal_tail_grows(self, result):
        normal = result.ttd["normal"]
        assert normal[-1] > normal[0]

    def test_completions_recorded(self, result):
        assert result.completed["normal"] > 0
        assert result.completed["shake"] > 0

    def test_format(self, result):
        assert "shake" in result.format()


class TestRegistry:
    def test_all_figures_registered(self):
        assert set(EXPERIMENTS) == {"F1a", "F1b", "F2", "F3a", "F3bc", "F3d"}

    def test_lookup_case_insensitive(self):
        assert get_experiment("f1a").exp_id == "F1a"

    def test_unknown_rejected(self):
        with pytest.raises(ParameterError):
            get_experiment("F99")

    def test_quick_kwargs_accepted_by_runners(self):
        # Signatures must stay in sync with the registry entries.
        import inspect

        for spec in EXPERIMENTS.values():
            signature = inspect.signature(spec.runner)
            for key in spec.quick_kwargs:
                assert key in signature.parameters, (spec.exp_id, key)

    def test_all_runners_accept_workers(self):
        import inspect

        for spec in EXPERIMENTS.values():
            assert "workers" in inspect.signature(spec.runner).parameters

    def test_list_experiments_in_registration_order(self):
        from repro.experiments.registry import list_experiments

        specs = list_experiments()
        assert [spec.exp_id for spec in specs] == list(EXPERIMENTS)

    def test_unknown_error_names_available_ids(self):
        with pytest.raises(ParameterError, match="available"):
            get_experiment("F99")

    def test_duplicate_registration_rejected(self):
        from repro.experiments.registry import register_experiment

        with pytest.raises(ParameterError, match="already registered"):
            @register_experiment("f1A", figure="x", description="dup")
            def runner():  # pragma: no cover - never called
                pass

    def test_empty_id_rejected(self):
        from repro.experiments.registry import register_experiment

        with pytest.raises(ParameterError):
            register_experiment("", figure="x", description="y")

    def test_results_satisfy_protocol(self):
        from repro.experiments.result import ExperimentResult

        result = run_fig2(max_attempts=40, seed=0)
        assert isinstance(result, ExperimentResult)
        payload = result.to_dict()
        assert payload["experiment"] == "F2"
        assert result.timing is not None
        assert result.timing.tasks == 3
