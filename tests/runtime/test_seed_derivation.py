"""Tests for splittable seed derivation (`repro.runtime.seeding`)."""

from repro.runtime.seeding import SeedTree, derive_seed, seed_path


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(0, 1, 2) == derive_seed(0, 1, 2)
        assert derive_seed(1234, 9) == derive_seed(1234, 9)

    def test_distinct_across_path(self):
        seeds = {derive_seed(0, i) for i in range(1000)}
        assert len(seeds) == 1000

    def test_distinct_across_roots(self):
        assert derive_seed(0, 5) != derive_seed(1, 5)

    def test_path_order_matters(self):
        assert derive_seed(0, 1, 2) != derive_seed(0, 2, 1)

    def test_nesting_is_not_flattening(self):
        # (root -> a) -> b must differ from root -> (a, b) being collapsed
        # into a single sum; the mix is applied per path element.
        assert derive_seed(derive_seed(0, 1), 2) != derive_seed(0, 3)

    def test_range_is_uint64(self):
        for i in range(100):
            seed = derive_seed(17, i)
            assert 0 <= seed < 2**64

    def test_empty_path_mixes_root(self):
        # Even a bare root is mixed, so adjacent roots decorrelate.
        assert derive_seed(0) != 0
        assert derive_seed(0) != derive_seed(1)

    def test_numpy_free(self):
        import inspect

        import repro.runtime.seeding as mod

        source = inspect.getsource(mod)
        assert "import numpy" not in source
        assert "np." not in source

    def test_negative_root_reduced_mod_2_64(self):
        assert derive_seed(-1, 0) == derive_seed(2**64 - 1, 0)


class TestSeedPath:
    def test_matches_derive_seed(self):
        assert list(seed_path(7, 3)) == [derive_seed(7, j) for j in range(3)]

    def test_prefix(self):
        assert list(seed_path(7, 2, 4)) == [
            derive_seed(7, 4, 0),
            derive_seed(7, 4, 1),
        ]


class TestSeedTree:
    def test_child_matches_derive(self):
        tree = SeedTree(42)
        assert tree.child(3).seed == derive_seed(42, 3)
        assert tree.child(3).child(1).seed == derive_seed(42, 3, 1)

    def test_children_enumerates_in_order(self):
        tree = SeedTree(0)
        seeds = [child.seed for child in tree.children(4)]
        assert seeds == [tree.child(i).seed for i in range(4)]

    def test_path_tracking(self):
        tree = SeedTree(9).child(2).child(5)
        assert tree.path == (2, 5)
