"""Tests for the parallel executor (`repro.runtime.executor`).

The heart of the runtime contract: a run with ``workers=N`` must be
*bit-identical* to the serial ``workers=1`` reference, for experiment
results and for raw task fans alike.
"""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.runtime.executor import ExperimentExecutor, TaskSpec
from repro.runtime.seeding import derive_seed
from repro.runtime.tasks import first_passage_task, potential_ratio_task


def _model_params(ns_size=10):
    from repro.core.parameters import ModelParameters

    return ModelParameters(
        num_pieces=25, max_conns=4, ns_size=ns_size, alpha=0.2, gamma=0.2
    )


def _ratio_tasks(root_seed=0, runs=6):
    params = _model_params()
    return [
        TaskSpec(potential_ratio_task, (params, derive_seed(root_seed, 0, run)))
        for run in range(runs)
    ]


class TestExperimentExecutor:
    def test_workers_validation(self):
        with pytest.raises(ParameterError):
            ExperimentExecutor(workers=-2)

    def test_zero_means_all_cores(self):
        import os

        executor = ExperimentExecutor(workers=0)
        assert executor.workers == (os.cpu_count() or 1)

    def test_results_in_task_order(self):
        executor = ExperimentExecutor(workers=1)
        results = executor.run([TaskSpec(divmod, (n, 3)) for n in range(8)])
        assert results == [divmod(n, 3) for n in range(8)]

    def test_parallel_matches_serial_on_task_fan(self):
        serial = ExperimentExecutor(workers=1).run(_ratio_tasks())
        parallel = ExperimentExecutor(workers=4).run(_ratio_tasks())
        assert len(serial) == len(parallel)
        for (s_sums, s_counts, s_steps), (p_sums, p_counts, p_steps) in zip(
            serial, parallel
        ):
            assert np.array_equal(s_sums, p_sums)
            assert np.array_equal(s_counts, p_counts)
            assert s_steps == p_steps

    def test_parallel_matches_serial_on_experiment(self):
        from repro.experiments import run_fig1a

        kwargs = dict(pss_values=(4, 8), num_pieces=30, runs=5, seed=3)
        serial = run_fig1a(workers=1, **kwargs)
        parallel = run_fig1a(workers=4, **kwargs)
        assert np.array_equal(serial.pieces, parallel.pieces)
        for pss in kwargs["pss_values"]:
            assert np.array_equal(
                serial.ratios[pss], parallel.ratios[pss], equal_nan=True
            )

    def test_map_sugar(self):
        executor = ExperimentExecutor(workers=1)
        assert executor.map(divmod, [(7, 3), (9, 4)]) == [(2, 1), (2, 1)]

    def test_telemetry_counts_tasks_and_batches(self):
        executor = ExperimentExecutor(workers=1)
        executor.run(_ratio_tasks(runs=3))
        executor.run(_ratio_tasks(runs=2))
        assert executor.telemetry.tasks == 5
        assert executor.telemetry.batches == 2
        assert executor.telemetry.wall_time > 0

    def test_telemetry_reports_cache_hits(self):
        # 6 replications over one parameter set: 1 miss, then hits.
        from repro.runtime.cache import reset_shared_cache

        reset_shared_cache()
        executor = ExperimentExecutor(workers=1)
        executor.run(_ratio_tasks(runs=6))
        assert executor.telemetry.cache_misses == 1
        assert executor.telemetry.cache_hits == 5
        assert executor.telemetry.cache_hit_rate == pytest.approx(5 / 6)

    def test_parallel_telemetry_aggregates_worker_deltas(self):
        executor = ExperimentExecutor(workers=4)
        executor.run(_ratio_tasks(runs=6))
        lookups = executor.telemetry.cache_hits + executor.telemetry.cache_misses
        assert lookups == 6

    def test_record_events(self):
        executor = ExperimentExecutor(workers=1)
        executor.record_events(10)
        executor.record_events(5)
        assert executor.telemetry.events == 15

    def test_tracked_folds_parent_work(self):
        from repro.runtime.cache import reset_shared_cache, shared_cache

        reset_shared_cache()
        executor = ExperimentExecutor(workers=1)
        with executor.tracked():
            shared_cache().chain(_model_params())
            shared_cache().chain(_model_params())
        assert executor.telemetry.cache_misses == 1
        assert executor.telemetry.cache_hits == 1
        assert executor.telemetry.wall_time > 0


class TestTasks:
    def test_first_passage_task_deterministic(self):
        params = _model_params()
        a = first_passage_task(params, derive_seed(1, 0))
        b = first_passage_task(params, derive_seed(1, 0))
        assert np.array_equal(a[0], b[0])
        assert a[1] == b[1]

    def test_distinct_seeds_give_distinct_trajectories(self):
        params = _model_params()
        a = first_passage_task(params, derive_seed(1, 0))
        b = first_passage_task(params, derive_seed(1, 1))
        assert not np.array_equal(a[0], b[0])
