"""Tests for the kernel cache (`repro.runtime.cache`)."""

import pytest

from repro.core.parameters import ModelParameters
from repro.runtime.cache import (
    CacheStats,
    KernelCache,
    reset_shared_cache,
    shared_cache,
)


def params(ns_size=8, **overrides):
    kwargs = dict(
        num_pieces=20,
        max_conns=4,
        ns_size=ns_size,
        p_reenc=0.7,
        p_new=0.7,
    )
    kwargs.update(overrides)
    return ModelParameters(**kwargs)


class TestKernelCache:
    def test_hit_on_equal_params(self):
        cache = KernelCache()
        first = cache.chain(params())
        second = cache.chain(params())
        assert first is second
        stats = cache.stats()
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.size == 1

    def test_miss_on_changed_params(self):
        cache = KernelCache()
        a = cache.chain(params(ns_size=8))
        b = cache.chain(params(ns_size=9))
        assert a is not b
        assert cache.stats() == CacheStats(hits=0, misses=2, size=2)

    def test_any_field_invalidates(self):
        cache = KernelCache()
        base = params()
        cache.chain(base)
        cache.chain(base.with_changes(p_reenc=0.6))
        assert cache.stats().misses == 2

    def test_kernel_is_chain_kernel(self):
        cache = KernelCache()
        assert cache.kernel(params()) is cache.chain(params()).kernel

    def test_chain_results_unchanged_by_caching(self):
        from repro.core.chain import DownloadChain

        cache = KernelCache()
        p = params()
        cached = cache.chain(p).trajectory(seed=7)
        fresh = DownloadChain(p).trajectory(seed=7)
        assert cached == fresh

    def test_efficiency_point_cached(self):
        cache = KernelCache()
        a = cache.efficiency_point(4, 0.7)
        b = cache.efficiency_point(4, 0.7)
        assert a is b
        assert cache.stats().hits == 1
        c = cache.efficiency_point(5, 0.7)
        assert c is not a
        assert cache.stats().misses == 2

    def test_efficiency_point_matches_direct_solve(self):
        from repro.efficiency.balance import iterate_balance

        point = KernelCache().efficiency_point(6, 0.8)
        assert point.eta == pytest.approx(iterate_balance(6, 0.8).eta)

    def test_lru_eviction(self):
        cache = KernelCache(max_entries=2)
        cache.chain(params(ns_size=5))
        cache.chain(params(ns_size=6))
        cache.chain(params(ns_size=7))  # evicts ns_size=5
        assert len(cache) == 2
        cache.chain(params(ns_size=5))  # rebuilt, not a hit
        assert cache.stats().hits == 0

    def test_clear_resets(self):
        cache = KernelCache()
        cache.chain(params())
        cache.chain(params())
        cache.clear()
        assert len(cache) == 0
        assert cache.stats() == CacheStats()

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            KernelCache(max_entries=0)


class TestBoundedCache:
    def test_entry_eviction_counts(self):
        cache = KernelCache(max_entries=2)
        cache.chain(params(ns_size=5))
        cache.chain(params(ns_size=6))
        cache.chain(params(ns_size=7))
        stats = cache.stats()
        assert stats.size == 2
        assert stats.evictions == 1

    def test_byte_bound_evicts_lru(self):
        cache = KernelCache(max_bytes=1)
        cache.chain(params(ns_size=5))
        cache.chain(params(ns_size=6))
        assert len(cache) == 1  # the older chain was dropped
        assert cache.stats().evictions == 1
        # The survivor is the most recent insert.
        assert cache.has_chain(params(ns_size=6))
        assert not cache.has_chain(params(ns_size=5))

    def test_sole_entry_never_evicted(self):
        cache = KernelCache(max_bytes=1)
        chain = cache.chain(params())
        assert len(cache) == 1
        assert cache.chain(params()) is chain
        assert cache.stats().evictions == 0

    def test_recency_spans_entry_kinds(self):
        cache = KernelCache(max_entries=2)
        cache.chain(params(ns_size=5))
        cache.efficiency_point(4, 0.7)
        cache.chain(params(ns_size=5))  # bump the chain to MRU
        cache.efficiency_point(5, 0.7)  # evicts the efficiency point
        assert cache.has_chain(params(ns_size=5))
        assert cache.stats().evictions == 1

    def test_current_bytes_tracks_inserts(self):
        cache = KernelCache()
        assert cache.current_bytes() == 0
        cache.chain(params())
        assert cache.current_bytes() > 0
        cache.clear()
        assert cache.current_bytes() == 0
        assert cache.stats() == CacheStats()

    def test_probes_do_not_touch_counters(self):
        cache = KernelCache()
        assert not cache.has_chain(params())
        assert not cache.has_operator(params())
        assert cache.stats() == CacheStats()
        cache.chain(params())
        cache.sparse_operator(params())
        before = cache.stats()
        assert cache.has_chain(params())
        assert cache.has_operator(params())
        assert cache.stats() == before

    def test_rejects_bad_byte_budget(self):
        with pytest.raises(ValueError):
            KernelCache(max_bytes=0)
        assert KernelCache(max_bytes=None).max_bytes is None


class TestCacheStats:
    def test_delta(self):
        before = CacheStats(hits=3, misses=2, size=2)
        after = CacheStats(hits=10, misses=4, size=4)
        assert after.delta(before) == CacheStats(hits=7, misses=2, size=4)

    def test_delta_includes_evictions(self):
        before = CacheStats(evictions=2)
        after = CacheStats(evictions=5, size=1)
        assert after.delta(before) == CacheStats(evictions=3, size=1)


class TestSharedCache:
    def test_singleton(self):
        assert shared_cache() is shared_cache()

    def test_reset(self):
        shared_cache().chain(params())
        reset_shared_cache()
        assert len(shared_cache()) == 0
        assert shared_cache().stats() == CacheStats()
