"""Telemetry merge semantics: backend labels and shard counters.

Regression coverage for the backend-label merge: the old non-empty-wins
rule silently kept the *first* backend when records from different
backends merged, so a mixed object+soa sweep reported whichever ran
first.  Conflicting labels must now join (sorted, ``"+"``-separated)
instead of dropping information.
"""

from repro.runtime.telemetry import Telemetry


class TestBackendMerge:
    def test_same_backend_merges_unchanged(self):
        a = Telemetry(backend="soa")
        a.merge(Telemetry(backend="soa"))
        assert a.backend == "soa"

    def test_empty_never_overwrites(self):
        a = Telemetry(backend="soa")
        a.merge(Telemetry())
        assert a.backend == "soa"

    def test_empty_adopts_other(self):
        a = Telemetry()
        a.merge(Telemetry(backend="sharded"))
        assert a.backend == "sharded"

    def test_conflicting_backends_join_labels(self):
        """The regression: merging different backends must not silently
        keep the first label."""
        a = Telemetry(backend="object")
        a.merge(Telemetry(backend="soa"))
        assert a.backend == "object+soa"
        # Merge order must not matter.
        b = Telemetry(backend="soa")
        b.merge(Telemetry(backend="object"))
        assert b.backend == a.backend

    def test_joined_labels_stay_deduplicated(self):
        a = Telemetry(backend="object+soa")
        a.merge(Telemetry(backend="soa"))
        assert a.backend == "object+soa"
        a.merge(Telemetry(backend="sharded"))
        assert a.backend == "object+sharded+soa"


class TestShards:
    def test_default_absent_from_format(self):
        assert "shards" not in Telemetry().format()

    def test_merge_takes_max_like_workers(self):
        a = Telemetry(shards=2)
        a.merge(Telemetry(shards=4))
        a.merge(Telemetry())
        assert a.shards == 4

    def test_round_trip_and_format(self):
        t = Telemetry(backend="sharded", shards=4)
        assert t.to_dict()["shards"] == 4
        assert "shards: 4" in t.format()
        assert "backend: sharded" in t.format()


class TestFabricBytes:
    def test_merge_sums_byte_counters(self):
        a = Telemetry(bytes_broadcast=1000, bytes_migrated=250)
        a.merge(Telemetry(bytes_broadcast=500, bytes_migrated=750))
        a.merge(Telemetry())
        assert a.bytes_broadcast == 1500
        assert a.bytes_migrated == 1000

    def test_default_absent_from_format(self):
        assert "shard comms" not in Telemetry().format()

    def test_round_trip_and_format(self):
        t = Telemetry(bytes_broadcast=2_500_000, bytes_migrated=500_000)
        assert t.to_dict()["bytes_broadcast"] == 2_500_000
        assert t.to_dict()["bytes_migrated"] == 500_000
        assert "shard comms: 2.5 MB broadcast, 0.5 MB migrated" in t.format()
