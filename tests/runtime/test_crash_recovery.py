"""Executor crash recovery: retries, reseeding, partial results.

The task functions are module-level so the process-pool paths can
pickle them.  "Flaky" tasks fail deterministically on their
first-attempt seed and succeed on any re-derived attempt seed, which
lets the tests assert both the retry mechanics and the determinism
guarantee (workers=1 and workers=4 agree through failures).
"""

import os

import pytest

from repro.errors import ParameterError
from repro.runtime import ExperimentExecutor, TaskFailure, TaskSpec, derive_seed
from repro.runtime.executor import _ATTEMPT_SALT

FLAKY_BELOW = 1_000_000


def flaky_task(seed):
    """Fails on small (first-attempt) seeds, succeeds on derived ones."""
    if seed < FLAKY_BELOW:
        raise ValueError(f"flaky failure for seed {seed}")
    return seed


def flaky_even_task(seed):
    """Fails on even first-attempt seeds only."""
    if seed < FLAKY_BELOW and seed % 2 == 0:
        raise ValueError(f"flaky failure for seed {seed}")
    return seed


def always_failing_task(seed):
    raise RuntimeError("broken beyond repair")


def crashing_task(seed):
    """Hard-kills its worker process for one specific seed."""
    if seed == 13:
        os._exit(17)
    return seed


def always_crashing_task(seed):
    os._exit(17)


def attempt2_seed(seed):
    return derive_seed(seed, _ATTEMPT_SALT, 2)


class TestTaskSpecReseeding:
    def test_first_attempt_is_identity(self):
        spec = TaskSpec(flaky_task, (5,), seed_index=0)
        assert spec.for_attempt(1) is spec

    def test_later_attempts_rederive_the_seed(self):
        spec = TaskSpec(flaky_task, (5,), seed_index=0)
        assert spec.for_attempt(2).args == (attempt2_seed(5),)
        assert spec.for_attempt(3).args != spec.for_attempt(2).args

    def test_without_seed_index_args_unchanged(self):
        spec = TaskSpec(flaky_task, (5,))
        assert spec.for_attempt(2).args == (5,)

    def test_seed_index_out_of_range_rejected(self):
        with pytest.raises(ParameterError):
            TaskSpec(flaky_task, (5,), seed_index=1)
        with pytest.raises(ParameterError):
            TaskSpec(flaky_task, (), seed_index=0)


class TestExecutorValidation:
    def test_max_attempts_validated(self):
        with pytest.raises(ParameterError):
            ExperimentExecutor(max_attempts=0)

    def test_backoff_validated(self):
        with pytest.raises(ParameterError):
            ExperimentExecutor(retry_backoff=-1.0)

    def test_on_error_validated(self):
        with pytest.raises(ParameterError):
            ExperimentExecutor(on_error="ignore")


class TestSerialRetry:
    def test_fails_once_then_succeeds_on_retry_seed(self):
        executor = ExperimentExecutor(workers=1, max_attempts=2)
        results = executor.run([TaskSpec(flaky_task, (5,), seed_index=0)])
        assert results == [attempt2_seed(5)]
        assert executor.telemetry.task_failures == 1
        assert executor.telemetry.retries == 1
        assert executor.telemetry.tasks_failed == 0

    def test_exhausted_attempts_raise_by_default(self):
        executor = ExperimentExecutor(workers=1, max_attempts=3)
        with pytest.raises(RuntimeError, match="broken beyond repair"):
            executor.run([TaskSpec(always_failing_task, (1,), seed_index=0)])
        assert executor.telemetry.task_failures == 3
        assert executor.telemetry.retries == 2

    def test_partial_mode_yields_none_and_failure_record(self):
        executor = ExperimentExecutor(
            workers=1, max_attempts=2, on_error="partial"
        )
        results = executor.run([
            TaskSpec(always_failing_task, (1,), seed_index=0),
            TaskSpec(flaky_even_task, (3,), seed_index=0),
        ])
        assert results[0] is None
        assert results[1] == 3
        telemetry = executor.telemetry
        assert telemetry.tasks_failed == 1
        assert len(telemetry.failure_log) == 1
        failure = telemetry.failure_log[0]
        assert failure.index == 0
        assert failure.attempts == 2
        assert failure.fn == "always_failing_task"
        assert "RuntimeError" in failure.error

    def test_no_retries_preserves_original_semantics(self):
        executor = ExperimentExecutor(workers=1)
        with pytest.raises(ValueError):
            executor.run([TaskSpec(flaky_task, (5,), seed_index=0)])


class TestPooledRetry:
    def test_raised_errors_retry_in_pool(self):
        executor = ExperimentExecutor(workers=2, max_attempts=2)
        results = executor.run(
            [TaskSpec(flaky_even_task, (s,), seed_index=0) for s in range(4)]
        )
        assert results == [
            attempt2_seed(0), 1, attempt2_seed(2), 3,
        ]
        assert executor.telemetry.retries == 2

    def test_crashed_worker_does_not_abort_the_run(self):
        executor = ExperimentExecutor(
            workers=2, max_attempts=2, on_error="partial"
        )
        results = executor.run(
            [TaskSpec(crashing_task, (s,), seed_index=0) for s in (1, 13, 3)]
        )
        assert results[0] == 1 and results[2] == 3
        # The crasher either succeeded on its re-derived seed or was
        # abandoned; either way the run completed.
        assert results[1] in (attempt2_seed(13), None)

    def test_unrecoverable_crasher_abandoned_with_record(self):
        executor = ExperimentExecutor(
            workers=2, max_attempts=2, on_error="partial"
        )
        results = executor.run([
            TaskSpec(always_crashing_task, (1,), seed_index=0),
            TaskSpec(crashing_task, (2,), seed_index=0),
            TaskSpec(crashing_task, (3,), seed_index=0),
        ])
        assert results == [None, 2, 3]
        telemetry = executor.telemetry
        assert telemetry.tasks_failed == 1
        assert telemetry.failure_log[0].index == 0
        assert telemetry.failure_log[0].attempts == 2

    def test_collateral_victims_keep_their_attempt_budget(self):
        # One guaranteed crasher among healthy tasks: the healthy tasks
        # must all succeed with their first-attempt seeds even if they
        # were collateral damage of the broken pool.
        executor = ExperimentExecutor(
            workers=4, max_attempts=2, on_error="partial"
        )
        specs = [TaskSpec(always_crashing_task, (99,), seed_index=0)] + [
            TaskSpec(flaky_even_task, (s,), seed_index=0)
            for s in (1, 3, 5, 7, 9, 11)
        ]
        results = executor.run(specs)
        assert results == [None, 1, 3, 5, 7, 9, 11]


class TestDeterminism:
    @staticmethod
    def _specs():
        return [
            TaskSpec(flaky_even_task, (s,), seed_index=0) for s in range(12)
        ]

    def test_serial_and_parallel_agree_under_failures(self):
        serial = ExperimentExecutor(workers=1, max_attempts=3).run(self._specs())
        parallel = ExperimentExecutor(workers=4, max_attempts=3).run(self._specs())
        assert serial == parallel

    def test_repeated_runs_identical(self):
        first = ExperimentExecutor(workers=2, max_attempts=2).run(self._specs())
        second = ExperimentExecutor(workers=2, max_attempts=2).run(self._specs())
        assert first == second


class TestFailureTelemetry:
    def test_merge_folds_failure_counters(self):
        from repro.runtime.telemetry import Telemetry

        a = Telemetry(task_failures=1, retries=1,
                      failure_log=[TaskFailure(0, 2, "ValueError: x")])
        b = Telemetry(task_failures=2, tasks_failed=1,
                      failure_log=[TaskFailure(3, 2, "OSError: y")])
        a.merge(b)
        assert a.task_failures == 3
        assert a.tasks_failed == 1
        assert [f.index for f in a.failure_log] == [0, 3]

    def test_format_mentions_faults_only_when_present(self):
        from repro.runtime.telemetry import Telemetry

        assert "faults" not in Telemetry().format()
        text = Telemetry(task_failures=2, retries=1, tasks_failed=1).format()
        assert "2 failed attempt(s)" in text
        assert "1 retried" in text
        assert "1 abandoned" in text

    def test_to_dict_includes_failure_log(self):
        executor = ExperimentExecutor(
            workers=1, max_attempts=2, on_error="partial"
        )
        executor.run([TaskSpec(always_failing_task, (1,), seed_index=0)])
        payload = executor.telemetry.to_dict()
        assert payload["tasks_failed"] == 1
        assert payload["failure_log"][0]["fn"] == "always_failing_task"

    def test_task_failure_to_dict(self):
        failure = TaskFailure(index=2, attempts=3, error="E: boom", fn="f")
        assert failure.to_dict() == {
            "index": 2, "attempts": 3, "error": "E: boom", "fn": "f",
        }


class TestBackoff:
    def test_backoff_sleeps_between_attempts(self, monkeypatch):
        import repro.runtime.executor as executor_module

        naps = []
        monkeypatch.setattr(
            executor_module.time, "sleep", lambda s: naps.append(s)
        )
        executor = ExperimentExecutor(
            workers=1, max_attempts=3, retry_backoff=0.5, on_error="partial"
        )
        executor.run([TaskSpec(always_failing_task, (1,), seed_index=0)])
        # Exponential: 0.5 before attempt 2, 1.0 before attempt 3.
        assert naps == [0.5, 1.0]

    def test_zero_backoff_never_sleeps(self, monkeypatch):
        import repro.runtime.executor as executor_module

        naps = []
        monkeypatch.setattr(
            executor_module.time, "sleep", lambda s: naps.append(s)
        )
        executor = ExperimentExecutor(
            workers=1, max_attempts=3, on_error="partial"
        )
        executor.run([TaskSpec(always_failing_task, (1,), seed_index=0)])
        assert naps == []
