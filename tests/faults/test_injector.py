"""Tests for the FaultInjector's draws, stream isolation, and counters."""

import numpy as np

from repro.faults import FaultInjector, FaultPlan, OutageWindow
from repro.faults.injector import _FAULT_STREAM
from repro.runtime.seeding import derive_seed


class TestStreamIsolation:
    def test_seed_derivation_path(self):
        injector = FaultInjector(FaultPlan(salt=3), root_seed=42)
        expected = np.random.default_rng(derive_seed(42, _FAULT_STREAM, 3))
        assert injector.rng.random() == expected.random()

    def test_none_root_seed_falls_back_to_zero(self):
        a = FaultInjector(FaultPlan(), root_seed=None)
        b = FaultInjector(FaultPlan(), root_seed=0)
        assert a.rng.random() == b.rng.random()

    def test_salt_separates_streams(self):
        a = FaultInjector(FaultPlan(churn_hazard=0.5, salt=0), root_seed=1)
        b = FaultInjector(FaultPlan(churn_hazard=0.5, salt=1), root_seed=1)
        draws_a = [a.churn_peer() for _ in range(64)]
        draws_b = [b.churn_peer() for _ in range(64)]
        assert draws_a != draws_b

    def test_deterministic_per_seed(self):
        def draws():
            injector = FaultInjector(FaultPlan(churn_hazard=0.3), root_seed=7)
            return [injector.churn_peer() for _ in range(50)]

        assert draws() == draws()


class TestZeroGuards:
    def test_zero_probabilities_consume_no_randomness(self):
        injector = FaultInjector(FaultPlan(), root_seed=5)
        before = injector.rng.bit_generator.state
        assert not injector.churn_peer()
        assert not injector.break_connection()
        assert not injector.fail_handshake()
        assert not injector.fail_shake()
        assert injector.rng.bit_generator.state == before
        assert injector.stats.total() == 0


class TestCounters:
    def test_certain_faults_fire_and_count(self):
        plan = FaultPlan(
            churn_hazard=1.0,
            connection_break_prob=1.0,
            handshake_failure_prob=1.0,
            shake_failure_prob=1.0,
        )
        injector = FaultInjector(plan, root_seed=0)
        assert injector.churn_peer()
        assert injector.break_connection()
        assert injector.fail_handshake()
        assert injector.fail_shake()
        stats = injector.stats
        assert (stats.peers_churned, stats.connections_broken,
                stats.handshakes_failed, stats.shakes_failed) == (1, 1, 1, 1)


class TestOutages:
    def test_clock_follows_observe_hook(self):
        window = OutageWindow(10.0, 20.0, "empty")
        injector = FaultInjector(FaultPlan(outages=(window,)))
        assert injector.announce_outage() is None
        injector.observe(15.0)
        assert injector.announce_outage() is window
        injector.observe(25.0)
        assert injector.announce_outage() is None

    def test_stale_snapshot_frozen_per_window(self):
        window = OutageWindow(0.0, 10.0, "stale")
        injector = FaultInjector(FaultPlan(outages=(window,)))
        first = injector.stale_peer_ids(window, [1, 2, 3])
        # Later announces see the original snapshot, not the live set.
        second = injector.stale_peer_ids(window, [4, 5])
        assert first == second == [1, 2, 3]
        assert injector.stats.announces_stale == 2

    def test_distinct_windows_snapshot_separately(self):
        w1 = OutageWindow(0.0, 5.0, "stale")
        w2 = OutageWindow(6.0, 9.0, "stale")
        injector = FaultInjector(FaultPlan(outages=(w1, w2)))
        assert injector.stale_peer_ids(w1, [1]) == [1]
        assert injector.stale_peer_ids(w2, [2]) == [2]

    def test_empty_announce_counter(self):
        injector = FaultInjector(FaultPlan())
        injector.record_empty_announce()
        assert injector.stats.announces_empty == 1
