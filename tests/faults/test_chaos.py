"""Tests for the chaos fault-intensity sweep."""

import json

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.faults import FaultPlan
from repro.faults.chaos import default_chaos_config, run_chaos_sweep


@pytest.fixture(scope="module")
def result():
    config = default_chaos_config().with_changes(
        max_time=40.0, initial_leechers=30, arrival_rate=2.0
    )
    plan = FaultPlan(
        churn_hazard=0.01,
        connection_break_prob=0.3,
        handshake_failure_prob=0.3,
    )
    return run_chaos_sweep(
        (0.0, 1.0), plan=plan, config=config, replications=2,
        instrument=2, seed=0,
    )


class TestSweep:
    def test_series_shapes(self, result):
        for series in (result.sim_eta, result.model_eta, result.p_reenc,
                       result.p_new, result.bootstrap_frac, result.last_frac,
                       result.fault_events):
            assert series.shape == (2,)

    def test_control_point_fires_nothing(self, result):
        assert result.fault_events[0] == 0

    def test_faulted_point_fires(self, result):
        assert result.fault_events[1] > 0

    def test_injected_breaks_lower_measured_p_r(self, result):
        # The injected break probability composes with nominal churn, so
        # the measured survival probability must drop.
        assert result.p_reenc[1] < result.p_reenc[0]

    def test_injected_timeouts_lower_measured_p_n(self, result):
        assert result.p_new[1] < result.p_new[0]

    def test_model_follows_measured_p_r(self, result):
        # Model eta at the lower measured p_r is itself lower.
        assert result.model_eta[1] < result.model_eta[0]

    def test_no_points_failed(self, result):
        assert result.points_failed == 0
        assert result.timing.tasks_failed == 0

    def test_etas_in_domain(self, result):
        assert ((result.sim_eta > 0) & (result.sim_eta <= 1)).all()
        assert ((result.model_eta > 0) & (result.model_eta <= 1)).all()

    def test_format_mentions_intensities(self, result):
        text = result.format()
        assert "intensity" in text and "model eta" in text

    def test_to_dict_json_serializable(self, result):
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["experiment"] == "chaos"
        assert payload["replications"] == 2
        assert len(payload["intensities"]) == 2
        assert payload["plan"]["connection_break_prob"] == 0.3

    def test_deterministic(self, result):
        config = default_chaos_config().with_changes(
            max_time=40.0, initial_leechers=30, arrival_rate=2.0
        )
        plan = FaultPlan(
            churn_hazard=0.01,
            connection_break_prob=0.3,
            handshake_failure_prob=0.3,
        )
        again = run_chaos_sweep(
            (0.0, 1.0), plan=plan, config=config, replications=2,
            instrument=2, seed=0,
        )
        np.testing.assert_array_equal(result.sim_eta, again.sim_eta)
        np.testing.assert_array_equal(result.fault_events, again.fault_events)


class TestValidation:
    def test_empty_intensities_rejected(self):
        with pytest.raises(ParameterError):
            run_chaos_sweep(())

    def test_bad_replications_rejected(self):
        with pytest.raises(ParameterError):
            run_chaos_sweep((0.0,), replications=0)
