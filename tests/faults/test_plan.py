"""Tests for FaultPlan / OutageWindow / FaultStats."""

import pickle

import pytest

from repro.errors import ParameterError
from repro.faults import FaultPlan, FaultStats, OutageWindow


class TestOutageWindow:
    def test_covers_half_open(self):
        window = OutageWindow(10.0, 20.0)
        assert window.covers(10.0)
        assert window.covers(19.999)
        assert not window.covers(20.0)
        assert not window.covers(9.999)

    def test_rejects_empty_interval(self):
        with pytest.raises(ParameterError):
            OutageWindow(5.0, 5.0)
        with pytest.raises(ParameterError):
            OutageWindow(5.0, 4.0)

    def test_rejects_non_finite_bounds(self):
        with pytest.raises(ParameterError):
            OutageWindow(float("nan"), 1.0)
        with pytest.raises(ParameterError):
            OutageWindow(0.0, float("inf"))

    def test_rejects_unknown_mode(self):
        with pytest.raises(ParameterError):
            OutageWindow(0.0, 1.0, "flaky")


class TestFaultPlan:
    def test_default_is_zero(self):
        assert FaultPlan().is_zero

    def test_nonzero_detection(self):
        assert not FaultPlan(churn_hazard=0.1).is_zero
        assert not FaultPlan(outages=(OutageWindow(0.0, 1.0),)).is_zero

    @pytest.mark.parametrize("name", [
        "churn_hazard", "connection_break_prob",
        "handshake_failure_prob", "shake_failure_prob",
    ])
    def test_probability_bounds(self, name):
        with pytest.raises(ParameterError):
            FaultPlan(**{name: 1.5})
        with pytest.raises(ParameterError):
            FaultPlan(**{name: -0.1})

    def test_outage_type_checked(self):
        with pytest.raises(ParameterError):
            FaultPlan(outages=((0.0, 1.0),))

    def test_outage_at_earliest_wins(self):
        early = OutageWindow(0.0, 10.0, "empty")
        late = OutageWindow(5.0, 15.0, "stale")
        plan = FaultPlan(outages=(early, late))
        assert plan.outage_at(7.0) is early
        assert plan.outage_at(12.0) is late
        assert plan.outage_at(20.0) is None

    def test_scaled(self):
        plan = FaultPlan(
            churn_hazard=0.1,
            connection_break_prob=0.2,
            handshake_failure_prob=0.4,
            shake_failure_prob=0.6,
            outages=(OutageWindow(0.0, 1.0),),
        )
        half = plan.scaled(0.5)
        assert half.churn_hazard == pytest.approx(0.05)
        assert half.connection_break_prob == pytest.approx(0.1)
        assert half.outages == plan.outages

    def test_scaled_clips_at_one(self):
        assert FaultPlan(shake_failure_prob=0.6).scaled(5.0).shake_failure_prob == 1.0

    def test_scaled_zero_is_zero_plan(self):
        plan = FaultPlan(churn_hazard=0.1, outages=(OutageWindow(0.0, 1.0),))
        assert plan.scaled(0.0).is_zero

    def test_scaled_rejects_negative(self):
        with pytest.raises(ParameterError):
            FaultPlan().scaled(-1.0)

    def test_picklable(self):
        plan = FaultPlan(churn_hazard=0.1, outages=(OutageWindow(1.0, 2.0),))
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_to_dict_round_trips_values(self):
        plan = FaultPlan(
            connection_break_prob=0.25,
            outages=(OutageWindow(3.0, 4.0, "stale"),),
            salt=7,
        )
        payload = plan.to_dict()
        assert payload["connection_break_prob"] == 0.25
        assert payload["outages"] == [{"start": 3.0, "end": 4.0, "mode": "stale"}]
        assert payload["salt"] == 7


class TestFaultStats:
    def test_total_and_merge(self):
        a = FaultStats(peers_churned=1, handshakes_failed=2)
        b = FaultStats(connections_broken=3, announces_empty=4)
        a.merge(b)
        assert a.total() == 10
        assert a.to_dict()["total"] == 10
