"""Tests for the efficiency metric and the k-sweep (Figure 3/4(a) model)."""

import numpy as np
import pytest

from repro.analysis.validation import efficiency_shape
from repro.efficiency.efficiency import efficiency_curve, efficiency_eta
from repro.efficiency.lifetime import ConnectionLifetimeModel
from repro.errors import ParameterError


class TestEfficiencyEta:
    def test_formula(self):
        # eta = (1/k) sum i x_i
        assert efficiency_eta([0.2, 0.3, 0.5]) == pytest.approx(
            (0.3 + 2 * 0.5) / 2
        )

    def test_list_input(self):
        assert efficiency_eta([0.0, 1.0]) == 1.0


class TestEfficiencyCurve:
    def test_default_uses_lifetime_model(self):
        points = efficiency_curve([1, 2, 3])
        assert len(points) == 3
        # p_r must differ across k under the lifetime model.
        assert points[0].p_reenc < points[2].p_reenc

    def test_fixed_pr(self):
        points = efficiency_curve([1, 2], p_reenc=0.7)
        assert all(p.p_reenc == 0.7 for p in points)

    def test_paper_shape(self):
        """The figure's shape: the k=1 -> 2 gain dominates, then plateau."""
        points = efficiency_curve(list(range(1, 9)))
        checks = efficiency_shape(
            np.array([p.max_conns for p in points]),
            np.array([p.eta for p in points]),
        )
        assert checks["first_gain_positive"], checks
        assert checks["first_gain_dominates"], checks
        assert checks["plateau_after_two"], checks

    def test_eta_bounds(self):
        for point in efficiency_curve(list(range(1, 6))):
            assert 0.0 <= point.eta <= 1.0
            assert 0.0 <= point.eta_birth_death <= 1.0

    def test_occupancy_sums_to_one(self):
        for point in efficiency_curve([1, 3]):
            assert point.occupancy.sum() == pytest.approx(1.0)

    def test_model_upper_bounds_birth_death(self):
        # The sequential iteration order gives an upper bound (paper).
        for point in efficiency_curve(list(range(1, 5))):
            assert point.eta >= point.eta_birth_death - 1e-9

    def test_custom_lifetime(self):
        model = ConnectionLifetimeModel(initial_pool=2.0, residual_cap=10.0)
        points = efficiency_curve([1, 4], lifetime=model)
        assert points[0].p_reenc == pytest.approx(0.5)

    def test_empty_k_rejected(self):
        with pytest.raises(ParameterError):
            efficiency_curve([])

    def test_both_pr_and_lifetime_rejected(self):
        with pytest.raises(ParameterError):
            efficiency_curve([1], p_reenc=0.5, lifetime=ConnectionLifetimeModel())
