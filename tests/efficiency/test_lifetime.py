"""Tests for the connection-lifetime model."""

import pytest

from repro.efficiency.lifetime import ConnectionLifetimeModel
from repro.errors import ParameterError


class TestExpectedLifetime:
    def test_k1_equals_initial_pool(self):
        model = ConnectionLifetimeModel(initial_pool=3.0, usefulness=0.5)
        assert model.expected_lifetime(1) == pytest.approx(3.0)

    def test_monotone_in_k(self):
        model = ConnectionLifetimeModel()
        lifetimes = [model.expected_lifetime(k) for k in range(1, 7)]
        assert lifetimes == sorted(lifetimes)

    def test_capped_by_residual(self):
        model = ConnectionLifetimeModel(initial_pool=3.0, usefulness=0.5,
                                        residual_cap=20.0)
        # k = 3: drain = 0 -> the cap binds.
        assert model.expected_lifetime(3) == 20.0
        assert model.expected_lifetime(8) == 20.0

    def test_never_below_one(self):
        model = ConnectionLifetimeModel(initial_pool=1.0, usefulness=0.0,
                                        residual_cap=1.0)
        assert model.expected_lifetime(1) >= 1.0

    def test_invalid_k(self):
        with pytest.raises(ParameterError):
            ConnectionLifetimeModel().expected_lifetime(0)


class TestSurvivalProbability:
    def test_in_unit_interval(self):
        model = ConnectionLifetimeModel()
        for k in range(1, 9):
            assert 0.0 <= model.survival_probability(k) < 1.0

    def test_k1_value(self):
        model = ConnectionLifetimeModel(initial_pool=3.0)
        assert model.survival_probability(1) == pytest.approx(2.0 / 3.0)

    def test_monotone_in_k(self):
        model = ConnectionLifetimeModel()
        values = [model.survival_probability(k) for k in range(1, 7)]
        assert values == sorted(values)


class TestValidation:
    def test_pool_below_one(self):
        with pytest.raises(ParameterError):
            ConnectionLifetimeModel(initial_pool=0.5)

    def test_usefulness_out_of_range(self):
        with pytest.raises(ParameterError):
            ConnectionLifetimeModel(usefulness=1.5)

    def test_cap_below_one(self):
        with pytest.raises(ParameterError):
            ConnectionLifetimeModel(residual_cap=0.0)


class TestForFile:
    def test_cap_scales_with_b(self):
        small = ConnectionLifetimeModel.for_file(40)
        large = ConnectionLifetimeModel.for_file(400)
        assert large.residual_cap > small.residual_cap

    def test_cap_formula(self):
        model = ConnectionLifetimeModel.for_file(200)
        assert model.residual_cap == pytest.approx(50.0)

    def test_tiny_file_floor(self):
        model = ConnectionLifetimeModel.for_file(2)
        assert model.residual_cap == 1.0

    def test_invalid_b(self):
        with pytest.raises(ParameterError):
            ConnectionLifetimeModel.for_file(0)
