"""Tests for measured connection rates and the calibrated model loop."""

import pytest

from repro.efficiency.measurement import (
    calibrated_efficiency_curve,
    measure_connection_rates,
)
from repro.errors import ParameterError
from repro.sim.choking import ConnectionStats
from repro.sim.config import SimConfig


class TestConnectionStats:
    def test_rates(self):
        stats = ConnectionStats(survived=70, dropped=30, attempts=50, formed=20)
        assert stats.p_reenc() == pytest.approx(0.7)
        assert stats.p_new() == pytest.approx(0.4)

    def test_unobserved_is_nan(self):
        import math

        stats = ConnectionStats()
        assert math.isnan(stats.p_reenc())
        assert math.isnan(stats.p_new())

    def test_merge(self):
        a = ConnectionStats(survived=1, dropped=2, attempts=3, formed=4)
        b = ConnectionStats(survived=10, dropped=20, attempts=30, formed=40)
        a.merge(b)
        assert (a.survived, a.dropped, a.attempts, a.formed) == (11, 22, 33, 44)


class TestMeasureConnectionRates:
    @pytest.fixture(scope="class")
    def measured(self):
        config = SimConfig(
            num_pieces=30, max_conns=3, ns_size=15,
            arrival_rate=2.0, initial_leechers=40,
            initial_distribution="uniform", initial_fill=0.5,
            connection_setup_prob=0.8, connection_failure_prob=0.1,
            max_time=60.0, seed=1,
        )
        return measure_connection_rates(config)

    def test_probabilities_in_range(self, measured):
        p_reenc, p_new, sim_eta = measured
        assert 0.0 <= p_reenc <= 1.0
        assert 0.0 <= p_new <= 1.0
        assert 0.0 <= sim_eta <= 1.0

    def test_churn_bounds_survival(self, measured):
        # With 10% exogenous churn, survival cannot exceed 0.9.
        p_reenc, _p_new, _eta = measured
        assert p_reenc <= 0.9 + 1e-9


class TestCalibratedCurve:
    @pytest.fixture(scope="class")
    def points(self):
        def factory(k, seed):
            return SimConfig(
                num_pieces=40, max_conns=k, ns_size=20,
                arrival_rate=3.0, initial_leechers=50,
                initial_distribution="uniform", initial_fill=0.5,
                connection_setup_prob=0.8, connection_failure_prob=0.1,
                matching="blind", max_time=80.0, seed=seed,
            )

        return calibrated_efficiency_curve([1, 2, 4], config_factory=factory)

    def test_one_point_per_k(self, points):
        assert [p.max_conns for p in points] == [1, 2, 4]

    def test_measured_survival_rises_with_k(self, points):
        """The paper's lifetime argument, observed empirically."""
        survivals = [p.p_reenc for p in points]
        assert survivals[-1] > survivals[0]

    def test_calibrated_model_tracks_sim(self, points):
        for point in points:
            assert point.model_eta == pytest.approx(point.sim_eta, abs=0.15)

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            calibrated_efficiency_curve([])
