"""Tests for the birth-death cross-check."""

import pytest

from repro.efficiency.birth_death import birth_death_equilibrium
from repro.errors import ParameterError


class TestBirthDeathEquilibrium:
    def test_distribution_sums_to_one(self):
        result = birth_death_equilibrium(4, 0.7)
        assert result.x.sum() == pytest.approx(1.0)

    def test_self_consistency(self):
        result = birth_death_equilibrium(3, 0.6)
        assert result.success_probability == pytest.approx(
            1.0 - result.x[-1], abs=1e-6
        )

    def test_eta_bounds(self):
        for k in (1, 2, 6):
            result = birth_death_equilibrium(k, 0.5)
            assert 0.0 <= result.eta <= 1.0

    def test_perfect_survival_all_at_k(self):
        result = birth_death_equilibrium(3, 1.0)
        assert result.x[-1] == pytest.approx(1.0)
        assert result.eta == pytest.approx(1.0)

    def test_eta_monotone_in_survival(self):
        low = birth_death_equilibrium(2, 0.3).eta
        high = birth_death_equilibrium(2, 0.9).eta
        assert high > low

    def test_k1_closed_form(self):
        # k=1: eta solves eta = (1 - eta) / (1 - eta + (1 - pr)).
        pr = 0.7
        result = birth_death_equilibrium(1, pr)
        eta = result.eta
        fail = 1.0 - pr
        assert eta == pytest.approx((1 - eta) / (1 - eta + fail), abs=1e-6)

    def test_invalid_k(self):
        with pytest.raises(ParameterError):
            birth_death_equilibrium(0, 0.5)

    def test_invalid_pr(self):
        with pytest.raises(ParameterError):
            birth_death_equilibrium(2, -0.1)

    def test_invalid_damping(self):
        with pytest.raises(ParameterError):
            birth_death_equilibrium(2, 0.5, damping=0.0)

    def test_iterations_reported(self):
        result = birth_death_equilibrium(2, 0.5)
        assert result.iterations >= 1
