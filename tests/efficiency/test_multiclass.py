"""Tests for the multiclass (heterogeneous) occupancy model."""

import pytest

from repro.efficiency.balance import iterate_balance
from repro.efficiency.multiclass import PeerClass, multiclass_balance
from repro.errors import ConvergenceError, ParameterError


class TestPeerClass:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(fraction=0.0, p_reenc=0.5, max_conns=2),
            dict(fraction=0.5, p_reenc=1.5, max_conns=2),
            dict(fraction=0.5, p_reenc=0.5, max_conns=0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ParameterError):
            PeerClass(**kwargs)


class TestMulticlassBalance:
    def test_single_class_matches_homogeneous_model(self):
        for pr in (0.4, 0.7, 0.9):
            single = iterate_balance(3, pr)
            multi = multiclass_balance([PeerClass(1.0, pr, 3)])
            assert multi.aggregate_eta == pytest.approx(single.eta, abs=1e-3)

    def test_identical_classes_equal_etas(self):
        result = multiclass_balance([
            PeerClass(0.5, 0.7, 3, "a"),
            PeerClass(0.5, 0.7, 3, "b"),
        ])
        assert result.etas[0] == pytest.approx(result.etas[1], abs=1e-6)

    def test_lower_survival_lower_eta(self):
        result = multiclass_balance([
            PeerClass(0.5, 0.5, 3, "slow"),
            PeerClass(0.5, 0.9, 3, "fast"),
        ])
        assert result.etas[0] < result.etas[1]

    def test_aggregate_is_weighted_mean(self):
        result = multiclass_balance([
            PeerClass(0.25, 0.5, 3),
            PeerClass(0.75, 0.9, 3),
        ])
        expected = 0.25 * result.etas[0] + 0.75 * result.etas[1]
        assert result.aggregate_eta == pytest.approx(expected)

    def test_mass_conserved_per_class(self):
        result = multiclass_balance([
            PeerClass(0.3, 0.6, 2),
            PeerClass(0.7, 0.8, 5),
        ])
        for occupancy in result.occupancies:
            assert occupancy.sum() == pytest.approx(1.0)
            assert (occupancy >= 0).all()

    def test_mixed_slot_counts(self):
        result = multiclass_balance([
            PeerClass(0.5, 0.8, 1, "single-slot"),
            PeerClass(0.5, 0.8, 6, "many-slot"),
        ])
        assert result.occupancies[0].size == 2
        assert result.occupancies[1].size == 7
        # Same survival: per-slot utilisation favors the single-slot
        # class (its one slot refills from the same market).
        assert 0.0 <= result.aggregate_eta <= 1.0

    def test_busy_market_couples_classes(self):
        """A saturated majority class throttles the minority's formation."""
        lone = multiclass_balance([PeerClass(1.0, 0.6, 2)]).aggregate_eta
        crowded = multiclass_balance([
            PeerClass(0.1, 0.6, 2, "minority"),
            PeerClass(0.9, 1.0, 2, "saturated"),  # p_r=1: drifts to busy
        ])
        minority_eta = crowded.etas[0]
        # With 90% of the market busy, the minority fills slots slower.
        assert minority_eta < lone

    def test_validation(self):
        with pytest.raises(ParameterError):
            multiclass_balance([])
        with pytest.raises(ParameterError):
            multiclass_balance([PeerClass(0.5, 0.5, 2)])  # fractions != 1
        with pytest.raises(ParameterError):
            multiclass_balance([PeerClass(1.0, 0.5, 2)], step=0.0)

    def test_budget_exhaustion(self):
        with pytest.raises(ConvergenceError):
            multiclass_balance([PeerClass(1.0, 0.5, 4)], max_iterations=2)
