"""Tests for the Section-5 balance equations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.binomial import binomial_pmf
from repro.efficiency.balance import (
    downward_sweep,
    efficiency_from_occupancy,
    failure_weights,
    iterate_balance,
    upward_sweep,
)
from repro.errors import ConvergenceError, ParameterError


def random_occupancy(draw_floats, k):
    raw = np.array(draw_floats) + 1e-6
    return raw / raw.sum()


class TestFailureWeights:
    def test_is_binomial_in_failures(self):
        weights = failure_weights(5, 0.7)
        np.testing.assert_allclose(weights, binomial_pmf(5, 0.3), atol=1e-12)

    def test_zero_connections(self):
        assert failure_weights(0, 0.5).tolist() == [1.0]

    def test_perfect_survival(self):
        weights = failure_weights(4, 1.0)
        assert weights[0] == 1.0


class TestDownwardSweep:
    def test_conserves_mass(self):
        x = np.array([0.1, 0.2, 0.3, 0.4])
        out = downward_sweep(x, 0.6)
        assert out.sum() == pytest.approx(1.0)

    def test_point_mass_thinning(self):
        x = np.array([0.0, 0.0, 1.0])
        out = downward_sweep(x, 0.7)
        np.testing.assert_allclose(out, binomial_pmf(2, 0.7), atol=1e-12)

    def test_all_fail(self):
        x = np.array([0.2, 0.3, 0.5])
        out = downward_sweep(x, 0.0)
        assert out[0] == pytest.approx(1.0)

    def test_none_fail(self):
        x = np.array([0.2, 0.3, 0.5])
        np.testing.assert_allclose(downward_sweep(x, 1.0), x)

    def test_only_moves_mass_down(self):
        x = np.array([0.0, 1.0, 0.0])
        out = downward_sweep(x, 0.5)
        assert out[2] == 0.0

    @given(
        raw=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=9),
        pr=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60)
    def test_property_mass_conserved(self, raw, pr):
        x = random_occupancy(raw, len(raw) - 1)
        out = downward_sweep(x, pr)
        assert out.sum() == pytest.approx(1.0, abs=1e-9)
        assert (out >= -1e-12).all()


class TestUpwardSweep:
    def test_conserves_mass(self):
        x = np.array([0.5, 0.3, 0.2])
        out = upward_sweep(x)
        assert out.sum() == pytest.approx(1.0)

    def test_moves_mass_up(self):
        x = np.array([1.0, 0.0])
        out = upward_sweep(x)
        assert out[1] > 0.0

    def test_saturated_fixed(self):
        x = np.array([0.0, 0.0, 1.0])
        out = upward_sweep(x)
        np.testing.assert_allclose(out, x)

    def test_k_zero_rejected(self):
        with pytest.raises(ParameterError):
            upward_sweep(np.array([1.0]))

    @given(
        raw=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=9),
    )
    @settings(max_examples=60)
    def test_property_mass_conserved_no_negatives(self, raw):
        x = random_occupancy(raw, len(raw) - 1)
        out = upward_sweep(x)
        assert out.sum() == pytest.approx(1.0, abs=1e-9)
        assert (out >= -1e-12).all()

    @given(
        raw=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=9),
    )
    @settings(max_examples=60)
    def test_property_never_decreases_mean_connections(self, raw):
        x = random_occupancy(raw, len(raw) - 1)
        out = upward_sweep(x)
        mean_before = np.arange(x.size) @ x
        mean_after = np.arange(out.size) @ out
        assert mean_after >= mean_before - 1e-9


class TestIterateBalance:
    def test_converges(self):
        result = iterate_balance(3, 0.7)
        assert result.residual < 1e-9
        assert result.x.sum() == pytest.approx(1.0)

    def test_eta_in_unit_interval(self):
        for k in (1, 2, 5):
            result = iterate_balance(k, 0.6)
            assert 0.0 <= result.eta <= 1.0

    def test_eta_monotone_in_survival(self):
        low = iterate_balance(2, 0.3).eta
        high = iterate_balance(2, 0.9).eta
        assert high > low

    def test_perfect_survival_saturates(self):
        result = iterate_balance(3, 1.0)
        assert result.eta == pytest.approx(1.0, abs=1e-4)

    def test_custom_start(self):
        x0 = np.array([0.0, 0.0, 1.0])
        result = iterate_balance(2, 0.7, x0=x0)
        default = iterate_balance(2, 0.7)
        np.testing.assert_allclose(result.x, default.x, atol=1e-6)

    def test_bad_x0_shape(self):
        with pytest.raises(ParameterError):
            iterate_balance(2, 0.7, x0=np.array([1.0, 0.0]))

    def test_bad_x0_mass(self):
        with pytest.raises(ParameterError):
            iterate_balance(2, 0.7, x0=np.array([0.5, 0.2, 0.1]))

    def test_invalid_k(self):
        with pytest.raises(ParameterError):
            iterate_balance(0, 0.5)

    def test_invalid_pr(self):
        with pytest.raises(ParameterError):
            iterate_balance(2, 1.5)

    def test_budget_exhaustion(self):
        with pytest.raises(ConvergenceError):
            iterate_balance(4, 0.5, max_iterations=1)


class TestEfficiencyFromOccupancy:
    def test_all_at_k(self):
        assert efficiency_from_occupancy(np.array([0.0, 0.0, 1.0])) == 1.0

    def test_all_idle(self):
        assert efficiency_from_occupancy(np.array([1.0, 0.0, 0.0])) == 0.0

    def test_mixture(self):
        x = np.array([0.5, 0.0, 0.5])
        assert efficiency_from_occupancy(x) == pytest.approx(0.5)

    def test_scalar_rejected(self):
        with pytest.raises(ParameterError):
            efficiency_from_occupancy(np.array([1.0]))
