"""Tests for repro.core.trading_power (paper Eq. 1)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.piece_distribution import PieceCountDistribution
from repro.core.trading_power import (
    binomial_ratio,
    exchange_probability,
    exchange_probability_curve,
)
from repro.errors import ParameterError


class TestBinomialRatio:
    def test_matches_comb(self):
        for top, bottom, choose in [(5, 10, 3), (7, 12, 7), (4, 9, 0)]:
            expected = math.comb(top, choose) / math.comb(bottom, choose)
            assert binomial_ratio(top, bottom, choose) == pytest.approx(expected)

    def test_zero_when_choose_exceeds_top(self):
        assert binomial_ratio(3, 10, 5) == 0.0

    def test_one_when_choose_zero(self):
        assert binomial_ratio(5, 9, 0) == 1.0

    def test_equal_top_bottom(self):
        assert binomial_ratio(6, 6, 3) == pytest.approx(1.0)

    def test_large_values_no_overflow(self):
        value = binomial_ratio(400, 500, 100)
        assert 0.0 < value < 1.0

    def test_top_above_bottom_rejected(self):
        with pytest.raises(ParameterError):
            binomial_ratio(10, 5, 2)

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            binomial_ratio(-1, 5, 2)

    def test_choose_above_bottom_rejected(self):
        with pytest.raises(ParameterError):
            binomial_ratio(3, 5, 6)

    @given(
        bottom=st.integers(min_value=1, max_value=50),
        data=st.data(),
    )
    @settings(max_examples=50)
    def test_property_in_unit_interval(self, bottom, data):
        top = data.draw(st.integers(min_value=0, max_value=bottom))
        choose = data.draw(st.integers(min_value=0, max_value=bottom))
        assert 0.0 <= binomial_ratio(top, bottom, choose) <= 1.0


class TestExchangeProbability:
    def test_zero_pieces_cannot_trade(self):
        phi = PieceCountDistribution.uniform(10)
        assert exchange_probability(0, 10, phi) == 0.0

    def test_complete_peer_cannot_trade(self):
        phi = PieceCountDistribution.uniform(10)
        assert exchange_probability(10, 10, phi) == pytest.approx(0.0, abs=1e-12)

    def test_paper_shape_rises_then_falls(self):
        """p(c) rises from ~0.5, peaks near B/2, falls back (paper Sec 3.2)."""
        num_pieces = 40
        phi = PieceCountDistribution.uniform(num_pieces)
        curve = exchange_probability_curve(num_pieces, phi)
        mid = curve[num_pieces // 2]
        assert mid > curve[1]
        assert mid > curve[num_pieces - 1]
        assert mid > 0.8

    def test_edges_near_half_for_uniform(self):
        num_pieces = 50
        phi = PieceCountDistribution.uniform(num_pieces)
        assert exchange_probability(1, num_pieces, phi) == pytest.approx(0.5, abs=0.05)
        assert exchange_probability(num_pieces - 1, num_pieces, phi) == pytest.approx(
            0.5, abs=0.05
        )

    def test_point_mass_exact(self):
        """Against a swarm where everyone holds exactly j pieces."""
        num_pieces = 6
        phi = PieceCountDistribution.point_mass(num_pieces, 3)
        # P holds 2 pieces; Q holds 3. Q useless iff P's 2 within Q's 3:
        # C(3,2)/C(6,2) = 3/15 = 0.2 -> p = 0.8.
        assert exchange_probability(2, num_pieces, phi) == pytest.approx(0.8)

    def test_point_mass_equal_counts(self):
        num_pieces = 6
        phi = PieceCountDistribution.point_mass(num_pieces, 3)
        # c = j = 3: Q useless iff Q's 3 pieces all within P's 3:
        # C(3,3)/C(6,3) = 1/20 -> p = 0.95.
        assert exchange_probability(3, num_pieces, phi) == pytest.approx(0.95)

    def test_mismatched_phi_rejected(self):
        with pytest.raises(ParameterError):
            exchange_probability(2, 10, PieceCountDistribution.uniform(5))

    def test_out_of_range_rejected(self):
        phi = PieceCountDistribution.uniform(10)
        with pytest.raises(ParameterError):
            exchange_probability(11, 10, phi)
        with pytest.raises(ParameterError):
            exchange_probability(-1, 10, phi)

    def test_invalid_b_rejected(self):
        with pytest.raises(ParameterError):
            exchange_probability(0, 0, PieceCountDistribution.uniform(1))

    @given(
        num_pieces=st.integers(min_value=2, max_value=40),
        data=st.data(),
    )
    @settings(max_examples=40)
    def test_property_probability_bounds(self, num_pieces, data):
        c = data.draw(st.integers(min_value=0, max_value=num_pieces))
        ratio = data.draw(st.floats(min_value=0.3, max_value=3.0))
        phi = PieceCountDistribution.truncated_geometric(num_pieces, ratio)
        p = exchange_probability(c, num_pieces, phi)
        assert 0.0 <= p <= 1.0


class TestCurve:
    def test_length(self):
        phi = PieceCountDistribution.uniform(12)
        curve = exchange_probability_curve(12, phi)
        assert curve.size == 13

    def test_endpoint_values(self):
        phi = PieceCountDistribution.uniform(12)
        curve = exchange_probability_curve(12, phi)
        assert curve[0] == 0.0
        assert curve[12] == pytest.approx(0.0, abs=1e-12)
