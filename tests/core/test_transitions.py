"""Tests for the transition kernels f, g, h (paper Eqs. 2-3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parameters import ModelParameters
from repro.core.transitions import (
    TransitionKernel,
    connection_pmf,
    piece_successor,
    potential_set_pmf,
)
from repro.errors import ParameterError


@pytest.fixture
def params():
    return ModelParameters(
        num_pieces=10, max_conns=3, ns_size=6, p_init=0.5,
        alpha=0.2, gamma=0.3, p_reenc=0.7, p_new=0.6,
    )


class TestPieceSuccessor:
    def test_first_piece(self):
        assert piece_successor(0, 0, 10) == 1
        assert piece_successor(3, 0, 10) == 1  # b=0 dominates

    def test_advance_by_connections(self):
        assert piece_successor(3, 4, 10) == 7

    def test_capped_at_b(self):
        assert piece_successor(5, 8, 10) == 10

    def test_no_connections_no_progress(self):
        assert piece_successor(0, 4, 10) == 4

    def test_validation(self):
        with pytest.raises(ParameterError):
            piece_successor(0, 11, 10)
        with pytest.raises(ParameterError):
            piece_successor(-1, 2, 10)


class TestPotentialSetPmf:
    def test_fresh_peer_binomial(self, params):
        pmf = potential_set_pmf(0, 0, 0, params)
        # Bin(s=6, p_init=0.5)
        assert pmf.size == 7
        assert pmf.sum() == pytest.approx(1.0)
        assert pmf[3] == pytest.approx(0.3125)

    def test_bootstrap_stuck_alpha(self, params):
        pmf = potential_set_pmf(0, 1, 0, params)
        assert pmf[1] == pytest.approx(params.alpha)
        assert pmf[0] == pytest.approx(1 - params.alpha)
        assert pmf[2:].sum() == 0.0

    def test_last_phase_gamma(self, params):
        pmf = potential_set_pmf(0, 5, 0, params)
        assert pmf[1] == pytest.approx(params.gamma)
        assert pmf[0] == pytest.approx(1 - params.gamma)

    def test_gamma_branch_uses_b_plus_n(self, params):
        # b=1, n=2 -> c=3 > 1: the gamma branch, not alpha.
        pmf = potential_set_pmf(2, 1, 0, params)
        assert pmf[1] == pytest.approx(params.gamma)

    def test_trading_phase_binomial(self, params):
        pmf = potential_set_pmf(1, 4, 3, params)
        assert pmf.sum() == pytest.approx(1.0)
        assert pmf.size == params.ns_size + 1

    def test_complete_download_collapses(self, params):
        pmf = potential_set_pmf(0, 10, 4, params)
        assert pmf[0] == 1.0

    def test_c_clamped_at_b(self, params):
        # b + n may exceed B; p(B) = 0 so the potential set collapses.
        pmf = potential_set_pmf(3, 9, 4, params)
        assert pmf[0] == pytest.approx(1.0)

    def test_invalid_i_rejected(self, params):
        with pytest.raises(ParameterError):
            potential_set_pmf(0, 0, 7, params)

    @given(
        n=st.integers(min_value=0, max_value=3),
        b=st.integers(min_value=0, max_value=10),
        i=st.integers(min_value=0, max_value=6),
    )
    @settings(max_examples=80)
    def test_property_valid_pmf(self, n, b, i):
        params = ModelParameters(num_pieces=10, max_conns=3, ns_size=6)
        pmf = potential_set_pmf(n, b, i, params)
        assert (pmf >= 0).all()
        assert pmf.sum() == pytest.approx(1.0, abs=1e-9)


class TestConnectionPmf:
    def test_fresh_peer_no_connections(self, params):
        pmf = connection_pmf(0, 0, 5, params)
        assert pmf[0] == 1.0

    def test_complete_peer_no_connections(self, params):
        pmf = connection_pmf(2, 10, 5, params)
        assert pmf[0] == 1.0

    def test_never_exceeds_k(self, params):
        pmf = connection_pmf(3, 4, 6, params)
        assert pmf.size == params.max_conns + 1
        assert pmf.sum() == pytest.approx(1.0)

    def test_zero_potential_only_survivors(self, params):
        # i' = 0: no new connections possible; Y1 ~ Bin(n, p_r) only.
        pmf = connection_pmf(2, 4, 0, params)
        expected_mean = 2 * params.p_reenc
        mean = float(np.arange(pmf.size) @ pmf)
        assert mean == pytest.approx(expected_mean)

    def test_full_potential_mean(self, params):
        # n=1, i'=6 >= k=3: Y1 ~ Bin(1, .7), Y2 ~ Bin(2, .6).
        pmf = connection_pmf(1, 4, 6, params)
        mean = float(np.arange(pmf.size) @ pmf)
        assert mean == pytest.approx(1 * 0.7 + 2 * 0.6)

    def test_invalid_n_rejected(self, params):
        with pytest.raises(ParameterError):
            connection_pmf(4, 4, 2, params)

    def test_invalid_i_rejected(self, params):
        with pytest.raises(ParameterError):
            connection_pmf(1, 4, 99, params)

    @given(
        n=st.integers(min_value=0, max_value=3),
        b=st.integers(min_value=0, max_value=10),
        i_next=st.integers(min_value=0, max_value=6),
    )
    @settings(max_examples=80)
    def test_property_valid_pmf(self, n, b, i_next):
        params = ModelParameters(num_pieces=10, max_conns=3, ns_size=6)
        pmf = connection_pmf(n, b, i_next, params)
        assert (pmf >= 0).all()
        assert pmf.sum() == pytest.approx(1.0, abs=1e-9)


class TestTransitionKernel:
    def test_full_distribution_sums_to_one(self, params):
        kernel = TransitionKernel(params)
        for state in [(0, 0, 0), (1, 3, 2), (0, 1, 0), (3, 9, 6), (0, 5, 0)]:
            dist = kernel.transition_distribution(*state)
            assert sum(dist.values()) == pytest.approx(1.0, abs=1e-9)

    def test_successor_b_is_deterministic(self, params):
        kernel = TransitionKernel(params)
        dist = kernel.transition_distribution(2, 3, 4)
        assert {b for (_n, b, _i) in dist} == {5}

    def test_sampling_matches_pmf(self, params, rng):
        kernel = TransitionKernel(params)
        draws = [kernel.sample_i_next(1, 4, 3, rng) for _ in range(3000)]
        pmf = kernel.g_pmf(1, 4, 3)
        empirical_mean = np.mean(draws)
        exact_mean = float(np.arange(pmf.size) @ pmf)
        assert empirical_mean == pytest.approx(exact_mean, abs=0.15)

    def test_caches_are_shared_across_equivalent_states(self, params):
        kernel = TransitionKernel(params)
        a = kernel.g_pmf(1, 3, 2)
        b = kernel.g_pmf(2, 2, 5)  # same c = 4, same i>0 class
        assert a is b

    def test_p_curve_exposed(self, params):
        kernel = TransitionKernel(params)
        assert kernel.p_curve.size == params.num_pieces + 1
        assert kernel.p_curve[0] == 0.0
