"""Tests for the vectorized batch chain sampler.

Covers three layers: structural contracts of
:class:`~repro.core.batch.BatchTrajectories` (histories, freezing,
determinism), statistical equivalence of the batched estimators against
the serial path and the exact absorbing-chain solver, and
property-based invariants (no out-of-space states, termination) over
randomly drawn small parameter sets.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch import BatchChainSampler
from repro.core.chain import DownloadChain, State
from repro.core.parameters import ModelParameters
from repro.core.phases import Phase, phase_durations
from repro.core.timeline import (
    expected_download_time_exact,
    mean_timeline,
    phase_duration_statistics,
    potential_ratio_by_pieces,
)
from repro.errors import ParameterError, SimulationError

#: Small parameter sets where the exact solver is cheap; the
#: acceptance criterion requires agreement on at least two.
SMALL_PARAMS = [
    ModelParameters(num_pieces=20, max_conns=3, ns_size=8),
    ModelParameters(num_pieces=12, max_conns=2, ns_size=5),
]


@pytest.fixture
def chain():
    return DownloadChain(SMALL_PARAMS[0])


def small_parameters():
    return st.builds(
        lambda b, k, s: ModelParameters(num_pieces=b, max_conns=k, ns_size=s),
        st.integers(min_value=2, max_value=14),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=8),
    )


class TestStructure:
    def test_histories_shape(self, chain):
        batch = chain.batch_sampler().sample(8, seed=0)
        rounds = int(batch.steps.max()) + 1
        assert batch.runs == 8
        for hist in (batch.n_hist, batch.b_hist, batch.i_hist):
            assert hist.shape == (rounds, 8)

    def test_all_runs_complete(self, chain):
        batch = chain.batch_sampler().sample(8, seed=0)
        assert (batch.b_hist[-1] == chain.params.num_pieces).all()
        assert batch.total_steps == batch.steps.sum()

    def test_completed_runs_freeze(self, chain):
        batch = chain.batch_sampler().sample(8, seed=1)
        for run in range(batch.runs):
            done = int(batch.steps[run])
            tail = batch.b_hist[done:, run]
            assert (tail == chain.params.num_pieces).all()

    def test_deterministic_under_seed(self, chain):
        sampler = chain.batch_sampler()
        first = sampler.sample(6, seed=42)
        second = sampler.sample(6, seed=42)
        assert np.array_equal(first.b_hist, second.b_hist)
        assert np.array_equal(first.n_hist, second.n_hist)
        assert np.array_equal(first.i_hist, second.i_hist)

    def test_accepts_params_or_chain(self, chain):
        from_params = BatchChainSampler(chain.params).sample(4, seed=3)
        from_chain = BatchChainSampler(chain).sample(4, seed=3)
        assert np.array_equal(from_params.b_hist, from_chain.b_hist)

    def test_invalid_runs(self, chain):
        with pytest.raises(ParameterError):
            chain.batch_sampler().sample(0)

    def test_step_limit_guard(self, chain):
        with pytest.raises(SimulationError):
            chain.batch_sampler().sample(4, seed=0, max_steps=1)

    def test_first_passage_matches_history(self, chain):
        batch = chain.batch_sampler().sample(8, seed=5)
        first = batch.first_passage()
        for run in range(batch.runs):
            for target in (0, 1, chain.params.num_pieces):
                expected = int(
                    np.argmax(batch.b_hist[:, run] >= target)
                )
                assert first[run, target] == expected

    def test_phase_durations_sum_to_steps(self, chain):
        batch = chain.batch_sampler().sample(8, seed=6)
        durations = batch.phase_durations()
        total = sum(durations.values())
        assert np.array_equal(total, batch.steps.astype(float))

    def test_phase_durations_match_serial_classifier(self, chain):
        # Re-classify one batched trajectory through the serial phase
        # classifier: per-state phases must agree.
        batch = chain.batch_sampler().sample(4, seed=7)
        durations = batch.phase_durations()
        run = 0
        done = int(batch.steps[run])
        states = [
            State(
                n=int(batch.n_hist[t, run]),
                b=int(batch.b_hist[t, run]),
                i=int(batch.i_hist[t, run]),
            )
            for t in range(done + 1)
        ]
        serial = phase_durations(states, chain.params.num_pieces)
        for phase in (Phase.BOOTSTRAP, Phase.EFFICIENT, Phase.LAST):
            assert durations[phase][run] == serial[phase]

    def test_potential_accumulators_match_serial_pooling(self, chain):
        batch = chain.batch_sampler().sample(6, seed=8)
        sums, counts = batch.potential_accumulators()
        s = chain.params.ns_size
        expect_sums = np.zeros_like(sums)
        expect_counts = np.zeros_like(counts)
        for run in range(batch.runs):
            for t in range(int(batch.steps[run]) + 1):
                b = int(batch.b_hist[t, run])
                expect_sums[b] += int(batch.i_hist[t, run]) / s
                expect_counts[b] += 1
        assert np.allclose(sums, expect_sums)
        assert np.array_equal(counts, expect_counts)


class TestStatisticalEquivalence:
    @pytest.mark.parametrize("params", SMALL_PARAMS, ids=["B20", "B12"])
    def test_mean_download_time_agrees_with_exact(self, params):
        chain = DownloadChain(params)
        exact = expected_download_time_exact(chain)
        batched = mean_timeline(chain, runs=600, seed=2, batch=True)
        serial = mean_timeline(chain, runs=600, seed=2, batch=False)
        assert batched.total_download_time() == pytest.approx(exact, rel=0.08)
        assert serial.total_download_time() == pytest.approx(exact, rel=0.08)
        # And therefore with each other.
        assert batched.total_download_time() == pytest.approx(
            serial.total_download_time(), rel=0.12
        )

    @pytest.mark.parametrize("params", SMALL_PARAMS, ids=["B20", "B12"])
    def test_potential_ratio_agrees_with_serial(self, params):
        chain = DownloadChain(params)
        batched = potential_ratio_by_pieces(chain, runs=400, seed=3,
                                            batch=True)
        serial = potential_ratio_by_pieces(chain, runs=400, seed=3,
                                           batch=False)
        both = np.isfinite(batched.ratio) & np.isfinite(serial.ratio)
        assert both.sum() >= params.num_pieces // 2
        assert np.allclose(
            batched.ratio[both], serial.ratio[both], atol=0.08
        )
        # The start is deterministic: (0, 0, 0) has no potential set.
        assert batched.ratio[0] == 0.0

    def test_phase_statistics_agree_with_serial(self):
        chain = DownloadChain(SMALL_PARAMS[0])
        batched = phase_duration_statistics(chain, runs=400, seed=4,
                                            batch=True)
        serial = phase_duration_statistics(chain, runs=400, seed=4,
                                           batch=False)
        for phase in (Phase.BOOTSTRAP, Phase.EFFICIENT, Phase.LAST):
            assert batched.mean[phase] == pytest.approx(
                serial.mean[phase], rel=0.15, abs=0.35
            )


class TestInvariants:
    @settings(max_examples=25, deadline=None)
    @given(params=small_parameters(), seed=st.integers(0, 2**31 - 1))
    def test_states_stay_in_space_and_terminate(self, params, seed):
        batch = BatchChainSampler(params).sample(8, seed=seed)
        assert (batch.n_hist >= 0).all()
        assert (batch.n_hist <= params.max_conns).all()
        assert (batch.b_hist >= 0).all()
        assert (batch.b_hist <= params.num_pieces).all()
        assert (batch.i_hist >= 0).all()
        assert (batch.i_hist <= params.ns_size).all()
        # Piece counts never regress and every run terminates complete.
        assert (np.diff(batch.b_hist, axis=0) >= 0).all()
        assert (batch.b_hist[-1] == params.num_pieces).all()

    @settings(max_examples=15, deadline=None)
    @given(params=small_parameters(), seed=st.integers(0, 2**31 - 1))
    def test_downloads_respect_connection_bound(self, params, seed):
        # Per round, b can grow by at most c = min(b + n, B) - i.e. the
        # paper's parallel-download bound.
        batch = BatchChainSampler(params).sample(4, seed=seed)
        c = np.minimum(
            batch.b_hist[:-1] + batch.n_hist[:-1], params.num_pieces
        )
        growth = np.diff(batch.b_hist, axis=0)
        bootstrap = batch.b_hist[:-1] == 0
        bound = np.where(bootstrap, 1, c)
        assert (growth <= bound).all()
