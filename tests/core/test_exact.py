"""Tests for exact transient analysis (cross-checked against Monte Carlo)."""

import numpy as np
import pytest

from repro.core.chain import DownloadChain
from repro.core.exact import (
    exact_potential_ratio,
    propagate_distribution,
)
from repro.core.parameters import ModelParameters
from repro.core.timeline import (
    expected_download_time_exact,
    mean_timeline,
    potential_ratio_by_pieces,
)
from repro.errors import ParameterError


@pytest.fixture(scope="module")
def tiny_chain():
    return DownloadChain(ModelParameters(num_pieces=8, max_conns=2, ns_size=4))


@pytest.fixture(scope="module")
def transient(tiny_chain):
    return propagate_distribution(tiny_chain, horizon=200)


class TestPropagation:
    def test_cdf_monotone_to_one(self, transient):
        cdf = transient.completion_cdf
        assert (np.diff(cdf) >= -1e-12).all()
        assert cdf[-1] == pytest.approx(1.0, abs=1e-6)

    def test_pmf_non_negative(self, transient):
        assert (transient.completion_pmf >= 0).all()

    def test_mean_matches_hitting_time_solve(self, tiny_chain, transient):
        exact = expected_download_time_exact(tiny_chain)
        assert transient.mean_download_time() == pytest.approx(exact, rel=1e-3)

    def test_mean_matches_monte_carlo(self, tiny_chain, transient):
        mc = mean_timeline(tiny_chain, runs=500, seed=1).total_download_time()
        assert transient.mean_download_time() == pytest.approx(mc, rel=0.08)

    def test_expected_pieces_monotone(self, transient):
        assert (np.diff(transient.expected_pieces) >= -1e-9).all()

    def test_expected_pieces_converges_to_b(self, transient):
        assert transient.expected_pieces[-1] == pytest.approx(8.0, abs=1e-3)

    def test_pruned_mass_negligible(self, transient):
        assert transient.pruned_mass < 1e-6

    def test_short_horizon_mean_rejected(self, tiny_chain):
        short = propagate_distribution(tiny_chain, horizon=3)
        with pytest.raises(ParameterError):
            short.mean_download_time()

    def test_validation(self, tiny_chain):
        with pytest.raises(ParameterError):
            propagate_distribution(tiny_chain, horizon=0)
        with pytest.raises(ParameterError):
            propagate_distribution(tiny_chain, horizon=10, prune=0.01)


class TestExactPotentialRatio:
    def test_matches_monte_carlo(self, tiny_chain):
        exact = exact_potential_ratio(tiny_chain).ratio
        mc = potential_ratio_by_pieces(tiny_chain, runs=2000, seed=2).ratio
        for b in range(1, 8):
            if np.isfinite(exact[b]) and np.isfinite(mc[b]):
                assert exact[b] == pytest.approx(mc[b], abs=0.05), f"b={b}"

    def test_bounds(self, tiny_chain):
        exact = exact_potential_ratio(tiny_chain).ratio
        finite = exact[np.isfinite(exact)]
        assert (finite >= 0).all()
        assert (finite <= 1).all()

    def test_completion_entry_zero(self, tiny_chain):
        assert exact_potential_ratio(tiny_chain).ratio[-1] == 0.0
