"""Tests for the sparse exact engine.

Four layers: structural contracts of the compiled
:class:`~repro.core.sparse.SparseChainOperator` (stochastic rows,
index round-trips, memoization, the state-space cap), the three-way
equivalence suite (sparse propagation vs the dict reference to floating
point tolerance, and both vs :class:`~repro.core.batch.BatchChainSampler`
statistically), fundamental-matrix cross-checks (mean/variance against
propagation and the BFS-era solver API), and property-based invariants
over randomly drawn small parameter sets.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch import BatchChainSampler
from repro.core.chain import DownloadChain
from repro.core.exact import (
    exact_potential_ratio,
    propagate_distribution,
)
from repro.core.parameters import ModelParameters
from repro.core.phases import Phase
from repro.core.sparse import (
    compile_sparse_operator,
    mean_hitting_time,
    solve_fundamental,
)
from repro.core.timeline import (
    expected_download_time_exact,
    phase_duration_statistics,
)
from repro.errors import ParameterError

#: The two small parameter sets of the equivalence acceptance criterion.
SMALL_PARAMS = [
    ModelParameters(num_pieces=8, max_conns=2, ns_size=4),
    ModelParameters(
        num_pieces=12, max_conns=3, ns_size=6,
        alpha=0.35, gamma=0.15, p_reenc=0.6, p_new=0.8,
    ),
]
SMALL_IDS = ["B8", "B12"]
HORIZON = 400


def small_parameters():
    return st.builds(
        lambda b, k, s: ModelParameters(num_pieces=b, max_conns=k, ns_size=s),
        st.integers(min_value=2, max_value=12),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=7),
    )


class TestOperatorStructure:
    @pytest.mark.parametrize("params", SMALL_PARAMS, ids=SMALL_IDS)
    def test_rows_are_stochastic(self, params):
        operator = compile_sparse_operator(params)
        totals = np.asarray(operator.transition.sum(axis=1)).ravel()
        totals += operator.absorb
        assert np.allclose(totals, 1.0, atol=1e-12)
        # Absorption is deterministic: f has a single successor.
        assert set(np.unique(operator.absorb)) <= {0.0, 1.0}

    @pytest.mark.parametrize("params", SMALL_PARAMS, ids=SMALL_IDS)
    def test_index_state_round_trip(self, params):
        operator = compile_sparse_operator(params)
        for index in range(operator.num_states):
            n, b, i = operator.state_of(index)
            assert operator.index_of(n, b, i) == index
        with pytest.raises(ParameterError):
            operator.index_of(0, params.num_pieces, 0)  # absorbing b

    def test_rows_match_dict_kernel(self):
        params = SMALL_PARAMS[1]
        chain = DownloadChain(params)
        operator = compile_sparse_operator(params, drop_tol=0.0)
        dense = operator.transition.toarray()
        rng = np.random.default_rng(7)
        for index in rng.choice(operator.num_states, size=40, replace=False):
            n, b, i = operator.state_of(int(index))
            from repro.core.chain import State

            expected = np.zeros(operator.num_states)
            absorbed = 0.0
            for succ, prob in chain.transition_distribution(
                State(n=n, b=b, i=i)
            ).items():
                if succ.b >= params.num_pieces:
                    absorbed += prob
                else:
                    expected[operator.index_of(succ.n, succ.b, succ.i)] += prob
            assert np.allclose(dense[index], expected, atol=1e-12)
            assert operator.absorb[index] == pytest.approx(absorbed, abs=1e-12)

    def test_kernel_memoizes_operator(self):
        chain = DownloadChain(SMALL_PARAMS[0])
        first = chain.kernel.sparse_operator()
        assert chain.kernel.sparse_operator() is first
        # A different tolerance is a different compile.
        assert chain.kernel.sparse_operator(drop_tol=0.0) is not first

    def test_state_space_cap(self):
        with pytest.raises(ParameterError, match="max_states"):
            compile_sparse_operator(SMALL_PARAMS[0], max_states=10)
        # Paper scale exceeds a deliberately small cap with the same
        # actionable message.
        big = ModelParameters(num_pieces=200, max_conns=7, ns_size=50)
        with pytest.raises(ParameterError, match="Monte-Carlo"):
            compile_sparse_operator(big, max_states=50_000)

    def test_invalid_tolerances(self):
        with pytest.raises(ParameterError):
            compile_sparse_operator(SMALL_PARAMS[0], drop_tol=0.1)
        with pytest.raises(ParameterError):
            compile_sparse_operator(SMALL_PARAMS[0], max_states=0)


class TestSparseVsDict:
    @pytest.mark.parametrize("params", SMALL_PARAMS, ids=SMALL_IDS)
    def test_propagation_total_variation(self, params):
        chain = DownloadChain(params)
        dict_result = propagate_distribution(
            chain, HORIZON, method="dict", prune=0.0
        )
        sparse_result = propagate_distribution(chain, HORIZON, method="sparse")
        tv_distance = float(
            np.abs(
                dict_result.completion_pmf - sparse_result.completion_pmf
            ).sum()
        )
        assert tv_distance <= 1e-10
        for attr in (
            "expected_pieces", "expected_potential", "expected_connections"
        ):
            assert np.allclose(
                getattr(dict_result, attr), getattr(sparse_result, attr),
                atol=1e-9,
            )
        assert dict_result.method == "dict"
        assert sparse_result.method == "sparse"
        assert sparse_result.mean_download_time() == pytest.approx(
            dict_result.mean_download_time(), abs=1e-8
        )

    @pytest.mark.parametrize("params", SMALL_PARAMS, ids=SMALL_IDS)
    def test_potential_ratio_agrees(self, params):
        chain = DownloadChain(params)
        dict_result = exact_potential_ratio(chain, method="dict", prune=0.0)
        sparse_result = exact_potential_ratio(chain, method="sparse")
        assert np.array_equal(
            np.isnan(dict_result.ratio), np.isnan(sparse_result.ratio)
        )
        finite = np.isfinite(dict_result.ratio)
        # The dict path truncates at a horizon; the sparse path is
        # horizon-free, so agreement is to the truncated tail mass.
        assert np.allclose(
            dict_result.ratio[finite], sparse_result.ratio[finite], atol=1e-7
        )
        assert sparse_result.ratio[-1] == 0.0
        assert sparse_result.occupancy.sum() == pytest.approx(
            mean_hitting_time(chain), rel=1e-9
        )


class TestFundamentalSolution:
    @pytest.mark.parametrize("params", SMALL_PARAMS, ids=SMALL_IDS)
    def test_mean_agrees_with_propagation(self, params):
        chain = DownloadChain(params)
        solution = solve_fundamental(chain)
        transient = propagate_distribution(chain, HORIZON, method="sparse")
        assert solution.mean_download_time == pytest.approx(
            transient.mean_download_time(), abs=1e-6
        )
        # Pre-sparse public API delegates to the same solve.
        assert expected_download_time_exact(chain) == pytest.approx(
            solution.mean_download_time
        )
        # Variance from the truncated pmf converges to the exact one.
        pmf = transient.completion_pmf / transient.completion_cdf[-1]
        second = float((transient.rounds.astype(float) ** 2) @ pmf)
        mean = float(transient.rounds @ pmf)
        assert solution.variance_download_time == pytest.approx(
            second - mean * mean, rel=1e-5
        )

    @pytest.mark.parametrize("params", SMALL_PARAMS, ids=SMALL_IDS)
    def test_mean_and_variance_agree_with_monte_carlo(self, params):
        chain = DownloadChain(params)
        solution = solve_fundamental(chain)
        runs = 4000
        steps = BatchChainSampler(chain).sample(runs, seed=11).steps
        sem = steps.std(ddof=1) / np.sqrt(runs)
        assert abs(solution.mean_download_time - steps.mean()) <= 4.5 * sem
        assert solution.variance_download_time == pytest.approx(
            float(steps.var(ddof=1)), rel=0.25
        )

    def test_occupancy_identities(self):
        chain = DownloadChain(SMALL_PARAMS[0])
        solution = solve_fundamental(chain)
        # Total occupancy is the mean download time, split consistently
        # across piece counts, the timeline, and the phases.
        assert solution.occupancy_by_pieces.sum() == pytest.approx(
            solution.mean_download_time
        )
        assert solution.timeline[0] == 0.0
        assert solution.timeline[-1] == pytest.approx(
            solution.mean_download_time
        )
        assert np.all(np.diff(solution.timeline) >= -1e-12)
        assert sum(solution.phase_rounds.values()) == pytest.approx(
            solution.mean_download_time
        )

    def test_phase_statistics_exact_method(self):
        chain = DownloadChain(SMALL_PARAMS[0])
        exact = phase_duration_statistics(chain, method="exact")
        assert exact.runs == 0
        assert all(np.isnan(v) for v in exact.std.values())
        assert sum(exact.occupancy.values()) == pytest.approx(1.0)
        sampled = phase_duration_statistics(chain, runs=4000, seed=5)
        for phase in (Phase.BOOTSTRAP, Phase.EFFICIENT, Phase.LAST):
            assert exact.mean[phase] == pytest.approx(
                sampled.mean[phase], rel=0.15, abs=0.3
            )

    def test_timeline_agrees_with_monte_carlo(self):
        chain = DownloadChain(SMALL_PARAMS[1])
        solution = solve_fundamental(chain)
        hits = BatchChainSampler(chain).sample(3000, seed=13).first_passage()
        mc_mean = hits.mean(axis=0)
        sem = hits.std(axis=0, ddof=1) / np.sqrt(hits.shape[0])
        assert np.all(
            np.abs(solution.timeline - mc_mean) <= 5.0 * sem + 0.05
        )


class TestSatellites:
    def test_dict_pruned_mass_tracked_and_warns(self):
        chain = DownloadChain(SMALL_PARAMS[0])
        with pytest.warns(RuntimeWarning, match="discarded"):
            result = exact_potential_ratio(
                chain, method="dict", prune=1e-4, warn_above=1e-12
            )
        assert result.pruned_mass > 1e-12
        quiet = exact_potential_ratio(chain, method="dict", prune=0.0)
        assert quiet.pruned_mass == 0.0

    def test_tail_mass_and_error_message(self):
        chain = DownloadChain(SMALL_PARAMS[0])
        short = propagate_distribution(chain, 3, method="sparse")
        assert short.tail_mass == pytest.approx(
            1.0 - short.completion_cdf[-1]
        )
        assert short.tail_mass > 0.001
        with pytest.raises(ParameterError, match="mean_hitting_time"):
            short.mean_download_time()
        long = propagate_distribution(chain, HORIZON, method="sparse")
        assert long.tail_mass < 1e-3

    def test_singular_chain_raises_actionable_error(self):
        # alpha = 0 strands the chain in the bootstrap stall state.
        params = ModelParameters(
            num_pieces=6, max_conns=2, ns_size=3, alpha=0.0, gamma=0.2
        )
        with pytest.raises(ParameterError, match="singular|infinite"):
            solve_fundamental(params)


class TestInvariants:
    @settings(max_examples=25, deadline=None)
    @given(params=small_parameters())
    def test_rows_stochastic_and_in_space(self, params):
        operator = compile_sparse_operator(params)
        matrix = operator.transition.tocoo()
        totals = np.asarray(operator.transition.sum(axis=1)).ravel()
        totals += operator.absorb
        assert np.allclose(totals, 1.0, atol=1e-12)
        # Every column index decodes to a valid in-space transient state
        # with a non-decreasing piece count.
        n_next = operator.n_of[matrix.col]
        b_next = operator.b_of[matrix.col]
        i_next = operator.i_of[matrix.col]
        assert np.all((0 <= n_next) & (n_next <= params.max_conns))
        assert np.all((0 <= b_next) & (b_next < params.num_pieces))
        assert np.all((0 <= i_next) & (i_next <= params.ns_size))
        assert np.all(b_next >= operator.b_of[matrix.row])
        assert np.all((matrix.data > 0.0) & (matrix.data <= 1.0))
