"""Tests for repro.core.binomial."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.binomial import (
    binomial_mean,
    binomial_pmf,
    convolve_pmf,
    sample_pmf,
    validate_pmf,
)
from repro.errors import ParameterError


def exact_pmf(n: int, p: float) -> np.ndarray:
    return np.array(
        [math.comb(n, m) * p**m * (1 - p) ** (n - m) for m in range(n + 1)]
    )


class TestBinomialPmf:
    def test_matches_exact_formula(self):
        pmf = binomial_pmf(10, 0.3)
        np.testing.assert_allclose(pmf, exact_pmf(10, 0.3), atol=1e-12)

    def test_sums_to_one(self):
        assert binomial_pmf(25, 0.42).sum() == pytest.approx(1.0)

    def test_zero_trials(self):
        pmf = binomial_pmf(0, 0.5)
        assert pmf.tolist() == [1.0]

    def test_p_zero_is_point_mass_at_zero(self):
        pmf = binomial_pmf(7, 0.0)
        assert pmf[0] == 1.0
        assert pmf[1:].sum() == 0.0

    def test_p_one_is_point_mass_at_n(self):
        pmf = binomial_pmf(7, 1.0)
        assert pmf[7] == 1.0
        assert pmf[:7].sum() == 0.0

    def test_negative_n_rejected(self):
        with pytest.raises(ParameterError):
            binomial_pmf(-1, 0.5)

    @pytest.mark.parametrize("p", [-0.1, 1.1, 2.0])
    def test_bad_probability_rejected(self, p):
        with pytest.raises(ParameterError):
            binomial_pmf(5, p)

    @given(
        n=st.integers(min_value=0, max_value=60),
        p=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60)
    def test_property_valid_pmf(self, n, p):
        pmf = binomial_pmf(n, p)
        assert pmf.size == n + 1
        assert (pmf >= 0).all()
        assert pmf.sum() == pytest.approx(1.0, abs=1e-9)

    @given(
        n=st.integers(min_value=1, max_value=40),
        p=st.floats(min_value=0.01, max_value=0.99),
    )
    @settings(max_examples=40)
    def test_property_mean(self, n, p):
        pmf = binomial_pmf(n, p)
        mean = float(np.arange(n + 1) @ pmf)
        assert mean == pytest.approx(n * p, rel=1e-6)


class TestConvolvePmf:
    def test_sum_of_binomials(self):
        # Bin(3, .5) + Bin(4, .5) = Bin(7, .5)
        a = binomial_pmf(3, 0.5)
        b = binomial_pmf(4, 0.5)
        np.testing.assert_allclose(convolve_pmf(a, b), binomial_pmf(7, 0.5), atol=1e-12)

    def test_point_masses(self):
        a = np.array([0.0, 1.0])
        b = np.array([0.0, 0.0, 1.0])
        out = convolve_pmf(a, b)
        assert out[3] == pytest.approx(1.0)

    def test_length(self):
        out = convolve_pmf(np.ones(3) / 3, np.ones(5) / 5)
        assert out.size == 7

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            convolve_pmf(np.array([]), np.array([1.0]))

    def test_2d_rejected(self):
        with pytest.raises(ParameterError):
            convolve_pmf(np.ones((2, 2)), np.array([1.0]))

    @given(
        n1=st.integers(min_value=0, max_value=20),
        n2=st.integers(min_value=0, max_value=20),
        p=st.floats(min_value=0.05, max_value=0.95),
    )
    @settings(max_examples=40)
    def test_property_convolution_is_binomial_sum(self, n1, n2, p):
        out = convolve_pmf(binomial_pmf(n1, p), binomial_pmf(n2, p))
        np.testing.assert_allclose(out, binomial_pmf(n1 + n2, p), atol=1e-9)


class TestBinomialMean:
    def test_value(self):
        assert binomial_mean(10, 0.3) == pytest.approx(3.0)

    def test_errors(self):
        with pytest.raises(ParameterError):
            binomial_mean(-2, 0.5)
        with pytest.raises(ParameterError):
            binomial_mean(2, 1.5)


class TestValidatePmf:
    def test_accepts_valid(self):
        pmf = np.array([0.25, 0.25, 0.5])
        out = validate_pmf(pmf)
        assert out is not None

    def test_rejects_negative(self):
        with pytest.raises(ParameterError):
            validate_pmf(np.array([0.5, -0.1, 0.6]))

    def test_rejects_bad_sum(self):
        with pytest.raises(ParameterError):
            validate_pmf(np.array([0.5, 0.2]))

    def test_rejects_2d(self):
        with pytest.raises(ParameterError):
            validate_pmf(np.ones((2, 2)) / 4)


class TestSamplePmf:
    def test_point_mass(self, rng):
        pmf = np.array([0.0, 0.0, 1.0])
        assert all(sample_pmf(pmf, rng) == 2 for _ in range(20))

    def test_distribution_statistics(self, rng):
        pmf = binomial_pmf(6, 0.5)
        draws = [sample_pmf(pmf, rng) for _ in range(4000)]
        assert np.mean(draws) == pytest.approx(3.0, abs=0.15)

    def test_all_draws_in_support(self, rng):
        pmf = np.array([0.3, 0.0, 0.7])
        draws = {sample_pmf(pmf, rng) for _ in range(200)}
        assert draws <= {0, 2}
