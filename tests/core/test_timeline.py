"""Tests for timeline / potential-ratio estimators."""

import numpy as np
import pytest

from repro.core.chain import DownloadChain
from repro.core.parameters import ModelParameters
from repro.core.timeline import (
    expected_download_time_exact,
    mean_timeline,
    potential_ratio_by_pieces,
)
from repro.errors import ParameterError


@pytest.fixture
def tiny_chain():
    return DownloadChain(ModelParameters(num_pieces=8, max_conns=2, ns_size=4))


class TestMeanTimeline:
    def test_monotone_non_decreasing(self, tiny_chain):
        result = mean_timeline(tiny_chain, runs=30, seed=1)
        assert (np.diff(result.mean_steps) >= -1e-9).all()

    def test_starts_at_zero(self, tiny_chain):
        result = mean_timeline(tiny_chain, runs=10, seed=1)
        assert result.mean_steps[0] == 0.0

    def test_total_download_time(self, tiny_chain):
        result = mean_timeline(tiny_chain, runs=10, seed=1)
        assert result.total_download_time() == result.mean_steps[-1]

    def test_shape(self, tiny_chain):
        result = mean_timeline(tiny_chain, runs=5, seed=0)
        expected = tiny_chain.params.num_pieces + 1
        assert result.pieces.size == expected
        assert result.mean_steps.size == expected
        assert result.std_steps.size == expected
        assert result.runs == 5

    def test_agrees_with_exact_solution(self, tiny_chain):
        exact = expected_download_time_exact(tiny_chain)
        estimate = mean_timeline(tiny_chain, runs=600, seed=2)
        assert estimate.total_download_time() == pytest.approx(exact, rel=0.08)

    def test_invalid_runs(self, tiny_chain):
        with pytest.raises(ParameterError):
            mean_timeline(tiny_chain, runs=0)

    def test_respects_parallelism_bound(self, tiny_chain):
        # Cannot finish faster than B / k rounds (plus the bootstrap step).
        result = mean_timeline(tiny_chain, runs=40, seed=3)
        bound = tiny_chain.params.num_pieces / tiny_chain.params.max_conns
        assert result.total_download_time() >= bound - 1e-9


class TestPotentialRatio:
    def test_bounds(self, tiny_chain):
        result = potential_ratio_by_pieces(tiny_chain, runs=40, seed=1)
        finite = result.ratio[np.isfinite(result.ratio)]
        assert (finite >= 0).all()
        assert (finite <= 1).all()

    def test_zero_at_start_and_end(self, tiny_chain):
        result = potential_ratio_by_pieces(tiny_chain, runs=40, seed=1)
        assert result.ratio[0] == pytest.approx(0.0)  # joins with empty set
        # At b = B the download ends; the potential set is empty.
        assert result.ratio[-1] == pytest.approx(0.0)

    def test_mid_download_ratio_high(self):
        chain = DownloadChain(ModelParameters(num_pieces=40, max_conns=4, ns_size=20))
        result = potential_ratio_by_pieces(chain, runs=30, seed=2)
        mid = result.ratio[15:25]
        mid = mid[np.isfinite(mid)]
        assert mid.mean() > 0.6

    def test_observation_counts(self, tiny_chain):
        result = potential_ratio_by_pieces(tiny_chain, runs=10, seed=1)
        assert result.observations[0] >= 10  # every run starts at b=0
        assert result.observations.sum() > 0

    def test_invalid_runs(self, tiny_chain):
        with pytest.raises(ParameterError):
            potential_ratio_by_pieces(tiny_chain, runs=-1)


class TestExactHittingTime:
    def test_positive_and_finite(self, tiny_chain):
        value = expected_download_time_exact(tiny_chain)
        assert np.isfinite(value)
        assert value > tiny_chain.params.num_pieces / tiny_chain.params.max_conns

    def test_more_connections_is_faster(self):
        slow = DownloadChain(ModelParameters(num_pieces=8, max_conns=1, ns_size=4))
        fast = DownloadChain(ModelParameters(num_pieces=8, max_conns=3, ns_size=4))
        assert expected_download_time_exact(fast) < expected_download_time_exact(slow)

    def test_larger_file_takes_longer(self):
        small = DownloadChain(ModelParameters(num_pieces=6, max_conns=2, ns_size=4))
        large = DownloadChain(ModelParameters(num_pieces=12, max_conns=2, ns_size=4))
        assert expected_download_time_exact(large) > expected_download_time_exact(small)


class TestPhaseStatistics:
    def test_trading_phase_dominates_healthy_baseline(self):
        from repro.core.timeline import phase_duration_statistics
        from repro.core.phases import Phase

        chain = DownloadChain(
            ModelParameters(num_pieces=60, max_conns=4, ns_size=30)
        )
        stats = phase_duration_statistics(chain, runs=24, seed=0)
        assert stats.dominant() is Phase.EFFICIENT
        assert stats.occupancy[Phase.EFFICIENT] > 0.7

    def test_occupancies_sum_to_one(self):
        from repro.core.timeline import phase_duration_statistics

        chain = DownloadChain(
            ModelParameters(num_pieces=30, max_conns=3, ns_size=6)
        )
        stats = phase_duration_statistics(chain, runs=16, seed=1)
        assert sum(stats.occupancy.values()) == pytest.approx(1.0)

    def test_small_neighborhoods_inflate_stall_phases(self):
        from repro.core.timeline import phase_duration_statistics
        from repro.core.phases import Phase

        big = phase_duration_statistics(
            DownloadChain(ModelParameters(num_pieces=60, max_conns=4,
                                          ns_size=30)),
            runs=24, seed=2,
        )
        small = phase_duration_statistics(
            DownloadChain(ModelParameters(num_pieces=60, max_conns=4,
                                          ns_size=3, alpha=0.1, gamma=0.1)),
            runs=24, seed=2,
        )
        stall_big = (big.occupancy[Phase.BOOTSTRAP]
                     + big.occupancy[Phase.LAST])
        stall_small = (small.occupancy[Phase.BOOTSTRAP]
                       + small.occupancy[Phase.LAST])
        assert stall_small > stall_big

    def test_runs_validation(self):
        from repro.core.timeline import phase_duration_statistics

        chain = DownloadChain(
            ModelParameters(num_pieces=10, max_conns=2, ns_size=4)
        )
        with pytest.raises(ParameterError):
            phase_duration_statistics(chain, runs=0)
