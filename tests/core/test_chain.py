"""Tests for the download-evolution chain."""

import numpy as np
import pytest

from repro.core.chain import DownloadChain, State
from repro.core.parameters import ModelParameters
from repro.core.phases import Phase
from repro.errors import ParameterError, SimulationError


@pytest.fixture
def chain(small_params):
    return DownloadChain(small_params)


class TestBasics:
    def test_initial_state(self, chain):
        assert chain.initial_state == State(0, 0, 0)

    def test_not_complete_initially(self, chain):
        assert not chain.is_complete(chain.initial_state)

    def test_complete_at_b(self, chain):
        assert chain.is_complete(State(0, chain.params.num_pieces, 0))

    def test_phase_delegation(self, chain):
        assert chain.phase(State(0, 0, 0)) is Phase.BOOTSTRAP
        assert chain.phase(State(2, 5, 3)) is Phase.EFFICIENT

    def test_validate_state(self, chain):
        chain.validate_state(State(1, 5, 3))
        with pytest.raises(ParameterError):
            chain.validate_state(State(9, 5, 3))
        with pytest.raises(ParameterError):
            chain.validate_state(State(1, 99, 3))
        with pytest.raises(ParameterError):
            chain.validate_state(State(1, 5, 99))


class TestStep:
    def test_first_step_acquires_first_piece(self, chain, rng):
        nxt = chain.step(chain.initial_state, rng)
        assert nxt.b == 1
        assert nxt.n == 0  # no pieces at step time -> no connections

    def test_states_stay_in_bounds(self, chain, rng):
        state = chain.initial_state
        for _ in range(200):
            state = chain.step(state, rng)
            chain.validate_state(state)
            if chain.is_complete(state):
                break

    def test_pieces_never_decrease(self, chain, rng):
        state = chain.initial_state
        for _ in range(200):
            nxt = chain.step(state, rng)
            assert nxt.b >= state.b
            state = nxt
            if chain.is_complete(state):
                break


class TestTrajectory:
    def test_reaches_completion(self, chain):
        traj = chain.trajectory(seed=3)
        assert traj[0] == State(0, 0, 0)
        assert traj[-1].b == chain.params.num_pieces

    def test_deterministic_for_seed(self, chain):
        assert chain.trajectory(seed=11) == chain.trajectory(seed=11)

    def test_different_seeds_differ(self, chain):
        # Overwhelmingly likely for a stochastic chain.
        assert chain.trajectory(seed=1) != chain.trajectory(seed=2)

    def test_download_time(self, chain):
        traj = chain.trajectory(seed=5)
        assert chain.download_time_steps(traj) == len(traj) - 1

    def test_max_steps_guard(self):
        # alpha = gamma ~ 0 means a stall is inescapable in practice.
        params = ModelParameters(
            num_pieces=10, max_conns=1, ns_size=2,
            p_init=0.0, alpha=0.0, gamma=0.0,
        )
        starving = DownloadChain(params)
        with pytest.raises(SimulationError):
            starving.trajectory(seed=0, max_steps=500)

    def test_sample_trajectories_count(self, chain):
        trajectories = list(chain.sample_trajectories(5, seed=9))
        assert len(trajectories) == 5
        assert all(t[-1].b == chain.params.num_pieces for t in trajectories)

    def test_sample_trajectories_invalid_count(self, chain):
        with pytest.raises(ParameterError):
            list(chain.sample_trajectories(0))


class TestTransitionDistribution:
    def test_sums_to_one(self, chain):
        dist = chain.transition_distribution(State(1, 3, 2))
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_keys_are_states(self, chain):
        dist = chain.transition_distribution(State(0, 0, 0))
        assert all(isinstance(s, State) for s in dist)

    def test_matches_empirical_sampling(self, chain):
        state = State(1, 3, 2)
        dist = chain.transition_distribution(state)
        rng = np.random.default_rng(0)
        counts = {}
        draws = 5000
        for _ in range(draws):
            nxt = chain.step(state, rng)
            counts[nxt] = counts.get(nxt, 0) + 1
        for successor, prob in dist.items():
            if prob > 0.02:
                assert counts.get(successor, 0) / draws == pytest.approx(
                    prob, abs=0.03
                )

    def test_invalid_state_rejected(self, chain):
        with pytest.raises(ParameterError):
            chain.transition_distribution(State(99, 0, 0))
