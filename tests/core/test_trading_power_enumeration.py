"""Brute-force verification of Eq. (1) by exhaustive subset enumeration.

The paper derives ``p(c)`` combinatorially; for small ``B`` the same
quantity can be computed directly by enumerating every pair of piece
subsets.  Any algebra or off-by-one error in the closed form would show
up here.
"""

import itertools

import pytest

from repro.core.piece_distribution import PieceCountDistribution
from repro.core.trading_power import exchange_probability


def enumerate_exchange_probability(c: int, num_pieces: int, phi) -> float:
    """Directly average, over Q's size j ~ phi and all subset pairs,
    the paper's exchangeability event:

    * Q with j > c pieces is useful to P unless all of P's c pieces lie
      inside Q's j;
    * Q with j <= c pieces lets P trade unless all of Q's j pieces lie
      inside P's c.

    P's c-subset and Q's j-subset are uniform and independent.
    """
    pieces = range(num_pieces)
    total = 0.0
    for j in range(1, num_pieces + 1):
        weight = phi.pmf(j)
        if weight == 0.0:
            continue
        # By symmetry we may fix P's subset and average over Q's.
        p_set = frozenset(range(c))
        exchangeable = 0
        count = 0
        for q in itertools.combinations(pieces, j):
            q_set = frozenset(q)
            count += 1
            if j > c:
                if not p_set <= q_set:
                    exchangeable += 1
            else:
                if not q_set <= p_set:
                    exchangeable += 1
        total += weight * exchangeable / count
    return total


class TestEquationOneByEnumeration:
    @pytest.mark.parametrize("num_pieces", [4, 6])
    def test_uniform_phi(self, num_pieces):
        phi = PieceCountDistribution.uniform(num_pieces)
        for c in range(1, num_pieces + 1):
            closed_form = exchange_probability(c, num_pieces, phi)
            brute = enumerate_exchange_probability(c, num_pieces, phi)
            assert closed_form == pytest.approx(brute, abs=1e-12), f"c={c}"

    def test_skewed_phi(self):
        num_pieces = 6
        phi = PieceCountDistribution.truncated_geometric(num_pieces, 0.5)
        for c in range(1, num_pieces + 1):
            closed_form = exchange_probability(c, num_pieces, phi)
            brute = enumerate_exchange_probability(c, num_pieces, phi)
            assert closed_form == pytest.approx(brute, abs=1e-12), f"c={c}"

    def test_point_mass_phi(self):
        num_pieces = 5
        phi = PieceCountDistribution.point_mass(num_pieces, 3)
        for c in range(1, num_pieces + 1):
            closed_form = exchange_probability(c, num_pieces, phi)
            brute = enumerate_exchange_probability(c, num_pieces, phi)
            assert closed_form == pytest.approx(brute, abs=1e-12), f"c={c}"
