"""Tests for repro.core.piece_distribution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.piece_distribution import PieceCountDistribution
from repro.errors import DistributionError, ParameterError


class TestUniform:
    def test_pmf_values(self):
        phi = PieceCountDistribution.uniform(4)
        for j in range(1, 5):
            assert phi.pmf(j) == pytest.approx(0.25)

    def test_outside_support_is_zero(self):
        phi = PieceCountDistribution.uniform(4)
        assert phi.pmf(0) == 0.0
        assert phi.pmf(5) == 0.0
        assert phi.pmf(-3) == 0.0

    def test_mean(self):
        phi = PieceCountDistribution.uniform(5)
        assert phi.mean() == pytest.approx(3.0)

    def test_invalid_b(self):
        with pytest.raises(ParameterError):
            PieceCountDistribution.uniform(0)


class TestPointMass:
    def test_mass_location(self):
        phi = PieceCountDistribution.point_mass(10, 7)
        assert phi.pmf(7) == 1.0
        assert phi.pmf(6) == 0.0

    def test_location_validation(self):
        with pytest.raises(ParameterError):
            PieceCountDistribution.point_mass(10, 0)
        with pytest.raises(ParameterError):
            PieceCountDistribution.point_mass(10, 11)


class TestLinearSkew:
    def test_toward_full_weights_increase(self):
        phi = PieceCountDistribution.linear_skew(6, toward_full=True)
        values = [phi.pmf(j) for j in range(1, 7)]
        assert values == sorted(values)

    def test_toward_empty_weights_decrease(self):
        phi = PieceCountDistribution.linear_skew(6, toward_full=False)
        values = [phi.pmf(j) for j in range(1, 7)]
        assert values == sorted(values, reverse=True)


class TestTruncatedGeometric:
    def test_ratio_one_is_uniform(self):
        phi = PieceCountDistribution.truncated_geometric(5, 1.0)
        assert phi == PieceCountDistribution.uniform(5)

    def test_ratio_below_one_favors_low_counts(self):
        phi = PieceCountDistribution.truncated_geometric(5, 0.5)
        assert phi.pmf(1) > phi.pmf(5)

    def test_ratio_above_one_favors_high_counts(self):
        phi = PieceCountDistribution.truncated_geometric(5, 2.0)
        assert phi.pmf(5) > phi.pmf(1)

    def test_large_b_numerically_stable(self):
        phi = PieceCountDistribution.truncated_geometric(500, 1.05)
        assert np.isfinite(phi.as_array()).all()

    def test_invalid_ratio(self):
        with pytest.raises(ParameterError):
            PieceCountDistribution.truncated_geometric(5, 0.0)


class TestEmpirical:
    def test_from_mapping(self):
        phi = PieceCountDistribution.empirical(4, {1: 3.0, 4: 1.0})
        assert phi.pmf(1) == pytest.approx(0.75)
        assert phi.pmf(4) == pytest.approx(0.25)

    def test_from_iterable(self):
        phi = PieceCountDistribution.empirical(4, [1, 1, 2, 2])
        assert phi.pmf(1) == pytest.approx(0.5)
        assert phi.pmf(2) == pytest.approx(0.5)

    def test_rejects_zero_count(self):
        with pytest.raises(DistributionError):
            PieceCountDistribution.empirical(4, [0, 1])

    def test_rejects_above_b(self):
        with pytest.raises(DistributionError):
            PieceCountDistribution.empirical(4, {5: 1.0})

    def test_rejects_negative_weight(self):
        with pytest.raises(DistributionError):
            PieceCountDistribution.empirical(4, {2: -1.0})

    def test_rejects_no_mass(self):
        with pytest.raises(DistributionError):
            PieceCountDistribution.empirical(4, [])


class TestConstructionValidation:
    def test_wrong_shape(self):
        with pytest.raises(DistributionError):
            PieceCountDistribution(4, np.ones(3) / 3)

    def test_negative_entries(self):
        with pytest.raises(DistributionError):
            PieceCountDistribution(2, np.array([1.5, -0.5]))

    def test_bad_sum(self):
        with pytest.raises(DistributionError):
            PieceCountDistribution(2, np.array([0.2, 0.2]))

    def test_array_is_readonly(self):
        phi = PieceCountDistribution.uniform(3)
        with pytest.raises(ValueError):
            phi.as_array()[0] = 1.0


class TestValueSemantics:
    def test_equality(self):
        assert PieceCountDistribution.uniform(5) == PieceCountDistribution.uniform(5)

    def test_inequality_different_b(self):
        assert PieceCountDistribution.uniform(5) != PieceCountDistribution.uniform(6)

    def test_hash_consistent(self):
        a = PieceCountDistribution.uniform(5)
        b = PieceCountDistribution.uniform(5)
        assert hash(a) == hash(b)

    def test_repr_mentions_b(self):
        assert "B=5" in repr(PieceCountDistribution.uniform(5))

    @given(b=st.integers(min_value=1, max_value=80),
           ratio=st.floats(min_value=0.2, max_value=5.0))
    @settings(max_examples=40)
    def test_property_valid_distribution(self, b, ratio):
        phi = PieceCountDistribution.truncated_geometric(b, ratio)
        arr = phi.as_array()
        assert arr.size == b
        assert (arr >= 0).all()
        assert arr.sum() == pytest.approx(1.0, abs=1e-9)
        assert 1.0 <= phi.mean() <= b
