"""Tests for repro.core.parameters."""

import pytest

from repro.core.parameters import (
    DEFAULT_PARAMETERS,
    ModelParameters,
    alpha_from_swarm,
)
from repro.core.piece_distribution import PieceCountDistribution
from repro.errors import ParameterError


class TestModelParameters:
    def test_defaults_valid(self):
        params = ModelParameters(num_pieces=10, max_conns=2, ns_size=5)
        assert params.phi is not None
        assert params.phi.num_pieces == 10

    def test_default_phi_is_uniform(self):
        params = ModelParameters(num_pieces=8, max_conns=2, ns_size=5)
        assert params.phi == PieceCountDistribution.uniform(8)

    def test_explicit_phi_kept(self):
        phi = PieceCountDistribution.point_mass(8, 3)
        params = ModelParameters(num_pieces=8, max_conns=2, ns_size=5, phi=phi)
        assert params.phi is phi

    def test_phi_b_mismatch_rejected(self):
        with pytest.raises(ParameterError):
            ModelParameters(
                num_pieces=8,
                max_conns=2,
                ns_size=5,
                phi=PieceCountDistribution.uniform(9),
            )

    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_pieces", 0),
            ("max_conns", 0),
            ("ns_size", 0),
            ("p_init", -0.1),
            ("p_init", 1.2),
            ("alpha", 2.0),
            ("gamma", -1.0),
            ("p_reenc", 1.01),
            ("p_new", -0.5),
        ],
    )
    def test_field_validation(self, field, value):
        kwargs = dict(num_pieces=10, max_conns=3, ns_size=5)
        kwargs[field] = value
        with pytest.raises(ParameterError):
            ModelParameters(**kwargs)

    def test_with_changes(self):
        params = ModelParameters(num_pieces=10, max_conns=3, ns_size=5)
        changed = params.with_changes(max_conns=4)
        assert changed.max_conns == 4
        assert changed.num_pieces == 10
        assert params.max_conns == 3  # original untouched

    def test_with_changes_revalidates(self):
        params = ModelParameters(num_pieces=10, max_conns=3, ns_size=5)
        with pytest.raises(ParameterError):
            params.with_changes(alpha=7.0)

    def test_state_count(self):
        params = ModelParameters(num_pieces=10, max_conns=3, ns_size=5)
        assert params.state_count == 4 * 11 * 6

    def test_describe_mentions_all_symbols(self):
        text = ModelParameters(num_pieces=10, max_conns=3, ns_size=5).describe()
        for token in ("B=10", "k=3", "s=5", "alpha", "gamma"):
            assert token in text

    def test_frozen(self):
        params = ModelParameters(num_pieces=10, max_conns=3, ns_size=5)
        with pytest.raises(AttributeError):
            params.num_pieces = 20

    def test_default_parameters_constant(self):
        assert DEFAULT_PARAMETERS.num_pieces == 200
        assert DEFAULT_PARAMETERS.max_conns == 7
        assert DEFAULT_PARAMETERS.ns_size == 50


class TestAlphaFromSwarm:
    def test_formula(self):
        # alpha = lambda * w * s / N
        assert alpha_from_swarm(2.0, 0.5, 10, 100) == pytest.approx(0.1)

    def test_clamped_at_one(self):
        assert alpha_from_swarm(100.0, 1.0, 50, 10) == 1.0

    def test_zero_arrivals(self):
        assert alpha_from_swarm(0.0, 0.5, 10, 100) == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(arrival_rate=-1.0, tradeable_probability=0.5, ns_size=5, swarm_size=10),
            dict(arrival_rate=1.0, tradeable_probability=1.5, ns_size=5, swarm_size=10),
            dict(arrival_rate=1.0, tradeable_probability=0.5, ns_size=0, swarm_size=10),
            dict(arrival_rate=1.0, tradeable_probability=0.5, ns_size=5, swarm_size=0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ParameterError):
            alpha_from_swarm(**kwargs)
