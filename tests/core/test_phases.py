"""Tests for phase classification (paper Section 3.2)."""


from repro.core.chain import State
from repro.core.phases import (
    Phase,
    classify_state,
    phase_boundaries,
    phase_durations,
)

B = 20


class TestClassifyState:
    def test_fresh_peer_bootstrap(self):
        assert classify_state(State(0, 0, 0), B) is Phase.BOOTSTRAP

    def test_first_piece_no_partners_bootstrap(self):
        assert classify_state(State(0, 1, 0), B) is Phase.BOOTSTRAP

    def test_first_piece_with_partners_still_bootstrap(self):
        # b + n <= 1 is the bootstrap criterion.
        assert classify_state(State(0, 1, 4), B) is Phase.BOOTSTRAP

    def test_trading(self):
        assert classify_state(State(2, 5, 3), B) is Phase.EFFICIENT

    def test_last_phase(self):
        assert classify_state(State(0, 15, 0), B) is Phase.LAST

    def test_last_phase_requires_pieces(self):
        # i == 0 with b + n <= 1 is bootstrap, not last.
        assert classify_state(State(1, 0, 0), B) is Phase.BOOTSTRAP

    def test_complete(self):
        assert classify_state(State(0, B, 0), B) is Phase.COMPLETE

    def test_str(self):
        assert str(Phase.EFFICIENT) == "efficient"


class TestPhaseDurations:
    def test_counts_steps_per_phase(self):
        traj = [
            State(0, 0, 0),   # bootstrap
            State(0, 1, 0),   # bootstrap
            State(2, 1, 3),   # b+n=3 -> efficient
            State(2, 3, 3),   # efficient
            State(0, 5, 0),   # last
            State(0, B, 0),   # complete (not counted)
        ]
        durations = phase_durations(traj, B)
        assert durations[Phase.BOOTSTRAP] == 2
        assert durations[Phase.EFFICIENT] == 2
        assert durations[Phase.LAST] == 1

    def test_stops_at_completion(self):
        traj = [State(0, B, 0), State(0, 5, 0)]
        durations = phase_durations(traj, B)
        assert sum(durations.values()) == 0

    def test_empty_trajectory(self):
        durations = phase_durations([], B)
        assert durations == {
            Phase.BOOTSTRAP: 0,
            Phase.EFFICIENT: 0,
            Phase.LAST: 0,
        }


class TestPhaseBoundaries:
    def test_first_and_last_steps(self):
        traj = [
            State(0, 0, 0),
            State(0, 1, 0),
            State(2, 1, 3),
            State(0, 5, 0),
            State(0, 6, 0),
        ]
        bounds = phase_boundaries(traj, B)
        assert bounds[Phase.BOOTSTRAP] == (0, 1)
        assert bounds[Phase.EFFICIENT] == (2, 2)
        assert bounds[Phase.LAST] == (3, 4)

    def test_missing_phase_absent(self):
        traj = [State(0, 0, 0)]
        bounds = phase_boundaries(traj, B)
        assert Phase.LAST not in bounds
