"""Tests for the entropy metric."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.sim.bitfield import Bitfield
from repro.sim.peer import Peer
from repro.sim.tracker import Tracker
from repro.stability.entropy import (
    entropy,
    entropy_of_swarm,
    replication_degrees,
)


class TestReplicationDegrees:
    def test_counts(self):
        bitfields = [
            Bitfield.from_pieces(4, [0, 1]),
            Bitfield.from_pieces(4, [1, 2]),
            Bitfield.from_pieces(4, [1]),
        ]
        degrees = replication_degrees(bitfields, 4)
        assert degrees.tolist() == [1, 3, 1, 0]

    def test_complete_bitfield_fast_path(self):
        bitfields = [Bitfield.full(4), Bitfield.from_pieces(4, [0])]
        degrees = replication_degrees(bitfields, 4)
        assert degrees.tolist() == [2, 1, 1, 1]

    def test_empty_input(self):
        assert replication_degrees([], 4).tolist() == [0, 0, 0, 0]

    def test_mismatched_sizes_rejected(self):
        with pytest.raises(ParameterError):
            replication_degrees([Bitfield(3)], 4)

    def test_invalid_num_pieces(self):
        with pytest.raises(ParameterError):
            replication_degrees([], 0)


class TestEntropy:
    def test_balanced_is_one(self):
        assert entropy(np.array([5, 5, 5])) == 1.0

    def test_missing_piece_is_zero(self):
        assert entropy(np.array([5, 0, 5])) == 0.0

    def test_ratio(self):
        assert entropy(np.array([2, 8])) == pytest.approx(0.25)

    def test_empty_system_convention(self):
        assert entropy(np.array([0, 0, 0])) == 1.0

    def test_empty_array_rejected(self):
        with pytest.raises(ParameterError):
            entropy(np.array([]))

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            entropy(np.array([1, -1]))

    @given(
        degrees=st.lists(
            st.integers(min_value=0, max_value=100), min_size=1, max_size=30
        )
    )
    @settings(max_examples=60)
    def test_property_bounds(self, degrees):
        value = entropy(np.array(degrees))
        assert 0.0 <= value <= 1.0

    @given(
        degrees=st.lists(
            st.integers(min_value=1, max_value=100), min_size=1, max_size=30
        ),
        scale=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=40)
    def test_property_scale_invariant(self, degrees, scale):
        base = entropy(np.array(degrees))
        scaled = entropy(np.array(degrees) * scale)
        assert scaled == pytest.approx(base)


class TestEntropyOfSwarm:
    def test_counts_all_peers(self, rng):
        tracker = Tracker(ns_size=5, rng=rng)
        seed = Peer(tracker.new_peer_id(), 3, is_seed=True)
        tracker.register(seed)
        leecher = Peer(tracker.new_peer_id(), 3)
        leecher.bitfield = Bitfield.from_pieces(3, [0])
        tracker.register(leecher)
        # degrees: [2, 1, 1] -> E = 0.5
        assert entropy_of_swarm(tracker) == pytest.approx(0.5)

    def test_exclude_seeds(self, rng):
        tracker = Tracker(ns_size=5, rng=rng)
        seed = Peer(tracker.new_peer_id(), 3, is_seed=True)
        tracker.register(seed)
        leecher = Peer(tracker.new_peer_id(), 3)
        leecher.bitfield = Bitfield.from_pieces(3, [0])
        tracker.register(leecher)
        assert entropy_of_swarm(tracker, include_seeds=False) == 0.0

    def test_empty_swarm(self, rng):
        tracker = Tracker(ns_size=5, rng=rng)
        assert entropy_of_swarm(tracker) == 1.0
