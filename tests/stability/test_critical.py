"""Tests for the stability phase boundary."""

import pytest

from repro.errors import ParameterError
from repro.stability.critical import (
    critical_piece_count,
    phase_boundary,
)


class TestCriticalPieceCount:
    def test_finds_boundary_between_3_and_10(self):
        """The paper's endpoints bracket the boundary."""
        critical = critical_piece_count(
            12.0, b_range=(2, 16), initial_leechers=100, max_time=60.0,
            seed=1,
        )
        assert 3 < critical <= 12

    def test_validation(self):
        with pytest.raises(ParameterError):
            critical_piece_count(5.0, b_range=(1, 8))
        with pytest.raises(ParameterError):
            critical_piece_count(5.0, b_range=(8, 8))
        with pytest.raises(ParameterError):
            critical_piece_count(-1.0)


class TestPhaseBoundary:
    @pytest.fixture(scope="class")
    def boundary(self):
        return phase_boundary(
            [5.0, 20.0], initial_leechers=100, max_time=60.0, seed=2
        )

    def test_boundary_rises_with_load(self, boundary):
        """The paper: stability depends on B *and* the arrival rate."""
        points = boundary.points
        assert points[1].critical_b_sim >= points[0].critical_b_sim

    def test_drift_model_agrees_at_low_load(self, boundary):
        low = boundary.points[0]
        assert abs(low.critical_b_drift - low.critical_b_sim) <= 3

    def test_format(self, boundary):
        text = boundary.format()
        assert "critical B" in text

    def test_empty_rates_rejected(self):
        with pytest.raises(ParameterError):
            phase_boundary([])
