"""Tests for the stability experiment runner."""

import pytest

from repro.errors import ParameterError
from repro.stability.experiments import (
    StabilityRun,
    run_stability_experiment,
    stability_config,
)


def quick_config(num_pieces, **over):
    base = dict(
        arrival_rate=6.0,
        initial_leechers=80,
        max_time=50.0,
        seed=3,
    )
    base.update(over)
    return stability_config(num_pieces, **base)


class TestStabilityConfig:
    def test_skewed_start(self):
        config = stability_config(10)
        assert config.initial_distribution == "skewed"
        assert config.skewed_pieces == 1
        assert config.piece_selection == "rarest"

    def test_strict_optimistic_targets(self):
        assert stability_config(10).optimistic_targets == "empty"

    def test_cutoff_lowered_for_tiny_b(self):
        assert stability_config(3).random_first_cutoff == 1


class TestRunStabilityExperiment:
    def test_result_structure(self):
        run = run_stability_experiment(quick_config(5), entropy_every=4)
        assert isinstance(run, StabilityRun)
        assert run.times.size == run.population.size == run.entropy.size
        assert run.times.size > 0

    def test_entropy_within_bounds(self):
        run = run_stability_experiment(quick_config(5), entropy_every=4)
        assert (run.entropy >= 0).all()
        assert (run.entropy <= 1).all()

    def test_final_accessors(self):
        run = run_stability_experiment(quick_config(5), entropy_every=4)
        assert run.final_population() == run.population[-1]
        assert run.final_entropy() == run.entropy[-1]

    def test_divergence_classification(self):
        # A run that ends above 2x the start is diverged by definition.
        run = run_stability_experiment(
            quick_config(3, arrival_rate=10.0), entropy_every=8
        )
        expected = run.final_population() > 2.0 * (80 + 1)
        assert run.diverged == expected

    def test_validation(self):
        with pytest.raises(ParameterError):
            run_stability_experiment(quick_config(5), divergence_factor=1.0)
        with pytest.raises(ParameterError):
            run_stability_experiment(quick_config(5), recovery_level=0.0)


class TestPaperContrast:
    def test_b3_worse_than_b10(self):
        """The headline stability result at reduced scale.

        B = 3 must end with a larger population and a lower entropy than
        B = 10 from the same high-skew start.
        """
        run3 = run_stability_experiment(
            quick_config(3, arrival_rate=10.0, max_time=70.0), entropy_every=4
        )
        run10 = run_stability_experiment(
            quick_config(10, arrival_rate=10.0, max_time=70.0), entropy_every=4
        )
        assert run3.final_population() > run10.final_population()
        tail3 = run3.entropy[-10:].mean()
        tail10 = run10.entropy[-10:].mean()
        assert tail10 > tail3
