"""Tests for the first-order entropy-drift analysis."""

import pytest

from repro.errors import ParameterError
from repro.stability.drift import (
    alpha_under_skew,
    entropy_drift_summary,
    phase_drift_analysis,
)


class TestAlphaUnderSkew:
    def test_no_skew_keeps_alpha(self):
        assert alpha_under_skew(0.3, 1.0) == pytest.approx(0.3)

    def test_full_skew_kills_alpha(self):
        assert alpha_under_skew(0.3, 0.0) == 0.0

    def test_linear(self):
        assert alpha_under_skew(0.4, 0.5) == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ParameterError):
            alpha_under_skew(1.5, 0.5)
        with pytest.raises(ParameterError):
            alpha_under_skew(0.5, -0.1)


class TestPhaseDriftAnalysis:
    def test_paper_endpoints(self):
        """B = 3 is classified unstable, B = 10 stable (Fig 3/4(b,c))."""
        unstable = phase_drift_analysis(3, 4, arrival_rate=20.0)
        stable = phase_drift_analysis(10, 4, arrival_rate=20.0)
        assert not unstable.predicted_stable
        assert stable.predicted_stable

    def test_replication_factor_scales_with_b(self):
        small = phase_drift_analysis(4, 4, arrival_rate=1.0)
        large = phase_drift_analysis(40, 4, arrival_rate=1.0)
        assert large.replication_factor > small.replication_factor

    def test_replication_factor_independent_of_k(self):
        a = phase_drift_analysis(10, 2, arrival_rate=1.0)
        b = phase_drift_analysis(10, 7, arrival_rate=1.0)
        assert a.replication_factor == b.replication_factor

    def test_higher_load_raises_requirement(self):
        calm = phase_drift_analysis(10, 4, arrival_rate=1.0)
        busy = phase_drift_analysis(10, 4, arrival_rate=50.0)
        assert busy.required_factor > calm.required_factor

    def test_sojourns(self):
        analysis = phase_drift_analysis(
            10, 4, arrival_rate=1.0, alpha=0.2, gamma=0.1
        )
        assert analysis.bootstrap_sojourn == pytest.approx(5.0)
        assert analysis.last_sojourn == pytest.approx(10.0)

    def test_trading_rounds(self):
        analysis = phase_drift_analysis(10, 4, arrival_rate=1.0)
        assert analysis.trading_rounds == pytest.approx(2.0)

    def test_k_clamped_for_tiny_files(self):
        analysis = phase_drift_analysis(2, 7, arrival_rate=1.0)
        assert analysis.trading_rounds == 0.0  # B - 2 = 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_pieces=0, max_conns=2, arrival_rate=1.0),
            dict(num_pieces=5, max_conns=0, arrival_rate=1.0),
            dict(num_pieces=5, max_conns=2, arrival_rate=-1.0),
            dict(num_pieces=5, max_conns=2, arrival_rate=1.0, alpha=0.0),
            dict(num_pieces=5, max_conns=2, arrival_rate=1.0, service_rate=0.0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ParameterError):
            phase_drift_analysis(**kwargs)


class TestSummary:
    def test_mentions_verdict(self):
        assert "UNSTABLE" in entropy_drift_summary(3, 4, 20.0)
        assert "STABLE" in entropy_drift_summary(50, 4, 1.0)

    def test_mentions_parameters(self):
        text = entropy_drift_summary(10, 4, 2.0)
        assert "B=10" in text
        assert "k=4" in text
