"""Tests for the coupon replication baseline."""

import pytest

from repro.baselines.coupon import CouponSystem, run_coupon_system
from repro.errors import ParameterError


class TestConstruction:
    def test_initial_population_has_one_coupon_each(self):
        system = CouponSystem(5, initial_peers=20, seed=0)
        assert len(system.peers) == 20
        assert all(bf.count == 1 for bf, _ in system.peers.values())

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_coupons=0),
            dict(num_coupons=5, arrival_rate=-1.0),
            dict(num_coupons=5, initial_peers=-1),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ParameterError):
            CouponSystem(**kwargs)


class TestRun:
    def test_peers_complete(self):
        result = run_coupon_system(
            4, 200, arrival_rate=2.0, initial_peers=50, seed=1
        )
        assert result.completed > 0
        assert result.mean_sojourn > 0

    def test_failed_encounters_occur(self):
        """The paper's structural point: whole-swarm random encounters
        fail with positive probability."""
        result = run_coupon_system(
            8, 100, arrival_rate=2.0, initial_peers=50, seed=2
        )
        assert result.failed_encounter_fraction > 0.0

    def test_efficiency_bounds(self):
        result = run_coupon_system(4, 100, seed=3)
        assert 0.0 <= result.efficiency <= 1.0

    def test_series_recorded(self):
        result = run_coupon_system(4, 50, seed=4)
        assert len(result.population_series) == 50
        rounds, values = zip(*result.entropy_series)
        assert all(0.0 <= v <= 1.0 for v in values)

    def test_sampling_stride(self):
        system = CouponSystem(4, seed=5)
        result = system.run(50, sample_every=10)
        assert len(result.population_series) == 5

    def test_validation(self):
        system = CouponSystem(4, seed=6)
        with pytest.raises(ParameterError):
            system.run(0)
        with pytest.raises(ParameterError):
            system.run(10, sample_every=0)

    def test_deterministic(self):
        a = run_coupon_system(4, 100, seed=7)
        b = run_coupon_system(4, 100, seed=7)
        assert a.completed == b.completed
        assert a.failed_encounter_fraction == b.failed_encounter_fraction

    def test_single_peer_cannot_trade(self):
        result = run_coupon_system(
            4, 20, arrival_rate=0.0, initial_peers=1, seed=8
        )
        assert result.completed == 0
