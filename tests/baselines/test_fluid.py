"""Tests for the Qiu-Srikant fluid baseline."""

import pytest

from repro.baselines.fluid import FluidModel
from repro.errors import ParameterError


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(arrival_rate=-1.0),
            dict(arrival_rate=1.0, upload_rate=0.0),
            dict(arrival_rate=1.0, download_rate=0.0),
            dict(arrival_rate=1.0, efficiency=0.0),
            dict(arrival_rate=1.0, efficiency=1.5),
            dict(arrival_rate=1.0, abort_rate=-0.1),
            dict(arrival_rate=1.0, seed_departure_rate=0.0),
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ParameterError):
            FluidModel(**kwargs)


class TestSteadyState:
    def test_zero_arrivals(self):
        state = FluidModel(arrival_rate=0.0).steady_state()
        assert state.leechers == 0.0
        assert state.seeds == 0.0

    def test_closed_form_uplink_constrained(self):
        # mu small, gamma_s large: seeds leave fast, uplink binds.
        model = FluidModel(
            arrival_rate=10.0, upload_rate=0.5, download_rate=100.0,
            efficiency=1.0, seed_departure_rate=2.0,
        )
        state = model.steady_state()
        assert not state.download_constrained
        # y = lam/gamma = 5; x = (lam/mu - y)/eta = (20 - 5)/1 = 15.
        assert state.seeds == pytest.approx(5.0)
        assert state.leechers == pytest.approx(15.0)

    def test_closed_form_downlink_constrained(self):
        model = FluidModel(
            arrival_rate=10.0, upload_rate=100.0, download_rate=2.0,
            efficiency=1.0, seed_departure_rate=1.0,
        )
        state = model.steady_state()
        assert state.download_constrained
        assert state.leechers == pytest.approx(5.0)  # lam / c

    def test_littles_law(self):
        model = FluidModel(arrival_rate=4.0, upload_rate=1.0,
                           download_rate=3.0, seed_departure_rate=2.0)
        state = model.steady_state()
        assert state.mean_download_time == pytest.approx(
            state.leechers / model.arrival_rate
        )

    def test_abort_rate_numeric_branch(self):
        model = FluidModel(
            arrival_rate=10.0, upload_rate=1.0, download_rate=5.0,
            abort_rate=0.1, seed_departure_rate=1.0,
        )
        state = model.steady_state()
        assert state.leechers > 0
        # Balance must hold: lam = theta*x + completed.
        completed = model.service_rate(state.leechers, state.seeds)
        assert model.arrival_rate == pytest.approx(
            model.abort_rate * state.leechers + completed, rel=1e-6
        )

    def test_higher_efficiency_fewer_leechers(self):
        slow = FluidModel(arrival_rate=10.0, upload_rate=0.5,
                          efficiency=0.5, seed_departure_rate=2.0)
        fast = slow.__class__(arrival_rate=10.0, upload_rate=0.5,
                              efficiency=1.0, seed_departure_rate=2.0)
        assert fast.steady_state().leechers < slow.steady_state().leechers


class TestIntegration:
    def test_trajectory_shape(self):
        model = FluidModel(arrival_rate=5.0, seed_departure_rate=1.0)
        traj = model.integrate(50.0, points=100)
        assert traj.times.size == 100
        assert traj.leechers.size == 100
        assert (traj.leechers >= 0).all()
        assert (traj.seeds >= 0).all()

    def test_converges_to_steady_state(self):
        model = FluidModel(
            arrival_rate=5.0, upload_rate=1.0, download_rate=2.0,
            seed_departure_rate=1.0,
        )
        steady = model.steady_state()
        traj = model.integrate(200.0, points=400)
        assert traj.leechers[-1] == pytest.approx(steady.leechers, rel=0.05)
        assert traj.seeds[-1] == pytest.approx(steady.seeds, rel=0.05)

    def test_validation(self):
        model = FluidModel(arrival_rate=1.0)
        with pytest.raises(ParameterError):
            model.integrate(0.0)
        with pytest.raises(ParameterError):
            model.integrate(10.0, points=1)
