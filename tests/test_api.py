"""Top-level API surface tests."""

import repro


class TestPublicApi:
    def test_version(self):
        assert isinstance(repro.__version__, str)

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_core_entry_points(self):
        params = repro.ModelParameters(num_pieces=10, max_conns=2, ns_size=4)
        chain = repro.DownloadChain(params)
        traj = chain.trajectory(seed=0)
        assert traj[-1].b == 10

    def test_sim_entry_points(self):
        config = repro.SimConfig(num_pieces=10, max_conns=2, ns_size=5,
                                 initial_leechers=8, max_time=20.0, seed=0)
        result = repro.run_swarm(config)
        assert result.total_rounds == 20

    def test_lazy_stability_exports(self):
        from repro.stability import run_stability_experiment, stability_config

        assert callable(run_stability_experiment)
        assert callable(stability_config)

    def test_lazy_stability_unknown_attribute(self):
        import pytest
        import repro.stability

        with pytest.raises(AttributeError):
            repro.stability.does_not_exist


class TestRunExperimentFacade:
    def test_quick_run_returns_result(self):
        result = repro.run_experiment("F2", quick=True)
        assert result.to_dict()["experiment"] == "F2"
        assert result.timing is not None

    def test_case_insensitive(self):
        result = repro.run_experiment("f2", quick=True)
        assert result.to_dict()["experiment"] == "F2"

    def test_overrides_beat_quick_kwargs(self):
        result = repro.run_experiment(
            "F1a", quick=True, seed=1, pss_values=(4,), num_pieces=20, runs=3
        )
        assert set(result.ratios) == {4}
        assert result.pieces[-1] == 20

    def test_workers_do_not_change_results(self):
        import numpy as np

        kwargs = dict(quick=True, seed=2, pss_values=(5,), num_pieces=25, runs=4)
        serial = repro.run_experiment("F1a", workers=1, **kwargs)
        parallel = repro.run_experiment("F1a", workers=2, **kwargs)
        assert np.array_equal(
            serial.ratios[5], parallel.ratios[5], equal_nan=True
        )

    def test_unknown_experiment(self):
        import pytest

        from repro.errors import ParameterError

        with pytest.raises(ParameterError):
            repro.run_experiment("F99")
