"""Top-level API surface tests."""

import repro


class TestPublicApi:
    def test_version(self):
        assert isinstance(repro.__version__, str)

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_core_entry_points(self):
        params = repro.ModelParameters(num_pieces=10, max_conns=2, ns_size=4)
        chain = repro.DownloadChain(params)
        traj = chain.trajectory(seed=0)
        assert traj[-1].b == 10

    def test_sim_entry_points(self):
        config = repro.SimConfig(num_pieces=10, max_conns=2, ns_size=5,
                                 initial_leechers=8, max_time=20.0, seed=0)
        result = repro.run_swarm(config)
        assert result.total_rounds == 20

    def test_lazy_stability_exports(self):
        from repro.stability import run_stability_experiment, stability_config

        assert callable(run_stability_experiment)
        assert callable(stability_config)

    def test_lazy_stability_unknown_attribute(self):
        import pytest
        import repro.stability

        with pytest.raises(AttributeError):
            repro.stability.does_not_exist
