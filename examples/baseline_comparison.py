#!/usr/bin/env python
"""BitTorrent vs the related-work baselines (paper Section 2.2).

Contrasts the paper's protocol-level view with the two families of
models it argues against:

* the **coupon replication system** [Massoulie & Vojnovic] — whole-swarm
  random encounters, a single connection, failed encounters with
  positive probability;
* the **Qiu-Srikant fluid model** — aggregate leecher/seed ODEs whose
  efficiency ``eta`` is an exogenous input rather than a derived
  quantity; here we *feed it* the efficiency our balance equations
  derive, closing the loop the fluid model leaves open.

Run:  python examples/baseline_comparison.py
"""

from repro.analysis.reporting import format_table
from repro.baselines.coupon import run_coupon_system
from repro.baselines.fluid import FluidModel
from repro.efficiency.efficiency import efficiency_curve
from repro.sim.config import SimConfig
from repro.sim.metrics import MetricsCollector
from repro.sim.swarm import Swarm

NUM_PIECES = 40
ARRIVAL = 2.0
ROUNDS = 150


def bittorrent_run():
    config = SimConfig(
        num_pieces=NUM_PIECES, max_conns=4, ns_size=25,
        arrival_process="poisson", arrival_rate=ARRIVAL,
        initial_leechers=50, initial_distribution="uniform",
        initial_fill=0.5, num_seeds=1, seed_upload_slots=2,
        optimistic_unchoke_prob=0.5, piece_selection="rarest",
        connection_setup_prob=0.8, connection_failure_prob=0.1,
        max_time=float(ROUNDS), seed=5,
    )
    metrics = MetricsCollector(config.max_conns, entropy_every=10)
    Swarm(config, metrics=metrics).run()
    return metrics


def main() -> None:
    print(f"Workload: B={NUM_PIECES} pieces, lambda={ARRIVAL}/round, "
          f"{ROUNDS} rounds\n")

    bt = bittorrent_run()
    coupon = run_coupon_system(
        NUM_PIECES, ROUNDS, arrival_rate=ARRIVAL, initial_peers=50, seed=5
    )

    print(format_table(
        ["system", "completed", "mean sojourn", "efficiency",
         "failed encounters"],
        [
            ["BitTorrent (k=4, NS-limited)", len(bt.completed),
             round(bt.mean_download_duration(), 1),
             round(bt.efficiency(), 3), "n/a (potential-set gated)"],
            ["Coupon system (k=1, global)", coupon.completed,
             round(coupon.mean_sojourn, 1),
             round(coupon.efficiency, 3),
             f"{coupon.failed_encounter_fraction:.1%}"],
        ],
    ))
    print(
        "\nThe coupon system's whole-swarm sampling wastes encounters on\n"
        "untradable partners - the failure mode BitTorrent's potential\n"
        "set structurally avoids - and its single connection forfeits\n"
        "the k >= 2 efficiency gain of Figure 3/4(a).\n"
    )

    print("Fluid model fed with the balance-equation efficiency:")
    rows = []
    for k in (1, 2, 4):
        eta = efficiency_curve([k])[0].eta
        fluid = FluidModel(
            arrival_rate=ARRIVAL, upload_rate=1.0 / 10.0,
            download_rate=1.0, efficiency=eta, seed_departure_rate=0.5,
        )
        steady = fluid.steady_state()
        rows.append([
            k, round(eta, 3), round(steady.leechers, 1),
            round(steady.seeds, 1), round(steady.mean_download_time, 1),
            "downlink" if steady.download_constrained else "uplink",
        ])
    print(format_table(
        ["k", "eta (derived)", "leechers", "seeds", "mean T", "bottleneck"],
        rows,
    ))


if __name__ == "__main__":
    main()
