#!/usr/bin/env python
"""Stability study: how the number of pieces B decides the swarm's fate.

Reproduces the paper's Section-6 finding across a sweep of B values:
from a high-skew start under a sustained arrival stream, small B means
the rarest piece cannot be replicated before its holders leave — the
population diverges and the entropy collapses — while larger B gives
rarest-first enough of a trading window to repair the skew.

Also prints the first-order analytical verdicts from the drift model
next to the simulated outcomes.

Run:  python examples/stability_study.py
"""

from repro.analysis.reporting import format_table
from repro.stability.drift import phase_drift_analysis
from repro.stability.experiments import (
    run_stability_experiment,
    stability_config,
)

ARRIVAL_RATE = 12.0
INITIAL = 150
HORIZON = 90.0


def main() -> None:
    print("Stability sweep: high-skew start, Poisson arrivals "
          f"(lambda={ARRIVAL_RATE}/round, N0={INITIAL})\n")

    rows = []
    for num_pieces in (2, 3, 5, 10, 20):
        config = stability_config(
            num_pieces,
            arrival_rate=ARRIVAL_RATE,
            initial_leechers=INITIAL,
            max_time=HORIZON,
            seed=3,
        )
        run = run_stability_experiment(config, entropy_every=4)
        analysis = phase_drift_analysis(
            num_pieces, config.max_conns, ARRIVAL_RATE
        )
        rows.append([
            num_pieces,
            run.final_population(),
            round(float(run.entropy[-10:].mean()), 3),
            "diverged" if run.diverged else "bounded",
            "unstable" if not analysis.predicted_stable else "stable",
            round(analysis.replication_factor, 1),
            round(analysis.required_factor, 1),
        ])

    print(format_table(
        ["B", "final peers", "tail entropy", "simulated", "drift model",
         "repl. factor", "required"],
        rows,
    ))
    print(
        "\nReading: the drift model predicts instability when the rarest\n"
        "piece's per-generation replication factor (~B/2) falls short of\n"
        "the arrival-load requirement; the simulation shows the same\n"
        "boundary through population divergence and entropy collapse."
    )


if __name__ == "__main__":
    main()
