#!/usr/bin/env python
"""Quickstart: the multiphased download model and the swarm simulator.

Runs the paper's two core artifacts side by side on a small file:

1. the analytical download-evolution chain (paper Section 3) — sample a
   trajectory, watch it pass through the bootstrap / efficient / last
   phases;
2. the discrete-event swarm simulator (paper Section 4.1) — run a
   swarm and report download durations and the simulated efficiency.

Run:  python examples/quickstart.py
"""

from repro import (
    DownloadChain,
    ModelParameters,
    Phase,
    SimConfig,
    phase_durations,
    run_swarm,
)
from repro.api import solve


def model_walkthrough() -> None:
    print("=" * 64)
    print("1. The download-evolution Markov chain (n, b, i)")
    print("=" * 64)
    params = ModelParameters(
        num_pieces=60,   # B: pieces in the file
        max_conns=4,     # k: simultaneous connections
        ns_size=20,      # s: neighbor-set size
        alpha=0.2,       # bootstrap escape probability
        gamma=0.2,       # last-phase escape probability
    )
    print(f"parameters: {params.describe()}")

    chain = DownloadChain(params)
    trajectory = chain.trajectory(seed=42)
    print(f"\nsampled download: {len(trajectory) - 1} rounds to "
          f"{params.num_pieces} pieces")

    durations = phase_durations(trajectory, params.num_pieces)
    for phase in (Phase.BOOTSTRAP, Phase.EFFICIENT, Phase.LAST):
        print(f"  {phase!s:>10}: {durations[phase]} rounds")

    print("\nfirst ten states (n=connections, b=pieces, i=potential set):")
    for state in trajectory[:10]:
        print(f"  n={state.n}  b={state.b:3d}  i={state.i:2d}  "
              f"[{chain.phase(state)}]")

    timeline = solve(params, "timeline", method="batch", runs=32, seed=1)
    print(f"\nexpected download time over 32 runs: "
          f"{timeline.payload.total_download_time():.1f} rounds "
          f"(parallelism bound: {params.num_pieces / params.max_conns:.1f})")


def simulator_walkthrough() -> None:
    print()
    print("=" * 64)
    print("2. The discrete-event swarm simulator")
    print("=" * 64)
    config = SimConfig(
        num_pieces=60,
        max_conns=4,
        ns_size=20,
        arrival_process="poisson",
        arrival_rate=1.5,
        initial_leechers=40,
        initial_distribution="uniform",
        initial_fill=0.5,
        num_seeds=1,
        seed_upload_slots=2,
        piece_selection="rarest",
        max_time=120.0,
        seed=7,
    )
    result = run_swarm(config, instrument_first=1)
    metrics = result.metrics

    print(f"rounds simulated:    {result.total_rounds}")
    print(f"downloads completed: {len(metrics.completed)}")
    print(f"mean download time:  {metrics.mean_download_duration():.1f} rounds")
    print(f"simulated efficiency eta = {metrics.efficiency():.3f}")
    print(f"final population:    {result.final_leechers} leechers, "
          f"{result.final_seeds} seeds")

    watched = result.instrumented[0]
    series = [size for _t, size in watched.stats.potential_series[:12]]
    print(f"\ninstrumented peer's early potential-set sizes: {series}")


if __name__ == "__main__":
    model_walkthrough()
    simulator_walkthrough()
