#!/usr/bin/env python
"""Model validation: chain timelines against the discrete-event swarm.

The paper validates its multiphased model by comparing the download
timeline it predicts with the one measured in simulation (Figure 1(b)),
for a small and a large peer set.  This example runs that comparison
and prints agreement metrics, plus the potential-set curves behind
Figure 1(a).

Run:  python examples/model_vs_simulation.py
"""

import numpy as np

from repro.analysis.validation import compare_series
from repro.experiments.fig1a import run_fig1a
from repro.experiments.fig1b import run_fig1b


def main() -> None:
    print("Figure 1(b): download timeline, model vs simulation")
    print("-" * 60)
    fig1b = run_fig1b(
        pss_values=(5, 40),
        num_pieces=100,
        model_runs=24,
        sim_instrument=6,
        max_time=600.0,
        seed=0,
    )
    print(fig1b.format(max_rows=15))

    for pss in (5, 40):
        sim = fig1b.sim[pss]
        mask = np.isfinite(sim)
        if not mask.any() or fig1b.sim_completed[pss] == 0:
            print(f"\nPSS={pss}: no instrumented peer completed "
                  "(deep starvation) - the bootstrap/last phases dominate")
            continue
        comparison = compare_series(fig1b.model[pss][mask], sim[mask])
        print(f"\nPSS={pss}: completed={fig1b.sim_completed[pss]} "
              f"model total={fig1b.model[pss][-1]:.0f} rounds, "
              f"sim total={sim[-1]:.0f} rounds, "
              f"corr={comparison.correlation:.3f}, rmse={comparison.rmse:.1f}")
    print(
        "\nAs in the paper, the model tracks the simulation tightly for\n"
        "realistic peer sets (clients use 40-70) and only loosely for\n"
        "PSS=5, where neighborhood piece correlations - which the phi-\n"
        "based trading power cannot see - prolong the stalls."
    )

    print()
    print("Figure 1(a): potential-set ratio by pieces downloaded (model)")
    print("-" * 60)
    fig1a = run_fig1a(pss_values=(5, 10, 25, 40), num_pieces=100,
                      runs=24, seed=0)
    print(fig1a.format(max_rows=15))


if __name__ == "__main__":
    main()
