#!/usr/bin/env python
"""Streaming over a swarm: scheduling policy vs. reciprocity regime.

The paper's related work [1] concludes BitTorrent "can be effective for
streaming content provided proper upload scheduling policies are used".
This walkthrough quantifies that on the simulator:

* playback consumes pieces in *index order* at a fixed rate, so the
  metric is the minimal startup delay after which playback never stalls;
* three selection policies — rarest-first, strictly in-order
  ("sequential"), and a sliding in-order window ("windowed") — are
  compared under the paper's strict piece-barter tit-for-tat and under
  bandwidth-style (non-strict) reciprocity.

Run:  python examples/streaming_study.py
"""

from repro.analysis.reporting import format_table
from repro.analysis.streaming import (
    minimal_startup_delay,
    availability_times,
    swarm_streaming_summary,
)
from repro.sim.config import SimConfig
from repro.sim.swarm import run_swarm

NUM_PIECES = 40
PLAYBACK_INTERVAL = 0.5  # pieces consumed per half round: tight bandwidth


def run_cell(policy: str, strict: bool):
    config = SimConfig(
        num_pieces=NUM_PIECES, max_conns=2, ns_size=20,
        arrival_process="poisson", arrival_rate=1.5,
        initial_leechers=30, initial_distribution="uniform",
        initial_fill=0.5, num_seeds=1, seed_upload_slots=2,
        piece_selection=policy, strict_tft=strict,
        max_time=120.0, seed=7,
    )
    result = run_swarm(config)
    summary = swarm_streaming_summary(
        result.metrics.completed, NUM_PIECES,
        playback_interval=PLAYBACK_INTERVAL,
    )
    return summary, len(result.metrics.completed)


def main() -> None:
    print(f"Streaming study: B={NUM_PIECES}, playback 1 piece per "
          f"{PLAYBACK_INTERVAL} rounds\n")
    rows = []
    for strict in (True, False):
        regime = "strict barter" if strict else "bandwidth-style"
        for policy in ("rarest", "windowed", "sequential"):
            summary, completed = run_cell(policy, strict)
            delay = summary["mean_startup_delay"]
            rows.append([
                regime, policy, completed, int(summary["downloads"]),
                round(delay, 1) if delay == delay else "starved",
            ])
    print(format_table(
        ["reciprocity", "policy", "completed", "measurable", "mean startup"],
        rows,
    ))
    print(
        "\nReading: under the paper's strict piece-barter assumption, any\n"
        "in-order bias erodes mutual novelty (strictly sequential starves\n"
        "the swarm entirely) and rarest-first is the best streaming policy\n"
        "by default.  Relax reciprocity to bandwidth-style and the sliding\n"
        "in-order window wins on startup delay at comparable throughput -\n"
        "the 'proper upload scheduling' of the related work [1]."
    )

    # Single-trace illustration: availability vs the playhead.
    config = SimConfig(
        num_pieces=NUM_PIECES, max_conns=2, ns_size=20,
        arrival_rate=1.5, initial_leechers=30,
        initial_distribution="uniform", initial_fill=0.5,
        piece_selection="windowed", strict_tft=False,
        max_time=120.0, seed=7,
    )
    result = run_swarm(config)
    for download in result.metrics.completed:
        if len(download.stats.piece_log) == NUM_PIECES:
            availability = availability_times(
                download.stats.piece_log, NUM_PIECES,
                joined_at=download.joined_at, prefilled_available=False,
            )
            delay = minimal_startup_delay(
                availability, joined_at=download.joined_at,
                playback_interval=PLAYBACK_INTERVAL,
            )
            print(f"\nexample peer {download.peer_id}: download "
                  f"{download.duration:.1f} rounds, minimal stall-free "
                  f"startup delay {delay:.1f} rounds")
            break


if __name__ == "__main__":
    main()
