#!/usr/bin/env python
"""Calibration workflow: measure traces, fit the model, predict.

An end-to-end tour of the measurement/modelling loop:

1. collect instrumented traces from a swarm (as in paper Section 4.2);
2. fit the model's free parameters — alpha, gamma, p_r — to the traces
   with the estimators in :mod:`repro.analysis.calibration`;
3. run the fitted download-evolution chain and compare its predicted
   completion time against what the traces actually showed;
4. separately, close the paper's own loop for the efficiency model:
   measure the system-average p_r / p_n per k from the simulator and
   feed the measured p_r into the Section-5 balance equations.

Run:  python examples/calibration_workflow.py
"""

import numpy as np

from repro.analysis.calibration import calibrate_parameters
from repro.analysis.reporting import format_table
from repro.api import solve
from repro.efficiency.measurement import calibrated_efficiency_curve
from repro.sim.config import SimConfig
from repro.traces.collector import collect_traces

MAX_CONNS = 4
NS_SIZE = 12


def main() -> None:
    print("1. Collect instrumented traces from a simulated swarm")
    print("-" * 60)
    config = SimConfig(
        num_pieces=50,
        max_conns=MAX_CONNS,
        ns_size=NS_SIZE,
        arrival_process="poisson",
        arrival_rate=1.0,
        initial_leechers=30,
        initial_distribution="uniform",
        initial_fill=0.5,
        num_seeds=1,
        seed_upload_slots=2,
        optimistic_unchoke_prob=0.4,
        optimistic_targets="empty",   # strict regime: stalls observable
        connection_failure_prob=0.2,
        connection_setup_prob=0.8,
        piece_selection="rarest",
        max_time=300.0,
        seed=3,
    )
    traces = collect_traces(config, 8, avoid_seeds=True)
    completed = [t for t in traces if t.is_complete]
    print(f"collected {len(traces)} traces, {len(completed)} complete")

    print("\n2. Fit the model parameters to the traces")
    print("-" * 60)
    params, evidence = calibrate_parameters(
        traces, max_conns=MAX_CONNS, ns_size=NS_SIZE
    )
    print(format_table(
        ["parameter", "estimate", "evidence"],
        [
            ["alpha", round(evidence.alpha, 4) if evidence.alpha == evidence.alpha else "n/a",
             f"{evidence.bootstrap_escapes}/{evidence.bootstrap_stall_rounds} "
             "escapes/stall-rounds"],
            ["gamma", round(evidence.gamma, 4) if evidence.gamma == evidence.gamma else "n/a",
             f"{evidence.last_escapes}/{evidence.last_stall_rounds}"],
            ["p_r", round(evidence.p_reenc, 4),
             f"{evidence.connection_drops}/{evidence.connection_rounds} "
             "drops/conn-rounds"],
        ],
    ))

    print("\n3. Predict with the fitted chain vs. observed durations")
    print("-" * 60)
    predicted = solve(
        params, "timeline", method="batch", runs=48, seed=11
    ).payload.total_download_time()
    observed = np.mean([t.duration() for t in completed]) if completed else float("nan")
    print(f"fitted-model expected download time: {predicted:.1f} rounds")
    print(f"observed mean over complete traces:  {observed:.1f} rounds")

    print("\n4. Calibrated efficiency loop (measured p_r per k)")
    print("-" * 60)
    points = calibrated_efficiency_curve((1, 2, 4))
    print(format_table(
        ["k", "measured p_r", "sim eta", "calibrated model eta"],
        [[p.max_conns, round(p.p_reenc, 3), round(p.sim_eta, 3),
          round(p.model_eta, 3)] for p in points],
    ))


if __name__ == "__main__":
    main()
