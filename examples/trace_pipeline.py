#!/usr/bin/env python
"""Measurement pipeline: instrumented clients, trace files, swarm filter.

Mirrors the paper's Section-4.2 methodology end to end:

1. run swarms with an instrumented client (optionally refusing all seed
   interaction, as the paper's modified BitTornado did);
2. apply the tracker-statistics swarm filter (keep stable swarms, drop
   flash crowds and dying swarms);
3. persist the collected traces as JSON-lines and read them back;
4. segment each trace into the three phases and print a summary table.

Run:  python examples/trace_pipeline.py
"""

import tempfile
from pathlib import Path

from repro.analysis.reporting import format_table
from repro.sim.config import SimConfig
from repro.sim.swarm import Swarm
from repro.traces.analysis import classify_swarm, summarize_trace
from repro.traces.collector import trace_from_peer
from repro.traces.io import read_trace_jsonl, write_trace_jsonl

SWARM_SETUPS = {
    "stable-swarm": dict(arrival_rate=1.5, initial_leechers=25),
    "flash-crowd": dict(arrival_rate=8.0, initial_leechers=2),
    "dying-swarm": dict(arrival_process="none", initial_leechers=40),
}


def run_and_collect(name: str, overrides: dict):
    config = SimConfig(
        num_pieces=50,
        max_conns=5,
        ns_size=25,
        initial_distribution="uniform",
        initial_fill=0.5,
        num_seeds=1,
        seed_upload_slots=2,
        optimistic_unchoke_prob=0.5,
        piece_selection="rarest",
        max_time=150.0,
        seed=11,
        **overrides,
    )
    swarm = Swarm(config, instrument_first=2, instrumented_avoid_seeds=True)
    result = swarm.run()
    traces = [
        trace_from_peer(peer, swarm_id=name,
                        num_pieces=config.num_pieces,
                        piece_size_bytes=config.piece_size_bytes)
        for peer in result.instrumented
    ]
    verdict = classify_swarm(result.tracker_population_log, resolution=15.0)
    return traces, verdict


def main() -> None:
    print("Swarm selection (the paper: keep stable swarms only):")
    kept = []
    for name, overrides in SWARM_SETUPS.items():
        traces, verdict = run_and_collect(name, overrides)
        keep = verdict == "stable"
        print(f"  {name:<14} tracker-statistics verdict: {verdict:<12}"
              f"{'KEEP' if keep else 'DROP'}")
        if keep:
            kept.extend(traces)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "traces.jsonl"
        write_trace_jsonl(kept, path)
        loaded = read_trace_jsonl(path)
        print(f"\nwrote and re-read {len(loaded)} traces "
              f"({path.stat().st_size} bytes on disk)")

    print("\nPer-trace phase summary:")
    rows = []
    for trace in kept:
        summary = summarize_trace(trace)
        rows.append([
            summary["client_id"],
            f"{summary['pieces']}/{summary['num_pieces']}",
            summary["dominant_phase"],
            round(summary["bootstrap_time"], 1),
            round(summary["efficient_time"], 1),
            round(summary["last_time"], 1),
        ])
    print(format_table(
        ["client", "pieces", "label", "bootstrap", "efficient", "last"],
        rows,
    ))


if __name__ == "__main__":
    main()
