#!/usr/bin/env python
"""Design-space exploration: which protocol parameters actually matter.

Three analyses the library adds on top of the paper's figures:

1. **Sensitivity ranking** — sweep each model parameter around a
   baseline and rank them by the elasticity of the expected download
   time, in both a healthy (large neighbor set) and a starved (small
   neighbor set) regime — the regime flips which knobs matter.
2. **Stability phase boundary** — the minimal piece count B that keeps
   the high-skew swarm stable, per arrival rate: the paper's "B and the
   arrival rate decide stability" as a measurable curve.
3. **Multiclass efficiency** — the heterogeneous-peer generalisation of
   the Section-5 occupancy chain: per-class efficiency when slow and
   fast peers share one connection market.

Run:  python examples/design_space.py
"""

from repro.analysis.reporting import format_table
from repro.analysis.sensitivity import sensitivity_analysis
from repro.core.parameters import ModelParameters
from repro.efficiency.multiclass import PeerClass, multiclass_balance
from repro.stability.critical import phase_boundary


def sensitivity_section() -> None:
    print("1. Parameter sensitivity (elasticity of expected download time)")
    print("-" * 66)
    regimes = {
        "healthy (s = 30)": ModelParameters(
            num_pieces=60, max_conns=4, ns_size=30, alpha=0.1, gamma=0.1
        ),
        "starved (s = 4)": ModelParameters(
            num_pieces=60, max_conns=4, ns_size=4, alpha=0.05, gamma=0.05
        ),
    }
    for label, baseline in regimes.items():
        report = sensitivity_analysis(baseline, runs=24, seed=5)
        top = report.ranked()[:4]
        print(f"\n{label}: top levers")
        print(format_table(
            ["parameter", "elasticity", "T(low)", "T(high)"],
            [[p.parameter, round(p.elasticity, 2), round(p.low_time, 1),
              round(p.high_time, 1)] for p in top],
        ))


def boundary_section() -> None:
    print("\n2. Stability phase boundary (critical B per arrival rate)")
    print("-" * 66)
    boundary = phase_boundary(
        [4.0, 10.0, 18.0], initial_leechers=120, max_time=60.0, seed=1
    )
    print(boundary.format())


def multiclass_section() -> None:
    print("\n3. Multiclass efficiency (slow and fast peers share the market)")
    print("-" * 66)
    result = multiclass_balance([
        PeerClass(0.5, 0.55, 4, "slow uploaders"),
        PeerClass(0.5, 0.90, 4, "fast uploaders"),
    ])
    print(format_table(
        ["class", "share", "p_r", "eta"],
        [
            [c.label, c.fraction, c.p_reenc, round(eta, 3)]
            for c, eta in zip(result.classes, result.etas)
        ] + [["aggregate", 1.0, "-", round(result.aggregate_eta, 3)]],
    ))
    print(
        "\nThe per-class split mirrors the simulator's heterogeneous-\n"
        "bandwidth runs (slow uploaders download ~2x slower under strict\n"
        "tit-for-tat) - see benchmarks/bench_extension_heterogeneous.py."
    )


if __name__ == "__main__":
    sensitivity_section()
    boundary_section()
    multiclass_section()
