#!/usr/bin/env python
"""The last-piece problem and the peer-set shaking mitigation (Sec. 7.1).

Demonstrates, on a deliberately starved swarm (small neighbor sets, no
neighbor-set refills), that:

1. the time-to-download (TTD) of the final blocks ramps up sharply —
   the last download phase of the paper's model;
2. "shaking" the peer set at 90% completion (drop every neighbor, fetch
   a fresh random set from the tracker) flattens that ramp.

Run:  python examples/last_piece_problem.py
"""

from repro.analysis.reporting import format_table
from repro.experiments.fig3d import mean_ttd_by_ordinal, run_fig3d
from repro.sim.config import SimConfig


def main() -> None:
    print("Last-piece problem: TTD of the final 10 blocks of a 120-piece file")
    print("(small neighbor sets, strict tit-for-tat, no NS refills)\n")

    result = run_fig3d(
        num_pieces=120,
        window=10,
        initial_leechers=50,
        max_time=500.0,
        seed=0,
    )
    print(result.format())

    normal_tail = result.ttd["normal"][-3:].mean()
    shake_tail = result.ttd["shake"][-3:].mean()
    print(f"\nmean TTD over the last 3 blocks: "
          f"normal = {normal_tail:.2f} rounds, shake = {shake_tail:.2f} rounds "
          f"({normal_tail / shake_tail:.2f}x faster with shaking)")

    # Sensitivity: earlier shaking thresholds.
    print("\nShake-threshold sensitivity (mean TTD of the last 3 blocks):")
    rows = []
    for threshold in (0.8, 0.9, 0.95):
        config = SimConfig(
            num_pieces=120, max_conns=4, ns_size=8,
            arrival_process="poisson", arrival_rate=1.0,
            initial_leechers=50, initial_distribution="uniform",
            initial_fill=0.5, num_seeds=1, seed_upload_slots=2,
            optimistic_unchoke_prob=0.5, optimistic_targets="empty",
            piece_selection="rarest", announce_interval=1000.0,
            shake_threshold=threshold, max_time=500.0, seed=1,
        )
        _ordinals, ttd, completed, _events = mean_ttd_by_ordinal(config, window=10)
        rows.append([threshold, float(ttd[-3:].mean()), completed])
    print(format_table(["threshold", "tail TTD", "completed"], rows))


if __name__ == "__main__":
    main()
