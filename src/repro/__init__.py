"""repro — reproduction of the ICDCS 2007 multiphased BitTorrent model.

This package reproduces *"A Multiphased Approach for Modeling and Analysis
of the BitTorrent Protocol"* (Rai, Sivasubramanian, Bhulai, Garbacki,
van Steen; ICDCS 2007) as a production-quality Python library.

The package is organised around the paper's artifacts:

``repro.core``
    The three-dimensional Markov chain ``(n, b, i)`` that models the
    evolution of a single peer's download (Section 3 of the paper),
    together with the trading-power function ``p(b+n)`` (Eq. 1), the
    transition kernels ``f``, ``g``, ``h`` (Eqs. 2-3), phase
    classification, and timeline / hitting-time estimators.

``repro.efficiency``
    The connection-occupancy Markov chain of Section 5: balance
    equations (Eqs. 4-6), the efficiency metric
    ``eta = (1/k) * sum(i * x_i)``, and a birth-death cross-check.

``repro.stability``
    The entropy metric ``E = min(d)/max(d)`` of Section 6, drift
    analysis, and runnable stability experiments.

``repro.sim``
    A discrete-event BitTorrent swarm simulator equivalent to the C++
    simulator of Section 4.1 (Poisson arrivals, strict tit-for-tat,
    neighbor sets, rarest-first piece selection, choking, seeds, and the
    peer-set "shaking" mitigation of Section 7.1).

``repro.traces``
    Trace schema, collection, and synthetic generation standing in for
    the instrumented-BitTornado real-world traces of Section 4.2.

``repro.baselines``
    The coupon-replication system and the Qiu-Srikant fluid model that
    the paper positions itself against.

``repro.experiments``
    One runner per figure panel of the paper's evaluation.  Runners
    self-register via ``@register_experiment`` and return structured
    results implementing the ``ExperimentResult`` protocol —
    ``format()`` for printable rows, ``to_dict()`` for a JSON view, and
    a ``timing`` telemetry record.

``repro.runtime``
    The parallel experiment runtime: ``ExperimentExecutor`` fans
    replications and sweep points over a process pool (bit-identical to
    a serial run for any worker count, via splittable per-task seeds),
    a shared ``KernelCache`` memoizes transition kernels and stationary
    efficiency solutions, and ``Telemetry`` carries wall-time, event,
    and cache-hit counters.  See ``docs/RUNTIME.md``.

``repro.api``
    The unified query layer: canonical cache-keyed
    :class:`~repro.api.ModelParams`, the :class:`~repro.api.Quantity` /
    :class:`~repro.core.methods.Method` vocabularies, and one
    :func:`~repro.api.solve` front door over every exact and
    Monte-Carlo engine.  See ``docs/MODEL.md``.

``repro.service``
    Model-as-a-service: the ``repro-bt serve`` asyncio JSON/HTTP server
    with request coalescing over the shared solver cache.  See
    ``docs/SERVICE.md``.

The one-call entry points are :func:`run_experiment` and
:func:`repro.api.solve`::

    import repro
    result = repro.run_experiment("F1a", quick=True, workers=4)
    print(result.format())

    from repro import ModelParams, solve
    params = ModelParams(num_pieces=200, max_conns=7, ns_size=50)
    print(solve(params, "download_time").payload.mean)
"""

from repro._version import __version__
from repro.api import ModelParams, Quantity, Query, SolveResult, solve
from repro.core.chain import DownloadChain, State
from repro.core.methods import Method
from repro.core.parameters import ModelParameters, alpha_from_swarm
from repro.core.phases import Phase, classify_state, phase_durations
from repro.core.piece_distribution import PieceCountDistribution
from repro.core.trading_power import exchange_probability
from repro.efficiency.efficiency import efficiency_curve, efficiency_eta
from repro.sim.config import SimConfig
from repro.sim.swarm import Swarm, run_swarm
from repro.stability.entropy import entropy, replication_degrees


def run_experiment(exp_id, *, quick=False, workers=1, seed=None, **overrides):
    """Run a registered experiment by id and return its result.

    The library-level twin of ``repro-bt run``: looks up ``exp_id`` in
    the experiment registry (case-insensitive), applies the spec's
    reduced-scale ``quick_kwargs`` when ``quick`` is set, and fans the
    runner's replications over ``workers`` processes.  Any extra
    keyword argument is passed through to the runner and wins over the
    quick presets.

    Args:
        exp_id: registry id, e.g. ``"F1a"`` (see
            :func:`repro.experiments.list_experiments`).
        quick: use the experiment's reduced-scale smoke parameters.
        workers: worker processes for the fan-out; results are
            bit-identical for any value (1 runs in-process).
        seed: optional root-seed override.
        **overrides: forwarded to the runner verbatim.

    Returns:
        The runner's result object (satisfies
        :class:`repro.experiments.ExperimentResult`): ``format()``,
        ``to_dict()``, and a ``timing`` telemetry record.
    """
    from repro.experiments.registry import get_experiment

    spec = get_experiment(exp_id)
    kwargs = dict(spec.quick_kwargs) if quick else {}
    if seed is not None:
        kwargs["seed"] = seed
    kwargs.update(overrides)
    kwargs["workers"] = workers
    return spec.runner(**kwargs)


__all__ = [
    "__version__",
    "DownloadChain",
    "State",
    "ModelParams",
    "Method",
    "Quantity",
    "Query",
    "SolveResult",
    "solve",
    "ModelParameters",
    "alpha_from_swarm",
    "Phase",
    "classify_state",
    "phase_durations",
    "PieceCountDistribution",
    "exchange_probability",
    "efficiency_curve",
    "efficiency_eta",
    "SimConfig",
    "Swarm",
    "run_swarm",
    "entropy",
    "replication_degrees",
    "run_experiment",
]
