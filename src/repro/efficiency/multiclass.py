"""Multiclass connection-occupancy model (heterogeneous peers).

The paper assumes homogeneous bandwidth and cites Venot-Perronnin,
Nain & Ross [11] for the multiclass generalisation.  This module
extends the Section-5 balance flows to peer classes that differ in
their connection-survival probability ``p_r`` (slow uploaders get
choked sooner) and/or their slot count ``k``:

* each class ``c`` has its own occupancy vector ``x^c_0..x^c_{k_c}``;
* failure flows act within a class, per connection, at rate
  ``1 - p_r_c``;
* formation couples the classes through a shared market: an attempt by
  any open peer succeeds iff the partner — drawn across classes with
  probability ``fraction_c * x^c_l`` — has an open slot, so the global
  busy mass ``sum_c fraction_c * x^c_{k_c}`` throttles everyone
  equally.

The per-class efficiency ``eta_c`` and the population-weighted
aggregate come out of the coupled fixed point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.efficiency.balance import efficiency_from_occupancy
from repro.errors import ConvergenceError, ParameterError

__all__ = ["PeerClass", "MulticlassResult", "multiclass_balance"]


@dataclass(frozen=True)
class PeerClass:
    """One peer class of the multiclass occupancy model.

    Attributes:
        fraction: population share (> 0; shares must sum to 1).
        p_reenc: per-round connection-survival probability.
        max_conns: the class's slot count ``k``.
        label: display name.
    """

    fraction: float
    p_reenc: float
    max_conns: int
    label: str = ""

    def __post_init__(self) -> None:
        if self.fraction <= 0:
            raise ParameterError(f"fraction must be > 0, got {self.fraction}")
        if not 0.0 <= self.p_reenc <= 1.0:
            raise ParameterError(f"p_reenc must be in [0, 1], got {self.p_reenc}")
        if self.max_conns < 1:
            raise ParameterError(f"max_conns must be >= 1, got {self.max_conns}")


@dataclass
class MulticlassResult:
    """Coupled fixed point of the multiclass balance flows.

    Attributes:
        classes: the input classes.
        occupancies: per class, the equilibrium ``x^c``.
        etas: per class, ``eta_c``.
        aggregate_eta: population-weighted efficiency.
        iterations: Euler iterations to convergence.
    """

    classes: List[PeerClass]
    occupancies: List[np.ndarray]
    etas: List[float]
    aggregate_eta: float
    iterations: int


def _busy_mass(classes: Sequence[PeerClass], xs: List[np.ndarray]) -> float:
    return float(sum(c.fraction * x[-1] for c, x in zip(classes, xs)))


def multiclass_balance(
    classes: Sequence[PeerClass],
    *,
    tol: float = 1e-9,
    max_iterations: int = 300_000,
    step: float = 0.1,
) -> MulticlassResult:
    """Integrate the coupled per-class balance flows to their fixed point.

    Raises:
        ParameterError: for empty classes or fractions not summing to 1.
        ConvergenceError: if the iteration budget is exhausted.
    """
    classes = list(classes)
    if not classes:
        raise ParameterError("need at least one peer class")
    total = sum(c.fraction for c in classes)
    if abs(total - 1.0) > 1e-6:
        raise ParameterError(f"class fractions must sum to 1, got {total}")
    if not 0.0 < step <= 0.5:
        raise ParameterError(f"step must be in (0, 0.5], got {step}")

    xs: List[np.ndarray] = []
    for peer_class in classes:
        x = np.zeros(peer_class.max_conns + 1)
        x[0] = 1.0
        xs.append(x)

    for iteration in range(1, max_iterations + 1):
        busy = _busy_mass(classes, xs)
        open_mass = 1.0 - busy
        residual = 0.0
        new_xs: List[np.ndarray] = []
        for peer_class, x in zip(classes, xs):
            k = peer_class.max_conns
            fail = 1.0 - peer_class.p_reenc
            flow = np.zeros_like(x)
            for l in range(k + 1):
                if l < k:
                    # Initiator flow: the class's open peers attempt; the
                    # market-wide open mass gates success.  Partner flow:
                    # this class is chosen as partner in proportion to its
                    # share of the open population; the total attempting
                    # mass across classes is open_mass, so the per-class
                    # partner in-flow is open_mass * fraction-weighted —
                    # expressed per *class-internal* fraction by dividing
                    # the class's own share out again:
                    up = x[l] * open_mass          # as initiator
                    up += open_mass * x[l]         # as chosen partner
                    flow[l] -= up
                    flow[l + 1] += up
                down = l * fail * x[l]
                if down > 0.0:
                    flow[l] -= down
                    flow[l - 1] += down
            delta = step * flow
            x_new = x + delta
            np.clip(x_new, 0.0, None, out=x_new)
            mass = x_new.sum()
            if mass > 0:
                x_new /= mass
            residual += float(np.abs(delta).sum())
            new_xs.append(x_new)
        xs = new_xs
        if residual < tol:
            etas = [efficiency_from_occupancy(x) for x in xs]
            aggregate = float(
                sum(c.fraction * eta for c, eta in zip(classes, etas))
            )
            return MulticlassResult(
                classes=classes,
                occupancies=xs,
                etas=etas,
                aggregate_eta=aggregate,
                iterations=iteration,
            )
    raise ConvergenceError(
        f"multiclass balance did not converge in {max_iterations} iterations"
    )
