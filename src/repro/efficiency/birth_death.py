"""Birth-death cross-check for the connection-occupancy equilibrium.

The paper observes that "the number of active connections at a peer
evolves as a general birth/death process" (Section 5).  This module
solves that formulation directly as an independent sanity check on the
balance-equation iteration of :mod:`repro.efficiency.balance`:

* death rate from class ``i``: each of the ``i`` connections fails
  independently with probability ``1 - p_r`` per round, so the expected
  downward flow is ``i * (1 - p_r)`` (we use the standard birth-death
  single-step approximation);
* birth rate from class ``i < k``: an attempt succeeds iff the partner
  has an open slot, i.e. with probability ``1 - x_k`` — which depends on
  the equilibrium itself, so the chain is solved self-consistently by a
  fixed-point loop on the success probability.

The two formulations agree on the qualitative Figure 3/4(a) result: a
large efficiency gain from ``k = 1`` to ``k = 2`` and diminishing
returns beyond.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.efficiency.balance import efficiency_from_occupancy
from repro.errors import ConvergenceError, ParameterError

__all__ = ["BirthDeathResult", "birth_death_equilibrium"]


@dataclass(frozen=True)
class BirthDeathResult:
    """Self-consistent birth-death equilibrium.

    Attributes:
        x: equilibrium occupancy ``x_0..x_k``.
        eta: efficiency ``(1/k) * sum(i * x_i)``.
        success_probability: converged connection-formation success
            probability ``1 - x_k``.
        iterations: fixed-point iterations used.
    """

    x: np.ndarray
    eta: float
    success_probability: float
    iterations: int


def _stationary_for_success(k: int, p_reenc: float, success: float) -> np.ndarray:
    """Stationary vector of the birth-death chain for a fixed success prob.

    Detailed balance: ``x_{i+1} / x_i = birth_i / death_{i+1}``
    with ``birth_i = success`` and ``death_{i+1} = (i + 1) * (1 - p_r)``.
    """
    fail = 1.0 - p_reenc
    x = np.zeros(k + 1)
    x[0] = 1.0
    for i in range(k):
        death = (i + 1) * fail
        if death == 0.0:
            # p_r == 1: connections never fail; all mass drifts to k.
            x[: i + 1] = 0.0
            x[i + 1] = 1.0
            continue
        x[i + 1] = x[i] * success / death
    total = x.sum()
    return x / total


def birth_death_equilibrium(
    max_conns: int,
    p_reenc: float,
    *,
    tol: float = 1e-12,
    max_iterations: int = 10_000,
    damping: float = 0.5,
) -> BirthDeathResult:
    """Solve the self-consistent birth-death occupancy equilibrium.

    Iterates ``success = 1 - x_k`` against the stationary distribution it
    induces, with damping for robustness near ``p_r = 1``.

    Raises:
        ConvergenceError: if the fixed point is not reached in budget.
    """
    if max_conns < 1:
        raise ParameterError(f"max_conns must be >= 1, got {max_conns}")
    if not 0.0 <= p_reenc <= 1.0:
        raise ParameterError(f"p_reenc must be in [0, 1], got {p_reenc}")
    if not 0.0 < damping <= 1.0:
        raise ParameterError(f"damping must be in (0, 1], got {damping}")

    success = 0.5
    x = _stationary_for_success(max_conns, p_reenc, success)
    for iteration in range(1, max_iterations + 1):
        new_success = 1.0 - float(x[max_conns])
        success = (1.0 - damping) * success + damping * new_success
        new_x = _stationary_for_success(max_conns, p_reenc, success)
        if np.abs(new_x - x).sum() < tol:
            x = new_x
            return BirthDeathResult(
                x=x,
                eta=efficiency_from_occupancy(x),
                success_probability=success,
                iterations=iteration,
            )
        x = new_x
    raise ConvergenceError(
        f"birth-death fixed point did not converge in {max_iterations} iterations"
    )
