"""Connection-efficiency model (Section 5 of the paper).

Models the swarm-wide distribution ``x_0 .. x_k`` of peers over their
number of active connections as a migration-process Markov chain:

* downward transitions (connection failures) with binomial weights
  ``w^i_l = C(i, l) (1 - p_r)^l p_r^(i - l)`` — paper Eq. (4);
* upward transitions (connection formation between peers with open
  slots) — paper Eqs. (5)-(6);

and reports the efficiency ``eta = (1/k) * sum(i * x_i)``.
"""

from repro.efficiency.balance import (
    BalanceResult,
    failure_weights,
    iterate_balance,
    downward_sweep,
    upward_sweep,
)
from repro.efficiency.balance import balance_flow
from repro.efficiency.birth_death import birth_death_equilibrium
from repro.efficiency.efficiency import efficiency_curve, efficiency_eta
from repro.efficiency.lifetime import ConnectionLifetimeModel
from repro.efficiency.multiclass import (
    MulticlassResult,
    PeerClass,
    multiclass_balance,
)

__all__ = [
    "BalanceResult",
    "failure_weights",
    "iterate_balance",
    "downward_sweep",
    "upward_sweep",
    "balance_flow",
    "birth_death_equilibrium",
    "efficiency_curve",
    "efficiency_eta",
    "ConnectionLifetimeModel",
    "MulticlassResult",
    "PeerClass",
    "multiclass_balance",
    "MeasuredPoint",
    "measure_connection_rates",
    "calibrated_efficiency_curve",
]

_LAZY = {"MeasuredPoint", "measure_connection_rates", "calibrated_efficiency_curve"}


def __getattr__(name: str):
    # The measurement loop depends on the simulator, which depends on
    # this package's balance metrics — resolved lazily to avoid the
    # import cycle.
    if name in _LAZY:
        from repro.efficiency import measurement

        return getattr(measurement, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
