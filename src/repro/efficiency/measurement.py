"""Measured connection parameters and the calibrated model loop.

The paper defines ``p_r`` as "the probability (averaged over all peers
in the system) that an established encounter does not fail" and ``p_n``
as the probability a new connection is established — i.e. both are
*measured system averages*, not free constants.  This module closes
that loop:

1. run the discrete-event swarm for a given ``k`` and read the measured
   ``p_r(k)`` / ``p_n(k)`` off the accumulated connection statistics;
2. feed the measured ``p_r(k)`` into the Section-5 balance equations to
   obtain a *calibrated* model efficiency.

The calibrated curve is the apples-to-apples companion of the
lifetime-model curve in :mod:`repro.efficiency.efficiency`: the latter
predicts ``p_r(k)`` from first principles, the former measures it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.efficiency.balance import iterate_balance
from repro.errors import ParameterError
from repro.sim.config import SimConfig
from repro.sim.metrics import MetricsCollector
from repro.sim.swarm import Swarm

__all__ = ["MeasuredPoint", "measure_connection_rates", "calibrated_efficiency_curve"]


@dataclass(frozen=True)
class MeasuredPoint:
    """One ``k`` of the calibrated sweep.

    Attributes:
        max_conns: ``k``.
        p_reenc / p_new: measured system-average survival and formation
            probabilities.
        sim_eta: efficiency measured directly from occupancy.
        model_eta: balance-equation efficiency at the *measured*
            ``p_r`` — the calibrated model line.
    """

    max_conns: int
    p_reenc: float
    p_new: float
    sim_eta: float
    model_eta: float


def _default_config(max_conns: int, seed: int) -> SimConfig:
    return SimConfig(
        num_pieces=60,
        max_conns=max_conns,
        ns_size=30,
        arrival_process="poisson",
        arrival_rate=4.0,
        initial_leechers=80,
        initial_distribution="uniform",
        initial_fill=0.5,
        num_seeds=1,
        seed_upload_slots=2,
        optimistic_unchoke_prob=0.5,
        connection_setup_prob=0.8,
        connection_failure_prob=0.1,
        matching="blind",
        piece_selection="rarest",
        max_time=120.0,
        seed=seed,
    )


def measure_connection_rates(
    config: SimConfig,
) -> tuple:
    """Run one swarm and return ``(p_r, p_n, sim_eta)`` system averages."""
    metrics = MetricsCollector(config.max_conns, entropy_every=1_000_000)
    swarm = Swarm(config, metrics=metrics)
    result = swarm.run()
    stats = result.connection_stats
    return stats.p_reenc(), stats.p_new(), metrics.efficiency()


def calibrated_efficiency_curve(
    k_values: Sequence[int],
    *,
    config_factory=None,
    seed: int = 0,
) -> list:
    """Measured-``p_r`` model line next to the simulated efficiency.

    Args:
        k_values: the ``k`` sweep.
        config_factory: optional ``f(k, seed) -> SimConfig`` override of
            the default dense-swarm configuration.
        seed: base RNG seed (incremented per ``k``).

    Returns:
        A list of :class:`MeasuredPoint`, one per ``k``.
    """
    if not k_values:
        raise ParameterError("k_values must be non-empty")
    factory = config_factory or _default_config
    points = []
    for offset, k in enumerate(k_values):
        config = factory(k, seed + offset)
        p_reenc, p_new, sim_eta = measure_connection_rates(config)
        if not 0.0 <= p_reenc <= 1.0:
            raise ParameterError(
                f"no connection events observed at k={k}; run too short?"
            )
        model_eta = iterate_balance(k, p_reenc).eta
        points.append(
            MeasuredPoint(
                max_conns=k,
                p_reenc=p_reenc,
                p_new=p_new,
                sim_eta=sim_eta,
                model_eta=model_eta,
            )
        )
    return points
