"""Efficiency metric and k-sweeps (paper Section 5, Figure 3/4(a)).

The efficiency of the download process is the average utilisation of
the ``k`` connection slots::

    eta = (1/k) * sum_{i=1..k} i * x_i

where ``x_i`` is the fraction of peers with ``i`` active connections.
This module evaluates ``eta`` from the balance-equation fixed point for
a sweep of ``k`` values — the model line of Figure 3/4(a); the matching
simulation line comes from the occupancy observer in
:mod:`repro.sim.metrics`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.efficiency.balance import efficiency_from_occupancy
from repro.efficiency.lifetime import ConnectionLifetimeModel
from repro.errors import ParameterError

__all__ = ["EfficiencyPoint", "efficiency_eta", "efficiency_curve"]


@dataclass(frozen=True)
class EfficiencyPoint:
    """Model efficiency at one ``k``.

    Attributes:
        max_conns: ``k``.
        eta: balance-equation efficiency (the paper's model line; an
            upper bound on the simulated efficiency).
        eta_birth_death: independent birth-death cross-check.
        p_reenc: the per-round connection-survival probability used at
            this ``k`` (constant, or from the lifetime model).
        occupancy: equilibrium ``x_0..x_k`` from the balance equations.
    """

    max_conns: int
    eta: float
    eta_birth_death: float
    p_reenc: float
    occupancy: np.ndarray


def efficiency_eta(occupancy: Sequence[float]) -> float:
    """``eta`` for an occupancy vector ``x_0..x_k`` (see module docstring)."""
    return efficiency_from_occupancy(np.asarray(occupancy, dtype=float))


def efficiency_curve(
    k_values: Sequence[int],
    p_reenc: Optional[float] = None,
    *,
    lifetime: Optional[ConnectionLifetimeModel] = None,
    tol: float = 1e-10,
) -> list[EfficiencyPoint]:
    """Evaluate the model efficiency for each ``k`` in ``k_values``.

    This is the model series of Figure 3/4(a): a pronounced efficiency
    gain from ``k = 1`` to ``k = 2``, diminishing returns beyond.

    Each ``(k, p_r)`` stationary solution is resolved through the
    process-wide :class:`~repro.runtime.cache.KernelCache`, so repeated
    sweeps (replications, benches) solve the fixed point once.

    Args:
        k_values: the ``k`` sweep (the paper uses 1..8).
        p_reenc: fixed ``p_r``; mutually exclusive with ``lifetime``.
        lifetime: a :class:`ConnectionLifetimeModel` deriving ``p_r(k)``
            from connection durations — the paper's own account of why
            ``p_r`` differs across ``k``.  Used (with defaults) when
            neither argument is given.
    """
    from repro.runtime.cache import shared_cache

    if not k_values:
        raise ParameterError("k_values must be non-empty")
    if p_reenc is not None and lifetime is not None:
        raise ParameterError("pass either p_reenc or lifetime, not both")
    if p_reenc is None and lifetime is None:
        lifetime = ConnectionLifetimeModel()

    cache = shared_cache()
    points = []
    for k in k_values:
        pr = p_reenc if p_reenc is not None else lifetime.survival_probability(k)
        points.append(cache.efficiency_point(k, pr, tol=tol))
    return points
