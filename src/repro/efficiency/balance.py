"""Balance-equation iteration for the connection-occupancy chain (Sec. 5).

State: the vector ``x = (x_0, ..., x_k)`` of fractions of peers having
``i`` active connections.  One iteration round applies

1. the **downward sweep** — connection failures.  A peer with ``l``
   active connections keeps each independently with probability ``p_r``,
   so class ``l`` mass is redistributed binomially over classes
   ``0..l``.  This is paper Eq. (4): the loss term
   ``x_i * sum_{l=1..i} w^i_l`` and gain term
   ``sum_{l>i} w^l_{l-i} x_l`` are exactly binomial thinning.
2. the **upward sweep** — connection formation.  Classes are processed
   in increasing order (paper: "we update x0 first, followed by x1,
   ..."), and for each initiating class ``i < k``: every class-``i``
   peer attempts one connection; it succeeds iff the chosen partner has
   an open slot (class ``l < k``, probability ``1 - x_k``).  A success
   moves the initiator ``i -> i+1`` and the partner ``l -> l+1``; the
   paper's special cases ``l = i-1`` (no net change in ``x_i``) and
   ``l = i`` (two peers leave class ``i``) fall out of this bookkeeping,
   matching the net rate ``(1 - x_{i-1} + x_i - x_k) x_i`` quoted before
   Eq. (5).  Eqs. (5)-(6) express the same flows per single peer
   (``1/N`` granularity); aggregating over the ``x_i * N`` attempting
   peers cancels the ``1/N`` and yields the sweep implemented here.

As the paper notes, the sequential increasing-``i`` order lets peers
that just migrated upward connect again within the same round, so the
fixed point **upper-bounds** the true efficiency; the discrepancy
against the discrete-event simulator is largest at ``k = 1`` and
shrinks below a few percent for ``k >= 2`` (Figure 3/4(a)).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.binomial import binomial_pmf
from repro.errors import ConvergenceError, ParameterError

__all__ = [
    "BalanceResult",
    "failure_weights",
    "downward_sweep",
    "upward_sweep",
    "balance_flow",
    "iterate_balance",
]


@dataclass(frozen=True)
class BalanceResult:
    """Fixed point of the balance equations.

    Attributes:
        x: equilibrium occupancy vector ``x_0..x_k`` (sums to 1).
        eta: efficiency ``(1/k) * sum(i * x_i)``.
        iterations: rounds used to converge.
        residual: final L1 change between successive rounds.
    """

    x: np.ndarray
    eta: float
    iterations: int
    residual: float


def failure_weights(connections: int, p_reenc: float) -> np.ndarray:
    """``w^i_l`` of Eq. (4): probability that ``l`` of ``i`` connections fail.

    Returned as an array over ``l = 0..connections``; this is the pmf of
    ``Bin(i, 1 - p_r)``.
    """
    return binomial_pmf(connections, 1.0 - p_reenc)


def downward_sweep(x: np.ndarray, p_reenc: float) -> np.ndarray:
    """Apply one round of connection failures (Eq. 4).

    Mass-conserving binomial thinning: class ``l`` sends
    ``C(l, l-i) (1-p_r)^{l-i} p_r^i`` of its mass to each class
    ``i <= l``.
    """
    x = np.asarray(x, dtype=float)
    k = x.size - 1
    out = np.zeros_like(x)
    for l in range(k + 1):
        if x[l] == 0.0:
            continue
        # survivors ~ Bin(l, p_r): out[i] gains x[l] * Pr(survivors = i)
        survive = binomial_pmf(l, p_reenc)
        out[: l + 1] += x[l] * survive
    return out


def upward_sweep(x: np.ndarray) -> np.ndarray:
    """Apply one round of connection formation (Eqs. 5-6).

    Classes initiate in increasing order.  For initiating class ``i``,
    with the *current* (partially updated) vector ``x``:

    * initiators that find an open partner (``prob 1 - x_k``) move to
      ``i + 1``;
    * partners are drawn proportionally to their fraction among open
      classes and each moves up one class.

    The sweep conserves total mass exactly.  Two physical constraints
    bound the per-round formation volume:

    * **one initiation per peer per round** — mass that already moved up
      during this sweep (as initiator or partner) is tracked in a
      ``moved`` vector and does not initiate again from its new class;
    * a **congestion cap** scales flows down whenever a class would be
      drained below zero (more connections cannot form than there are
      open peers to form them).

    Without the first constraint, low survival probabilities would
    paradoxically *raise* the fixed-point efficiency: the large idle
    mass would chain up through every class within a single sweep.
    """
    x = np.asarray(x, dtype=float).copy()
    k = x.size - 1
    if k == 0:
        raise ParameterError("upward_sweep needs k >= 1 (x of length >= 2)")
    moved = np.zeros_like(x)
    for i in range(k):
        eligible = min(max(x[i] - moved[i], 0.0), x[i])
        if eligible <= 0.0:
            continue
        open_mass = 1.0 - x[k]
        if open_mass <= 0.0:
            break  # nobody left to connect to
        # Initiators move up on success (partner found among open classes).
        initiator_flow = eligible * open_mass
        # Partners: one per successful attempt, drawn from open classes
        # with probability x_l (paper: "occurs with probability x_l");
        # sum(partner_flow) == initiator_flow by construction.
        partner_flow = eligible * x[:k]
        outflow = partner_flow.copy()
        outflow[i] += initiator_flow
        # Congestion cap: no class may lose more mass than it holds.
        scale = 1.0
        for l in range(k):
            if outflow[l] > x[l] > 0.0:
                scale = min(scale, x[l] / outflow[l])
            elif outflow[l] > 0.0 and x[l] == 0.0:
                scale = 0.0
        if scale < 1.0:
            initiator_flow *= scale
            partner_flow = partner_flow * scale
        x[i] -= initiator_flow
        x[i + 1] += initiator_flow
        moved[i + 1] += initiator_flow
        x[:k] -= partner_flow
        x[1 : k + 1] += partner_flow
        moved[1 : k + 1] += partner_flow
    return x


def balance_flow(x: np.ndarray, p_reenc: float) -> np.ndarray:
    """Net probability flow ``dx/dt`` of the balance equations.

    Failure (downward) flow, per Eq. (4)'s per-connection failure
    probability: each of a class-``l`` peer's ``l`` connections fails at
    rate ``1 - p_r``, moving the peer down one class —
    ``l * (1 - p_r) * x_l`` from ``l`` to ``l - 1``.

    Formation (upward) flow, per Eqs. (5)-(6): every open peer (class
    ``l < k``) attempts one connection per round; the partner is drawn
    with probability ``x_j`` and the attempt fails iff the partner has
    no open slot (class ``k``).  A success moves *two* peers up — the
    initiator and the partner — so class ``l < k`` loses
    ``x_l * (1 - x_k)`` as initiator and ``(1 - x_k) * x_l`` as chosen
    partner: ``2 * x_l * (1 - x_k)`` up-flow in total.

    The flow vector sums to zero (mass conservation).
    """
    x = np.asarray(x, dtype=float)
    k = x.size - 1
    if k < 1:
        raise ParameterError("balance_flow needs k >= 1 (x of length >= 2)")
    if not 0.0 <= p_reenc <= 1.0:
        raise ParameterError(f"p_reenc must be in [0, 1], got {p_reenc}")
    fail = 1.0 - p_reenc
    flow = np.zeros_like(x)
    open_mass = 1.0 - x[k]
    for l in range(k + 1):
        if l < k:
            up = 2.0 * x[l] * open_mass
            flow[l] -= up
            flow[l + 1] += up
        down = l * fail * x[l]
        if down > 0.0:
            flow[l] -= down
            flow[l - 1] += down
    return flow


def iterate_balance(
    max_conns: int,
    p_reenc: float,
    *,
    x0: np.ndarray | None = None,
    tol: float = 1e-9,
    max_iterations: int = 200_000,
    step: float = 0.1,
) -> BalanceResult:
    """Integrate the balance equations to their steady state.

    Per the paper (citing Chung): the chain is unichain and aperiodic, so
    "by iterating this set of equations, the state of the system
    converges to the steady-state distribution".  The iteration is an
    explicit Euler integration of :func:`balance_flow`; the step is
    small enough that classes never go negative for probabilities in
    range.

    Args:
        max_conns: ``k``, the maximum simultaneous connections.
        p_reenc: ``p_r``, probability an established connection survives
            a round.
        x0: optional starting occupancy (defaults to everyone at 0
            connections, the state of a freshly bootstrapped swarm).
        tol: L1 convergence threshold between successive iterations.
        max_iterations: iteration budget.
        step: Euler step size.

    Raises:
        ConvergenceError: if the budget is exhausted first.
    """
    if max_conns < 1:
        raise ParameterError(f"max_conns must be >= 1, got {max_conns}")
    if not 0.0 <= p_reenc <= 1.0:
        raise ParameterError(f"p_reenc must be in [0, 1], got {p_reenc}")
    if not 0.0 < step <= 0.5:
        raise ParameterError(f"step must be in (0, 0.5], got {step}")
    if x0 is None:
        x = np.zeros(max_conns + 1)
        x[0] = 1.0
    else:
        x = np.asarray(x0, dtype=float).copy()
        if x.shape != (max_conns + 1,):
            raise ParameterError(
                f"x0 must have shape ({max_conns + 1},), got {x.shape}"
            )
        if (x < 0).any() or abs(x.sum() - 1.0) > 1e-6:
            raise ParameterError("x0 must be a probability vector")

    residual = np.inf
    for iteration in range(1, max_iterations + 1):
        flow = balance_flow(x, p_reenc)
        delta = step * flow
        x = x + delta
        # Clamp floating noise at the simplex boundary.
        np.clip(x, 0.0, None, out=x)
        total = x.sum()
        if total > 0:
            x /= total
        residual = float(np.abs(delta).sum())
        if residual < tol:
            eta = efficiency_from_occupancy(x)
            return BalanceResult(x=x, eta=eta, iterations=iteration, residual=residual)
    raise ConvergenceError(
        f"balance equations did not converge within {max_iterations} iterations "
        f"(last residual {residual:.3e})"
    )


def efficiency_from_occupancy(x: np.ndarray) -> float:
    """``eta = (1/k) * sum_i i * x_i`` — average utilisation of the k slots."""
    x = np.asarray(x, dtype=float)
    k = x.size - 1
    if k < 1:
        raise ParameterError("occupancy vector must cover classes 0..k with k >= 1")
    return float(np.arange(k + 1) @ x / k)
