"""Connection-lifetime model: the paper's explanation of the k=1->2 jump.

Section 5 of the paper attributes the efficiency gain from ``k = 1`` to
``k = 2`` to connection *durations*:

    "For k = 1, the duration of a connection is determined by the
    number of exchangeable pieces at the start of the connection.
    However, for k > 2, peers maintain multiple simultaneous
    connections.  Therefore, new pieces are simultaneously arriving at
    the peers, which can also be exchanged.  Thus, the expected duration
    of connections increases significantly by increasing k from 1 to 2.
    Longer duration of established connections implies low re-encounter
    probabilities, and hence a high efficiency of the system."

This module turns that argument into a quantitative model of the
re-encounter survival probability ``p_r(k)``:

* a freshly established connection starts with an exchangeable pool of
  ``initial_pool`` pieces (pieces the two endpoints can still trade);
* every round consumes one piece of the pool;
* every round, each of the peer's *other* ``k - 1`` connections
  delivers a new piece, useful to this partner with probability
  ``usefulness`` — so the pool drains at net rate
  ``1 - (k - 1) * usefulness`` per round;
* the connection cannot outlive the endpoints' downloads, capping the
  lifetime at ``residual_cap`` rounds (mid-download residual, of order
  ``B / (2k)``).

The expected lifetime ``L(k)`` then yields the per-round survival
probability ``p_r(k) = 1 - 1/L(k)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError

__all__ = ["ConnectionLifetimeModel"]


@dataclass(frozen=True)
class ConnectionLifetimeModel:
    """Maps ``k`` to an expected connection lifetime and survival ``p_r(k)``.

    Attributes:
        initial_pool: expected number of exchangeable pieces between two
            freshly connected neighbors.  Small in practice (pieces
            within a neighborhood are correlated); default 5.
        usefulness: probability that a piece arriving from a third
            party is new to this connection's partner.  The default of
            1.0 encodes the paper's own claim that the duration jump
            happens exactly at ``k = 2`` ("for k > 2 ... new pieces are
            simultaneously arriving at the peers, which can also be
            exchanged"): with one other connection delivering a novel
            piece per round, replenishment already matches consumption.
            Lower values move the saturation point to larger ``k``.
        residual_cap: upper bound on a connection's lifetime in rounds,
            set by the endpoints completing their downloads.
    """

    initial_pool: float = 5.0
    usefulness: float = 1.0
    residual_cap: float = 50.0

    def __post_init__(self) -> None:
        if self.initial_pool < 1.0:
            raise ParameterError(
                f"initial_pool must be >= 1, got {self.initial_pool}"
            )
        if not 0.0 <= self.usefulness <= 1.0:
            raise ParameterError(
                f"usefulness must be in [0, 1], got {self.usefulness}"
            )
        if self.residual_cap < 1.0:
            raise ParameterError(
                f"residual_cap must be >= 1, got {self.residual_cap}"
            )

    def expected_lifetime(self, max_conns: int) -> float:
        """Expected connection duration in rounds for a given ``k``."""
        if max_conns < 1:
            raise ParameterError(f"max_conns must be >= 1, got {max_conns}")
        drain = 1.0 - (max_conns - 1) * self.usefulness
        if drain <= 0.0:
            # Replenishment matches or beats consumption: the pool never
            # empties in expectation; the download's end is the only cap.
            return self.residual_cap
        return max(1.0, min(self.initial_pool / drain, self.residual_cap))

    def survival_probability(self, max_conns: int) -> float:
        """``p_r(k) = 1 - 1 / L(k)`` — per-round survival of a connection."""
        return 1.0 - 1.0 / self.expected_lifetime(max_conns)

    @classmethod
    def for_file(
        cls, num_pieces: int, *, initial_pool: float = 5.0, usefulness: float = 1.0
    ) -> "ConnectionLifetimeModel":
        """Build a model whose residual cap is derived from the file size.

        Uses ``residual_cap = max(num_pieces / 4, 1)`` — a mid-download
        peer at full parallelism has on the order of ``B / (2k)`` rounds
        left; ``B / 4`` is the ``k = 2`` pivot the paper's argument
        turns on.
        """
        if num_pieces < 1:
            raise ParameterError(f"num_pieces must be >= 1, got {num_pieces}")
        return cls(
            initial_pool=initial_pool,
            usefulness=usefulness,
            residual_cap=max(num_pieces / 4.0, 1.0),
        )
