"""Piece-count distributions ``phi`` over the swarm (paper Eq. 1).

``phi(j)`` is the fraction of peers in the swarm that currently hold
exactly ``j`` complete pieces, for ``j = 1, ..., B``.  Peers holding zero
pieces never contribute to anyone's potential set, so — following the
paper — the support starts at 1.

The paper argues (Section 6) that in the trading phase the protocol
drives ``phi`` toward the uniform distribution; :meth:`uniform` is
therefore the default everywhere.  Skewed variants are provided for the
stability study, and :meth:`empirical` lets the distribution be measured
from a running swarm and fed back into the analytical model.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.errors import DistributionError, ParameterError

__all__ = ["PieceCountDistribution"]


class PieceCountDistribution:
    """Distribution of the number of pieces held by a random peer.

    Wraps a pmf indexed ``1..B``.  Instances are immutable; construct
    them through the factory classmethods.

    Attributes:
        num_pieces: ``B``, the number of pieces the file is split into.
    """

    __slots__ = ("num_pieces", "_pmf")

    def __init__(self, num_pieces: int, pmf: np.ndarray):
        if num_pieces < 1:
            raise ParameterError(f"num_pieces must be >= 1, got {num_pieces}")
        pmf = np.asarray(pmf, dtype=float)
        if pmf.shape != (num_pieces,):
            raise DistributionError(
                f"pmf must have shape ({num_pieces},) for support 1..{num_pieces}, "
                f"got {pmf.shape}"
            )
        if (pmf < 0).any():
            raise DistributionError("phi has negative probabilities")
        total = pmf.sum()
        if abs(total - 1.0) > 1e-6:
            raise DistributionError(f"phi sums to {total}, expected 1")
        self.num_pieces = int(num_pieces)
        self._pmf = pmf / total
        self._pmf.setflags(write=False)

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, num_pieces: int) -> "PieceCountDistribution":
        """Uniform ``phi(j) = 1/B`` — the trading-phase equilibrium shape."""
        if num_pieces < 1:
            raise ParameterError(f"num_pieces must be >= 1, got {num_pieces}")
        return cls(num_pieces, np.full(num_pieces, 1.0 / num_pieces))

    @classmethod
    def point_mass(cls, num_pieces: int, at: int) -> "PieceCountDistribution":
        """All peers hold exactly ``at`` pieces (useful in unit tests)."""
        if not 1 <= at <= num_pieces:
            raise ParameterError(f"point mass location {at} outside 1..{num_pieces}")
        pmf = np.zeros(num_pieces)
        pmf[at - 1] = 1.0
        return cls(num_pieces, pmf)

    @classmethod
    def linear_skew(cls, num_pieces: int, *, toward_full: bool = True) -> "PieceCountDistribution":
        """A linearly skewed swarm.

        ``toward_full=True`` weights peers proportionally to their piece
        count (a mature swarm: most peers are nearly done);
        ``toward_full=False`` inverts it (a young swarm).  Used by the
        stability experiments as a high-skew starting condition.
        """
        weights = np.arange(1, num_pieces + 1, dtype=float)
        if not toward_full:
            weights = weights[::-1].copy()
        return cls(num_pieces, weights / weights.sum())

    @classmethod
    def truncated_geometric(cls, num_pieces: int, ratio: float) -> "PieceCountDistribution":
        """``phi(j) proportional to ratio**j`` on ``1..B``.

        ``ratio < 1`` concentrates mass on low piece counts, ``ratio > 1``
        on high ones, ``ratio == 1`` recovers the uniform distribution.
        """
        if ratio <= 0:
            raise ParameterError(f"ratio must be > 0, got {ratio}")
        exponents = np.arange(1, num_pieces + 1, dtype=float)
        # Normalise in log-space for numerical robustness with large B.
        logs = exponents * np.log(ratio)
        logs -= logs.max()
        weights = np.exp(logs)
        return cls(num_pieces, weights / weights.sum())

    @classmethod
    def empirical(
        cls, num_pieces: int, counts: Mapping[int, float] | Iterable[int]
    ) -> "PieceCountDistribution":
        """Build ``phi`` from observed piece counts.

        Args:
            num_pieces: ``B``.
            counts: either a mapping ``{j: weight}`` or an iterable of
                per-peer piece counts.  Peers with 0 pieces (or ``> B``)
                are rejected — they are outside ``phi``'s support; filter
                them out before calling.
        """
        pmf = np.zeros(num_pieces)
        if isinstance(counts, Mapping):
            items = counts.items()
        else:
            observed: dict[int, float] = {}
            for j in counts:
                observed[j] = observed.get(j, 0.0) + 1.0
            items = observed.items()
        for j, weight in items:
            if not 1 <= j <= num_pieces:
                raise DistributionError(
                    f"piece count {j} outside support 1..{num_pieces}"
                )
            if weight < 0:
                raise DistributionError(f"negative weight {weight} for count {j}")
            pmf[j - 1] += weight
        total = pmf.sum()
        if total <= 0:
            raise DistributionError("empirical phi has no mass")
        return cls(num_pieces, pmf / total)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def pmf(self, j: int) -> float:
        """``phi(j)``: the fraction of peers holding exactly ``j`` pieces."""
        if not 1 <= j <= self.num_pieces:
            return 0.0
        return float(self._pmf[j - 1])

    def as_array(self) -> np.ndarray:
        """Return the pmf over ``j = 1..B`` as a read-only array of length B."""
        return self._pmf

    def mean(self) -> float:
        """Expected piece count of a random peer."""
        return float(np.arange(1, self.num_pieces + 1) @ self._pmf)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PieceCountDistribution):
            return NotImplemented
        return self.num_pieces == other.num_pieces and np.allclose(
            self._pmf, other._pmf
        )

    def __hash__(self) -> int:  # immutable value type
        return hash((self.num_pieces, self._pmf.tobytes()))

    def __repr__(self) -> str:
        return (
            f"PieceCountDistribution(B={self.num_pieces}, "
            f"mean={self.mean():.2f})"
        )
