"""Model parameters for the multiphased download-evolution chain.

Groups every symbol of paper Section 3 into a single validated,
immutable :class:`ModelParameters` value:

==============  =====================================================
``num_pieces``  ``B`` — pieces the file is split into
``max_conns``   ``k`` — maximum simultaneous active connections
``ns_size``     ``s`` — (maximum achievable) neighbor-set size
``p_init``      success probability of initial connection attempts
``alpha``       bootstrap-escape probability (``= lambda*w*s / N``)
``gamma``       last-phase-escape probability (new pieces flowing in)
``p_reenc``     ``p_r`` — an established connection does not fail
``p_new``       ``p_n`` — a new connection is established
``phi``         swarm piece-count distribution feeding Eq. (1)
==============  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.piece_distribution import PieceCountDistribution
from repro.errors import ParameterError

__all__ = ["ModelParameters", "alpha_from_swarm", "DEFAULT_PARAMETERS"]


def _check_probability(value: float, name: str) -> None:
    if not 0.0 <= value <= 1.0:
        raise ParameterError(f"{name} must be in [0, 1], got {value}")


def alpha_from_swarm(
    arrival_rate: float,
    tradeable_probability: float,
    ns_size: int,
    swarm_size: int,
) -> float:
    """Derive the bootstrap parameter ``alpha = lambda * w * s / N``.

    Paper Section 3.2: ``lambda`` is the peer arrival rate, ``w`` the
    probability that a newly arriving peer has a piece to exchange,
    ``s`` the neighbor-set size and ``N`` the swarm population.  The
    product is clamped to 1 since it is used as a per-step probability.
    """
    if arrival_rate < 0:
        raise ParameterError(f"arrival_rate must be >= 0, got {arrival_rate}")
    _check_probability(tradeable_probability, "tradeable_probability")
    if ns_size < 1:
        raise ParameterError(f"ns_size must be >= 1, got {ns_size}")
    if swarm_size < 1:
        raise ParameterError(f"swarm_size must be >= 1, got {swarm_size}")
    return min(1.0, arrival_rate * tradeable_probability * ns_size / swarm_size)


@dataclass(frozen=True)
class ModelParameters:
    """Validated parameter set for :class:`repro.core.chain.DownloadChain`.

    Instances are immutable; derive variants with :meth:`with_changes`.
    ``phi`` defaults to the uniform distribution — the trading-phase
    equilibrium the paper derives in Section 6.
    """

    num_pieces: int
    max_conns: int
    ns_size: int
    p_init: float = 0.5
    alpha: float = 0.1
    gamma: float = 0.1
    p_reenc: float = 0.7
    p_new: float = 0.7
    phi: Optional[PieceCountDistribution] = field(default=None)

    def __post_init__(self) -> None:
        if self.num_pieces < 1:
            raise ParameterError(f"num_pieces must be >= 1, got {self.num_pieces}")
        if self.max_conns < 1:
            raise ParameterError(f"max_conns must be >= 1, got {self.max_conns}")
        if self.ns_size < 1:
            raise ParameterError(f"ns_size must be >= 1, got {self.ns_size}")
        _check_probability(self.p_init, "p_init")
        _check_probability(self.alpha, "alpha")
        _check_probability(self.gamma, "gamma")
        _check_probability(self.p_reenc, "p_reenc")
        _check_probability(self.p_new, "p_new")
        if self.phi is None:
            object.__setattr__(
                self, "phi", PieceCountDistribution.uniform(self.num_pieces)
            )
        elif self.phi.num_pieces != self.num_pieces:
            raise ParameterError(
                f"phi covers B={self.phi.num_pieces} pieces but "
                f"num_pieces={self.num_pieces}"
            )

    def with_changes(self, **changes: object) -> "ModelParameters":
        """Return a copy with the given fields replaced (re-validated)."""
        return replace(self, **changes)  # type: ignore[arg-type]

    @property
    def state_count(self) -> int:
        """Size of the full state space ``(k+1) * (B+1) * (s+1)``."""
        return (self.max_conns + 1) * (self.num_pieces + 1) * (self.ns_size + 1)

    def describe(self) -> str:
        """One-line human-readable summary used by CLI output."""
        return (
            f"B={self.num_pieces} k={self.max_conns} s={self.ns_size} "
            f"p_init={self.p_init} alpha={self.alpha} gamma={self.gamma} "
            f"p_r={self.p_reenc} p_n={self.p_new} phi={self.phi!r}"
        )


#: The paper's canonical configuration: B=200 pieces, k=7 connections
#: (the BitTorrent default of 4 uploads + optimistic unchokes is in this
#: range), neighbor sets of 50 (paper: real clients use 40-70).
DEFAULT_PARAMETERS = ModelParameters(num_pieces=200, max_conns=7, ns_size=50)
