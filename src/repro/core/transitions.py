"""Transition kernels ``f``, ``g``, ``h`` of the download chain (Eqs. 2-3).

The chain state is ``(n, b, i)`` — active connections, downloaded
pieces, potential-set size.  The paper factors the transition
probability as::

    Pr{(n,b,i) -> (n',b',i')} = f(b'|n,b) * g(i'|n,b,i) * h(n'|n,b,i')

reflecting the update order: pieces first, then the potential set, then
the connections (which are capped by the *new* potential set ``i'``).

Conventions used throughout:

* ``c = min(b + n, B)`` is the peer's *trading power input* — pieces it
  can commit to exchanges (downloaded plus in-flight on the ``n``
  active connections), clamped at ``B``.
* ``b == B`` dominates every kernel (the absorbing row of Eqs. 2-3).

The kernels are exposed both as pmf builders (exact analysis, tests)
and through :class:`TransitionKernel`, which caches the expensive
pieces (the ``p(c)`` curve and the binomial convolutions) for fast
Monte-Carlo stepping.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, NamedTuple, Optional, Tuple

import numpy as np

from repro.core.binomial import binomial_pmf, convolve_pmf
from repro.core.parameters import ModelParameters
from repro.core.trading_power import exchange_probability_curve
from repro.errors import ParameterError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.sparse import SparseChainOperator

__all__ = [
    "piece_successor",
    "potential_set_pmf",
    "connection_pmf",
    "DenseKernelTables",
    "TransitionKernel",
]


class DenseKernelTables(NamedTuple):
    """Cumulative transition tables for vectorized batch stepping.

    Both kernels collapse to small keys (see :class:`TransitionKernel`),
    so the entire chain fits two dense cumulative-probability tables.
    Memory is ``O(B * s + k^3)`` — for the paper's canonical
    ``B=200, k=7, s=50`` that is ~82 KiB of float64.

    Attributes:
        g_cum: shape ``(B + 1, 2, s + 1)``; ``g_cum[c, flag]`` is the
            cumulative pmf of ``i'`` for trading-power input ``c`` and
            ``flag = int(i == 0)``.  Rows for ``c == 0`` ignore the flag
            (the just-joined branch does not read ``i``).
        h_cum: shape ``(k + 1, k + 1, k + 1)``; ``h_cum[n, free]`` is
            the cumulative pmf of ``n'`` for ``n`` prior connections and
            ``free = max(min(i', k) - n, 0)`` fillable slots.
            Combinations unreachable within the state space are padded
            with a point mass at 0.  The deterministic ``b == B`` /
            ``c == 0`` branches are not encoded; batch steppers mask
            those states explicitly.
    """

    g_cum: np.ndarray
    h_cum: np.ndarray


def piece_successor(n: int, b: int, num_pieces: int) -> int:
    """``f`` of Eq. (2) collapsed to its deterministic successor.

    * ``b == 0`` → ``b' = 1`` (first piece arrives via seeds or
      optimistic unchoking, regardless of connections);
    * ``b >= 1`` → ``b' = min(b + n, B)`` (one piece per active
      connection per step, capped at the file size).
    """
    if b < 0 or b > num_pieces:
        raise ParameterError(f"b={b} outside 0..{num_pieces}")
    if n < 0:
        raise ParameterError(f"n={n} must be >= 0")
    if b == 0:
        return 1
    return min(b + n, num_pieces)


def _trading_power_input(n: int, b: int, num_pieces: int) -> int:
    """``c = min(b + n, B)``: complete-piece count entering Eq. (1)."""
    return min(b + n, num_pieces)


def potential_set_pmf(
    n: int,
    b: int,
    i: int,
    params: ModelParameters,
    *,
    p_curve: np.ndarray | None = None,
) -> np.ndarray:
    """``g(i' | n, b, i)`` of Eq. (2) as a pmf over ``i' = 0..s``.

    Branches, in the paper's order (``c = min(b+n, B)``):

    1. ``b == B`` — the download is complete: ``i' = 0``.
    2. ``c == 0`` — the peer just joined: ``i' ~ Bin(s, p_init)``.
    3. ``c == 1 and i == 0`` — stuck in bootstrap: escape with
       probability ``alpha``.
    4. ``i > 0`` (with ``c >= 1``) — trading phase:
       ``i' ~ Bin(s, p(c))``.
    5. ``c > 1 and i == 0`` — last download phase: escape with
       probability ``gamma``.

    Args:
        p_curve: optional precomputed ``p(c)`` curve (index ``c``);
            computed on the fly when omitted.
    """
    s = params.ns_size
    num_pieces = params.num_pieces
    if not 0 <= i <= s:
        raise ParameterError(f"i={i} outside 0..{s}")
    pmf = np.zeros(s + 1)
    c = _trading_power_input(n, b, num_pieces)

    if b == num_pieces:
        pmf[0] = 1.0
        return pmf
    if c == 0:
        binom = binomial_pmf(s, params.p_init)
        pmf[: binom.size] = binom
        return pmf
    if i == 0:
        escape = params.alpha if c == 1 else params.gamma
        pmf[1] = escape
        pmf[0] = 1.0 - escape
        return pmf
    # Trading phase: i' ~ Bin(s, p(c)).
    if p_curve is None:
        p_curve = exchange_probability_curve(num_pieces, params.phi)
    binom = binomial_pmf(s, float(p_curve[c]))
    pmf[: binom.size] = binom
    return pmf


def connection_pmf(
    n: int,
    b: int,
    i_next: int,
    params: ModelParameters,
) -> np.ndarray:
    """``h(n' | n, b, i')`` of Eq. (3) as a pmf over ``n' = 0..k``.

    * ``b == B`` or ``c == 0`` → ``n' = 0`` deterministically;
    * otherwise ``n' = Y1 + Y2`` with ``Y1 ~ Bin(n, p_r)`` (surviving
      re-encounters) and ``Y2 ~ Bin(max(min(i', k) - n, 0), p_n)`` (new
      connections filling the slots the new potential set allows).

    Since ``Y1 <= n <= k`` and ``Y2 <= min(i', k) - n`` (when positive),
    the sum never exceeds ``k`` and the returned pmf has length
    ``k + 1``.
    """
    k = params.max_conns
    num_pieces = params.num_pieces
    if not 0 <= n <= k:
        raise ParameterError(f"n={n} outside 0..{k}")
    if i_next < 0 or i_next > params.ns_size:
        raise ParameterError(f"i'={i_next} outside 0..{params.ns_size}")
    pmf = np.zeros(k + 1)
    c = _trading_power_input(n, b, num_pieces)
    if b == num_pieces or c == 0:
        pmf[0] = 1.0
        return pmf
    survivors = binomial_pmf(n, params.p_reenc)
    new_trials = max(min(i_next, k) - n, 0)
    fresh = binomial_pmf(new_trials, params.p_new)
    total = convolve_pmf(survivors, fresh)
    if total.size > k + 1:
        # Cannot happen by construction (see docstring); guard anyway.
        overflow = total[k + 1 :].sum()
        total = total[: k + 1].copy()
        total[k] += overflow
    pmf[: total.size] = total
    return pmf


class TransitionKernel:
    """Cached, sampling-ready transition kernel for one parameter set.

    Precomputes the trading-power curve ``p(c)`` and memoises every
    binomial pmf and convolution encountered, so a Monte-Carlo step
    costs two table lookups plus two inverse-transform draws.
    """

    def __init__(self, params: ModelParameters):
        self.params = params
        self._p_curve = exchange_probability_curve(params.num_pieces, params.phi)
        self._g_cache: Dict[Tuple[int, int, int], np.ndarray] = {}
        self._h_cache: Dict[Tuple[int, int], np.ndarray] = {}
        self._g_cum_cache: Dict[Tuple[int, int, int], np.ndarray] = {}
        self._h_cum_cache: Dict[Tuple[int, int], np.ndarray] = {}
        self._dense_tables: Optional[DenseKernelTables] = None
        self._sparse_operators: Dict[Tuple[float, int], "SparseChainOperator"] = {}

    @property
    def p_curve(self) -> np.ndarray:
        """Precomputed ``p(c)`` for ``c = 0..B`` (paper Eq. 1)."""
        return self._p_curve

    # -- g -------------------------------------------------------------
    def _g_key(self, n: int, b: int, i: int) -> Tuple[int, int, int]:
        # g depends on (c, whether i == 0, whether b == B); collapse the
        # state into that minimal key so the cache stays small.
        num_pieces = self.params.num_pieces
        if b == num_pieces:
            return (-1, 0, 0)
        c = _trading_power_input(n, b, num_pieces)
        return (c, int(i == 0), 0)

    def g_pmf(self, n: int, b: int, i: int) -> np.ndarray:
        key = self._g_key(n, b, i)
        pmf = self._g_cache.get(key)
        if pmf is None:
            pmf = potential_set_pmf(n, b, i, self.params, p_curve=self._p_curve)
            pmf.setflags(write=False)
            self._g_cache[key] = pmf
            self._g_cum_cache[key] = np.cumsum(pmf)
        return pmf

    # -- h -------------------------------------------------------------
    def _h_key(self, n: int, b: int, i_next: int) -> Tuple[int, int]:
        num_pieces = self.params.num_pieces
        k = self.params.max_conns
        if b == num_pieces or _trading_power_input(n, b, num_pieces) == 0:
            return (-1, 0)
        return (n, max(min(i_next, k) - n, 0))

    def h_pmf(self, n: int, b: int, i_next: int) -> np.ndarray:
        key = self._h_key(n, b, i_next)
        pmf = self._h_cache.get(key)
        if pmf is None:
            pmf = connection_pmf(n, b, i_next, self.params)
            pmf.setflags(write=False)
            self._h_cache[key] = pmf
            self._h_cum_cache[key] = np.cumsum(pmf)
        return pmf

    # -- dense tables ------------------------------------------------------
    def dense_tables(self) -> DenseKernelTables:
        """Compile (once) the dense cumulative tables for batch stepping.

        Every row is produced by the authoritative pmf builders
        (:func:`potential_set_pmf` / :func:`connection_pmf`) evaluated
        at a representative state for its collapsed key, so the tables
        agree with the serial sampling path by construction.
        """
        if self._dense_tables is not None:
            return self._dense_tables
        params = self.params
        num_pieces = params.num_pieces
        k = params.max_conns
        s = params.ns_size

        g_cum = np.empty((num_pieces + 1, 2, s + 1))
        for c in range(num_pieces + 1):
            # Representative (n, b) with min(b + n, B) == c and b < B.
            if c < num_pieces:
                n_rep, b_rep = 0, c
            else:
                n_rep, b_rep = 1, num_pieces - 1
            for flag, i_rep in ((0, 1), (1, 0)):
                pmf = potential_set_pmf(
                    n_rep, b_rep, min(i_rep, s), params, p_curve=self._p_curve
                )
                g_cum[c, flag] = np.cumsum(pmf)

        # Padding for (n, free) combinations no reachable state produces:
        # a point mass at n' = 0 (cumulative row of ones).
        h_cum = np.ones((k + 1, k + 1, k + 1))
        b_rep = 1 if num_pieces >= 2 else 0
        for n in range(k + 1):
            max_free = max(min(k, s) - n, 0)
            for free in range(max_free + 1):
                i_rep = min(n + free, s) if free == 0 else n + free
                if b_rep == 0 and n == 0:
                    continue  # c == 0: masked by the stepper, keep padding
                pmf = connection_pmf(n, b_rep, i_rep, params)
                h_cum[n, free] = np.cumsum(pmf)

        g_cum.setflags(write=False)
        h_cum.setflags(write=False)
        self._dense_tables = DenseKernelTables(g_cum=g_cum, h_cum=h_cum)
        return self._dense_tables

    # -- sparse operator ---------------------------------------------------
    def sparse_operator(
        self,
        *,
        drop_tol: Optional[float] = None,
        max_states: Optional[int] = None,
    ) -> "SparseChainOperator":
        """Compile (once per tolerance/cap pair) the CSR one-step operator.

        The compiled :class:`~repro.core.sparse.SparseChainOperator` is
        memoised on the kernel, so every exact-layer entry point — the
        sparse propagation loop, the fundamental-matrix solve, the
        figure runners' ``method="exact"`` paths — shares one compile
        per parameter set.  ``None`` selects the module defaults
        (:data:`~repro.core.sparse.DEFAULT_DROP_TOL` /
        :data:`~repro.core.sparse.DEFAULT_MAX_STATES`).
        """
        from repro.core.sparse import (
            DEFAULT_DROP_TOL,
            DEFAULT_MAX_STATES,
            compile_sparse_operator,
        )

        key = (
            DEFAULT_DROP_TOL if drop_tol is None else drop_tol,
            DEFAULT_MAX_STATES if max_states is None else max_states,
        )
        operator = self._sparse_operators.get(key)
        if operator is None:
            operator = compile_sparse_operator(
                self.params, drop_tol=key[0], max_states=key[1]
            )
            self._sparse_operators[key] = operator
        return operator

    # -- sampling --------------------------------------------------------
    def sample_i_next(self, n: int, b: int, i: int, rng: np.random.Generator) -> int:
        self.g_pmf(n, b, i)  # populate caches
        cum = self._g_cum_cache[self._g_key(n, b, i)]
        return int(np.searchsorted(cum, rng.random(), side="right"))

    def sample_n_next(
        self, n: int, b: int, i_next: int, rng: np.random.Generator
    ) -> int:
        self.h_pmf(n, b, i_next)
        cum = self._h_cum_cache[self._h_key(n, b, i_next)]
        return int(np.searchsorted(cum, rng.random(), side="right"))

    # -- exact kernel ------------------------------------------------------
    def transition_distribution(
        self, n: int, b: int, i: int
    ) -> Dict[Tuple[int, int, int], float]:
        """Full successor distribution of state ``(n, b, i)``.

        Returns a dict ``{(n', b', i'): probability}`` whose values sum
        to 1; used by exact hitting-time analysis and kernel tests.
        """
        b_next = piece_successor(n, b, self.params.num_pieces) if b < self.params.num_pieces else b
        out: Dict[Tuple[int, int, int], float] = {}
        g = self.g_pmf(n, b, i)
        for i_next, gi in enumerate(g):
            if gi == 0.0:
                continue
            h = self.h_pmf(n, b, i_next)
            for n_next, hn in enumerate(h):
                if hn == 0.0:
                    continue
                state = (n_next, b_next, i_next)
                out[state] = out.get(state, 0.0) + float(gi * hn)
        return out
