"""Phase classification for the multiphased download evolution (Sec. 3.2).

The paper decomposes a peer's download into three phases:

* **Bootstrap** — the peer is acquiring (or has just acquired) its
  first piece and has not yet started trading: ``b + n <= 1``.
  While ``(0, 1, 0)`` the peer is *stuck* in bootstrap and escapes with
  per-step probability ``alpha``.
* **Efficient download (trading)** — the potential set is non-empty
  (``i > 0``) and pieces flow at rate ``n`` per step.  Most of the file
  is downloaded here.
* **Last download** — the potential set has collapsed to 0 while the
  peer still misses pieces (``b + n > 1``, ``i == 0``); progress waits
  on new pieces flowing into the neighborhood (probability ``gamma``
  per step).
* **Complete** — the absorbing state ``b == B``.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Dict, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.core.chain import State

__all__ = ["Phase", "classify_state", "phase_durations", "phase_boundaries"]


class Phase(enum.Enum):
    """One of the paper's three download phases, plus completion."""

    BOOTSTRAP = "bootstrap"
    EFFICIENT = "efficient"
    LAST = "last"
    COMPLETE = "complete"

    def __str__(self) -> str:  # nicer CLI / report output
        return self.value


def classify_state(state: "State", num_pieces: int) -> Phase:
    """Map a chain state ``(n, b, i)`` to its phase.

    Precedence: completion, then bootstrap (``b + n <= 1``), then the
    last phase (``i == 0``), else the efficient/trading phase.
    """
    n, b, i = state
    if b >= num_pieces:
        return Phase.COMPLETE
    if b + n <= 1:
        return Phase.BOOTSTRAP
    if i == 0:
        return Phase.LAST
    return Phase.EFFICIENT


def phase_durations(
    trajectory: Sequence["State"], num_pieces: int
) -> Dict[Phase, int]:
    """Count steps spent in each phase along a trajectory.

    The terminal :attr:`Phase.COMPLETE` state contributes zero steps;
    every non-terminal state contributes one.
    """
    durations: Dict[Phase, int] = {
        Phase.BOOTSTRAP: 0,
        Phase.EFFICIENT: 0,
        Phase.LAST: 0,
    }
    for state in trajectory:
        phase = classify_state(state, num_pieces)
        if phase is Phase.COMPLETE:
            break
        durations[phase] += 1
    return durations


def phase_boundaries(
    trajectory: Sequence["State"], num_pieces: int
) -> Dict[Phase, tuple]:
    """Return, per phase, the ``(first_step, last_step)`` it was observed.

    Phases never entered are absent from the result.  Useful when
    segmenting traces for the Figure-2 style plots.
    """
    bounds: Dict[Phase, tuple] = {}
    for step, state in enumerate(trajectory):
        phase = classify_state(state, num_pieces)
        if phase not in bounds:
            bounds[phase] = (step, step)
        else:
            bounds[phase] = (bounds[phase][0], step)
    return bounds
