"""Core multiphased download-evolution model (Section 3 of the paper).

The central object is :class:`repro.core.chain.DownloadChain`, the
three-dimensional Markov chain over states ``(n, b, i)``:

``n``
    number of active connections, ``0 <= n <= k``;
``b``
    number of downloaded pieces, ``0 <= b <= B``;
``i``
    size of the potential set, ``0 <= i <= s``.

The transition kernel factors as ``f(b'|n,b) * g(i'|n,b,i) * h(n'|n,b,i')``
(paper Eqs. 2-3), built from the trading-power function ``p(b+n)``
(paper Eq. 1) in :mod:`repro.core.trading_power`.
"""

from repro.core.batch import BatchChainSampler, BatchTrajectories
from repro.core.binomial import binomial_pmf, convolve_pmf
from repro.core.chain import DownloadChain, State
from repro.core.exact import (
    PotentialRatioExact,
    TransientResult,
    exact_potential_ratio,
    propagate_distribution,
)
from repro.core.parameters import ModelParameters, alpha_from_swarm
from repro.core.phases import Phase, classify_state, phase_durations
from repro.core.piece_distribution import PieceCountDistribution
from repro.core.sparse import (
    FundamentalSolution,
    SparseChainOperator,
    compile_sparse_operator,
    mean_hitting_time,
    solve_fundamental,
)
from repro.core.trading_power import exchange_probability

__all__ = [
    "BatchChainSampler",
    "BatchTrajectories",
    "binomial_pmf",
    "convolve_pmf",
    "DownloadChain",
    "State",
    "ModelParameters",
    "alpha_from_swarm",
    "Phase",
    "classify_state",
    "phase_durations",
    "PieceCountDistribution",
    "exchange_probability",
    "TransientResult",
    "PotentialRatioExact",
    "exact_potential_ratio",
    "propagate_distribution",
    "SparseChainOperator",
    "FundamentalSolution",
    "compile_sparse_operator",
    "solve_fundamental",
    "mean_hitting_time",
]
