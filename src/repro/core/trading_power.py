"""Trading power ``p(b+n)`` — paper Eq. (1).

``p(c)`` is the probability that a randomly selected peer has at least
one piece to exchange with a peer ``P`` holding ``c = b + n`` complete
pieces, given the swarm-wide piece-count distribution ``phi``.

Eq. (1) splits the other peer ``Q`` by its piece count ``j``:

* ``j > c``: Q has *more* pieces.  Q has nothing for P only if all of
  P's ``c`` pieces are among Q's ``j`` — probability
  ``C(j, c) / C(B, c)``.
* ``j <= c``: Q has *fewer or equal* pieces.  P has nothing from Q only
  if all of Q's ``j`` pieces are among P's ``c`` — probability
  ``C(c, j) / C(B, j)``.

Both binomial-coefficient ratios are evaluated as telescoping products,
which is exact in the ranges involved and immune to the overflow a naive
``comb(B, c)`` evaluation would hit for ``B`` in the hundreds.

The shape the paper highlights (Section 3.2): with uniform ``phi``,
``p(c)`` rises from about 0.5 at ``c = 1`` to its maximum near
``c = B/2`` and falls back to about 0.5 at ``c = B - 1``; ``p(B) = 0``
(a complete peer has nothing left to *receive*, hence strict tit-for-tat
gives it no exchange partner).
"""

from __future__ import annotations

import numpy as np

from repro.core.piece_distribution import PieceCountDistribution
from repro.errors import ParameterError

__all__ = [
    "exchange_probability",
    "exchange_probability_curve",
    "binomial_ratio",
]


def binomial_ratio(top: int, bottom: int, choose: int) -> float:
    """Return ``C(top, choose) / C(bottom, choose)`` for ``top <= bottom``.

    Computed as ``prod_{t=0}^{choose-1} (top - t) / (bottom - t)``.
    When ``choose > top`` the numerator coefficient is zero and so is the
    ratio.  ``choose == 0`` gives 1 (both coefficients are 1).

    Raises:
        ParameterError: if ``top > bottom``, any argument is negative, or
            ``choose > bottom``.
    """
    if top < 0 or bottom < 0 or choose < 0:
        raise ParameterError(
            f"binomial_ratio arguments must be non-negative, got "
            f"top={top}, bottom={bottom}, choose={choose}"
        )
    if top > bottom:
        raise ParameterError(f"binomial_ratio requires top <= bottom, got {top} > {bottom}")
    if choose > bottom:
        raise ParameterError(f"choose={choose} exceeds bottom={bottom}")
    if choose > top:
        return 0.0
    ratio = 1.0
    for t in range(choose):
        ratio *= (top - t) / (bottom - t)
    return ratio


def exchange_probability(
    pieces_held: int,
    num_pieces: int,
    phi: PieceCountDistribution,
) -> float:
    """``p(c)`` of paper Eq. (1): probability a random peer can trade with P.

    Args:
        pieces_held: ``c = b + n``, P's count of complete pieces
            (downloaded plus those committed on active connections).
        num_pieces: ``B``, the total number of pieces in the file.
        phi: swarm piece-count distribution (must have the same ``B``).

    Returns:
        A probability in ``[0, 1]``.  Defined as 0 for ``c == 0`` (a peer
        with nothing cannot trade under strict tit-for-tat) and equals 0
        at ``c == B``.
    """
    if num_pieces < 1:
        raise ParameterError(f"num_pieces must be >= 1, got {num_pieces}")
    if phi.num_pieces != num_pieces:
        raise ParameterError(
            f"phi is over B={phi.num_pieces} pieces but num_pieces={num_pieces}"
        )
    if not 0 <= pieces_held <= num_pieces:
        raise ParameterError(
            f"pieces_held={pieces_held} outside 0..{num_pieces}"
        )
    c = pieces_held
    if c == 0:
        return 0.0

    total = 0.0
    # Case 1: peers with j > c pieces. Q useless iff all of P's c pieces
    # are within Q's j: probability C(j, c) / C(B, c).
    for j in range(c + 1, num_pieces + 1):
        weight = phi.pmf(j)
        if weight == 0.0:
            continue
        total += weight * (1.0 - binomial_ratio(j, num_pieces, c))
    # Case 2: peers with j <= c pieces. Q useless to P iff all of Q's j
    # pieces are within P's c: probability C(c, j) / C(B, j).
    for j in range(1, c + 1):
        weight = phi.pmf(j)
        if weight == 0.0:
            continue
        total += weight * (1.0 - binomial_ratio(c, num_pieces, j))
    # Clamp floating noise.
    return min(max(total, 0.0), 1.0)


def exchange_probability_curve(
    num_pieces: int, phi: PieceCountDistribution
) -> np.ndarray:
    """Vector of ``p(c)`` for ``c = 0..B`` (index ``c`` holds ``p(c)``)."""
    return np.array(
        [exchange_probability(c, num_pieces, phi) for c in range(num_pieces + 1)]
    )
