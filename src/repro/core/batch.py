"""Vectorized Monte-Carlo stepping of the download chain.

:class:`BatchChainSampler` advances *all* ``runs`` trajectories of one
parameter set simultaneously.  Where the serial
:meth:`~repro.core.chain.DownloadChain.trajectory` pays Python call and
dict-lookup overhead per state per run, the batch sampler compiles the
``g``/``h`` kernels into dense cumulative tables (see
:meth:`~repro.core.transitions.TransitionKernel.dense_tables`) and steps
the whole batch with one vectorized uniform draw plus one table lookup
per sub-kernel per round:

* ``b' = 1`` where ``b == 0``, else ``min(b + n, B)`` — pure array math;
* ``i' ~ g``: gather rows ``g_cum[c, i == 0]`` and inverse-transform the
  batch against one ``rng.random(m)`` draw;
* ``n' ~ h``: gather rows ``h_cum[n, free]`` with
  ``free = max(min(i', k) - n, 0)`` and inverse-transform again, masking
  the deterministic ``c == 0`` branch to 0.

Completed runs are frozen (their state stops updating) and the loop
ends when every run holds all ``B`` pieces.  The per-round states are
recorded as ``(T + 1, runs)`` history matrices from which the Figure-1
estimators (first-passage timeline, potential ratio, phase durations)
are computed by vectorized post-processing.

The batch path draws the *same distributions* as the serial path but in
a different RNG order (two pooled draws per round instead of two draws
per run per round), so batched estimates differ from serial estimates
by Monte-Carlo noise only — ``tests/core/test_batch.py`` pins both
against the exact absorbing-chain solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.parameters import ModelParameters
from repro.core.phases import Phase
from repro.core.transitions import TransitionKernel
from repro.errors import ParameterError, SimulationError

__all__ = ["BatchTrajectories", "BatchChainSampler"]


@dataclass(frozen=True)
class BatchTrajectories:
    """State histories of one batched sampling run.

    Attributes:
        params: the parameter set sampled under.
        n_hist / b_hist / i_hist: ``(T + 1, runs)`` state coordinates,
            row ``t`` holding every run's state after ``t`` rounds
            (row 0 is the initial state).  Rows past a run's completion
            repeat its final state (``b == B``).
        steps: per-run rounds to completion — run ``r``'s trajectory is
            ``rows 0 .. steps[r]`` inclusive, matching the serial
            :meth:`~repro.core.chain.DownloadChain.trajectory` contract
            (length minus one is the download time).
    """

    params: ModelParameters
    n_hist: np.ndarray
    b_hist: np.ndarray
    i_hist: np.ndarray
    steps: np.ndarray

    @property
    def runs(self) -> int:
        return self.b_hist.shape[1]

    @property
    def total_steps(self) -> int:
        """Chain steps actually sampled (the telemetry event count)."""
        return int(self.steps.sum())

    # ------------------------------------------------------------------
    # Estimator post-processing
    # ------------------------------------------------------------------
    def first_passage(self) -> np.ndarray:
        """Per-run first-passage rounds to each piece count.

        ``out[r, x]`` is the first round at which run ``r`` held at
        least ``x`` pieces; piece counts are non-decreasing per run, so
        this is a searchsorted over each run's ``b`` column.
        """
        num_pieces = self.params.num_pieces
        targets = np.arange(num_pieces + 1)
        out = np.empty((self.runs, num_pieces + 1))
        for run in range(self.runs):
            out[run] = np.searchsorted(
                self.b_hist[:, run], targets, side="left"
            )
        return out

    def potential_accumulators(self) -> tuple:
        """Pooled ``i / s`` accumulators per piece count.

        Returns ``(sums, counts)`` over every state of every
        trajectory — including the initial and final states, exactly
        like the serial estimator's pooling.
        """
        num_pieces = self.params.num_pieces
        s = self.params.ns_size
        rounds = self.b_hist.shape[0]
        valid = np.arange(rounds)[:, None] <= self.steps[None, :]
        b_flat = self.b_hist[valid]
        i_flat = self.i_hist[valid]
        sums = np.bincount(
            b_flat, weights=i_flat / s, minlength=num_pieces + 1
        )
        counts = np.bincount(b_flat, minlength=num_pieces + 1).astype(float)
        return sums, counts

    def phase_durations(self) -> Dict[Phase, np.ndarray]:
        """Per-run rounds spent in each non-terminal phase.

        Matches :func:`repro.core.phases.phase_durations` run by run:
        the terminal complete state contributes nothing, every earlier
        state contributes one round to exactly one phase.
        """
        rounds = self.b_hist.shape[0]
        valid = np.arange(rounds)[:, None] < self.steps[None, :]
        bootstrap = (self.b_hist + self.n_hist <= 1) & valid
        last = (self.i_hist == 0) & ~bootstrap & valid
        efficient = valid & ~bootstrap & ~last
        return {
            Phase.BOOTSTRAP: bootstrap.sum(axis=0).astype(float),
            Phase.EFFICIENT: efficient.sum(axis=0).astype(float),
            Phase.LAST: last.sum(axis=0).astype(float),
        }


class BatchChainSampler:
    """Vectorized sampler over the download chain of one parameter set.

    Args:
        source: a :class:`ModelParameters` value or anything carrying
            ``.params`` and ``.kernel`` (a
            :class:`~repro.core.chain.DownloadChain`), whose cached
            kernel — and therefore dense tables — is then reused.

    Example:
        >>> from repro.core.batch import BatchChainSampler
        >>> from repro.core.parameters import ModelParameters
        >>> sampler = BatchChainSampler(
        ...     ModelParameters(num_pieces=20, max_conns=3, ns_size=8))
        >>> batch = sampler.sample(runs=16, seed=7)
        >>> int(batch.b_hist[-1].min())
        20
    """

    #: Hard cap multiplier on the round count, mirroring
    #: :attr:`repro.core.chain.DownloadChain.MAX_STEPS_FACTOR`.
    MAX_STEPS_FACTOR = 10_000

    def __init__(self, source):
        if isinstance(source, ModelParameters):
            self.params = source
            self.kernel = TransitionKernel(source)
        else:
            self.params = source.params
            self.kernel = source.kernel
        tables = self.kernel.dense_tables()
        self._g_cum = tables.g_cum
        self._h_cum = tables.h_cum

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step_batch(
        self,
        n: np.ndarray,
        b: np.ndarray,
        i: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple:
        """Advance every (incomplete) state one round; returns arrays.

        All inputs must satisfy ``b < B``; the caller masks completed
        runs out of the batch before stepping.
        """
        params = self.params
        num_pieces = params.num_pieces
        s = params.ns_size
        k = params.max_conns

        c = np.minimum(b + n, num_pieces)
        b_next = np.where(b == 0, 1, c)

        g_rows = self._g_cum[c, (i == 0).astype(np.intp)]
        u1 = rng.random(c.size)
        i_next = np.minimum(
            (g_rows <= u1[:, None]).sum(axis=1), s
        ).astype(i.dtype)

        free = np.maximum(np.minimum(i_next, k) - n, 0)
        h_rows = self._h_cum[n, free]
        u2 = rng.random(c.size)
        n_next = np.minimum(
            (h_rows <= u2[:, None]).sum(axis=1), k
        ).astype(n.dtype)
        n_next[c == 0] = 0
        return n_next, b_next.astype(b.dtype), i_next

    def sample(
        self,
        runs: int,
        *,
        seed: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        max_steps: Optional[int] = None,
    ) -> BatchTrajectories:
        """Sample ``runs`` trajectories from ``(0, 0, 0)`` until ``b == B``.

        Raises:
            SimulationError: if any run exceeds ``max_steps`` (default
                ``MAX_STEPS_FACTOR * B``) without completing, indicating
                starvation parameters — the same guard as the serial
                path.
        """
        if runs < 1:
            raise ParameterError(f"runs must be >= 1, got {runs}")
        if rng is None:
            rng = np.random.default_rng(seed)
        params = self.params
        num_pieces = params.num_pieces
        limit = max_steps or self.MAX_STEPS_FACTOR * num_pieces

        dtype = np.int64
        n = np.zeros(runs, dtype=dtype)
        b = np.zeros(runs, dtype=dtype)
        i = np.zeros(runs, dtype=dtype)
        steps = np.zeros(runs, dtype=dtype)
        n_rows = [n.copy()]
        b_rows = [b.copy()]
        i_rows = [i.copy()]

        active = np.flatnonzero(b < num_pieces)
        step = 0
        while active.size:
            step += 1
            if step > limit:
                raise SimulationError(
                    f"{active.size} of {runs} batched trajectories exceeded "
                    f"{limit} steps without completing; parameters: "
                    f"{params.describe()}"
                )
            n_act, b_act, i_act = self.step_batch(
                n[active], b[active], i[active], rng
            )
            n[active] = n_act
            b[active] = b_act
            i[active] = i_act
            steps[active] = step
            n_rows.append(n.copy())
            b_rows.append(b.copy())
            i_rows.append(i.copy())
            active = active[b_act < num_pieces]

        return BatchTrajectories(
            params=params,
            n_hist=np.vstack(n_rows),
            b_hist=np.vstack(b_rows),
            i_hist=np.vstack(i_rows),
            steps=steps,
        )
