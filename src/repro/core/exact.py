"""Exact transient analysis of the download chain.

Monte-Carlo estimators (:mod:`repro.core.timeline`) scale to the
paper's B = 200 but carry sampling noise; for small parameter sets this
module computes the same quantities *exactly* by propagating the full
state distribution round by round:

* the exact pmf and CDF of the download time (rounds to ``b == B``);
* the exact expected trajectory ``E[b](t)``, ``E[i](t)``, ``E[n](t)``;
* the exact potential-set ratio ``E[i/s | b]`` of Figure 1(a),
  occupancy-weighted over all rounds spent at each piece count.

States with probability below ``prune`` are dropped (the discarded mass
is tracked and reported) so the propagation stays tractable; with the
default ``prune = 1e-12`` the error is far below the figures'
resolution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core.chain import DownloadChain, State
from repro.errors import ParameterError

__all__ = ["TransientResult", "propagate_distribution", "exact_potential_ratio"]


@dataclass(frozen=True)
class TransientResult:
    """Exact transient quantities up to a horizon.

    Attributes:
        rounds: array ``0..horizon``.
        completion_pmf: ``completion_pmf[t]`` = exact probability the
            download finishes at round ``t``.
        completion_cdf: running sum of the pmf.
        expected_pieces / expected_potential / expected_connections:
            unconditional expectations of ``b``, ``i``, ``n`` per round
            (absorbed trajectories contribute ``b = B``, ``i = n = 0``).
        pruned_mass: total probability discarded by pruning.
    """

    rounds: np.ndarray
    completion_pmf: np.ndarray
    completion_cdf: np.ndarray
    expected_pieces: np.ndarray
    expected_potential: np.ndarray
    expected_connections: np.ndarray
    pruned_mass: float

    def mean_download_time(self) -> float:
        """Mean rounds to completion, over the absorbed mass.

        Raises:
            ParameterError: if less than 99.9 % of the mass has absorbed
                within the horizon (the estimate would be biased).
        """
        absorbed = float(self.completion_cdf[-1])
        if absorbed < 0.999:
            raise ParameterError(
                f"only {absorbed:.4f} of the probability mass absorbed "
                "within the horizon; extend it for an unbiased mean"
            )
        return float(self.rounds @ self.completion_pmf / absorbed)


def propagate_distribution(
    chain: DownloadChain,
    horizon: int,
    *,
    prune: float = 1e-12,
) -> TransientResult:
    """Propagate the exact state distribution for ``horizon`` rounds."""
    if horizon < 1:
        raise ParameterError(f"horizon must be >= 1, got {horizon}")
    if not 0.0 <= prune < 1e-3:
        raise ParameterError(f"prune must be in [0, 1e-3), got {prune}")

    num_pieces = chain.params.num_pieces
    distribution: Dict[State, float] = {chain.initial_state: 1.0}
    transition_cache: Dict[State, Dict[State, float]] = {}

    completion_pmf = np.zeros(horizon + 1)
    expected_pieces = np.zeros(horizon + 1)
    expected_potential = np.zeros(horizon + 1)
    expected_connections = np.zeros(horizon + 1)
    absorbed_mass = 0.0
    pruned_mass = 0.0

    for round_index in range(horizon + 1):
        # Record expectations for this round.
        e_b = absorbed_mass * num_pieces
        e_i = 0.0
        e_n = 0.0
        for state, prob in distribution.items():
            e_b += prob * state.b
            e_i += prob * state.i
            e_n += prob * state.n
        expected_pieces[round_index] = e_b
        expected_potential[round_index] = e_i
        expected_connections[round_index] = e_n

        if round_index == horizon:
            break

        # One exact transition step.
        successors: Dict[State, float] = {}
        newly_absorbed = 0.0
        for state, prob in distribution.items():
            dist = transition_cache.get(state)
            if dist is None:
                dist = chain.transition_distribution(state)
                transition_cache[state] = dist
            for nxt, p in dist.items():
                mass = prob * p
                if chain.is_complete(nxt):
                    newly_absorbed += mass
                else:
                    successors[nxt] = successors.get(nxt, 0.0) + mass
        if prune > 0.0:
            kept: Dict[State, float] = {}
            for state, prob in successors.items():
                if prob >= prune:
                    kept[state] = prob
                else:
                    pruned_mass += prob
            successors = kept
        distribution = successors
        absorbed_mass += newly_absorbed
        completion_pmf[round_index + 1] = newly_absorbed

    return TransientResult(
        rounds=np.arange(horizon + 1),
        completion_pmf=completion_pmf,
        completion_cdf=np.cumsum(completion_pmf),
        expected_pieces=expected_pieces,
        expected_potential=expected_potential,
        expected_connections=expected_connections,
        pruned_mass=pruned_mass,
    )


def exact_potential_ratio(
    chain: DownloadChain,
    *,
    horizon: int | None = None,
    prune: float = 1e-12,
) -> np.ndarray:
    """Exact ``E[i/s | b]`` over ``b = 0..B`` (Figure 1(a), exactly).

    Weights every round's state distribution by occupancy: the value at
    ``b`` is the expectation of ``i/s`` over all (round, trajectory)
    pairs whose piece count is ``b``.  Entries never visited are NaN.

    Args:
        horizon: propagation length; defaults to an ample multiple of
            the parallelism bound.
    """
    params = chain.params
    if horizon is None:
        horizon = max(20 * params.num_pieces, 200)
    num_pieces = params.num_pieces
    sums = np.zeros(num_pieces + 1)
    weights = np.zeros(num_pieces + 1)

    distribution: Dict[State, float] = {chain.initial_state: 1.0}
    transition_cache: Dict[State, Dict[State, float]] = {}
    for _round in range(horizon):
        if not distribution:
            break
        for state, prob in distribution.items():
            sums[state.b] += prob * state.i / params.ns_size
            weights[state.b] += prob
        successors: Dict[State, float] = {}
        for state, prob in distribution.items():
            dist = transition_cache.get(state)
            if dist is None:
                dist = chain.transition_distribution(state)
                transition_cache[state] = dist
            for nxt, p in dist.items():
                if chain.is_complete(nxt):
                    continue
                mass = prob * p
                if mass >= prune:
                    successors[nxt] = successors.get(nxt, 0.0) + mass
        distribution = successors

    with np.errstate(invalid="ignore", divide="ignore"):
        ratio = np.where(weights > 0, sums / np.maximum(weights, 1e-300), np.nan)
    ratio[num_pieces] = 0.0  # completion: the potential set is empty
    return ratio
