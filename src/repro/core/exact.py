"""Exact transient analysis of the download chain.

Monte-Carlo estimators (:mod:`repro.core.timeline`) scale to the
paper's B = 200 but carry sampling noise; this module computes the same
quantities *exactly* by propagating the full state distribution round
by round:

* the exact pmf and CDF of the download time (rounds to ``b == B``);
* the exact expected trajectory ``E[b](t)``, ``E[i](t)``, ``E[n](t)``;
* the exact potential-set ratio ``E[i/s | b]`` of Figure 1(a),
  occupancy-weighted over all rounds spent at each piece count.

Two engines back the same API:

* ``method="sparse"`` (default) — the state vector is propagated by
  CSR matrix-vector products against the compiled
  :class:`~repro.core.sparse.SparseChainOperator`; this runs the
  paper-scale ``B=200, k=7, s=50`` space (81 600 states) in seconds.
* ``method="dict"`` — the original ``Dict[State, float]`` propagation
  with per-state Python loops, kept as the independent reference the
  equivalence suite pins the sparse engine against.  States with
  probability below ``prune`` are dropped (tracked in ``pruned_mass``)
  so it stays tractable.

For horizon-free means and variances, prefer the fundamental-matrix
solve (:func:`repro.core.sparse.solve_fundamental` /
:func:`repro.core.sparse.mean_hitting_time`) over propagation.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core.chain import DownloadChain, State
from repro.core.methods import Method
from repro.errors import ParameterError

__all__ = [
    "TransientResult",
    "PotentialRatioExact",
    "propagate_distribution",
    "exact_potential_ratio",
]

_DEPRECATION_TEMPLATE = (
    "repro.core.exact.{name} is deprecated; use "
    "repro.api.solve(params, {quantity!r}, method=...) instead"
)

#: Default threshold above which discarded probability mass triggers a
#: :class:`RuntimeWarning` (both engines report it; the dict path can
#: accumulate real mass when ``prune`` is set aggressively).
PRUNED_MASS_WARN = 1e-6


@dataclass(frozen=True)
class TransientResult:
    """Exact transient quantities up to a horizon.

    Attributes:
        rounds: array ``0..horizon``.
        completion_pmf: ``completion_pmf[t]`` = exact probability the
            download finishes at round ``t``.
        completion_cdf: running sum of the pmf.
        expected_pieces / expected_potential / expected_connections:
            unconditional expectations of ``b``, ``i``, ``n`` per round
            (absorbed trajectories contribute ``b = B``, ``i = n = 0``).
        pruned_mass: probability discarded along the way — dict-path
            pruning below ``prune``, or (sparse path) the largest
            per-row mass the operator compile dropped before
            renormalising.
        method: which engine produced the result.
    """

    rounds: np.ndarray
    completion_pmf: np.ndarray
    completion_cdf: np.ndarray
    expected_pieces: np.ndarray
    expected_potential: np.ndarray
    expected_connections: np.ndarray
    pruned_mass: float
    method: str = "dict"

    @property
    def tail_mass(self) -> float:
        """Probability mass still unabsorbed at the horizon."""
        return float(max(1.0 - self.completion_cdf[-1], 0.0))

    def mean_download_time(self) -> float:
        """Mean rounds to completion, over the absorbed mass.

        Raises:
            ParameterError: if less than 99.9 % of the mass has absorbed
                within the horizon (the estimate would be biased).  The
                horizon-free alternative is the fundamental-matrix
                solve: :func:`repro.core.sparse.mean_hitting_time`.
        """
        absorbed = float(self.completion_cdf[-1])
        if absorbed < 0.999:
            raise ParameterError(
                f"only {absorbed:.4f} of the probability mass absorbed "
                f"within the horizon (tail_mass={self.tail_mass:.3e}); "
                "extend the horizon, or use the horizon-free exact mean "
                "from repro.core.sparse.mean_hitting_time / "
                "solve_fundamental (the method='exact' path of the "
                "figure runners)"
            )
        return float(self.rounds @ self.completion_pmf / absorbed)


@dataclass(frozen=True, eq=False)
class PotentialRatioExact:
    """Exact occupancy-weighted ``E[i/s | b]`` (Figure 1(a)).

    Attributes:
        ratio: per piece count ``b = 0..B``, the expectation of ``i/s``
            over all (round, trajectory) pairs holding ``b`` pieces
            (NaN where ``b`` is never occupied; 0 at ``b == B``).
        occupancy: the weights behind each entry — expected rounds spent
            at each piece count (within the horizon for the dict path,
            over the whole download for the sparse path).
        pruned_mass: probability mass discarded while computing the
            curve (see :func:`exact_potential_ratio`).
        method: which engine produced the result.
    """

    ratio: np.ndarray
    occupancy: np.ndarray
    pruned_mass: float
    method: str


def _warn_pruned(pruned_mass: float, warn_above: float, method: str) -> None:
    if pruned_mass > warn_above:
        warnings.warn(
            f"exact analysis ({method}) discarded {pruned_mass:.3e} of "
            f"probability mass (> {warn_above:.1e}); tighten prune / "
            "drop_tol if the curves must be exact to that resolution",
            RuntimeWarning,
            stacklevel=3,
        )


def _propagate_distribution_impl(
    chain: DownloadChain,
    horizon: int,
    *,
    prune: float = 1e-12,
    method: "str | Method" = "sparse",
) -> TransientResult:
    """Propagate the exact state distribution for ``horizon`` rounds.

    Args:
        prune: dict-path threshold below which per-state mass is
            dropped (tracked in ``pruned_mass``).  The sparse path keeps
            the full vector and ignores it.
        method: ``Method.EXACT`` (alias ``"sparse"``; the CSR mat-vec
            loop, the default) or ``Method.DICT`` (the per-state
            reference loop).  Both produce the same
            :class:`TransientResult` to within pruning error.
    """
    if horizon < 1:
        raise ParameterError(f"horizon must be >= 1, got {horizon}")
    if not 0.0 <= prune < 1e-3:
        raise ParameterError(f"prune must be in [0, 1e-3), got {prune}")
    method = Method.parse(method, allowed=(Method.EXACT, Method.DICT))
    if method is Method.EXACT:
        return _propagate_sparse(chain, horizon)
    return _propagate_dict(chain, horizon, prune)


def propagate_distribution(
    chain: DownloadChain,
    horizon: int,
    *,
    prune: float = 1e-12,
    method: str = "sparse",
) -> TransientResult:
    """Deprecated shim over :func:`repro.api.solve` (``"transient"``).

    Same signature and bit-identical results as the historical entry
    point; new code should call
    ``solve(params, "transient", method=..., horizon=...)``.
    """
    warnings.warn(
        _DEPRECATION_TEMPLATE.format(
            name="propagate_distribution", quantity="transient"
        ),
        DeprecationWarning,
        stacklevel=2,
    )
    return _propagate_distribution_impl(
        chain, horizon, prune=prune, method=method
    )


def _propagate_sparse(chain: DownloadChain, horizon: int) -> TransientResult:
    """Vectorized propagation on the compiled CSR operator."""
    operator = chain.kernel.sparse_operator()
    num_pieces = chain.params.num_pieces
    transition = operator.transition
    absorb = operator.absorb
    b_coord = operator.b_of.astype(float)
    i_coord = operator.i_of.astype(float)
    n_coord = operator.n_of.astype(float)

    state = np.zeros(operator.num_states)
    state[operator.start] = 1.0
    completion_pmf = np.zeros(horizon + 1)
    expected_pieces = np.zeros(horizon + 1)
    expected_potential = np.zeros(horizon + 1)
    expected_connections = np.zeros(horizon + 1)
    absorbed_mass = 0.0

    for round_index in range(horizon + 1):
        expected_pieces[round_index] = (
            absorbed_mass * num_pieces + state @ b_coord
        )
        expected_potential[round_index] = state @ i_coord
        expected_connections[round_index] = state @ n_coord
        if round_index == horizon:
            break
        if not state.any():
            # Everything absorbed: the remaining rounds are constant.
            expected_pieces[round_index + 1 :] = absorbed_mass * num_pieces
            break
        newly_absorbed = float(state @ absorb)
        state = state @ transition
        absorbed_mass += newly_absorbed
        completion_pmf[round_index + 1] = newly_absorbed

    return TransientResult(
        rounds=np.arange(horizon + 1),
        completion_pmf=completion_pmf,
        completion_cdf=np.cumsum(completion_pmf),
        expected_pieces=expected_pieces,
        expected_potential=expected_potential,
        expected_connections=expected_connections,
        pruned_mass=float(operator.dropped_mass),
        method="sparse",
    )


def _propagate_dict(
    chain: DownloadChain, horizon: int, prune: float
) -> TransientResult:
    """The per-state reference loop (original implementation)."""
    num_pieces = chain.params.num_pieces
    distribution: Dict[State, float] = {chain.initial_state: 1.0}
    transition_cache: Dict[State, Dict[State, float]] = {}

    completion_pmf = np.zeros(horizon + 1)
    expected_pieces = np.zeros(horizon + 1)
    expected_potential = np.zeros(horizon + 1)
    expected_connections = np.zeros(horizon + 1)
    absorbed_mass = 0.0
    pruned_mass = 0.0

    for round_index in range(horizon + 1):
        # Record expectations for this round.
        e_b = absorbed_mass * num_pieces
        e_i = 0.0
        e_n = 0.0
        for state, prob in distribution.items():
            e_b += prob * state.b
            e_i += prob * state.i
            e_n += prob * state.n
        expected_pieces[round_index] = e_b
        expected_potential[round_index] = e_i
        expected_connections[round_index] = e_n

        if round_index == horizon:
            break

        # One exact transition step.
        successors: Dict[State, float] = {}
        newly_absorbed = 0.0
        for state, prob in distribution.items():
            dist = transition_cache.get(state)
            if dist is None:
                dist = chain.transition_distribution(state)
                transition_cache[state] = dist
            for nxt, p in dist.items():
                mass = prob * p
                if chain.is_complete(nxt):
                    newly_absorbed += mass
                else:
                    successors[nxt] = successors.get(nxt, 0.0) + mass
        if prune > 0.0:
            kept: Dict[State, float] = {}
            for state, prob in successors.items():
                if prob >= prune:
                    kept[state] = prob
                else:
                    pruned_mass += prob
            successors = kept
        distribution = successors
        absorbed_mass += newly_absorbed
        completion_pmf[round_index + 1] = newly_absorbed

    return TransientResult(
        rounds=np.arange(horizon + 1),
        completion_pmf=completion_pmf,
        completion_cdf=np.cumsum(completion_pmf),
        expected_pieces=expected_pieces,
        expected_potential=expected_potential,
        expected_connections=expected_connections,
        pruned_mass=pruned_mass,
        method="dict",
    )


def _exact_potential_ratio_impl(
    chain: DownloadChain,
    *,
    horizon: int | None = None,
    prune: float = 1e-12,
    method: "str | Method" = "sparse",
    warn_above: float = PRUNED_MASS_WARN,
) -> PotentialRatioExact:
    """Exact ``E[i/s | b]`` over ``b = 0..B`` (Figure 1(a), exactly).

    Weights every round's state distribution by occupancy: the value at
    ``b`` is the expectation of ``i/s`` over all (round, trajectory)
    pairs whose piece count is ``b``.  Entries never visited are NaN.

    ``method="sparse"`` (default) reads the curve off the
    fundamental-matrix expected-visits solve — horizon-free and exact
    over the *whole* download, fast enough for the paper-scale
    parameter sets.  ``method="dict"`` is the propagating reference; its
    per-transition pruning discards mass that is now tracked in
    ``pruned_mass`` (historically it was dropped silently) and a
    :class:`RuntimeWarning` fires when the total exceeds
    ``warn_above``.

    Args:
        horizon: dict-path propagation length; defaults to an ample
            multiple of the parallelism bound.  Ignored by the sparse
            path (which needs no horizon).
        prune: dict-path per-transition mass threshold.
        method: ``Method.EXACT`` (alias ``"sparse"``) or
            ``Method.DICT``.
        warn_above: pruned-mass level above which to warn.
    """
    method = Method.parse(method, allowed=(Method.EXACT, Method.DICT))
    params = chain.params
    if method is Method.EXACT:
        solution = chain.kernel.sparse_operator().solution()
        pruned = float(chain.kernel.sparse_operator().dropped_mass)
        _warn_pruned(pruned, warn_above, "sparse")
        return PotentialRatioExact(
            ratio=solution.potential_ratio,
            occupancy=solution.occupancy_by_pieces,
            pruned_mass=pruned,
            method="sparse",
        )

    if horizon is None:
        horizon = max(20 * params.num_pieces, 200)
    num_pieces = params.num_pieces
    sums = np.zeros(num_pieces + 1)
    weights = np.zeros(num_pieces + 1)
    pruned_mass = 0.0

    distribution: Dict[State, float] = {chain.initial_state: 1.0}
    transition_cache: Dict[State, Dict[State, float]] = {}
    for _round in range(horizon):
        if not distribution:
            break
        for state, prob in distribution.items():
            sums[state.b] += prob * state.i / params.ns_size
            weights[state.b] += prob
        successors: Dict[State, float] = {}
        for state, prob in distribution.items():
            dist = transition_cache.get(state)
            if dist is None:
                dist = chain.transition_distribution(state)
                transition_cache[state] = dist
            for nxt, p in dist.items():
                if chain.is_complete(nxt):
                    continue
                mass = prob * p
                if mass >= prune:
                    successors[nxt] = successors.get(nxt, 0.0) + mass
                else:
                    pruned_mass += mass
        distribution = successors

    with np.errstate(invalid="ignore", divide="ignore"):
        ratio = np.where(weights > 0, sums / np.maximum(weights, 1e-300), np.nan)
    ratio[num_pieces] = 0.0  # completion: the potential set is empty
    _warn_pruned(pruned_mass, warn_above, "dict")
    return PotentialRatioExact(
        ratio=ratio,
        occupancy=weights,
        pruned_mass=pruned_mass,
        method="dict",
    )


def exact_potential_ratio(
    chain: DownloadChain,
    *,
    horizon: int | None = None,
    prune: float = 1e-12,
    method: str = "sparse",
    warn_above: float = PRUNED_MASS_WARN,
) -> PotentialRatioExact:
    """Deprecated shim over :func:`repro.api.solve` (``"potential_ratio"``).

    Same signature and bit-identical results as the historical entry
    point; new code should call
    ``solve(params, "potential_ratio", method=...)``.
    """
    warnings.warn(
        _DEPRECATION_TEMPLATE.format(
            name="exact_potential_ratio", quantity="potential_ratio"
        ),
        DeprecationWarning,
        stacklevel=2,
    )
    return _exact_potential_ratio_impl(
        chain,
        horizon=horizon,
        prune=prune,
        method=method,
        warn_above=warn_above,
    )
