"""Mean-field ODE backend: the deterministic large-swarm limit.

The exact sparse engine answers every quantity by enumerating the
``(n, b, i)`` transient space — ``B (k+1)(s+1)`` states — and the
Monte-Carlo samplers trade that enumeration for noise.  This module
adds the third regime: the *mean-field* (fluid / epidemiological)
limit, exact as the swarm size ``N`` grows, whose cost is independent
of ``N`` and polynomial only in the tiny ``(k, s)`` margins.

Peer layer — closure of the (n, b, i) chain
-------------------------------------------
Every peer follows the paper's synchronous round chain.  In a large
swarm the piece count concentrates: we replace each peer's random ``b``
by the deterministic mean path ``b̄(t)`` while propagating the *full
joint law* ``rho(n, i)`` of the connection count and potential-set size
under the exact ``g``/``h`` kernels of Eq. (2)-(3) evaluated at
``c = min(b̄ + n, B - 1)`` (a trading peer never sees ``c = B``: in the
chain ``b + n >= B`` means the round completes the download).  The
round map is continuized into the coupled ODE system::

    d rho / dt = rho K(b̄) - rho          (master equation, rate 1/round)
    d b̄  / dt = E_rho[ n ]               (one piece per connection-round)

solved with :func:`scipy.integrate.solve_ivp`.  Peers reaching
``b̄ + n >= B`` are absorbed (download complete); the survivor mass
``S(t)`` and absorbed mass close to 1 exactly when the kernel rows are
stochastic — the mass-conservation invariant the conformance suite
checks.

Three boundary details keep the continuization faithful to the
synchronous chain:

* **Exact first two rounds.** From ``(0, 0, 0)`` the chain is
  deterministic in ``b`` through round 2 (``b' = 1`` with ``n' = 0``,
  then ``b`` holds at 1 while connections form), so the ODE starts at
  ``t = 2`` from one *discrete* application of the kernel — no
  continuization error where round boundaries matter most.
* **Round-boundary correction.** A synchronous peer realises a level
  crossing only at the next integer round: for a dispersed crossing
  time ``tau``, ``E[ceil(tau)] ~= E[tau] + 1/2``.  Every first-passage
  readout (timeline levels, download time) therefore adds
  :data:`ROUND_CORRECTION`.
* **Trading-power cap.** ``p(c)`` is interpolated on ``c in [0, B-1]``
  and held constant beyond: the ``p(B) = 0`` cell of Eq. (1) belongs to
  completed peers, which the absorption term already removes.

Against the exact fundamental-matrix solve this closure lands within
~1% on the mean download time across the calibration grid (see
``tests/conformance/``), degrading gracefully only in the
stall-dominated small-``s`` regime where no large-``N`` limit helps.

Swarm layer — per-piece population transport
--------------------------------------------
:class:`SwarmMeanField` lifts the peer velocity field to swarm scale:
``x_l(t)`` counts leechers holding ``l`` pieces, transported along the
levels at the peer-layer velocity and throttled by the swarm's shared
upload capacity; completions feed a seed population ``y(t)`` with
departures at rate ``gamma_s``.  With a single level the system is
*identically* the Qiu-Srikant fluid model (`repro.baselines.fluid`) —
``dx/dt = lambda - theta x - min(c x, mu(eta x + y))`` — which the
conformance suite asserts trajectory-for-trajectory.

Swarm size enters the peer layer only through the escape probabilities
(``alpha = lambda w s / N``, :meth:`ModelParameters.alpha_from_swarm`),
so one peer-layer solve covers any ``N`` — that is what makes
10**5..10**7-peer swarms answerable in milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, NamedTuple, Optional

import numpy as np
import scipy.integrate

from repro.core.binomial import binomial_pmf, convolve_pmf
from repro.core.parameters import ModelParameters
from repro.core.phases import Phase
from repro.core.trading_power import exchange_probability_curve
from repro.errors import ConvergenceError, ParameterError

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

__all__ = [
    "ROUND_CORRECTION",
    "DEFAULT_RTOL",
    "DEFAULT_ATOL",
    "DEFAULT_DRAIN_TOL",
    "MeanFieldTables",
    "MeanFieldTrajectory",
    "MeanFieldSolution",
    "build_tables",
    "solve_mean_field",
    "SwarmMeanField",
    "SwarmTrajectory",
]

#: Half-round added to every first-passage readout: a synchronous peer
#: realises a crossing at the next integer round, and for a dispersed
#: continuous crossing time ``tau``, ``E[ceil(tau)] ~= E[tau] + 1/2``.
ROUND_CORRECTION = 0.5

#: Default `solve_ivp` tolerances.  The closure error (~1% of the mean
#: download time) dominates far above this integration error, so the
#: defaults favour speed; tighten per-call for invariant checks.
DEFAULT_RTOL = 1e-4
DEFAULT_ATOL = 1e-7

#: Survivor mass below which the integration stops: the neglected tail
#: contributes at most ``drain_tol / min(alpha, gamma)`` rounds.
DEFAULT_DRAIN_TOL = 1e-7

#: Escape-branch switch: ``c == 1`` escapes a stall with ``alpha``
#: (bootstrap), ``c > 1`` with ``gamma`` (last phase).  On the
#: continuous ``c`` axis the branch flips at 1.5.
_ESCAPE_SWITCH = 1.5


class MeanFieldTables(NamedTuple):
    """Precomputed kernel tables driving the mean-field right-hand side.

    Attributes:
        p_curve: trading power ``p(c)`` for integer ``c = 0..B``
            (Eq. 1; shared with :class:`~repro.core.transitions.TransitionKernel`).
        trade_pmf: shape ``(B, s + 1)``; row ``c`` is the trading-branch
            pmf ``Bin(s, p(c))`` of the ``g`` kernel for integer
            ``c = 0..B-1`` (``c = B`` belongs to completed peers).
        conn_map: shape ``(k + 1, s + 1, k + 1)``;
            ``conn_map[n, i']`` is the ``h`` kernel pmf of ``n'`` —
            ``Bin(n, p_r) (+) Bin(max(min(i', k) - n, 0), p_n)``.
    """

    p_curve: np.ndarray
    trade_pmf: np.ndarray
    conn_map: np.ndarray


def build_tables(
    params: ModelParameters, *, p_curve: Optional[np.ndarray] = None
) -> MeanFieldTables:
    """Build the kernel tables for ``params``.

    Args:
        p_curve: optional precomputed trading-power curve (index ``c``),
            e.g. ``cache.kernel(params).p_curve`` — Eq. (1) is O(B^3)
            and by far the dominant cold-start cost at paper scale.
    """
    B, k, s = params.num_pieces, params.max_conns, params.ns_size
    if p_curve is None:
        p_curve = exchange_probability_curve(B, params.phi)
    p_curve = np.asarray(p_curve, dtype=float)
    if p_curve.shape != (B + 1,):
        raise ParameterError(
            f"p_curve must have shape ({B + 1},), got {p_curve.shape}"
        )

    # Trading-branch pmf rows Bin(s, p(c)), all c at once: the stable
    # multiplicative recurrence of repro.core.binomial vectorized over
    # rows (with the p > 1/2 symmetry flip to avoid underflow).
    ps = p_curve[:B]
    q = np.minimum(ps, 1.0 - ps)
    trade_pmf = np.zeros((B, s + 1))
    trade_pmf[:, 0] = (1.0 - q) ** s
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(q < 1.0, q / (1.0 - q), 0.0)
    for m in range(s):
        trade_pmf[:, m + 1] = trade_pmf[:, m] * ((s - m) / (m + 1)) * ratio
    flip = ps > 0.5
    trade_pmf[flip] = trade_pmf[flip, ::-1]
    trade_pmf /= trade_pmf.sum(axis=1, keepdims=True)

    # h kernel: n' ~ Bin(n, p_r) (+) Bin(free, p_n), free = min(i',k)-n.
    conv = np.zeros((k + 1, k + 1, k + 1))
    for n in range(k + 1):
        survivors = binomial_pmf(n, params.p_reenc)
        for free in range(k + 1 - n):
            pmf = convolve_pmf(survivors, binomial_pmf(free, params.p_new))
            conv[n, free, : n + free + 1] = pmf
    conn_map = np.zeros((k + 1, s + 1, k + 1))
    for n in range(k + 1):
        for i_next in range(s + 1):
            conn_map[n, i_next] = conv[n, max(min(i_next, k) - n, 0)]
    return MeanFieldTables(
        p_curve=p_curve, trade_pmf=trade_pmf, conn_map=conn_map
    )


@dataclass(frozen=True)
class MeanFieldTrajectory:
    """The integrated mean-field path on the solver's time grid.

    Attributes:
        times: round axis (starts at 2 — rounds 0..2 are exact).
        pieces_mean: deterministic piece count ``b̄(t)``, capped at B.
        survivor_mass: mass of peers still downloading, ``S(t)``.
        completed_mass: absorbed (finished) mass; ``S + completed = 1``
            up to integration error — the conservation invariant.
        potential_mean: survivor-average normalised potential set
            ``E[i]/s`` (NaN once the survivors have drained).
    """

    times: np.ndarray
    pieces_mean: np.ndarray
    survivor_mass: np.ndarray
    completed_mass: np.ndarray
    potential_mean: np.ndarray


@dataclass(frozen=True)
class MeanFieldSolution:
    """Everything one peer-layer mean-field solve answers.

    Attributes:
        params: the model parameters solved.
        download_time: expected rounds to ``b == B`` (round-boundary
            corrected).
        timeline: ``timeline[x]`` — expected first round holding at
            least ``x`` pieces, ``x = 0..B`` (``timeline[B]`` equals
            ``download_time``).
        potential_ratio: ``E[i]/s`` among peers crossing each piece
            level (NaN at level 0, mirroring the exact engine).
        occupancy: expected rounds spent per piece level (the
            level-crossing gaps; the mean-field analogue of the sampler
            observation counts).
        phase_rounds: expected rounds per download phase
            (:class:`~repro.core.phases.Phase` keys; COMPLETE is the
            absorbing phase and spends 0 rounds).
        trajectory: the integrated path (golden-test surface).
        stats: solver counters — ``nfev``, ``steps``, ``t_final``,
            ``drained_mass``.
    """

    params: ModelParameters
    download_time: float
    timeline: np.ndarray
    potential_ratio: np.ndarray
    occupancy: np.ndarray
    phase_rounds: Dict[Phase, float]
    trajectory: MeanFieldTrajectory
    stats: Dict[str, float]


def _gh_round(
    rho: np.ndarray,
    pieces: float,
    params: ModelParameters,
    tables: MeanFieldTables,
    nvec: np.ndarray,
) -> np.ndarray:
    """One ``g`` then ``h`` kernel application at common piece count.

    ``rho`` has shape ``(k + 1, s + 1)``; the trading power input
    ``c = pieces + n`` is capped at ``B - 1`` (see module docstring) and
    the pmf row is interpolated linearly between the integer-``c``
    rows, so at integer ``b`` this reproduces the chain kernels exactly.
    """
    B = params.num_pieces
    c = np.minimum(pieces + nvec, float(B) - 1.0)
    low = np.floor(c).astype(int)
    frac = c - low
    high = np.minimum(low + 1, B - 1)
    trade = (
        (1.0 - frac)[:, None] * tables.trade_pmf[low]
        + frac[:, None] * tables.trade_pmf[high]
    )
    escape = np.where(
        pieces + nvec < _ESCAPE_SWITCH, params.alpha, params.gamma
    )
    mid = rho[:, 1:].sum(axis=1)[:, None] * trade
    mid[:, 0] += rho[:, 0] * (1.0 - escape)
    mid[:, 1] += rho[:, 0] * escape
    return np.einsum("ni,nim->mi", mid, tables.conn_map)


def solve_mean_field(
    params: ModelParameters,
    *,
    rtol: float = DEFAULT_RTOL,
    atol: float = DEFAULT_ATOL,
    drain_tol: float = DEFAULT_DRAIN_TOL,
    max_rounds: Optional[float] = None,
    tables: Optional[MeanFieldTables] = None,
) -> MeanFieldSolution:
    """Solve the peer-layer mean-field ODE system for ``params``.

    Args:
        rtol / atol: `solve_ivp` tolerances (defaults favour speed; the
            closure error dominates far above them).
        drain_tol: survivor mass at which the integration terminates.
        max_rounds: hard time horizon; the default scales with ``B``
            and the slowest escape rate.  Exceeding it raises
            :class:`~repro.errors.ConvergenceError`.
        tables: precomputed :class:`MeanFieldTables` (e.g. via
            :meth:`repro.runtime.cache.KernelCache.meanfield_tables`);
            built on the fly when omitted.

    Returns:
        A :class:`MeanFieldSolution`; cost is independent of swarm size
        (see module docstring) and ``O((k s)``-sized linear algebra per
        right-hand-side evaluation.
    """
    if rtol <= 0 or atol <= 0:
        raise ParameterError(f"rtol/atol must be > 0, got {rtol}/{atol}")
    if not 0 < drain_tol < 1:
        raise ParameterError(f"drain_tol must be in (0, 1), got {drain_tol}")
    B, k, s = params.num_pieces, params.max_conns, params.ns_size
    if tables is None:
        tables = build_tables(params)
    nvec = np.arange(k + 1, dtype=float)
    ivec = np.arange(s + 1, dtype=float)
    size = (k + 1) * (s + 1)
    levels = np.arange(B + 1, dtype=float)

    # Rounds 0..2 are exact: b' = 1 deterministically from (0, 0, 0)
    # with n' = 0 (c = 0), and b holds at 1 through round 2 while the
    # first connections form.  State (0,0,0) and (0,1,i) are both
    # bootstrap rounds (b + n <= 1).
    rho_round1 = np.zeros((k + 1, s + 1))
    rho_round1[0] = binomial_pmf(s, params.p_init)
    if B == 1:
        # b' = 1 == B: the first round completes the download.
        return _degenerate_single_piece(params, rho_round1)
    rho_round2 = _gh_round(rho_round1, 1.0, params, tables, nvec)

    # ODE state: [rho (flattened), b̄, absorbed, ∫S, ∫boot, ∫last].
    absorbed_at = float(B) - 1e-12

    def rhs(_t: float, y: np.ndarray) -> np.ndarray:
        rho = np.maximum(y[:size], 0.0).reshape(k + 1, s + 1)
        pieces = min(y[size], float(B))
        rho_next = _gh_round(rho, pieces, params, tables, nvec)
        completing = (pieces + nvec) >= absorbed_at
        flux = rho_next[completing, :].sum()
        d_rho = rho_next - rho
        d_rho[completing, :] -= rho_next[completing, :]
        survivors = rho.sum()
        row_mass = rho.sum(axis=1)
        mean_conns = (
            float(nvec @ row_mass) / survivors if survivors > 1e-14 else 0.0
        )
        bootstrap = pieces + nvec <= _ESCAPE_SWITCH
        return np.concatenate([
            d_rho.ravel(),
            [
                mean_conns,
                flux,
                survivors,
                rho[bootstrap, :].sum(),
                rho[~bootstrap, 0].sum(),
            ],
        ])

    def drained(_t: float, y: np.ndarray) -> float:
        return float(np.maximum(y[:size], 0.0).sum()) - drain_tol

    drained.terminal = True
    drained.direction = -1

    horizon = max_rounds if max_rounds is not None else (
        400.0 * B + 100.0 / min(params.alpha, params.gamma)
    )
    if horizon <= 2.0:
        raise ParameterError(f"max_rounds must be > 2, got {horizon}")
    y0 = np.concatenate([rho_round2.ravel(), [1.0, 0.0, 0.0, 0.0, 0.0]])
    sol = scipy.integrate.solve_ivp(
        rhs,
        (2.0, horizon),
        y0,
        method="RK45",
        rtol=rtol,
        atol=atol,
        events=drained,
        dense_output=True,
    )
    if sol.status < 0 or (sol.status == 0 and drained(0.0, sol.y[:, -1]) > 0):
        raise ConvergenceError(
            f"mean-field integration did not drain by t={horizon}: "
            f"{sol.message} (survivor mass "
            f"{np.maximum(sol.y[:size, -1], 0.0).sum():.3e})"
        )

    times = sol.t
    pieces_mean = np.minimum(sol.y[size], float(B))
    survivor_mass = np.maximum(sol.y[:size], 0.0).sum(axis=0)
    completed_mass = sol.y[size + 1]
    # Expected rounds: 2 exact rounds + survivor-mass integral, plus
    # the round-boundary correction (see ROUND_CORRECTION).
    download_time = 2.0 + float(sol.y[size + 2, -1]) + ROUND_CORRECTION

    # Timeline: invert the monotone b̄(t).  Levels the deterministic
    # path never reaches (the last fraction of a piece is supplied by
    # the completing jump b + n >= B) are filled with the mean
    # download time, as is level B itself.
    crossing = np.interp(levels, pieces_mean, times, right=np.nan)
    timeline = crossing + ROUND_CORRECTION
    timeline[0] = 0.0
    timeline[1] = 1.0
    timeline = np.where(np.isnan(timeline), download_time, timeline)
    timeline = np.minimum(timeline, download_time)
    np.maximum.accumulate(timeline, out=timeline)
    occupancy = np.diff(timeline, append=download_time)
    occupancy[B] = 0.0

    # Potential ratio per level: survivor-average E[i]/s evaluated at
    # the middle of the level's occupancy window (crossing + 1/2).
    potential_ratio = np.full(B + 1, np.nan)
    potential_ratio[1] = float(rho_round1[0] @ ivec) / s
    t_end = float(times[-1])
    for level in range(2, B + 1):
        probe = crossing[level - 1] if level < B else t_end - 1e-9
        if np.isnan(probe):
            probe = t_end - 1e-9
        probe = min(max(probe + ROUND_CORRECTION, 2.0), t_end)
        rho = np.maximum(sol.sol(probe)[:size], 0.0).reshape(k + 1, s + 1)
        mass = rho.sum()
        if mass > 1e-13:
            potential_ratio[level] = float(rho.sum(axis=0) @ ivec) / (s * mass)

    with np.errstate(invalid="ignore", divide="ignore"):
        potential_mean = np.where(
            survivor_mass > 1e-13,
            (ivec @ np.maximum(sol.y[:size], 0.0).reshape(k + 1, s + 1, -1)
             .sum(axis=0)) / (s * np.maximum(survivor_mass, 1e-300)),
            np.nan,
        )

    # Phases: rounds 0 and 1 are bootstrap by construction; the ODE
    # integrals split the remainder, and the round-boundary correction
    # belongs to the efficient bulk.
    boot = 2.0 + float(sol.y[size + 3, -1])
    last = float(sol.y[size + 4, -1])
    phase_rounds = {
        Phase.BOOTSTRAP: boot,
        Phase.EFFICIENT: max(download_time - boot - last, 0.0),
        Phase.LAST: last,
    }

    return MeanFieldSolution(
        params=params,
        download_time=download_time,
        timeline=timeline,
        potential_ratio=potential_ratio,
        occupancy=occupancy,
        phase_rounds=phase_rounds,
        trajectory=MeanFieldTrajectory(
            times=times,
            pieces_mean=pieces_mean,
            survivor_mass=survivor_mass,
            completed_mass=completed_mass,
            potential_mean=potential_mean,
        ),
        stats={
            "nfev": int(sol.nfev),
            "steps": int(times.size),
            "t_final": t_end,
            "drained_mass": float(survivor_mass[-1]),
        },
    )


def _degenerate_single_piece(
    params: ModelParameters, rho_round1: np.ndarray
) -> MeanFieldSolution:
    """``B == 1``: round 0 delivers the only piece — no ODE needed."""
    s = params.ns_size
    ivec = np.arange(s + 1, dtype=float)
    timeline = np.array([0.0, 1.0])
    times = np.array([0.0, 1.0])
    return MeanFieldSolution(
        params=params,
        download_time=1.0,
        timeline=timeline,
        potential_ratio=np.array([np.nan, float(rho_round1[0] @ ivec) / s]),
        occupancy=np.array([1.0, 0.0]),
        phase_rounds={
            Phase.BOOTSTRAP: 1.0,
            Phase.EFFICIENT: 0.0,
            Phase.LAST: 0.0,
        },
        trajectory=MeanFieldTrajectory(
            times=times,
            pieces_mean=np.array([0.0, 1.0]),
            survivor_mass=np.array([1.0, 0.0]),
            completed_mass=np.array([0.0, 1.0]),
            potential_mean=np.array([np.nan, np.nan]),
        ),
        stats={"nfev": 0, "steps": 2, "t_final": 1.0, "drained_mass": 0.0},
    )


# ----------------------------------------------------------------------
# Swarm layer: per-piece population transport over the peer velocities
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SwarmTrajectory:
    """Integrated swarm populations.

    Attributes:
        times: swarm time axis (rounds).
        leechers: shape ``(levels, points)`` — population per piece
            level.
        seeds: seed population ``y(t)``.
        completed: cumulative completed downloads.
    """

    times: np.ndarray
    leechers: np.ndarray
    seeds: np.ndarray
    completed: np.ndarray

    def total_leechers(self) -> np.ndarray:
        """``x(t)`` summed over the piece levels."""
        return self.leechers.sum(axis=0)


@dataclass(frozen=True)
class SwarmMeanField:
    """Population transport over piece levels with shared upload capacity.

    Leechers at level ``l`` (holding ``l/L`` of the file) advance at
    the peer-layer velocity ``level_velocity[l]`` (levels/round),
    throttled by the swarm-wide factor
    ``phi = min(1, capacity / demand)`` with capacity
    ``mu (eta X + y)`` files/round — exactly the Qiu-Srikant service
    term.  With ``levels == 1`` the system *is* the Qiu-Srikant fluid
    model with download rate ``c = level_velocity[0]``
    (:class:`repro.baselines.fluid.FluidModel`), reproduced
    trajectory-for-trajectory (to round-off) by the conformance suite.

    Attributes:
        level_velocity: downlink velocity per piece level
            (levels/round); length defines the level count ``L``.
        arrival_rate: ``lambda``, new leechers per round (into level 0).
        upload_rate: ``mu``, files per peer per round uploaded.
        efficiency: ``eta``, sharing effectiveness (the quantity the
            multiphased model *derives*; see
            :meth:`repro.runtime.cache.KernelCache.efficiency_point`).
        abort_rate: ``theta``, per-leecher abandonment rate.
        seed_departure_rate: ``gamma_s`` > 0.
    """

    level_velocity: np.ndarray
    arrival_rate: float
    upload_rate: float = 1.0
    efficiency: float = 1.0
    abort_rate: float = 0.0
    seed_departure_rate: float = 1.0

    def __post_init__(self) -> None:
        velocity = np.atleast_1d(
            np.asarray(self.level_velocity, dtype=float)
        )
        if velocity.ndim != 1 or velocity.size == 0:
            raise ParameterError("level_velocity must be a non-empty 1-D array")
        if (velocity <= 0).any():
            raise ParameterError("level_velocity entries must be > 0")
        object.__setattr__(self, "level_velocity", velocity)
        if self.arrival_rate < 0:
            raise ParameterError(
                f"arrival_rate must be >= 0, got {self.arrival_rate}"
            )
        if self.upload_rate <= 0:
            raise ParameterError(
                f"upload_rate must be > 0, got {self.upload_rate}"
            )
        if not 0.0 < self.efficiency <= 1.0:
            raise ParameterError(
                f"efficiency must be in (0, 1], got {self.efficiency}"
            )
        if self.abort_rate < 0:
            raise ParameterError(
                f"abort_rate must be >= 0, got {self.abort_rate}"
            )
        if self.seed_departure_rate <= 0:
            raise ParameterError(
                f"seed_departure_rate must be > 0, "
                f"got {self.seed_departure_rate}"
            )

    @property
    def levels(self) -> int:
        return int(self.level_velocity.size)

    @classmethod
    def from_peer_solution(
        cls,
        solution: MeanFieldSolution,
        *,
        arrival_rate: float,
        upload_rate: float = 1.0,
        efficiency: float = 1.0,
        abort_rate: float = 0.0,
        seed_departure_rate: float = 1.0,
        floor: float = 1e-3,
    ) -> "SwarmMeanField":
        """Lift a peer-layer solve into the swarm transport system.

        The level velocity is the reciprocal of the peer layer's
        expected occupancy per level (rounds spent holding ``l``
        pieces), floored at ``floor`` levels/round so the transport
        operator stays well-posed at the slow boundary levels.
        """
        occupancy = solution.occupancy[:-1]
        with np.errstate(divide="ignore"):
            velocity = np.where(occupancy > 0, 1.0 / occupancy, np.inf)
        velocity = np.clip(velocity, floor, 1.0 / max(floor, 1e-12))
        return cls(
            level_velocity=velocity,
            arrival_rate=arrival_rate,
            upload_rate=upload_rate,
            efficiency=efficiency,
            abort_rate=abort_rate,
            seed_departure_rate=seed_departure_rate,
        )

    def completion_rate(self, state: np.ndarray) -> float:
        """Downloads completing per round at ``state = (x_0.., y)``."""
        flux = self._level_flux(np.maximum(state[: self.levels], 0.0),
                                max(float(state[self.levels]), 0.0))
        return float(flux[-1])

    def _level_flux(self, x: np.ndarray, y: float) -> np.ndarray:
        desired = self.level_velocity * x
        # Demand in file units: crossing all L levels moves one file.
        demand = float(desired.sum()) / self.levels
        capacity = self.upload_rate * (
            self.efficiency * float(x.sum()) + y
        )
        if demand <= capacity:
            return desired
        return desired * (capacity / demand) if demand > 0.0 else desired

    def derivatives(self, state: np.ndarray) -> np.ndarray:
        """Right-hand side at ``state = (x_0..x_{L-1}, y)``."""
        L = self.levels
        x = np.maximum(state[:L], 0.0)
        y = max(float(state[L]), 0.0)
        flux = self._level_flux(x, y)
        inflow = np.concatenate([[self.arrival_rate], flux[:-1]])
        dx = inflow - self.abort_rate * x - flux
        dy = flux[-1] - self.seed_departure_rate * y
        return np.concatenate([dx, [dy]])

    def integrate(
        self,
        horizon: float,
        *,
        x0: Optional[np.ndarray] = None,
        y0: float = 1.0,
        points: int = 200,
    ) -> SwarmTrajectory:
        """Integrate the transport ODEs from ``(x0, y0)`` to ``horizon``.

        Mirrors :meth:`repro.baselines.fluid.FluidModel.integrate`
        (RK45, ``max_step = horizon / points``) so the single-level
        reduction reproduces the Qiu-Srikant trajectories exactly.
        """
        if horizon <= 0:
            raise ParameterError(f"horizon must be > 0, got {horizon}")
        if points < 2:
            raise ParameterError(f"points must be >= 2, got {points}")
        L = self.levels
        if x0 is None:
            x0 = np.zeros(L)
        x0 = np.asarray(x0, dtype=float)
        if x0.shape != (L,):
            raise ParameterError(
                f"x0 must have shape ({L},), got {x0.shape}"
            )
        times = np.linspace(0.0, horizon, points)
        solution = scipy.integrate.solve_ivp(
            lambda _t, state: self.derivatives(state),
            (0.0, horizon),
            np.concatenate([x0, [y0]]),
            t_eval=times,
            method="RK45",
            max_step=horizon / points,
        )
        if not solution.success:
            raise ConvergenceError(
                f"swarm mean-field integration failed: {solution.message}"
            )
        # Completions by quadrature of the completion flux on the output
        # grid — kept out of the ODE state so the single-level system is
        # *identically* the Qiu-Srikant one (same error norm, same
        # steps, same trajectory).
        rate = np.array([
            self.completion_rate(solution.y[:, j])
            for j in range(times.size)
        ])
        completed = np.concatenate(
            [[0.0], np.cumsum(np.diff(times) * (rate[:-1] + rate[1:]) / 2.0)]
        )
        return SwarmTrajectory(
            times=times,
            leechers=np.clip(solution.y[:L], 0.0, None),
            seeds=np.clip(solution.y[L], 0.0, None),
            completed=completed,
        )
