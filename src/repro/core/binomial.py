"""Binomial distribution machinery used by the transition kernels.

The model uses four binomially distributed random variables (paper
Section 3.1):

* ``X1 ~ Bin(s, p_init)`` — initial connection attempts on joining;
* ``X2 ~ Bin(s, p(b+n))`` — potential-set size in the trading phase;
* ``Y1 ~ Bin(n, p_r)`` — surviving re-encounters;
* ``Y2 ~ Bin(max(min(i', k) - n, 0), p_n)`` — newly formed connections.

``Y1 + Y2`` (the next connection count) is the convolution of two
binomial pmfs, provided here by :func:`convolve_pmf`.

All pmfs are computed with a multiplicative recurrence rather than via
factorials so they stay exact-to-float for the small ``n`` (tens) this
model uses, without any dependency on ``scipy`` in the hot path.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError

__all__ = [
    "binomial_pmf",
    "convolve_pmf",
    "binomial_mean",
    "sample_pmf",
    "validate_pmf",
]

#: Tolerance used when checking that a pmf sums to one.
PMF_ATOL = 1e-9


def binomial_pmf(n: int, p: float) -> np.ndarray:
    """Return the pmf of ``Bin(n, p)`` as an array of length ``n + 1``.

    ``pmf[m] == Pr(X = m)``.  Uses the stable recurrence
    ``pmf[m+1] = pmf[m] * (n - m) / (m + 1) * p / (1 - p)`` seeded from
    ``pmf[0] = (1 - p)**n``, with the degenerate endpoints ``p == 0`` and
    ``p == 1`` special-cased so no division by zero occurs.

    Raises:
        ParameterError: if ``n < 0`` or ``p`` is outside ``[0, 1]``.
    """
    if n < 0:
        raise ParameterError(f"binomial trial count must be >= 0, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ParameterError(f"binomial success probability must be in [0, 1], got {p}")

    pmf = np.zeros(n + 1)
    if p == 0.0:
        pmf[0] = 1.0
        return pmf
    if p == 1.0:
        pmf[n] = 1.0
        return pmf
    if p > 0.5:
        # Symmetry Bin(n, p)[m] == Bin(n, 1-p)[n-m]: keeps the seed term
        # (1-p)**n away from underflow when p approaches 1.
        return binomial_pmf(n, 1.0 - p)[::-1].copy()

    ratio = p / (1.0 - p)
    pmf[0] = (1.0 - p) ** n
    for m in range(n):
        pmf[m + 1] = pmf[m] * (n - m) / (m + 1) * ratio
    # Guard against accumulated round-off: renormalise only when the drift
    # is within numerical-noise range; a larger drift indicates a bug.
    total = pmf.sum()
    if abs(total - 1.0) > 1e-6:
        raise ParameterError(
            f"binomial pmf for n={n}, p={p} summed to {total}, expected 1"
        )
    pmf /= total
    return pmf


def convolve_pmf(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Convolve two pmfs: the distribution of the sum of independent variables.

    The result has length ``len(a) + len(b) - 1`` and sums to one
    (up to floating-point noise) whenever the inputs do.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.ndim != 1 or b.ndim != 1 or a.size == 0 or b.size == 0:
        raise ParameterError("convolve_pmf expects two non-empty 1-D arrays")
    return np.convolve(a, b)


def binomial_mean(n: int, p: float) -> float:
    """Mean of ``Bin(n, p)``; validates its arguments like :func:`binomial_pmf`."""
    if n < 0:
        raise ParameterError(f"binomial trial count must be >= 0, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ParameterError(f"binomial success probability must be in [0, 1], got {p}")
    return n * p


def validate_pmf(pmf: np.ndarray, *, name: str = "pmf") -> np.ndarray:
    """Check that ``pmf`` is a valid probability mass function.

    Returns the array unchanged on success so the call can be inlined.

    Raises:
        ParameterError: on negative entries or a sum that deviates from one
            by more than :data:`PMF_ATOL`.
    """
    pmf = np.asarray(pmf, dtype=float)
    if pmf.ndim != 1:
        raise ParameterError(f"{name} must be 1-D, got shape {pmf.shape}")
    if (pmf < -PMF_ATOL).any():
        raise ParameterError(f"{name} has negative entries")
    total = pmf.sum()
    if abs(total - 1.0) > 1e-6:
        raise ParameterError(f"{name} sums to {total}, expected 1")
    return pmf


def sample_pmf(pmf: np.ndarray, rng: np.random.Generator) -> int:
    """Draw one index from a pmf using inverse-transform sampling."""
    u = rng.random()
    acc = 0.0
    for idx, mass in enumerate(pmf):
        acc += mass
        if u < acc:
            return idx
    # Floating-point slack: return the last index with positive mass.
    nonzero = np.flatnonzero(pmf > 0)
    return int(nonzero[-1]) if nonzero.size else 0
