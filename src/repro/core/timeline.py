"""Timeline and potential-set estimators over the download chain.

These produce the two model-side series of the paper's Figure 1:

* :func:`potential_ratio_by_pieces` — E[ i / s | b ] as a function of
  the number of downloaded pieces ``b`` (Figure 1(a));
* :func:`mean_timeline` — the expected first-passage time (in
  piece-exchange rounds) to each piece count ``b`` (Figure 1(b)).

Both are Monte-Carlo estimators over independent chain trajectories.
By default they run on the vectorized
:class:`~repro.core.batch.BatchChainSampler` fast path, which advances
all ``runs`` trajectories simultaneously; ``batch=False`` restores the
serial per-trajectory loop (same distribution, different RNG order —
the two paths produce statistically equivalent, not bit-identical,
estimates).  :func:`expected_download_time_exact` and
``phase_duration_statistics(..., method="exact")`` bypass sampling
entirely: they read the same quantities off the compiled sparse
operator's fundamental-matrix solve (:mod:`repro.core.sparse`), which
handles the paper-scale state space directly.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.batch import BatchChainSampler
from repro.core.chain import DownloadChain
from repro.core.methods import Method
from repro.core.phases import Phase, phase_durations
from repro.core.sparse import _solve_fundamental_impl, mean_hitting_time
from repro.errors import ParameterError

__all__ = [
    "TimelineResult",
    "PotentialRatioResult",
    "PhaseStatistics",
    "mean_timeline",
    "potential_ratio_by_pieces",
    "phase_duration_statistics",
    "expected_download_time_exact",
]


@dataclass(frozen=True)
class TimelineResult:
    """Mean first-passage times to each piece count.

    Attributes:
        pieces: array ``0..B``.
        mean_steps: ``mean_steps[b]`` is the average round at which a
            peer first holds at least ``b`` pieces.
        std_steps: per-``b`` sample standard deviation across runs.
        runs: number of Monte-Carlo trajectories averaged.
    """

    pieces: np.ndarray
    mean_steps: np.ndarray
    std_steps: np.ndarray
    runs: int

    def total_download_time(self) -> float:
        """Expected rounds to complete the whole file."""
        return float(self.mean_steps[-1])


@dataclass(frozen=True)
class PotentialRatioResult:
    """Average normalised potential-set size per piece count.

    Attributes:
        pieces: array ``0..B``.
        ratio: ``ratio[b]`` is E[ i / s ] over all rounds spent holding
            exactly ``b`` pieces (NaN where ``b`` was never observed,
            which happens when connection parallelism skips counts).
        observations: rounds contributing to each ``b``.
    """

    pieces: np.ndarray
    ratio: np.ndarray
    observations: np.ndarray


def _mean_timeline_impl(
    chain: DownloadChain,
    *,
    runs: int = 64,
    seed: Optional[int] = None,
    batch: bool = True,
) -> TimelineResult:
    """Monte-Carlo estimate of first-passage rounds to each piece count.

    Piece counts can advance by more than one per round (``n`` pieces
    arrive in parallel), so "first passage to ``b``" means the first
    round at which the peer holds *at least* ``b`` pieces.

    Args:
        batch: step all runs simultaneously on the vectorized
            :class:`~repro.core.batch.BatchChainSampler` (default);
            ``False`` keeps the serial per-trajectory loop (same
            distribution, different RNG consumption order).
    """
    if runs < 1:
        raise ParameterError(f"runs must be >= 1, got {runs}")
    num_pieces = chain.params.num_pieces
    if batch:
        hits = BatchChainSampler(chain).sample(runs, seed=seed).first_passage()
    else:
        hits = np.zeros((runs, num_pieces + 1))
        rng = np.random.default_rng(seed)
        for run in range(runs):
            traj = chain.trajectory(rng=rng)
            first = np.full(num_pieces + 1, -1.0)
            for step, state in enumerate(traj):
                b = state.b
                # Record first passage for every count newly reached.
                lower = 0 if step == 0 else traj[step - 1].b + 1
                for reached in range(lower, b + 1):
                    if first[reached] < 0:
                        first[reached] = step
            hits[run] = first
    mean = hits.mean(axis=0)
    std = hits.std(axis=0)
    return TimelineResult(
        pieces=np.arange(num_pieces + 1),
        mean_steps=mean,
        std_steps=std,
        runs=runs,
    )


def mean_timeline(
    chain: DownloadChain,
    *,
    runs: int = 64,
    seed: Optional[int] = None,
    batch: bool = True,
) -> TimelineResult:
    """Deprecated shim over :func:`repro.api.solve` (``"timeline"``).

    Same signature and bit-identical results as the historical entry
    point; new code should call
    ``solve(params, "timeline", method="batch"|"serial", runs=...)``.
    """
    warnings.warn(
        "repro.core.timeline.mean_timeline is deprecated; use "
        "repro.api.solve(params, 'timeline', method=...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _mean_timeline_impl(chain, runs=runs, seed=seed, batch=batch)


def potential_ratio_by_pieces(
    chain: DownloadChain,
    *,
    runs: int = 64,
    seed: Optional[int] = None,
    batch: bool = True,
) -> PotentialRatioResult:
    """Monte-Carlo estimate of E[ i / s | b ] (paper Figure 1(a)).

    For each trajectory, every round spent holding exactly ``b`` pieces
    contributes one sample of ``i / s``; samples are pooled across runs.

    Args:
        batch: use the vectorized batch sampler (default); ``False``
            keeps the serial per-trajectory loop.
    """
    if runs < 1:
        raise ParameterError(f"runs must be >= 1, got {runs}")
    num_pieces = chain.params.num_pieces
    s = chain.params.ns_size
    if batch:
        sums, counts = (
            BatchChainSampler(chain).sample(runs, seed=seed)
            .potential_accumulators()
        )
    else:
        sums = np.zeros(num_pieces + 1)
        counts = np.zeros(num_pieces + 1)
        rng = np.random.default_rng(seed)
        for _ in range(runs):
            for state in chain.trajectory(rng=rng):
                sums[state.b] += state.i / s
                counts[state.b] += 1
    with np.errstate(invalid="ignore", divide="ignore"):
        ratio = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
    return PotentialRatioResult(
        pieces=np.arange(num_pieces + 1),
        ratio=ratio,
        observations=counts,
    )


@dataclass(frozen=True)
class PhaseStatistics:
    """Monte-Carlo phase-duration statistics (paper Section 3.2).

    Attributes:
        mean / std: expected rounds (and spread) per phase.
        occupancy: fraction of the total download spent per phase.
        runs: trajectories averaged; 0 means the statistics came from
            the exact fundamental-matrix solve (``method="exact"``), in
            which case ``std`` entries are NaN (the solve yields the
            exact means directly, not a sampling spread).
    """

    mean: Dict[Phase, float]
    std: Dict[Phase, float]
    occupancy: Dict[Phase, float]
    runs: int

    def dominant(self) -> Phase:
        """The phase with the largest expected duration."""
        return max(self.mean, key=self.mean.get)


def phase_duration_statistics(
    chain: DownloadChain,
    *,
    runs: int = 64,
    seed: Optional[int] = None,
    batch: bool = True,
    method: Optional[str] = None,
) -> PhaseStatistics:
    """Expected rounds per phase (paper Section 3.2).

    Quantifies the paper's Section-3.2 narrative: for realistic peer
    sets the efficient/trading phase dominates ("most of the pieces are
    downloaded in this phase"), while small neighbor sets inflate the
    bootstrap and last phases.

    Args:
        batch: use the vectorized batch sampler (default); ``False``
            keeps the serial per-trajectory loop.  Ignored when
            ``method`` is given explicitly.
        method: ``"batch"`` / ``"serial"`` (alias ``"monte-carlo"``)
            select the Monte-Carlo paths (defaulting from ``batch``);
            ``"exact"`` reads the expected phase occupancies off the
            sparse fundamental-matrix solve — no sampling,
            ``runs``/``seed`` ignored, result has ``runs == 0`` and NaN
            ``std``.
    """
    phases = (Phase.BOOTSTRAP, Phase.EFFICIENT, Phase.LAST)
    method = Method.parse(
        method,
        allowed=(Method.BATCH, Method.SERIAL, Method.EXACT),
        default=Method.BATCH if batch else Method.SERIAL,
    )
    if method is Method.EXACT:
        solution = _solve_fundamental_impl(chain)
        mean = {
            phase: float(solution.phase_rounds[phase]) for phase in phases
        }
        total = sum(mean.values()) or 1.0
        return PhaseStatistics(
            mean=mean,
            std={phase: float("nan") for phase in phases},
            occupancy={phase: mean[phase] / total for phase in phases},
            runs=0,
        )
    if runs < 1:
        raise ParameterError(f"runs must be >= 1, got {runs}")
    if method is Method.BATCH:
        arrays = BatchChainSampler(chain).sample(runs, seed=seed).phase_durations()
    else:
        samples: Dict[Phase, list] = {phase: [] for phase in phases}
        rng = np.random.default_rng(seed)
        for _ in range(runs):
            durations = phase_durations(
                chain.trajectory(rng=rng), chain.params.num_pieces
            )
            for phase in phases:
                samples[phase].append(durations[phase])
        arrays = {
            phase: np.asarray(samples[phase], dtype=float) for phase in phases
        }
    totals = sum(arrays.values())
    total_mean = float(totals.mean()) or 1.0
    return PhaseStatistics(
        mean={phase: float(arr.mean()) for phase, arr in arrays.items()},
        std={phase: float(arr.std()) for phase, arr in arrays.items()},
        occupancy={
            phase: float(arr.mean()) / total_mean for phase, arr in arrays.items()
        },
        runs=runs,
    )


def expected_download_time_exact(chain: DownloadChain) -> float:
    """Exact expected rounds to reach ``b == B`` from ``(0, 0, 0)``.

    Delegates to the compiled sparse operator's fundamental-matrix solve
    (:func:`repro.core.sparse.mean_hitting_time`), which handles the
    paper-scale space in seconds.  Raises
    :class:`~repro.errors.ParameterError` once the transient space
    exceeds the operator's default cap (200k states).
    """
    return mean_hitting_time(chain)
