"""Timeline and potential-set estimators over the download chain.

These produce the two model-side series of the paper's Figure 1:

* :func:`potential_ratio_by_pieces` — E[ i / s | b ] as a function of
  the number of downloaded pieces ``b`` (Figure 1(a));
* :func:`mean_timeline` — the expected first-passage time (in
  piece-exchange rounds) to each piece count ``b`` (Figure 1(b)).

Both are Monte-Carlo estimators over independent chain trajectories.
By default they run on the vectorized
:class:`~repro.core.batch.BatchChainSampler` fast path, which advances
all ``runs`` trajectories simultaneously; ``batch=False`` restores the
serial per-trajectory loop (same distribution, different RNG order —
the two paths produce statistically equivalent, not bit-identical,
estimates).  For small state spaces,
:func:`expected_download_time_exact` solves the absorbing-chain linear
system instead and is used by the test suite to pin both Monte-Carlo
paths down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np
import scipy.sparse
import scipy.sparse.linalg

from repro.core.batch import BatchChainSampler
from repro.core.chain import DownloadChain, State
from repro.core.phases import Phase, phase_durations
from repro.errors import ParameterError

__all__ = [
    "TimelineResult",
    "PotentialRatioResult",
    "PhaseStatistics",
    "mean_timeline",
    "potential_ratio_by_pieces",
    "phase_duration_statistics",
    "expected_download_time_exact",
]


@dataclass(frozen=True)
class TimelineResult:
    """Mean first-passage times to each piece count.

    Attributes:
        pieces: array ``0..B``.
        mean_steps: ``mean_steps[b]`` is the average round at which a
            peer first holds at least ``b`` pieces.
        std_steps: per-``b`` sample standard deviation across runs.
        runs: number of Monte-Carlo trajectories averaged.
    """

    pieces: np.ndarray
    mean_steps: np.ndarray
    std_steps: np.ndarray
    runs: int

    def total_download_time(self) -> float:
        """Expected rounds to complete the whole file."""
        return float(self.mean_steps[-1])


@dataclass(frozen=True)
class PotentialRatioResult:
    """Average normalised potential-set size per piece count.

    Attributes:
        pieces: array ``0..B``.
        ratio: ``ratio[b]`` is E[ i / s ] over all rounds spent holding
            exactly ``b`` pieces (NaN where ``b`` was never observed,
            which happens when connection parallelism skips counts).
        observations: rounds contributing to each ``b``.
    """

    pieces: np.ndarray
    ratio: np.ndarray
    observations: np.ndarray


def mean_timeline(
    chain: DownloadChain,
    *,
    runs: int = 64,
    seed: Optional[int] = None,
    batch: bool = True,
) -> TimelineResult:
    """Monte-Carlo estimate of first-passage rounds to each piece count.

    Piece counts can advance by more than one per round (``n`` pieces
    arrive in parallel), so "first passage to ``b``" means the first
    round at which the peer holds *at least* ``b`` pieces.

    Args:
        batch: step all runs simultaneously on the vectorized
            :class:`~repro.core.batch.BatchChainSampler` (default);
            ``False`` keeps the serial per-trajectory loop (same
            distribution, different RNG consumption order).
    """
    if runs < 1:
        raise ParameterError(f"runs must be >= 1, got {runs}")
    num_pieces = chain.params.num_pieces
    if batch:
        hits = BatchChainSampler(chain).sample(runs, seed=seed).first_passage()
    else:
        hits = np.zeros((runs, num_pieces + 1))
        rng = np.random.default_rng(seed)
        for run in range(runs):
            traj = chain.trajectory(rng=rng)
            first = np.full(num_pieces + 1, -1.0)
            for step, state in enumerate(traj):
                b = state.b
                # Record first passage for every count newly reached.
                lower = 0 if step == 0 else traj[step - 1].b + 1
                for reached in range(lower, b + 1):
                    if first[reached] < 0:
                        first[reached] = step
            hits[run] = first
    mean = hits.mean(axis=0)
    std = hits.std(axis=0)
    return TimelineResult(
        pieces=np.arange(num_pieces + 1),
        mean_steps=mean,
        std_steps=std,
        runs=runs,
    )


def potential_ratio_by_pieces(
    chain: DownloadChain,
    *,
    runs: int = 64,
    seed: Optional[int] = None,
    batch: bool = True,
) -> PotentialRatioResult:
    """Monte-Carlo estimate of E[ i / s | b ] (paper Figure 1(a)).

    For each trajectory, every round spent holding exactly ``b`` pieces
    contributes one sample of ``i / s``; samples are pooled across runs.

    Args:
        batch: use the vectorized batch sampler (default); ``False``
            keeps the serial per-trajectory loop.
    """
    if runs < 1:
        raise ParameterError(f"runs must be >= 1, got {runs}")
    num_pieces = chain.params.num_pieces
    s = chain.params.ns_size
    if batch:
        sums, counts = (
            BatchChainSampler(chain).sample(runs, seed=seed)
            .potential_accumulators()
        )
    else:
        sums = np.zeros(num_pieces + 1)
        counts = np.zeros(num_pieces + 1)
        rng = np.random.default_rng(seed)
        for _ in range(runs):
            for state in chain.trajectory(rng=rng):
                sums[state.b] += state.i / s
                counts[state.b] += 1
    with np.errstate(invalid="ignore", divide="ignore"):
        ratio = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
    return PotentialRatioResult(
        pieces=np.arange(num_pieces + 1),
        ratio=ratio,
        observations=counts,
    )


@dataclass(frozen=True)
class PhaseStatistics:
    """Monte-Carlo phase-duration statistics (paper Section 3.2).

    Attributes:
        mean / std: expected rounds (and spread) per phase.
        occupancy: fraction of the total download spent per phase.
        runs: trajectories averaged.
    """

    mean: Dict[Phase, float]
    std: Dict[Phase, float]
    occupancy: Dict[Phase, float]
    runs: int

    def dominant(self) -> Phase:
        """The phase with the largest expected duration."""
        return max(self.mean, key=self.mean.get)


def phase_duration_statistics(
    chain: DownloadChain,
    *,
    runs: int = 64,
    seed: Optional[int] = None,
    batch: bool = True,
) -> PhaseStatistics:
    """Expected rounds per phase over Monte-Carlo trajectories.

    Quantifies the paper's Section-3.2 narrative: for realistic peer
    sets the efficient/trading phase dominates ("most of the pieces are
    downloaded in this phase"), while small neighbor sets inflate the
    bootstrap and last phases.

    Args:
        batch: use the vectorized batch sampler (default); ``False``
            keeps the serial per-trajectory loop.
    """
    if runs < 1:
        raise ParameterError(f"runs must be >= 1, got {runs}")
    phases = (Phase.BOOTSTRAP, Phase.EFFICIENT, Phase.LAST)
    if batch:
        arrays = BatchChainSampler(chain).sample(runs, seed=seed).phase_durations()
    else:
        samples: Dict[Phase, list] = {phase: [] for phase in phases}
        rng = np.random.default_rng(seed)
        for _ in range(runs):
            durations = phase_durations(
                chain.trajectory(rng=rng), chain.params.num_pieces
            )
            for phase in phases:
                samples[phase].append(durations[phase])
        arrays = {
            phase: np.asarray(samples[phase], dtype=float) for phase in phases
        }
    totals = sum(arrays.values())
    total_mean = float(totals.mean()) or 1.0
    return PhaseStatistics(
        mean={phase: float(arr.mean()) for phase, arr in arrays.items()},
        std={phase: float(arr.std()) for phase, arr in arrays.items()},
        occupancy={
            phase: float(arr.mean()) / total_mean for phase, arr in arrays.items()
        },
        runs=runs,
    )


def expected_download_time_exact(chain: DownloadChain) -> float:
    """Exact expected rounds to reach ``b == B`` from ``(0, 0, 0)``.

    Enumerates the reachable transient states, assembles the absorbing-
    chain system ``(I - Q) t = 1`` and solves it sparsely.  Intended for
    small parameter sets (it raises once the reachable transient space
    exceeds 200k states); the Monte-Carlo estimators cover the rest.
    """
    limit = 200_000
    index: Dict[State, int] = {}
    order: list[State] = []

    def intern(state: State) -> int:
        idx = index.get(state)
        if idx is None:
            idx = len(order)
            if idx >= limit:
                raise ParameterError(
                    f"reachable transient state space exceeds {limit}; use "
                    "mean_timeline (Monte Carlo) for this parameter set"
                )
            index[state] = idx
            order.append(state)
        return idx

    start = chain.initial_state
    intern(start)
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    frontier = 0
    while frontier < len(order):
        state = order[frontier]
        frontier += 1
        for succ, prob in chain.transition_distribution(state).items():
            if chain.is_complete(succ):
                continue  # absorbed: contributes nothing to Q
            rows.append(index[state])
            cols.append(intern(succ))
            vals.append(prob)
    size = len(order)
    q = scipy.sparse.csr_matrix((vals, (rows, cols)), shape=(size, size))
    system = scipy.sparse.identity(size, format="csr") - q
    times = scipy.sparse.linalg.spsolve(system.tocsc(), np.ones(size))
    return float(times[index[start]])
