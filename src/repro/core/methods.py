"""The unified solver-method vocabulary.

Three method vocabularies grew up independently across the codebase:
the figure runners accepted ``exact`` / ``batch`` / ``serial`` (with a
``monte-carlo`` alias), the exact layer accepted ``sparse`` / ``dict``,
and :func:`repro.core.timeline.phase_duration_statistics` accepted
``batch`` / ``serial`` / ``exact``.  :class:`Method` is the single enum
behind all of them; the old spellings survive as aliases so every
historical call keeps working.

================  ====================================================
``AUTO``          pick for the caller: exact when the transient space
                  fits the operator cap, batched Monte Carlo in the
                  mid band, mean-field far above it
``EXACT``         sparse fundamental-matrix / CSR propagation engine
                  (aliases: ``sparse``, ``fundamental``)
``BATCH``         vectorized Monte Carlo on the batch sampler
``SERIAL``        per-trajectory Monte Carlo
                  (aliases: ``monte-carlo``, ``montecarlo``)
``DICT``          the per-state ``Dict[State, float]`` reference engine
                  (alias: ``reference``)
``MEANFIELD``     deterministic large-swarm ODE limit
                  (aliases: ``mean-field``, ``ode``)
================  ====================================================

This module is deliberately dependency-free (only ``repro.errors``) so
every layer — core engines, runners, CLI, service — can import it
without cycles.
"""

from __future__ import annotations

import enum
from typing import Iterable, Optional, Union

from repro.errors import ParameterError

__all__ = ["Method", "METHOD_ALIASES"]


class Method(str, enum.Enum):
    """Canonical estimator/engine selector shared by every entry point.

    Members compare equal to their canonical string value
    (``Method.EXACT == "exact"``), so code that stored plain strings
    keeps working unchanged.
    """

    AUTO = "auto"
    EXACT = "exact"
    BATCH = "batch"
    SERIAL = "serial"
    DICT = "dict"
    MEANFIELD = "meanfield"

    def __str__(self) -> str:  # "exact", not "Method.EXACT"
        return self.value

    @classmethod
    def parse(
        cls,
        value: Union["Method", str, None],
        *,
        allowed: Optional[Iterable["Method"]] = None,
        default: Optional["Method"] = None,
        context: str = "method",
    ) -> "Method":
        """Resolve a method name (or back-compat alias) to its enum.

        Args:
            value: a :class:`Method`, a canonical value, an alias from
                :data:`METHOD_ALIASES`, or ``None`` (returns
                ``default``).
            allowed: restrict the accepted members; anything else —
                including a valid member outside the set — raises with
                the allowed choices spelled out.
            default: returned when ``value`` is ``None`` (itself
                subject to the ``allowed`` check).
            context: name used in error messages (``"method"``,
                ``"--method"``, ...).

        Raises:
            ParameterError: unknown name, or a member outside
                ``allowed``; the message lists every valid choice and
                its aliases, so the caller's typo is actionable.
        """
        if value is None:
            if default is None:
                raise ParameterError(f"{context} must be given, got None")
            value = default
        if isinstance(value, cls):
            method = value
        else:
            if not isinstance(value, str):
                raise ParameterError(
                    f"{context} must be a string or Method, "
                    f"got {type(value).__name__}"
                )
            name = value.strip().lower()
            try:
                method = cls(name)
            except ValueError:
                method = METHOD_ALIASES.get(name)
            if method is None:
                raise ParameterError(
                    f"unknown {context} {value!r}; "
                    + cls._choices_text(allowed)
                )
        if allowed is not None and method not in tuple(allowed):
            raise ParameterError(
                f"{context} {method.value!r} is not valid here; "
                + cls._choices_text(allowed)
            )
        return method

    @classmethod
    def _choices_text(cls, allowed: Optional[Iterable["Method"]]) -> str:
        members = tuple(allowed) if allowed is not None else tuple(cls)
        parts = []
        for member in members:
            aliases = sorted(
                alias for alias, target in METHOD_ALIASES.items()
                if target is member
            )
            if aliases:
                parts.append(
                    f"{member.value!r} (alias "
                    + ", ".join(repr(a) for a in aliases)
                    + ")"
                )
            else:
                parts.append(repr(member.value))
        return "valid choices: " + ", ".join(parts)


#: Historical spellings, kept working forever.
METHOD_ALIASES = {
    "sparse": Method.EXACT,
    "fundamental": Method.EXACT,
    "monte-carlo": Method.SERIAL,
    "montecarlo": Method.SERIAL,
    "reference": Method.DICT,
    "mean-field": Method.MEANFIELD,
    "ode": Method.MEANFIELD,
}
