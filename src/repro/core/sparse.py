"""Sparse exact engine: the download chain compiled to one CSR operator.

The dict-based exact layer (:mod:`repro.core.exact`) propagates a
``Dict[State, float]`` with per-state Python loops, which caps it at toy
scale.  This module exploits the same structure the batch sampler's
dense tables use — the factored kernel ``f * g * h`` (paper Eqs. 2-3)
collapses to tiny keys — to compile the *entire* one-step transition
kernel over the transient state space into a single
``scipy.sparse.csr_matrix``:

* the transient space is the rectangle ``b = 0..B-1``, ``n = 0..k``,
  ``i = 0..s`` in b-major order (``T = B * (k+1) * (s+1)`` states, 81 600
  at the paper's ``B=200, k=7, s=50``);
* ``Q`` is assembled as a product of two sparse factor matrices built
  vectorially from the collapsed ``g``/``h`` tables — ``G`` applies the
  deterministic piece update and the potential-set kernel, ``H`` applies
  the connection kernel — so no Python-level per-state loop ever runs;
* because ``b`` never decreases, b-major ordering makes ``I - Q``
  block upper triangular: ``splu(..., permc_spec="NATURAL")`` factors it
  with almost no fill-in, and one LU serves both the hitting-time solve
  ``(I - Q) tau = 1`` and the expected-visits solve
  ``(I - Q)^T nu = e_start``.

On top of the operator, :func:`solve_fundamental` evaluates the
fundamental matrix ``N = (I - Q)^{-1}`` without ever forming it:

* exact mean *and variance* of the download time (no horizon to pick);
* exact expected visits per state, hence the exact occupancy per piece
  count, the exact Figure-1(a) ratio ``E[i/s | b]``, the exact
  Figure-1(b) timeline (cumulative occupancy below ``b``, valid because
  ``b`` is non-decreasing), and exact per-phase expected rounds.

Entries below ``drop_tol`` are dropped from the factor matrices and the
surviving rows renormalised; with the default ``1e-14`` the operator at
paper scale shrinks from ~31M to ~12M non-zeros while every derived
quantity is stable to ~1e-10.  A ``max_states`` cap fails fast (with a
:class:`~repro.errors.ParameterError`) before a pathological ``B*k*s``
can OOM a pool worker.

Callers that want memoization should go through
:meth:`repro.core.transitions.TransitionKernel.sparse_operator` (one
compile per kernel) or
:meth:`repro.runtime.cache.KernelCache.sparse_operator` (one compile per
process, with hit/miss telemetry).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

import numpy as np
import scipy.sparse
import scipy.sparse.csgraph
import scipy.sparse.linalg

from repro.core.parameters import ModelParameters
from repro.core.phases import Phase
from repro.core.trading_power import exchange_probability_curve
from repro.core.transitions import connection_pmf, potential_set_pmf
from repro.errors import ParameterError

__all__ = [
    "DEFAULT_DROP_TOL",
    "DEFAULT_MAX_STATES",
    "SparseChainOperator",
    "FundamentalSolution",
    "compile_sparse_operator",
    "solve_fundamental",
    "mean_hitting_time",
]

#: Factor-matrix entries below this are dropped (rows renormalised).
#: At paper scale this roughly third-sizes the operator; derived
#: quantities move by less than ~1e-10.
DEFAULT_DROP_TOL = 1e-14

#: Refuse to enumerate more transient states than this (the same order
#: as the pre-sparse BFS solver's limit).  At ``k=7, s=50`` the operator
#: costs roughly 170 bytes per state-row times the mean row density, so
#: the default keeps a compile comfortably under a gigabyte.
DEFAULT_MAX_STATES = 200_000


@dataclass(frozen=True, eq=False)
class FundamentalSolution:
    """Exact absorbing-chain quantities from one fundamental-matrix solve.

    Everything here is horizon-free: it comes from LU solves against
    ``I - Q`` restricted to the reachable transient states, not from
    truncated propagation.

    Attributes:
        mean_download_time: exact expected rounds to ``b == B`` from the
            start state ``(0, 0, 0)``.
        variance_download_time: exact variance of that hitting time.
        expected_visits: per transient state (operator index order), the
            expected number of rounds spent there; zero for states
            unreachable from the start.
        occupancy_by_pieces: ``occupancy_by_pieces[b]`` = expected rounds
            spent holding exactly ``b`` pieces (sums to the mean).
        timeline: ``timeline[b]`` = exact expected first round holding at
            least ``b`` pieces — the Figure-1(b) model curve.  Equals the
            cumulative occupancy below ``b`` because ``b`` never
            decreases.
        potential_ratio: ``potential_ratio[b]`` = exact occupancy-
            weighted ``E[i/s | b]`` — the Figure-1(a) curve (NaN where
            ``b`` is never occupied, 0 at ``b == B``).
        phase_rounds: exact expected rounds per download phase
            (bootstrap / efficient / last), classified exactly as
            :func:`repro.core.phases.classify_state`.
        reachable_states: transient states reachable from the start.
    """

    mean_download_time: float
    variance_download_time: float
    expected_visits: np.ndarray
    occupancy_by_pieces: np.ndarray
    timeline: np.ndarray
    potential_ratio: np.ndarray
    phase_rounds: Dict[Phase, float]
    reachable_states: int

    @property
    def std_download_time(self) -> float:
        """Exact standard deviation of the download time."""
        return float(np.sqrt(self.variance_download_time))


class SparseChainOperator:
    """The one-step kernel of one parameter set as a CSR matrix.

    States are indexed b-major: ``index = (b * (k+1) + n) * (s+1) + i``
    with ``b`` restricted to the transient range ``0..B-1`` (completed
    states are the implicit absorbing class).  Because ``b`` never
    decreases, every transition points at an equal-or-higher block — the
    property the natural-order LU factorisation relies on.

    Attributes:
        params: the parameter set the operator was compiled from.
        transition: ``(T, T)`` CSR matrix; row ``r`` is the distribution
            over transient successors of state ``r`` (rows of absorbing
            states — ``b >= 1`` and ``b + n >= B`` — are empty).
        absorb: per-row probability of absorbing this step.  Absorption
            is deterministic in this chain (the piece update ``f`` has a
            single successor), so entries are exactly 0 or 1 and
            ``transition.sum(axis=1) + absorb == 1`` row-wise.
        b_of / n_of / i_of: coordinate arrays decoding each index.
        start: index of the initial state ``(n=0, b=0, i=0)``.
        drop_tol: the compile's drop tolerance.
        dropped_mass: largest per-row probability mass dropped by
            ``drop_tol`` *before* renormalisation (a fidelity bound).
    """

    def __init__(
        self,
        params: ModelParameters,
        transition: scipy.sparse.csr_matrix,
        absorb: np.ndarray,
        b_of: np.ndarray,
        n_of: np.ndarray,
        i_of: np.ndarray,
        *,
        drop_tol: float,
        dropped_mass: float,
    ):
        self.params = params
        self.transition = transition
        self.absorb = absorb
        self.b_of = b_of
        self.n_of = n_of
        self.i_of = i_of
        self.drop_tol = drop_tol
        self.dropped_mass = dropped_mass
        self.start = self.index_of(0, 0, 0)
        self._reachable: Optional[np.ndarray] = None
        self._solution: Optional[FundamentalSolution] = None

    @property
    def num_states(self) -> int:
        """Transient state count ``T = B * (k+1) * (s+1)``."""
        return self.transition.shape[0]

    def index_of(self, n: int, b: int, i: int) -> int:
        """b-major index of transient state ``(n, b, i)``."""
        params = self.params
        if not 0 <= b < params.num_pieces:
            raise ParameterError(
                f"b={b} outside the transient range 0..{params.num_pieces - 1}"
            )
        if not 0 <= n <= params.max_conns:
            raise ParameterError(f"n={n} outside 0..{params.max_conns}")
        if not 0 <= i <= params.ns_size:
            raise ParameterError(f"i={i} outside 0..{params.ns_size}")
        return (b * (params.max_conns + 1) + n) * (params.ns_size + 1) + i

    def state_of(self, index: int) -> "tuple":
        """Decode an operator index back to ``(n, b, i)``."""
        if not 0 <= index < self.num_states:
            raise ParameterError(f"index {index} outside 0..{self.num_states - 1}")
        return (
            int(self.n_of[index]),
            int(self.b_of[index]),
            int(self.i_of[index]),
        )

    def reachable(self) -> np.ndarray:
        """Sorted indices of transient states reachable from the start.

        Sorting preserves the b-major order, so a slice of ``I - Q`` by
        this array stays block upper triangular.
        """
        if self._reachable is None:
            nodes = scipy.sparse.csgraph.breadth_first_order(
                self.transition, self.start, directed=True,
                return_predecessors=False,
            )
            reachable = np.sort(np.asarray(nodes, dtype=np.intp))
            reachable.setflags(write=False)
            self._reachable = reachable
        return self._reachable

    def solution(self) -> FundamentalSolution:
        """The (memoised) fundamental-matrix solve for this operator."""
        if self._solution is None:
            self._solution = _solve_fundamental(self)
        return self._solution


def compile_sparse_operator(
    source: Union[ModelParameters, "object"],
    *,
    drop_tol: float = DEFAULT_DROP_TOL,
    max_states: int = DEFAULT_MAX_STATES,
) -> SparseChainOperator:
    """Compile the transient one-step kernel into a CSR operator.

    The transition probability factors as ``f * g * h`` (Eqs. 2-3) with
    ``f`` deterministic, so ``Q`` is assembled as a product of two
    sparse factor matrices whose entries come straight from the
    authoritative pmf builders (:func:`potential_set_pmf` /
    :func:`connection_pmf`) evaluated at one representative state per
    collapsed key — exactly the construction
    :meth:`~repro.core.transitions.TransitionKernel.dense_tables` uses
    for batch sampling, so the three engines agree by construction:

    * ``G`` maps ``(n, b, i) -> (b', n, i')`` with weight
      ``g(i' | n, b, i)`` and the deterministic ``b' = f(n, b)``;
    * ``H`` maps ``(b', n, i') -> (b', n', i')`` with weight
      ``h(n' | n, b, i')``  (``h`` depends only on ``(n, i')`` whenever
      the originating trading power ``c >= 1``);
    * rows with ``c == 0`` (the just-joined column ``b = n = 0``), whose
      connection update is deterministically ``n' = 0``, bypass ``H``
      and are added directly.

    ``scipy`` performs the ``G @ H`` product in C, so compilation is
    vectorized end to end.

    Args:
        source: a :class:`ModelParameters`, or anything carrying one as
            ``.params`` (a chain or kernel).  This function always
            compiles afresh; go through the kernel or the runtime
            :class:`~repro.runtime.cache.KernelCache` for memoization.
        drop_tol: drop factor entries at or below this probability and
            renormalise the surviving rows (0 disables).
        max_states: refuse (with an actionable
            :class:`~repro.errors.ParameterError`) to enumerate a larger
            transient space.

    Raises:
        ParameterError: invalid tolerances, or a state space above
            ``max_states``.
    """
    params = source if isinstance(source, ModelParameters) else source.params
    if not 0.0 <= drop_tol < 1e-3:
        raise ParameterError(f"drop_tol must be in [0, 1e-3), got {drop_tol}")
    if max_states < 1:
        raise ParameterError(f"max_states must be >= 1, got {max_states}")
    num_pieces = params.num_pieces
    k = params.max_conns
    s = params.ns_size
    num_transient = num_pieces * (k + 1) * (s + 1)
    if num_transient > max_states:
        raise ParameterError(
            f"sparse operator would enumerate {num_transient:,} transient "
            f"states (B={num_pieces} x (k+1)={k + 1} x (s+1)={s + 1}), over "
            f"the cap max_states={max_states:,}; raise max_states if the "
            f"memory budget allows (roughly (s+1)+(k+1) non-zeros per "
            f"state) or use the batched Monte-Carlo estimators instead"
        )

    # Collapsed-key pmf tables from the authoritative builders, mirroring
    # TransitionKernel.dense_tables (same representative states).
    p_curve = exchange_probability_curve(num_pieces, params.phi)
    g_table = np.empty((num_pieces + 1, 2, s + 1))
    for c in range(num_pieces + 1):
        if c < num_pieces:
            n_rep, b_rep = 0, c
        else:
            n_rep, b_rep = 1, num_pieces - 1
        for flag, i_rep in ((0, 1), (1, 0)):
            g_table[c, flag] = potential_set_pmf(
                n_rep, b_rep, min(i_rep, s), params, p_curve=p_curve
            )
    h_table = np.zeros((k + 1, k + 1, k + 1))
    h_table[:, :, 0] = 1.0  # padding: point mass at n' = 0
    b_rep = 1 if num_pieces >= 2 else 0
    for n in range(k + 1):
        max_free = max(min(k, s) - n, 0)
        for free in range(max_free + 1):
            i_rep = min(n + free, s) if free == 0 else n + free
            if b_rep == 0 and n == 0:
                continue  # c == 0: handled by the direct rows below
            h_table[n, free] = connection_pmf(n, b_rep, i_rep, params)

    # State grids (b-major index order).
    grid_b, grid_n, grid_i = np.meshgrid(
        np.arange(num_pieces, dtype=np.intp),
        np.arange(k + 1, dtype=np.intp),
        np.arange(s + 1, dtype=np.intp),
        indexing="ij",
    )
    b_of = np.ascontiguousarray(grid_b.ravel())
    n_of = np.ascontiguousarray(grid_n.ravel())
    i_of = np.ascontiguousarray(grid_i.ravel())
    trading_power = np.minimum(b_of + n_of, num_pieces)
    b_next = np.where(b_of == 0, 1, trading_power)
    flag = (i_of == 0).astype(np.intp)
    live = b_next < num_pieces  # non-absorbing rows
    joined = trading_power == 0  # c == 0: deterministic n' = 0

    i_cols = np.arange(s + 1)
    shape = (num_transient, num_transient)

    # G: (n, b, i) -> (b', n, i'), weight g(i' | n, b, i); rows with
    # c == 0 bypass the H factor (their h is deterministic), absorbing
    # rows stay empty.
    g_rows = np.flatnonzero(live & ~joined)
    g_vals = g_table[trading_power[g_rows][:, None], flag[g_rows][:, None], i_cols]
    g_cols = (
        (b_next[g_rows][:, None] * (k + 1) + n_of[g_rows][:, None]) * (s + 1)
        + i_cols[None, :]
    )
    keep = g_vals > drop_tol
    factor_g = scipy.sparse.csr_matrix(
        (g_vals[keep], (np.repeat(g_rows, keep.sum(axis=1)), g_cols[keep])),
        shape=shape,
    )

    # H: (b', n, i') -> (b', n', i'), weight h(n' | n, i') — valid for
    # every intermediate G lands on, since those all originate from
    # states with c >= 1.
    free = np.clip(np.minimum(i_of, k) - n_of, 0, None)
    n_cols = np.arange(k + 1)
    h_vals = h_table[n_of[:, None], free[:, None], n_cols]
    h_cols = (
        (b_of[:, None] * (k + 1) + n_cols[None, :]) * (s + 1) + i_of[:, None]
    )
    keep = h_vals > drop_tol
    factor_h = scipy.sparse.csr_matrix(
        (h_vals[keep], (np.repeat(np.arange(num_transient), keep.sum(axis=1)),
                        h_cols[keep])),
        shape=shape,
    )

    transition = (factor_g @ factor_h).tocsr()

    # Direct rows for c == 0 (b = n = 0): b' = 1, i' ~ Bin(s, p_init),
    # n' = 0 deterministically.
    joined_rows = np.flatnonzero(live & joined)
    if joined_rows.size:
        d_vals = g_table[0, flag[joined_rows][:, None], i_cols]
        d_cols = np.broadcast_to(
            (1 * (k + 1) + 0) * (s + 1) + i_cols, d_vals.shape
        )
        keep = d_vals > drop_tol
        direct = scipy.sparse.csr_matrix(
            (d_vals[keep],
             (np.repeat(joined_rows, keep.sum(axis=1)), d_cols[keep])),
            shape=shape,
        )
        transition = (transition + direct).tocsr()

    # Renormalise live rows so dropped tails do not leak probability.
    row_sums = np.asarray(transition.sum(axis=1)).ravel()
    lost = np.where(live, 1.0 - row_sums, 0.0)
    dropped_mass = float(max(lost.max(initial=0.0), 0.0))
    scale = np.where(
        live & (row_sums > 0.0), 1.0 / np.where(row_sums > 0.0, row_sums, 1.0), 0.0
    )
    transition = scipy.sparse.diags(scale).dot(transition).tocsr()
    transition.sum_duplicates()
    absorb = (b_next == num_pieces).astype(float)

    for array in (absorb, b_of, n_of, i_of):
        array.setflags(write=False)
    return SparseChainOperator(
        params,
        transition,
        absorb,
        b_of,
        n_of,
        i_of,
        drop_tol=drop_tol,
        dropped_mass=dropped_mass,
    )


def _resolve_operator(
    source: "object",
    *,
    drop_tol: Optional[float],
    max_states: Optional[int],
) -> SparseChainOperator:
    """Find or compile the operator for chains/kernels/params/operators."""
    if isinstance(source, SparseChainOperator):
        return source
    kernel = getattr(source, "kernel", source)  # DownloadChain -> kernel
    if hasattr(kernel, "sparse_operator"):  # TransitionKernel: memoised
        return kernel.sparse_operator(drop_tol=drop_tol, max_states=max_states)
    return compile_sparse_operator(
        source,
        drop_tol=DEFAULT_DROP_TOL if drop_tol is None else drop_tol,
        max_states=DEFAULT_MAX_STATES if max_states is None else max_states,
    )


def _solve_fundamental(operator: SparseChainOperator) -> FundamentalSolution:
    """One LU of ``I - Q`` (reachable block), three triangular solves."""
    params = operator.params
    num_pieces = params.num_pieces
    reachable = operator.reachable()
    size = int(reachable.size)
    q_reach = operator.transition[reachable, :][:, reachable].tocsc()
    system = (scipy.sparse.identity(size, format="csc") - q_reach).tocsc()
    try:
        # Natural order keeps the block-upper-triangular structure the
        # b-major indexing provides, so the factorisation is near
        # fill-free; one LU serves tau, tau2, and the transposed visits
        # solve.
        lu = scipy.sparse.linalg.splu(system, permc_spec="NATURAL")
        hitting = lu.solve(np.ones(size))
    except RuntimeError as exc:
        raise ParameterError(
            "fundamental-matrix solve failed: I - Q is singular on the "
            "reachable transient states, so the expected download time "
            "is infinite (e.g. alpha or gamma of 0 strands the chain in "
            f"a stuck state): {exc}"
        ) from exc
    start_pos = int(np.searchsorted(reachable, operator.start))
    mean = float(hitting[start_pos])
    if not np.isfinite(mean):
        raise ParameterError(
            "fundamental-matrix solve produced a non-finite hitting time; "
            "the chain cannot reach completion from the start state"
        )
    # Second moment via N * tau: E[T^2] = (2N - I) tau.
    second = 2.0 * lu.solve(hitting) - hitting
    variance = float(max(second[start_pos] - mean * mean, 0.0))
    unit = np.zeros(size)
    unit[start_pos] = 1.0
    visits_reach = lu.solve(unit, trans="T")
    visits = np.zeros(operator.num_states)
    visits[reachable] = np.maximum(visits_reach, 0.0)

    occupancy = np.bincount(
        operator.b_of, weights=visits, minlength=num_pieces + 1
    )
    ratio_num = (
        np.bincount(
            operator.b_of, weights=visits * operator.i_of,
            minlength=num_pieces + 1,
        )
        / params.ns_size
    )
    with np.errstate(invalid="ignore", divide="ignore"):
        ratio = np.where(
            occupancy > 0.0, ratio_num / np.maximum(occupancy, 1e-300), np.nan
        )
    ratio[num_pieces] = 0.0  # completion: the potential set is empty
    # First passage to >= b happens after every round spent below b.
    timeline = np.concatenate(([0.0], np.cumsum(occupancy[:num_pieces])))

    parallelism = operator.b_of + operator.n_of
    bootstrap = parallelism <= 1
    last = (operator.i_of == 0) & ~bootstrap
    efficient = ~(bootstrap | last)
    phase_rounds = {
        Phase.BOOTSTRAP: float(visits[bootstrap].sum()),
        Phase.EFFICIENT: float(visits[efficient].sum()),
        Phase.LAST: float(visits[last].sum()),
    }

    for array in (visits, occupancy, timeline, ratio):
        array.setflags(write=False)
    return FundamentalSolution(
        mean_download_time=mean,
        variance_download_time=variance,
        expected_visits=visits,
        occupancy_by_pieces=occupancy,
        timeline=timeline,
        potential_ratio=ratio,
        phase_rounds=phase_rounds,
        reachable_states=size,
    )


def _solve_fundamental_impl(
    source: "object",
    *,
    drop_tol: Optional[float] = None,
    max_states: Optional[int] = None,
) -> FundamentalSolution:
    """Exact horizon-free transient quantities for one parameter set.

    Accepts a :class:`~repro.core.chain.DownloadChain`,
    :class:`~repro.core.transitions.TransitionKernel`,
    :class:`ModelParameters`, or a pre-compiled
    :class:`SparseChainOperator`; chain/kernel sources reuse the
    kernel-memoised operator and its cached solution.
    """
    return _resolve_operator(
        source, drop_tol=drop_tol, max_states=max_states
    ).solution()


def solve_fundamental(
    source: "object",
    *,
    drop_tol: Optional[float] = None,
    max_states: Optional[int] = None,
) -> FundamentalSolution:
    """Deprecated shim over :func:`repro.api.solve`.

    Same signature and bit-identical results as the historical entry
    point; new code should call ``solve(params, "timeline",
    method="exact")`` / ``solve(params, "download_time",
    method="exact")`` (or keep a compiled operator and read
    ``operator.solution()`` directly).
    """
    import warnings

    warnings.warn(
        "repro.core.sparse.solve_fundamental is deprecated; use "
        "repro.api.solve(params, 'timeline'|'download_time'|'phases', "
        "method='exact') instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _solve_fundamental_impl(
        source, drop_tol=drop_tol, max_states=max_states
    )


def mean_hitting_time(
    source: "object",
    *,
    drop_tol: Optional[float] = None,
    max_states: Optional[int] = None,
) -> float:
    """Exact expected rounds to ``b == B`` from the start state.

    The horizon-free alternative to
    :meth:`repro.core.exact.TransientResult.mean_download_time` — no
    propagation horizon to pick and no truncated tail to bias the mean.
    """
    return _solve_fundamental_impl(
        source, drop_tol=drop_tol, max_states=max_states
    ).mean_download_time
