"""The three-dimensional download-evolution Markov chain (Section 3).

:class:`DownloadChain` ties the kernels of
:mod:`repro.core.transitions` into a steppable, sampleable process:

* start at ``(0, 0, 0)`` — a fresh peer with no pieces;
* each step updates ``b`` (via ``f``), then ``i`` (via ``g``), then
  ``n`` (via ``h``, which sees the new ``i'``);
* the download is complete once ``b == B``; the paper's absorbing state
  ``(0, B, 0)`` is reached within two further bookkeeping steps, but
  every estimator in this package measures completion at ``b == B``.

One chain step corresponds to one piece-exchange round, so trajectory
lengths are directly comparable with the simulator's round counter
(Figure 1(b)'s "evolution timeline").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, NamedTuple, Optional

import numpy as np

from repro.core.parameters import ModelParameters
from repro.core.phases import Phase, classify_state
from repro.core.transitions import TransitionKernel, piece_successor
from repro.errors import ParameterError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.batch import BatchChainSampler

__all__ = ["State", "DownloadChain"]


class State(NamedTuple):
    """Chain state ``(n, b, i)``.

    Attributes:
        n: active connections, ``0 <= n <= k``.
        b: downloaded pieces, ``0 <= b <= B``.
        i: potential-set size, ``0 <= i <= s``.
    """

    n: int
    b: int
    i: int


class DownloadChain:
    """Sampleable download-evolution chain for one parameter set.

    Example:
        >>> from repro import DownloadChain, ModelParameters
        >>> chain = DownloadChain(ModelParameters(num_pieces=50, max_conns=4,
        ...                                       ns_size=20))
        >>> traj = chain.trajectory(seed=7)
        >>> traj[0], traj[-1].b
        (State(n=0, b=0, i=0), 50)
    """

    #: Hard cap on trajectory length, as a multiple of the
    #: zero-progress-free bound ``B`` steps.  A trajectory exceeding it
    #: indicates parameters under which the peer starves (e.g.
    #: ``alpha == gamma == 0``); :meth:`trajectory` raises then.
    MAX_STEPS_FACTOR = 10_000

    def __init__(self, params: ModelParameters):
        self.params = params
        self.kernel = TransitionKernel(params)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def initial_state(self) -> State:
        """A fresh peer: no connections, no pieces, empty potential set."""
        return State(0, 0, 0)

    def is_complete(self, state: State) -> bool:
        """True once the peer holds all ``B`` pieces."""
        return state.b >= self.params.num_pieces

    def phase(self, state: State) -> Phase:
        """Phase of ``state`` (see :mod:`repro.core.phases`)."""
        return classify_state(state, self.params.num_pieces)

    def validate_state(self, state: State) -> None:
        """Raise :class:`ParameterError` if ``state`` is outside the space."""
        if not 0 <= state.n <= self.params.max_conns:
            raise ParameterError(f"n={state.n} outside 0..{self.params.max_conns}")
        if not 0 <= state.b <= self.params.num_pieces:
            raise ParameterError(f"b={state.b} outside 0..{self.params.num_pieces}")
        if not 0 <= state.i <= self.params.ns_size:
            raise ParameterError(f"i={state.i} outside 0..{self.params.ns_size}")

    # ------------------------------------------------------------------
    # Stepping / sampling
    # ------------------------------------------------------------------
    def step(self, state: State, rng: np.random.Generator) -> State:
        """Sample one transition: update ``b``, then ``i``, then ``n``."""
        n, b, _i = state
        b_next = piece_successor(n, b, self.params.num_pieces)
        i_next = self.kernel.sample_i_next(n, b, state.i, rng)
        n_next = self.kernel.sample_n_next(n, b, i_next, rng)
        return State(n_next, b_next, i_next)

    def trajectory(
        self,
        *,
        seed: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        max_steps: Optional[int] = None,
    ) -> List[State]:
        """Sample a full trajectory from ``(0,0,0)`` until ``b == B``.

        The returned list includes both the initial state and the first
        state with ``b == B``; its length minus one is the download time
        in piece-exchange rounds.

        Raises:
            SimulationError: if the trajectory exceeds ``max_steps``
                (default ``MAX_STEPS_FACTOR * B``), which indicates the
                parameters give the peer no escape from starvation.
        """
        if rng is None:
            rng = np.random.default_rng(seed)
        limit = max_steps or self.MAX_STEPS_FACTOR * self.params.num_pieces
        state = self.initial_state
        traj = [state]
        while not self.is_complete(state):
            if len(traj) > limit:
                raise SimulationError(
                    f"trajectory exceeded {limit} steps without completing; "
                    f"parameters: {self.params.describe()}"
                )
            state = self.step(state, rng)
            traj.append(state)
        return traj

    def sample_trajectories(
        self, count: int, *, seed: Optional[int] = None
    ) -> Iterator[List[State]]:
        """Yield ``count`` independent trajectories from one seeded stream."""
        if count < 1:
            raise ParameterError(f"count must be >= 1, got {count}")
        rng = np.random.default_rng(seed)
        for _ in range(count):
            yield self.trajectory(rng=rng)

    def batch_sampler(self) -> "BatchChainSampler":
        """A vectorized sampler sharing this chain's cached kernel.

        See :class:`repro.core.batch.BatchChainSampler` — it advances
        all runs simultaneously and is the default engine behind the
        Figure-1 estimators in :mod:`repro.core.timeline`.
        """
        from repro.core.batch import BatchChainSampler

        return BatchChainSampler(self)

    # ------------------------------------------------------------------
    # Exact kernel access
    # ------------------------------------------------------------------
    def transition_distribution(self, state: State) -> Dict[State, float]:
        """Exact successor distribution ``{State: prob}`` (sums to 1)."""
        self.validate_state(state)
        raw = self.kernel.transition_distribution(state.n, state.b, state.i)
        return {State(*key): prob for key, prob in raw.items()}

    def download_time_steps(self, trajectory: List[State]) -> int:
        """Steps until completion for a trajectory from :meth:`trajectory`."""
        return len(trajectory) - 1
