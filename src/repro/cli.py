"""Command-line interface: run the paper's experiments from a shell.

Examples::

    repro-bt list                     # enumerate reproducible figures
    repro-bt run F1a                  # paper-scale Figure 1(a) (exact)
    repro-bt run F1a --method batch   # vectorized Monte-Carlo cross-check
    repro-bt run F1a --workers 4      # fan replications over 4 processes
    repro-bt run F1b --timing         # print wall-time / cache telemetry
    repro-bt run F3bc --quick         # reduced-scale stability panels
    repro-bt run F3a --backend soa    # vectorized swarm engine
    repro-bt run F3bc --checkpoint-dir ck/   # snapshot every 25 rounds
    repro-bt run F3bc --checkpoint-dir ck/ --resume  # pick up after a kill
    repro-bt trace smooth out.jsonl   # generate a Figure-2 archetype
    repro-bt calibrate out.jsonl --max-conns 4 --ns-size 20
    repro-bt stability 3 10 20        # B sweep of the stability runs
    repro-bt seeding                  # the Section-7.2 seeding study
    repro-bt chaos --quick            # fault-intensity sweep (smoke scale)
    repro-bt chaos 0 1 2 --workers 4  # chaos sweep with crash recovery
    repro-bt scenario                 # list curated swarm scenarios
    repro-bt scenario flash-crowd     # run one and summarise it
    repro-bt serve                    # model-as-a-service query endpoint
    repro-bt serve --port 9000 --max-bytes-mb 512
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro._version import __version__
from repro.analysis.reporting import format_table
from repro.experiments.registry import get_experiment, list_experiments

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (separate for testability)."""
    parser = argparse.ArgumentParser(
        prog="repro-bt",
        description=(
            "Reproduction of 'A Multiphased Approach for Modeling and "
            "Analysis of the BitTorrent Protocol' (ICDCS 2007)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list reproducible figures")

    run = subparsers.add_parser("run", help="run one experiment")
    run.add_argument("experiment", help="experiment id, e.g. F1a (see 'list')")
    run.add_argument(
        "--quick",
        action="store_true",
        help="reduced-scale parameters (fast smoke run)",
    )
    run.add_argument("--seed", type=int, default=None, help="override the RNG seed")
    run.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "worker processes for replication/sweep fan-out "
            "(0 = all cores; results are identical for any value)"
        ),
    )
    run.add_argument(
        "--timing",
        action="store_true",
        help="print wall-time and kernel-cache telemetry after the result",
    )
    run.add_argument(
        "--method",
        default=None,
        help=(
            "estimator for experiments with a method switch: 'exact' "
            "(alias 'sparse'; fundamental-matrix solve, noise-free), "
            "'batch' (vectorized Monte Carlo), 'serial' (alias "
            "'monte-carlo'; per-trajectory Monte Carlo), or 'meanfield' "
            "(alias 'mean-field', 'ode'; deterministic large-swarm ODE "
            "limit); unknown values list the valid choices"
        ),
    )
    run.add_argument(
        "--backend",
        default=None,
        help=(
            "swarm engine for simulation-backed experiments: 'object' "
            "(per-peer reference engine, the default), 'soa' "
            "(vectorized structure-of-arrays engine; statistically "
            "equivalent and ~10x+ faster on large swarms), or 'sharded' "
            "(the soa slab partitioned over --shards worker processes; "
            "million-peer scale); unknown values list the valid choices"
        ),
    )
    run.add_argument(
        "--shards",
        type=int,
        default=None,
        help=(
            "worker processes for --backend sharded (ignored by the "
            "other backends)"
        ),
    )
    run.add_argument(
        "--checkpoint-dir",
        default=None,
        help=(
            "directory for round-boundary snapshots; an interrupted run "
            "relaunched with --resume picks up from the latest snapshots"
        ),
    )
    run.add_argument(
        "--checkpoint-every",
        type=int,
        default=25,
        help="rounds between snapshots when --checkpoint-dir is set",
    )
    run.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume from existing snapshots in --checkpoint-dir instead "
            "of clearing them and starting fresh"
        ),
    )

    trace = subparsers.add_parser(
        "trace", help="generate a Figure-2 archetype trace to a JSONL file"
    )
    trace.add_argument(
        "archetype", choices=("smooth", "last", "bootstrap"),
        help="which download-evolution archetype to generate",
    )
    trace.add_argument("output", help="output JSONL path")
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument(
        "--count", type=int, default=1,
        help="how many archetype traces to generate (distinct seeds)",
    )

    calibrate = subparsers.add_parser(
        "calibrate", help="fit model parameters to a JSONL trace file"
    )
    calibrate.add_argument("traces", help="input JSONL path")
    calibrate.add_argument("--max-conns", type=int, required=True,
                           help="protocol k for the fitted model")
    calibrate.add_argument("--ns-size", type=int, required=True,
                           help="protocol s for the fitted model")

    stability = subparsers.add_parser(
        "stability", help="run the high-skew stability experiment per B"
    )
    stability.add_argument(
        "pieces", type=int, nargs="+", help="piece counts B to sweep"
    )
    stability.add_argument("--arrival-rate", type=float, default=20.0)
    stability.add_argument("--initial", type=int, default=400)
    stability.add_argument("--horizon", type=float, default=150.0)
    stability.add_argument("--seed", type=int, default=0)
    stability.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (one stability run per B fans out)",
    )
    stability.add_argument(
        "--checkpoint-dir", default=None,
        help="snapshot directory (see 'run --checkpoint-dir')",
    )
    stability.add_argument(
        "--checkpoint-every", type=int, default=25,
        help="rounds between snapshots when --checkpoint-dir is set",
    )
    stability.add_argument(
        "--resume", action="store_true",
        help="resume from existing snapshots instead of clearing them",
    )
    stability.add_argument(
        "--backend", default="object",
        help="swarm engine: 'object' (default) or 'soa' (vectorized)",
    )

    seeding = subparsers.add_parser(
        "seeding", help="run the Section-7.2 seeding study"
    )
    seeding.add_argument("--seed", type=int, default=0)
    seeding.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (one task per seeding configuration)",
    )
    seeding.add_argument(
        "--backend", default="object",
        help="swarm engine: 'object' (default) or 'soa' (vectorized)",
    )

    chaos = subparsers.add_parser(
        "chaos",
        help="sweep fault-injection intensity and report eta degradation",
    )
    chaos.add_argument(
        "intensities", type=float, nargs="*",
        default=[0.0, 0.5, 1.0, 1.5, 2.0],
        help="fault-plan multipliers to sweep (default: 0 0.5 1 1.5 2)",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--replications", type=int, default=2,
        help="independent swarms averaged per intensity",
    )
    chaos.add_argument(
        "--quick", action="store_true",
        help="reduced-scale swarms (fast smoke sweep)",
    )
    chaos.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (0 = all cores; results are identical)",
    )
    chaos.add_argument(
        "--max-attempts", type=int, default=2,
        help="attempts per swarm before it is abandoned (crash recovery)",
    )
    chaos.add_argument(
        "--timing",
        action="store_true",
        help="print telemetry, including task-failure accounting",
    )
    chaos.add_argument(
        "--backend", default="object",
        help=(
            "swarm engine: 'object' (default) or 'soa' (vectorized; "
            "runs uninstrumented, so phase fractions print as NaN)"
        ),
    )

    serve = subparsers.add_parser(
        "serve",
        help="serve model queries over JSON/HTTP (solve, sweep, stats)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default loopback)"
    )
    serve.add_argument(
        "--port", type=int, default=8750, help="TCP port (default 8750)"
    )
    serve.add_argument(
        "--solver-threads", type=int, default=2,
        help="threads running blocking solves (default 2)",
    )
    serve.add_argument(
        "--max-entries", type=int, default=128,
        help="kernel-cache entry bound (chains + compiled operators)",
    )
    serve.add_argument(
        "--max-bytes-mb", type=int, default=256,
        help="kernel-cache memory bound in MiB (0 = unbounded)",
    )

    scenario = subparsers.add_parser(
        "scenario", help="run a curated swarm scenario and summarise it"
    )
    scenario.add_argument(
        "name", nargs="?", default=None,
        help="scenario name (omit to list the available scenarios)",
    )
    scenario.add_argument("--seed", type=int, default=0)
    scenario.add_argument("--horizon", type=float, default=None,
                          help="override max_time")
    scenario.add_argument(
        "--backend", default="object",
        help=(
            "swarm engine: 'object' (default), 'soa' (vectorized) or "
            "'sharded' (multiprocess; see --shards)"
        ),
    )
    scenario.add_argument(
        "--shards", type=int, default=2,
        help="worker processes for --backend sharded (default 2)",
    )

    return parser


def _command_list() -> int:
    rows = [
        [spec.exp_id, spec.figure, spec.description]
        for spec in list_experiments()
    ]
    print(format_table(["id", "figure", "description"], rows))
    return 0


def _parse_backend(backend: str) -> str:
    """Validate ``--backend`` up front with the valid choices listed.

    A typo fails here, before any experiment work starts, with the same
    actionable message the :class:`~repro.sim.swarm.Swarm` constructor
    would raise mid-run.
    """
    from repro.errors import ParameterError
    from repro.sim.swarm import BACKENDS

    if backend not in BACKENDS:
        raise ParameterError(
            f"unknown swarm backend {backend!r}; valid backends are "
            f"{', '.join(repr(b) for b in BACKENDS)} "
            f"('object' is the per-peer reference engine, 'soa' the "
            f"vectorized array engine, 'sharded' the multiprocess "
            f"array engine; e.g. repro-bt run F3a --backend soa or "
            f"repro-bt scenario steady --backend sharded --shards 4)"
        )
    return backend


def _prepare_checkpoint_dir(checkpoint_dir: Optional[str], resume: bool) -> None:
    """Fresh-start semantics: clear stale snapshots unless resuming."""
    if checkpoint_dir is None or resume:
        return
    from repro.checkpoint.store import CheckpointStore

    removed = CheckpointStore(checkpoint_dir).clear()
    if removed:
        print(f"cleared {removed} stale checkpoint(s) from {checkpoint_dir}")


def _command_run(
    experiment: str, quick: bool, seed: Optional[int],
    workers: int = 1, timing: bool = False,
    checkpoint_dir: Optional[str] = None, checkpoint_every: int = 25,
    resume: bool = False, method: Optional[str] = None,
    backend: Optional[str] = None, shards: Optional[int] = None,
) -> int:
    import inspect

    spec = get_experiment(experiment)
    kwargs = dict(spec.quick_kwargs) if quick else {}
    if seed is not None:
        kwargs["seed"] = seed
    kwargs["workers"] = workers
    params = inspect.signature(spec.runner).parameters
    if method is not None:
        if "method" in params:
            from repro.core.methods import Method

            # Validate up front so a typo fails with the valid choices
            # listed, before any experiment work starts.
            kwargs["method"] = Method.parse(
                method,
                allowed=(
                    Method.EXACT, Method.BATCH, Method.SERIAL,
                    Method.MEANFIELD,
                ),
            ).value
        else:
            print(
                f"note: {experiment} has no method switch; "
                f"ignoring --method",
                file=sys.stderr,
            )
    if backend is not None:
        backend = _parse_backend(backend)
        if "backend" in params:
            kwargs["backend"] = backend
        else:
            print(
                f"note: {experiment} has no backend switch "
                f"(it needs the reference engine's per-peer state); "
                f"ignoring --backend",
                file=sys.stderr,
            )
    if shards is not None:
        if backend == "sharded" and "shards" in params:
            kwargs["shards"] = shards
        else:
            print(
                f"note: --shards only applies with --backend sharded on "
                f"experiments that accept it; ignoring --shards",
                file=sys.stderr,
            )
    if timing and "profile" in params:
        # Swarm-backed runners bucket per-round wall time by stage when
        # telemetry was asked for; the buckets print with the timing.
        kwargs["profile"] = True
    if checkpoint_dir is not None:
        if "checkpoint_dir" not in params:
            print(
                f"note: {experiment} does not support checkpointing; "
                f"ignoring --checkpoint-dir",
                file=sys.stderr,
            )
        else:
            _prepare_checkpoint_dir(checkpoint_dir, resume)
            kwargs["checkpoint_dir"] = checkpoint_dir
            kwargs["checkpoint_every"] = checkpoint_every
    print(f"== {spec.figure}: {spec.description} ==")
    result = spec.runner(**kwargs)
    print(result.format())
    if timing and result.timing is not None:
        print(result.timing.format())
    return 0


def _command_trace(archetype: str, output: str, seed: int, count: int) -> int:
    from repro.traces.io import write_trace_jsonl
    from repro.traces.synthetic import generate_archetype

    traces = []
    for index in range(count):
        trace, config = generate_archetype(archetype, seed=seed + 100 * index)
        traces.append(trace)
        print(
            f"generated {archetype!r} trace "
            f"({trace.pieces_downloaded()}/{trace.num_pieces} pieces, "
            f"{len(trace.samples)} samples, swarm seed {config.seed})"
        )
    write_trace_jsonl(traces, output)
    print(f"wrote {len(traces)} trace(s) to {output}")
    return 0


def _command_calibrate(path: str, max_conns: int, ns_size: int) -> int:
    from repro.analysis.calibration import calibrate_parameters
    from repro.traces.io import read_trace_jsonl

    traces = read_trace_jsonl(path)
    params, evidence = calibrate_parameters(
        traces, max_conns=max_conns, ns_size=ns_size
    )
    print(f"fitted model: {params.describe()}")
    print(format_table(
        ["parameter", "estimate", "evidence"],
        [
            ["alpha", evidence.alpha,
             f"{evidence.bootstrap_escapes} escapes / "
             f"{evidence.bootstrap_stall_rounds} stalled rounds"],
            ["gamma", evidence.gamma,
             f"{evidence.last_escapes} escapes / "
             f"{evidence.last_stall_rounds} stalled rounds"],
            ["p_r", evidence.p_reenc,
             f"{evidence.connection_drops} drops / "
             f"{evidence.connection_rounds} connection-rounds"],
        ],
    ))
    return 0


def _command_stability(
    pieces: List[int], arrival_rate: float, initial: int,
    horizon: float, seed: int, workers: int = 1,
    checkpoint_dir: Optional[str] = None, checkpoint_every: int = 25,
    resume: bool = False, backend: str = "object",
) -> int:
    from repro.stability.drift import phase_drift_analysis
    from repro.stability.experiments import run_stability_sweep

    _prepare_checkpoint_dir(checkpoint_dir, resume)
    runs, _telemetry = run_stability_sweep(
        pieces,
        arrival_rate=arrival_rate,
        initial_leechers=initial,
        max_time=horizon,
        seed=seed,
        entropy_every=4,
        workers=workers,
        backend=_parse_backend(backend),
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
    )
    rows = []
    for num_pieces, run in runs.items():
        drift = phase_drift_analysis(num_pieces, 4, arrival_rate)
        rows.append([
            num_pieces,
            run.final_population(),
            round(float(run.entropy[-10:].mean()), 3),
            "DIVERGED" if run.diverged else "bounded",
            "unstable" if not drift.predicted_stable else "stable",
        ])
    print(format_table(
        ["B", "final peers", "tail entropy", "simulated", "drift model"],
        rows,
    ))
    return 0


def _command_seeding(seed: int, workers: int = 1,
                     backend: str = "object") -> int:
    from repro.experiments.seeding import run_seeding_study

    print(run_seeding_study(
        seed=seed, workers=workers, backend=_parse_backend(backend)
    ).format())
    return 0


def _command_chaos(
    intensities: List[float], seed: int, replications: int,
    quick: bool = False, workers: int = 1, max_attempts: int = 2,
    timing: bool = False, backend: str = "object",
) -> int:
    from repro.faults.chaos import default_chaos_config, run_chaos_sweep

    config = default_chaos_config()
    if quick:
        config = config.with_changes(
            max_time=40.0, initial_leechers=25, arrival_rate=2.0
        )
    result = run_chaos_sweep(
        intensities,
        config=config,
        replications=replications,
        seed=seed,
        workers=workers,
        backend=_parse_backend(backend),
        max_attempts=max_attempts,
    )
    print(result.format())
    if timing and result.timing is not None:
        print(result.timing.format())
    return 0


def _command_serve(
    host: str, port: int, solver_threads: int,
    max_entries: int, max_bytes_mb: int,
) -> int:
    from repro.errors import ParameterError
    from repro.runtime.cache import KernelCache
    from repro.service import SolverService, run_server

    if max_entries < 1:
        raise ParameterError(f"--max-entries must be >= 1, got {max_entries}")
    if max_bytes_mb < 0:
        raise ParameterError(
            f"--max-bytes-mb must be >= 0 (0 = unbounded), got {max_bytes_mb}"
        )
    cache = KernelCache(
        max_entries=max_entries,
        max_bytes=None if max_bytes_mb == 0 else max_bytes_mb * 1024 * 1024,
    )
    service = SolverService(cache=cache, max_workers=solver_threads)
    run_server(host=host, port=port, service=service)
    return 0


def _command_scenario(name: Optional[str], seed: int,
                      horizon: Optional[float],
                      backend: str = "object", shards: int = 2) -> int:
    from repro.errors import ParameterError
    from repro.sim.scenarios import SCENARIOS
    from repro.sim.swarm import run_swarm

    if name is None:
        rows = [
            [key, (factory.__doc__ or "").strip().splitlines()[0]]
            for key, factory in sorted(SCENARIOS.items())
        ]
        print(format_table(["scenario", "description"], rows))
        return 0
    factory = SCENARIOS.get(name)
    if factory is None:
        raise ParameterError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
        )
    config = factory(seed=seed)
    if horizon is not None:
        config = config.with_changes(max_time=horizon)
    backend = _parse_backend(backend)
    swarm_kwargs = {"shards": shards} if backend == "sharded" else {}
    result = run_swarm(config, backend=backend, **swarm_kwargs)
    metrics = result.metrics
    stats = result.connection_stats
    print(f"scenario {name!r}: {result.total_rounds} rounds")
    print(format_table(
        ["metric", "value"],
        [
            ["completed downloads", len(metrics.completed)],
            ["mean download time", round(metrics.mean_download_duration(), 2)],
            ["aborted downloads", metrics.abort_count()],
            ["final leechers", result.final_leechers],
            ["final seeds", result.final_seeds],
            ["measured p_r", round(stats.p_reenc(), 3)],
            ["measured p_n", round(stats.p_new(), 3)],
            ["seed uploads", result.seed_upload_count],
        ],
    ))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(
            args.experiment, args.quick, args.seed, args.workers, args.timing,
            args.checkpoint_dir, args.checkpoint_every, args.resume,
            args.method, args.backend, args.shards,
        )
    if args.command == "trace":
        return _command_trace(args.archetype, args.output, args.seed, args.count)
    if args.command == "calibrate":
        return _command_calibrate(args.traces, args.max_conns, args.ns_size)
    if args.command == "stability":
        return _command_stability(
            args.pieces, args.arrival_rate, args.initial, args.horizon,
            args.seed, args.workers,
            args.checkpoint_dir, args.checkpoint_every, args.resume,
            args.backend,
        )
    if args.command == "seeding":
        return _command_seeding(args.seed, args.workers, args.backend)
    if args.command == "chaos":
        return _command_chaos(
            args.intensities, args.seed, args.replications, args.quick,
            args.workers, args.max_attempts, args.timing, args.backend,
        )
    if args.command == "serve":
        return _command_serve(
            args.host, args.port, args.solver_threads,
            args.max_entries, args.max_bytes_mb,
        )
    if args.command == "scenario":
        return _command_scenario(args.name, args.seed, args.horizon,
                                 args.backend, args.shards)
    parser.error(f"unknown command {args.command!r}")
    return 2  # pragma: no cover - parser.error raises


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
