"""Figure 3/4(d): shaking the peer set vs. the last-piece problem.

The paper's mitigation experiment (Section 7.1): at 90% completion a
peer drops its whole neighbor set and asks the tracker for a fresh
random one.  The figure plots the time-to-download (TTD) of each of the
last blocks (190-200 of 200) for the normal protocol and the shaking
variant; shaking flattens the tail.

TTD of block ordinal ``j`` is the gap between the acquisition times of
the ``j``-th and ``(j-1)``-th pieces, averaged over completed peers.
The normal and shaken swarms run as independent executor tasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.analysis.reporting import format_table
from repro.errors import ParameterError
from repro.experiments.registry import register_experiment
from repro.experiments.result import to_jsonable
from repro.experiments.common import checkpoint_interval, make_executor
from repro.runtime.executor import TaskSpec
from repro.runtime.telemetry import Telemetry
from repro.sim.config import SimConfig
from repro.sim.swarm import run_swarm

__all__ = ["Fig3dResult", "run_fig3d", "mean_ttd_by_ordinal"]


@dataclass
class Fig3dResult:
    """Series for Figure 3/4(d).

    Attributes:
        ordinals: block ordinals plotted (the last ``window``).
        ttd: per variant name ("normal" / "shake"), mean TTD at each
            ordinal (rounds).
        completed: per variant, completed downloads contributing.
        timing: execution telemetry of the producing run.
    """

    ordinals: np.ndarray
    ttd: Dict[str, np.ndarray]
    completed: Dict[str, int]
    timing: Optional[Telemetry] = field(default=None, compare=False)

    def format(self) -> str:
        rows = [
            [int(o), float(self.ttd["normal"][i]), float(self.ttd["shake"][i])]
            for i, o in enumerate(self.ordinals)
        ]
        note = (
            f"(completed downloads: normal={self.completed['normal']}, "
            f"shake={self.completed['shake']})"
        )
        return (
            "Figure 3/4(d): TTD of the last blocks, normal vs shake\n"
            + format_table(["block", "normal", "shake"], rows)
            + "\n"
            + note
        )

    def to_dict(self) -> dict:
        return {
            "experiment": "F3d",
            "ordinals": to_jsonable(self.ordinals),
            "ttd": to_jsonable(self.ttd),
            "completed": to_jsonable(self.completed),
            "timing": self.timing.to_dict() if self.timing else None,
        }


def mean_ttd_by_ordinal(
    config: SimConfig,
    *,
    window: int,
    checkpoint_path: Optional[str] = None,
    checkpoint_every: int = 0,
) -> tuple:
    """Run one swarm and average per-ordinal TTD over completed peers.

    With a ``checkpoint_path`` (injected by the executor for
    checkpointable tasks) the swarm snapshots periodically and resumes
    from an existing snapshot instead of recomputing finished rounds.

    Returns:
        ``(ordinals, mean_ttd, completed_count, events)`` — ordinals
        are 1-based piece counts covering the last ``window`` pieces;
        ``events`` is the engine's processed-event count.
    """
    if window < 1 or window >= config.num_pieces:
        raise ParameterError(
            f"window must be in 1..{config.num_pieces - 1}, got {window}"
        )
    if checkpoint_path is not None:
        from repro.checkpoint.store import run_swarm_with_checkpoints

        result = run_swarm_with_checkpoints(
            config,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
        )
    else:
        result = run_swarm(config)
    num_pieces = config.num_pieces
    ordinals = np.arange(num_pieces - window + 1, num_pieces + 1)
    sums = np.zeros(window)
    count = 0
    for download in result.metrics.completed:
        times = download.stats.piece_times
        if len(times) < num_pieces:
            continue
        gaps = np.diff(np.concatenate([[download.joined_at], np.asarray(times)]))
        sums += gaps[-window:] / config.piece_time
        count += 1
    mean = sums / count if count else np.full(window, np.nan)
    return ordinals, mean, count, result.events_processed


@register_experiment(
    "F3d",
    figure="Figure 3/4(d)",
    description="last-block TTD: normal vs shaken peer set",
    quick_kwargs={
        "num_pieces": 80,
        "window": 8,
        "initial_leechers": 40,
        "max_time": 350.0,
    },
)
def run_fig3d(
    *,
    num_pieces: int = 200,
    window: int = 10,
    shake_threshold: float = 0.9,
    ns_size: int = 8,
    max_conns: int = 4,
    arrival_rate: float = 1.0,
    initial_leechers: int = 60,
    max_time: float = 700.0,
    seed: int = 0,
    workers: int = 1,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: int = 0,
) -> Fig3dResult:
    """Reproduce Figure 3/4(d): TTD of the last ``window`` blocks.

    The swarm uses a deliberately small neighbor set so the last-piece
    problem manifests (the paper's own Figure 1 analysis: small peer
    sets produce the last download phase).
    """
    base = SimConfig(
        num_pieces=num_pieces,
        max_conns=max_conns,
        ns_size=ns_size,
        arrival_process="poisson",
        arrival_rate=arrival_rate,
        initial_leechers=initial_leechers,
        initial_distribution="uniform",
        initial_fill=0.5,
        num_seeds=1,
        seed_upload_slots=2,
        optimistic_unchoke_prob=0.5,
        optimistic_targets="empty",
        piece_selection="rarest",
        announce_interval=1000.0,  # no periodic refills: starvation bites
        ns_accept_factor=1.0,      # hard cap: static clustered neighborhoods
        max_time=max_time,
        seed=seed,
    )
    variants = {
        "normal": base,
        "shake": base.with_changes(shake_threshold=shake_threshold),
    }
    interval = checkpoint_interval(checkpoint_dir, checkpoint_every)
    executor = make_executor(workers=workers, checkpoint_dir=checkpoint_dir)
    outcomes = executor.run(
        [
            TaskSpec(
                mean_ttd_by_ordinal,
                (config,),
                {"window": window},
                checkpoint_interval=interval,
                checkpoint_key=f"fig3d-{name}",
            )
            for name, config in variants.items()
        ]
    )
    ttd: Dict[str, np.ndarray] = {}
    completed: Dict[str, int] = {}
    ordinals = None
    for name, (ordinals, mean, count, events) in zip(variants, outcomes):
        ttd[name] = mean
        completed[name] = count
        executor.record_events(events)
    return Fig3dResult(
        ordinals=ordinals, ttd=ttd, completed=completed, timing=executor.telemetry
    )
