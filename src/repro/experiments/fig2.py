"""Figure 2: the three download-evolution archetypes.

Regenerates, from simulated swarms, the three instances the paper
selected from its real-world traces:

* 2(a, b) — smooth download: potential set large throughout;
* 2(c, d) — significant last phase: potential set collapses late;
* 2(e, f) — significant bootstrap: potential set stuck at 0 early.

Each archetype yields one :class:`~repro.traces.schema.ClientTrace`
with exactly the two plotted series (cumulative bytes, potential-set
size).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.reporting import format_series
from repro.sim.config import SimConfig
from repro.traces.analysis import classify_trace, phase_segments
from repro.traces.schema import ClientTrace
from repro.traces.synthetic import ARCHETYPES, generate_archetype

__all__ = ["Fig2Result", "run_fig2"]


@dataclass
class Fig2Result:
    """The three archetype traces for Figure 2.

    Attributes:
        traces: per archetype name, the matching trace.
        configs: per archetype name, the swarm config that produced it.
        labels: per archetype name, the classifier's label (equals the
            archetype name by construction).
    """

    traces: Dict[str, ClientTrace]
    configs: Dict[str, SimConfig]
    labels: Dict[str, str]

    def format(self, *, max_rows: int = 16) -> str:
        blocks = []
        for kind in ("smooth", "last", "bootstrap"):
            trace = self.traces[kind]
            spec = ARCHETYPES[kind]
            segments = phase_segments(trace)
            blocks.append(
                f"Figure {spec.figure_panels} [{kind}] - label={self.labels[kind]} "
                f"(bootstrap {segments.bootstrap:.0f}, efficient "
                f"{segments.efficient:.0f}, last {segments.last:.0f})"
            )
            blocks.append(
                format_series(
                    "  cumulative bytes",
                    trace.times(),
                    trace.bytes_series(),
                    max_rows=max_rows,
                    x_label="t",
                    y_label="bytes",
                )
            )
            blocks.append(
                format_series(
                    "  potential-set size",
                    trace.times(),
                    trace.potential_series(),
                    max_rows=max_rows,
                    x_label="t",
                    y_label="pss",
                )
            )
        return "\n".join(blocks)


def run_fig2(*, seed: int = 0, max_attempts: int = 8) -> Fig2Result:
    """Generate all three Figure-2 archetypes."""
    traces: Dict[str, ClientTrace] = {}
    configs: Dict[str, SimConfig] = {}
    labels: Dict[str, str] = {}
    for kind in ("smooth", "last", "bootstrap"):
        trace, config = generate_archetype(
            kind, seed=seed, max_attempts=max_attempts
        )
        traces[kind] = trace
        configs[kind] = config
        labels[kind] = classify_trace(trace)
    return Fig2Result(traces=traces, configs=configs, labels=labels)
