"""Figure 2: the three download-evolution archetypes.

Regenerates, from simulated swarms, the three instances the paper
selected from its real-world traces:

* 2(a, b) — smooth download: potential set large throughout;
* 2(c, d) — significant last phase: potential set collapses late;
* 2(e, f) — significant bootstrap: potential set stuck at 0 early.

Each archetype yields one :class:`~repro.traces.schema.ClientTrace`
with exactly the two plotted series (cumulative bytes, potential-set
size).  The three archetype swarms are independent executor tasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.analysis.reporting import format_series
from repro.experiments.registry import register_experiment
from repro.experiments.result import to_jsonable
from repro.experiments.common import make_executor
from repro.runtime.executor import TaskSpec
from repro.runtime.telemetry import Telemetry
from repro.sim.config import SimConfig
from repro.traces.analysis import classify_trace, phase_segments
from repro.traces.schema import ClientTrace
from repro.traces.synthetic import ARCHETYPES, generate_archetype

__all__ = ["Fig2Result", "run_fig2"]

_KINDS = ("smooth", "last", "bootstrap")


@dataclass
class Fig2Result:
    """The three archetype traces for Figure 2.

    Attributes:
        traces: per archetype name, the matching trace.
        configs: per archetype name, the swarm config that produced it.
        labels: per archetype name, the classifier's label (equals the
            archetype name by construction).
        timing: execution telemetry of the producing run.
    """

    traces: Dict[str, ClientTrace]
    configs: Dict[str, SimConfig]
    labels: Dict[str, str]
    timing: Optional[Telemetry] = field(default=None, compare=False)

    def format(self, *, max_rows: int = 16) -> str:
        blocks = []
        for kind in _KINDS:
            trace = self.traces[kind]
            spec = ARCHETYPES[kind]
            segments = phase_segments(trace)
            blocks.append(
                f"Figure {spec.figure_panels} [{kind}] - label={self.labels[kind]} "
                f"(bootstrap {segments.bootstrap:.0f}, efficient "
                f"{segments.efficient:.0f}, last {segments.last:.0f})"
            )
            blocks.append(
                format_series(
                    "  cumulative bytes",
                    trace.times(),
                    trace.bytes_series(),
                    max_rows=max_rows,
                    x_label="t",
                    y_label="bytes",
                )
            )
            blocks.append(
                format_series(
                    "  potential-set size",
                    trace.times(),
                    trace.potential_series(),
                    max_rows=max_rows,
                    x_label="t",
                    y_label="pss",
                )
            )
        return "\n".join(blocks)

    def to_dict(self) -> dict:
        return {
            "experiment": "F2",
            "labels": dict(self.labels),
            "series": {
                kind: {
                    "times": to_jsonable(trace.times()),
                    "bytes": to_jsonable(trace.bytes_series()),
                    "potential": to_jsonable(trace.potential_series()),
                }
                for kind, trace in self.traces.items()
            },
            "timing": self.timing.to_dict() if self.timing else None,
        }


def _archetype_task(kind: str, seed: int, max_attempts: int) -> tuple:
    """Generate and classify one archetype (executor work unit)."""
    trace, config = generate_archetype(kind, seed=seed, max_attempts=max_attempts)
    return trace, config, classify_trace(trace)


@register_experiment(
    "F2",
    figure="Figure 2",
    description="download archetypes: smooth / last phase / bootstrap",
)
def run_fig2(
    *, seed: int = 0, max_attempts: int = 8, workers: int = 1
) -> Fig2Result:
    """Generate all three Figure-2 archetypes."""
    executor = make_executor(workers=workers)
    outcomes = executor.run(
        [TaskSpec(_archetype_task, (kind, seed, max_attempts)) for kind in _KINDS]
    )
    traces: Dict[str, ClientTrace] = {}
    configs: Dict[str, SimConfig] = {}
    labels: Dict[str, str] = {}
    for kind, (trace, config, label) in zip(_KINDS, outcomes):
        traces[kind] = trace
        configs[kind] = config
        labels[kind] = label
        executor.record_events(len(trace.samples))
    return Fig2Result(
        traces=traces, configs=configs, labels=labels, timing=executor.telemetry
    )
