"""Figure 1(b): evolution timeline — model vs. simulation.

For each peer-set size (paper: 5 and 50, with B = 200 and k = 7), plot
the time (in piece-exchange rounds) at which a peer first holds ``b``
pieces, both from the model chain and from instrumented peers in the
discrete-event swarm.  Expected shape: a near-linear trading phase;
PSS = 5 runs much longer, with a bootstrap plateau at the start and a
last-phase tail; the model tracks the simulation tightly for PSS = 50
and looser (but with the same phases) for PSS = 5.

Model replications and simulator instruments are independent executor
tasks: the model fan shares one cached transition kernel per PSS, and
the per-PSS swarm runs execute concurrently under ``workers > 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.analysis.reporting import format_table
from repro.api import ModelParams
from repro.core.methods import Method
from repro.core.parameters import ModelParameters, alpha_from_swarm
from repro.errors import ParameterError
from repro.experiments.common import (
    MODEL_METHOD_LABELS,
    make_executor,
    resolve_model_method,
)
from repro.experiments.registry import register_experiment
from repro.experiments.result import to_jsonable
from repro.runtime.executor import TaskSpec
from repro.runtime.seeding import derive_seed
from repro.runtime.tasks import (
    batch_first_passage_task,
    exact_first_passage_task,
    first_passage_task,
    meanfield_first_passage_task,
)
from repro.runtime.telemetry import Telemetry
from repro.sim.config import SimConfig
from repro.sim.swarm import Swarm

__all__ = ["Fig1bResult", "run_fig1b", "sim_timeline"]


@dataclass
class Fig1bResult:
    """Series for Figure 1(b).

    Attributes:
        pieces: x-axis, ``0..B``.
        model: per PSS, mean first-passage rounds from the model.
        sim: per PSS, mean first-passage rounds from the simulator
            (NaN where no instrumented peer reached that count).
        sim_completed: per PSS, how many instrumented peers finished.
        model_method: how the model curves were computed
            (``"monte-carlo"``, ``"batch"``, or ``"exact"``).
        timing: execution telemetry of the producing run.
    """

    pieces: np.ndarray
    model: Dict[int, np.ndarray]
    sim: Dict[int, np.ndarray]
    sim_completed: Dict[int, int]
    model_method: str = "monte-carlo"
    timing: Optional[Telemetry] = field(default=None, compare=False)

    def format(self, *, max_rows: int = 21) -> str:
        pss_values = sorted(self.model)
        idx = np.linspace(0, self.pieces.size - 1, max_rows).round().astype(int)
        headers = ["pieces"]
        for s in pss_values:
            headers += [f"model PSS={s}", f"sim PSS={s}"]
        rows = []
        for i in idx:
            row = [int(self.pieces[i])]
            for s in pss_values:
                row.append(float(self.model[s][i]))
                row.append(float(self.sim[s][i]))
            rows.append(row)
        return "Figure 1(b): evolution timeline (rounds to b pieces)\n" + \
            format_table(headers, rows)

    def to_dict(self) -> dict:
        return {
            "experiment": "F1b",
            "pieces": to_jsonable(self.pieces),
            "model": to_jsonable(self.model),
            "sim": to_jsonable(self.sim),
            "sim_completed": to_jsonable(self.sim_completed),
            "model_method": self.model_method,
            "timing": self.timing.to_dict() if self.timing else None,
        }


def sim_timeline(
    config: SimConfig,
    *,
    instrument: int = 8,
    avoid_seeds: bool = True,
    profile: bool = False,
) -> tuple:
    """Average first-passage rounds to each piece count from a swarm run.

    Instrumented peers start empty; each completed one contributes its
    per-piece acquisition times (relative to its join, in rounds).

    Returns:
        ``(mean_rounds, completed_count, events, round_profile)`` where
        ``mean_rounds`` has ``B + 1`` entries (entry 0 is 0; unreached
        counts are NaN), ``events`` is the simulator's processed-event
        count, and ``round_profile`` is the per-stage wall-time dict
        (None unless ``profile=True``).
    """
    swarm = Swarm(
        config,
        instrument_first=instrument,
        instrumented_avoid_seeds=avoid_seeds,
        profile=profile,
    )
    result = swarm.run()
    num_pieces = config.num_pieces
    sums = np.zeros(num_pieces + 1)
    counts = np.zeros(num_pieces + 1)
    completed = 0
    for peer in result.instrumented:
        times = peer.stats.piece_times
        if len(times) < num_pieces:
            continue  # only completed downloads give a full timeline
        completed += 1
        joined = peer.stats.joined_at
        for b, t in enumerate(times[:num_pieces], start=1):
            rounds = (t - joined) / config.piece_time
            sums[b] += rounds
            counts[b] += 1
    with np.errstate(invalid="ignore"):
        mean = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
    mean[0] = 0.0
    return mean, completed, result.events_processed, result.round_profile


@register_experiment(
    "F1b",
    figure="Figure 1(b)",
    description="evolution timeline, model vs simulation (PSS 5 and 50)",
    quick_kwargs={
        "num_pieces": 60,
        "model_runs": 12,
        "sim_instrument": 4,
        "max_time": 300.0,
        "pss_values": (5, 30),
    },
)
def run_fig1b(
    pss_values: Sequence[int] = (5, 50),
    *,
    num_pieces: int = 200,
    max_conns: int = 7,
    model_runs: int = 48,
    sim_instrument: int = 8,
    seed: int = 0,
    p_reenc: float = 0.7,
    p_new: float = 0.7,
    arrival_rate: float = 1.5,
    max_time: float = 800.0,
    workers: int = 1,
    model_batch: bool = False,
    profile: bool = False,
    method: Optional[str] = None,
) -> Fig1bResult:
    """Reproduce Figure 1(b): model and simulation timelines per PSS.

    Model and simulator share their friction parameters: the sim's
    exogenous churn is ``1 - p_reenc`` and its handshake success is
    ``p_new``; the model's bootstrap/last-phase escape probabilities
    ``alpha`` (and ``gamma``, same inflow process) are derived from the
    swarm via the paper's formula ``alpha = lambda * w * s / N``.

    Args:
        model_batch: sample all model replications per PSS on the
            vectorized :class:`~repro.core.batch.BatchChainSampler`
            (one task per PSS) instead of fanning one trajectory per
            task.  Statistically equivalent, not bit-identical — the
            default keeps the per-trajectory fan so existing goldens
            hold.
        profile: run the swarms with a per-stage
            :class:`~repro.runtime.profiler.RoundProfiler` and fold the
            buckets into the returned telemetry (``--timing``).
        method: model-curve method — ``"serial"``/``"monte-carlo"``
            (per-trajectory fan, the default), ``"batch"`` (vectorized
            sampler, defaulted to by ``model_batch=True``), ``"exact"``
            (noise-free expected first-passage rounds from the sparse
            fundamental-matrix solve; ``model_runs`` ignored), or
            ``"meanfield"`` (deterministic large-swarm ODE limit, also
            ``model_runs``-free).  The simulator side always samples.
    """
    if not pss_values:
        raise ParameterError("pss_values must be non-empty")
    method = resolve_model_method(
        method, default=Method.BATCH if model_batch else Method.SERIAL
    )
    pieces = np.arange(num_pieces + 1)
    executor = make_executor(workers=workers)
    model: Dict[int, np.ndarray] = {}
    sim: Dict[int, np.ndarray] = {}
    sim_completed: Dict[int, int] = {}

    model_params: Dict[int, ModelParameters] = {}
    sim_configs: Dict[int, SimConfig] = {}
    for offset, pss in enumerate(pss_values):
        initial_leechers = max(60, 4 * pss)
        alpha = alpha_from_swarm(
            arrival_rate,
            0.5,  # w: an arriving peer is tradable once half-filled on average
            pss,
            initial_leechers,
        )
        model_params[pss] = ModelParams(
            num_pieces=num_pieces,
            max_conns=max_conns,
            ns_size=pss,
            alpha=alpha,
            gamma=alpha,
            p_reenc=p_reenc,
            p_new=p_new,
        )
        sim_configs[pss] = SimConfig(
            num_pieces=num_pieces,
            max_conns=max_conns,
            ns_size=pss,
            arrival_process="poisson",
            arrival_rate=arrival_rate,
            initial_leechers=initial_leechers,
            initial_distribution="uniform",
            initial_fill=0.5,
            num_seeds=1,
            seed_upload_slots=2,
            optimistic_unchoke_prob=0.5,
            connection_setup_prob=p_new,
            connection_failure_prob=1.0 - p_reenc,
            matching="blind",
            piece_selection="rarest",
            max_time=max_time,
            seed=seed + 1000 + offset,
        )

    # One fan for everything: model tasks per PSS (one exact solve or
    # one batched sampler task per PSS, else one task per trajectory),
    # then one simulator run per PSS; the executor interleaves them
    # freely but returns results in task order.
    if method is Method.EXACT:
        tasks = [
            TaskSpec(exact_first_passage_task, (model_params[pss],))
            for pss in pss_values
        ]
    elif method is Method.MEANFIELD:
        tasks = [
            TaskSpec(meanfield_first_passage_task, (model_params[pss],))
            for pss in pss_values
        ]
    elif method is Method.BATCH:
        tasks = [
            TaskSpec(
                batch_first_passage_task,
                (model_params[pss], derive_seed(seed, offset), model_runs),
            )
            for offset, pss in enumerate(pss_values)
        ]
    else:
        tasks = [
            TaskSpec(
                first_passage_task,
                (model_params[pss], derive_seed(seed, offset, run)),
            )
            for offset, pss in enumerate(pss_values)
            for run in range(model_runs)
        ]
    sim_task_base = len(tasks)
    tasks += [
        TaskSpec(
            sim_timeline,
            (sim_configs[pss],),
            {"instrument": sim_instrument, "profile": profile},
        )
        for pss in pss_values
    ]
    outcomes = executor.run(tasks)

    for offset, pss in enumerate(pss_values):
        if method in (Method.EXACT, Method.MEANFIELD):
            timeline, states = outcomes[offset]
            executor.record_events(states)
            model[pss] = timeline
        elif method is Method.BATCH:
            hits, steps = outcomes[offset]
            executor.record_events(steps)
            model[pss] = hits.mean(axis=0)
        else:
            runs = outcomes[offset * model_runs : (offset + 1) * model_runs]
            hits = np.stack([first for first, _steps in runs])
            for _first, steps in runs:
                executor.record_events(steps)
            model[pss] = hits.mean(axis=0)
        mean, completed, events, round_profile = outcomes[sim_task_base + offset]
        sim[pss] = mean
        sim_completed[pss] = completed
        executor.record_events(events)
        if round_profile:
            executor.telemetry.add_round_profile(round_profile)
    return Fig1bResult(
        pieces=pieces,
        model=model,
        sim=sim,
        sim_completed=sim_completed,
        model_method=MODEL_METHOD_LABELS[method],
        timing=executor.telemetry,
    )
