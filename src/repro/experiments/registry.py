"""Experiment registry: decorator-based id -> runner mapping.

Runners self-register at import time::

    @register_experiment(
        "F1a",
        figure="Figure 1(a)",
        description="potential-set ratio vs pieces downloaded",
        quick_kwargs={"num_pieces": 60, "runs": 12},
    )
    def run_fig1a(...):
        ...

Lookups are case-insensitive dict hits: ids are normalized once at
registration, not scanned per call.  Importing this module alone is
enough — the built-in runner modules are imported lazily on the first
lookup, so ``from repro.experiments.registry import get_experiment``
works without importing the whole package up front.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import ParameterError

__all__ = [
    "ExperimentSpec",
    "EXPERIMENTS",
    "register_experiment",
    "get_experiment",
    "list_experiments",
]


@dataclass(frozen=True)
class ExperimentSpec:
    """Registry entry for one reproducible figure.

    Attributes:
        exp_id: short id used on the CLI (e.g. ``"F1a"``).
        figure: the paper's figure label.
        description: what the figure shows.
        runner: paper-scale callable returning an
            :class:`~repro.experiments.result.ExperimentResult`.
        quick_kwargs: reduced-scale keyword arguments for fast runs
            (benches, smoke tests).
    """

    exp_id: str
    figure: str
    description: str
    runner: Callable
    quick_kwargs: dict = field(default_factory=dict)


#: Display id -> spec, in registration order (public, for listings).
EXPERIMENTS: Dict[str, ExperimentSpec] = {}

#: Normalized (lowercase) id -> spec, for O(1) case-insensitive lookup.
_NORMALIZED: Dict[str, ExperimentSpec] = {}

#: Runner modules whose import populates the registry.
_BUILTIN_MODULES = ("fig1a", "fig1b", "fig2", "fig3a", "fig3bc", "fig3d")


def register_experiment(
    exp_id: str,
    *,
    figure: str,
    description: str,
    quick_kwargs: Optional[dict] = None,
) -> Callable:
    """Class/function decorator registering a runner under ``exp_id``.

    Raises:
        ParameterError: on a duplicate id (case-insensitively).
    """
    if not exp_id:
        raise ParameterError("exp_id must be non-empty")
    normalized = exp_id.lower()

    def decorator(runner: Callable) -> Callable:
        if normalized in _NORMALIZED:
            raise ParameterError(
                f"experiment id {exp_id!r} is already registered "
                f"(as {_NORMALIZED[normalized].exp_id!r})"
            )
        spec = ExperimentSpec(
            exp_id=exp_id,
            figure=figure,
            description=description,
            runner=runner,
            quick_kwargs=dict(quick_kwargs or {}),
        )
        _NORMALIZED[normalized] = spec
        EXPERIMENTS[exp_id] = spec
        return runner

    return decorator


def _ensure_builtin_runners() -> None:
    """Import the built-in runner modules (idempotent, lazy)."""
    import importlib

    for module in _BUILTIN_MODULES:
        importlib.import_module(f"repro.experiments.{module}")


def get_experiment(exp_id: str) -> ExperimentSpec:
    """Look up an experiment by id (case-insensitive dict lookup)."""
    _ensure_builtin_runners()
    spec = _NORMALIZED.get(exp_id.lower())
    if spec is None:
        raise ParameterError(
            f"unknown experiment {exp_id!r}; available: {sorted(EXPERIMENTS)}"
        )
    return spec


def list_experiments() -> List[ExperimentSpec]:
    """All registered experiments, in registration order."""
    _ensure_builtin_runners()
    return list(EXPERIMENTS.values())
