"""Experiment registry: id -> runner, for the CLI and the bench harness."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.errors import ParameterError
from repro.experiments.fig1a import run_fig1a
from repro.experiments.fig1b import run_fig1b
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3a import run_fig3a
from repro.experiments.fig3bc import run_fig3bc
from repro.experiments.fig3d import run_fig3d

__all__ = ["ExperimentSpec", "EXPERIMENTS", "get_experiment"]


@dataclass(frozen=True)
class ExperimentSpec:
    """Registry entry for one reproducible figure.

    Attributes:
        exp_id: short id used on the CLI (e.g. ``"F1a"``).
        figure: the paper's figure label.
        description: what the figure shows.
        runner: paper-scale callable returning a result with
            ``format()``.
        quick_kwargs: reduced-scale keyword arguments for fast runs
            (benches, smoke tests).
    """

    exp_id: str
    figure: str
    description: str
    runner: Callable
    quick_kwargs: dict


EXPERIMENTS: Dict[str, ExperimentSpec] = {
    spec.exp_id: spec
    for spec in [
        ExperimentSpec(
            exp_id="F1a",
            figure="Figure 1(a)",
            description="potential-set ratio vs pieces downloaded (model, PSS sweep)",
            runner=run_fig1a,
            quick_kwargs={"num_pieces": 60, "runs": 12, "pss_values": (5, 10, 25)},
        ),
        ExperimentSpec(
            exp_id="F1b",
            figure="Figure 1(b)",
            description="evolution timeline, model vs simulation (PSS 5 and 50)",
            runner=run_fig1b,
            quick_kwargs={
                "num_pieces": 60,
                "model_runs": 12,
                "sim_instrument": 4,
                "max_time": 300.0,
                "pss_values": (5, 30),
            },
        ),
        ExperimentSpec(
            exp_id="F2",
            figure="Figure 2",
            description="download archetypes: smooth / last phase / bootstrap",
            runner=run_fig2,
            quick_kwargs={},
        ),
        ExperimentSpec(
            exp_id="F3a",
            figure="Figure 3/4(a)",
            description="efficiency vs max connections, model vs simulation",
            runner=run_fig3a,
            quick_kwargs={
                "k_values": (1, 2, 3, 4),
                "sim_kwargs": {
                    "initial_leechers": 50,
                    "arrival_rate": 3.0,
                    "max_time": 80.0,
                },
            },
        ),
        ExperimentSpec(
            exp_id="F3bc",
            figure="Figure 3/4(b,c)",
            description="population and entropy vs time for B=3 vs B=10",
            runner=run_fig3bc,
            quick_kwargs={
                "initial_leechers": 200,
                "arrival_rate": 12.0,
                "max_time": 100.0,
                "entropy_every": 4,
            },
        ),
        ExperimentSpec(
            exp_id="F3d",
            figure="Figure 3/4(d)",
            description="last-block TTD: normal vs shaken peer set",
            runner=run_fig3d,
            quick_kwargs={
                "num_pieces": 80,
                "window": 8,
                "initial_leechers": 40,
                "max_time": 350.0,
            },
        ),
    ]
}


def get_experiment(exp_id: str) -> ExperimentSpec:
    """Look up an experiment by id (case-insensitive)."""
    for key, spec in EXPERIMENTS.items():
        if key.lower() == exp_id.lower():
            return spec
    raise ParameterError(
        f"unknown experiment {exp_id!r}; available: {sorted(EXPERIMENTS)}"
    )
