"""The common result shape every experiment runner returns.

The CLI, the benchmark harness, and the executor all consume one
protocol instead of per-figure duck typing:

* ``format()`` — the printable block the figure benches emit;
* ``to_dict()`` — a JSON-ready dict of the plotted series;
* ``timing`` — the :class:`~repro.runtime.telemetry.Telemetry` record
  of the execution that produced the result (``None`` only for results
  constructed by hand).

Runner result dataclasses implement the protocol structurally; no
inheritance is required.  :func:`to_jsonable` is the shared series
serializer (numpy arrays to lists, dict keys to strings, NaN-safe).
"""

from __future__ import annotations

from typing import Optional, Protocol, runtime_checkable

from repro.runtime.telemetry import Telemetry
from repro.serialize import to_jsonable

__all__ = ["ExperimentResult", "to_jsonable"]


@runtime_checkable
class ExperimentResult(Protocol):
    """Structural protocol for runner results (see module docstring)."""

    timing: Optional[Telemetry]

    def format(self) -> str:
        """Printable rows/series for terminals and benches."""
        ...

    def to_dict(self) -> dict:
        """JSON-ready dict of the result's series."""
        ...
