"""Figures 3/4(b) and 3/4(c): effect of ``B`` on stability.

One runner produces both panels (they come from the same pair of runs):
starting from a high-skew initial state under a sustained Poisson
arrival stream,

* panel (b): the number of peers in the system over time — grows
  without bound for ``B = 3``, stabilises for ``B = 10``;
* panel (c): the entropy ``E`` over time — collapses toward 0 for
  ``B = 3``, recovers toward 1 for ``B = 10``.

The per-``B`` stability runs are independent executor tasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.analysis.reporting import format_table
from repro.errors import ParameterError
from repro.experiments.registry import register_experiment
from repro.experiments.result import to_jsonable
from repro.experiments.common import checkpoint_interval, make_executor
from repro.runtime.executor import TaskSpec
from repro.runtime.telemetry import Telemetry
from repro.stability.experiments import (
    StabilityRun,
    run_stability_experiment,
    stability_config,
)

__all__ = ["Fig3bcResult", "run_fig3bc"]


@dataclass
class Fig3bcResult:
    """Series for Figures 3/4(b) and (c).

    Attributes:
        runs: per ``B``, the full :class:`StabilityRun`.
        timing: execution telemetry of the producing run.
    """

    runs: Dict[int, StabilityRun]
    timing: Optional[Telemetry] = field(default=None, compare=False)

    def population(self, num_pieces: int) -> np.ndarray:
        return self.runs[num_pieces].population

    def entropy(self, num_pieces: int) -> np.ndarray:
        return self.runs[num_pieces].entropy

    def format(self, *, max_rows: int = 16) -> str:
        piece_counts = sorted(self.runs)
        # All runs share the round cadence; align on the shortest.
        min_len = min(self.runs[b].times.size for b in piece_counts)
        idx = np.linspace(0, min_len - 1, min(max_rows, min_len)).round().astype(int)
        headers = ["time"]
        for b in piece_counts:
            headers += [f"peers B={b}", f"entropy B={b}"]
        rows = []
        base_times = self.runs[piece_counts[0]].times
        for i in idx:
            row = [float(base_times[i])]
            for b in piece_counts:
                run = self.runs[b]
                row.append(int(run.population[i]))
                row.append(float(run.entropy[i]) if run.entropy.size else float("nan"))
            rows.append(row)
        verdicts = ", ".join(
            f"B={b}: {'DIVERGED' if self.runs[b].diverged else 'stable'}/"
            f"entropy {'recovered' if self.runs[b].entropy_recovered else 'collapsed'}"
            for b in piece_counts
        )
        return (
            "Figure 3/4(b,c): population and entropy under high initial skew\n"
            + format_table(headers, rows)
            + f"\nverdicts: {verdicts}"
        )

    def to_dict(self) -> dict:
        return {
            "experiment": "F3bc",
            "runs": {
                str(b): {
                    "times": to_jsonable(run.times),
                    "population": to_jsonable(run.population),
                    "entropy": to_jsonable(run.entropy),
                    "diverged": run.diverged,
                    "entropy_recovered": run.entropy_recovered,
                }
                for b, run in self.runs.items()
            },
            "timing": self.timing.to_dict() if self.timing else None,
        }


@register_experiment(
    "F3bc",
    figure="Figure 3/4(b,c)",
    description="population and entropy vs time for B=3 vs B=10",
    quick_kwargs={
        "initial_leechers": 200,
        "arrival_rate": 12.0,
        "max_time": 100.0,
        "entropy_every": 4,
    },
)
def run_fig3bc(
    piece_counts: Sequence[int] = (3, 10),
    *,
    arrival_rate: float = 20.0,
    initial_leechers: int = 400,
    max_time: float = 150.0,
    seed: int = 0,
    entropy_every: int = 2,
    config_overrides: dict | None = None,
    workers: int = 1,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: int = 0,
) -> Fig3bcResult:
    """Reproduce Figures 3/4(b,c): one stability run per piece count."""
    if not piece_counts:
        raise ParameterError("piece_counts must be non-empty")
    overrides = dict(config_overrides or {})
    configs = [
        stability_config(
            num_pieces,
            arrival_rate=arrival_rate,
            initial_leechers=initial_leechers,
            max_time=max_time,
            seed=seed + offset,
            **overrides,
        )
        for offset, num_pieces in enumerate(piece_counts)
    ]
    interval = checkpoint_interval(checkpoint_dir, checkpoint_every)
    executor = make_executor(workers=workers, checkpoint_dir=checkpoint_dir)
    outcomes = executor.run(
        [
            TaskSpec(
                run_stability_experiment,
                (config,),
                {"entropy_every": entropy_every},
                checkpoint_interval=interval,
                checkpoint_key=f"fig3bc-B{num_pieces}",
            )
            for config, num_pieces in zip(configs, piece_counts)
        ]
    )
    runs: Dict[int, StabilityRun] = {}
    for num_pieces, run in zip(piece_counts, outcomes):
        runs[num_pieces] = run
        executor.record_events(run.result.events_processed)
    return Fig3bcResult(runs=runs, timing=executor.telemetry)
