"""Experiment runners: one per figure panel of the paper's evaluation.

Every runner is registered with :func:`register_experiment` and returns
a structured result satisfying the
:class:`~repro.experiments.result.ExperimentResult` protocol — the
exact series the corresponding figure plots, a ``format()`` method
producing printable rows, a ``to_dict()`` JSON view, and a ``timing``
telemetry record from the executor that produced it.  Paper-scale
parameters are the defaults; benches call the same runners at reduced
scale, and every runner accepts ``workers=N`` to fan its replications
and sweep points over a process pool with bit-identical results.

==========  =========================================================
``fig1a``   potential-set ratio vs. pieces downloaded (model), PSS sweep
``fig1b``   evolution timeline, model vs. simulation, PSS in {5, 50}
``fig2``    the three trace archetypes (smooth / last / bootstrap)
``fig3a``   efficiency vs. k, model vs. simulation  (text: Fig. 4(a))
``fig3bc``  population and entropy vs. time for B = 3 vs B = 10
``fig3d``   time-to-download of the last blocks, normal vs. shake
==========  =========================================================
"""

from repro.experiments.fig1a import Fig1aResult, run_fig1a
from repro.experiments.fig1b import Fig1bResult, run_fig1b
from repro.experiments.fig2 import Fig2Result, run_fig2
from repro.experiments.fig3a import Fig3aResult, run_fig3a
from repro.experiments.fig3bc import Fig3bcResult, run_fig3bc
from repro.experiments.fig3d import Fig3dResult, run_fig3d
from repro.experiments.registry import (
    EXPERIMENTS,
    ExperimentSpec,
    get_experiment,
    list_experiments,
    register_experiment,
)
from repro.experiments.result import ExperimentResult, to_jsonable
from repro.experiments.seeding import SeedingResult, run_seeding_study

__all__ = [
    "Fig1aResult",
    "run_fig1a",
    "Fig1bResult",
    "run_fig1b",
    "Fig2Result",
    "run_fig2",
    "Fig3aResult",
    "run_fig3a",
    "Fig3bcResult",
    "run_fig3bc",
    "Fig3dResult",
    "run_fig3d",
    "EXPERIMENTS",
    "ExperimentSpec",
    "ExperimentResult",
    "get_experiment",
    "list_experiments",
    "register_experiment",
    "to_jsonable",
    "SeedingResult",
    "run_seeding_study",
]
