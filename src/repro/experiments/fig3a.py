"""Figure 3/4(a): impact of the maximum connections ``k`` on efficiency.

Model line: the balance-equation fixed point of Section 5, with the
per-``k`` connection-survival probability from the lifetime model (the
paper's own explanation of why durations — and hence ``p_r`` — change
with ``k``).  Simulation line: the time-averaged connection occupancy
of a dense steady swarm, per ``k``.

Expected shape: a pronounced efficiency gain from ``k = 1`` to
``k = 2`` and little beyond; the model upper-bounds the simulation,
with the largest relative gap (paper: >8%) at ``k = 1``.

The per-``k`` swarm runs are independent executor tasks; the model's
stationary solutions come from the shared kernel cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.analysis.reporting import format_table
from repro.efficiency.efficiency import efficiency_curve
from repro.efficiency.lifetime import ConnectionLifetimeModel
from repro.errors import ParameterError
from repro.experiments.registry import register_experiment
from repro.experiments.result import to_jsonable
from repro.experiments.common import checkpoint_interval, make_executor
from repro.runtime.executor import TaskSpec
from repro.runtime.telemetry import Telemetry
from repro.sim.config import SimConfig
from repro.sim.metrics import MetricsCollector
from repro.sim.swarm import Swarm

__all__ = ["Fig3aResult", "run_fig3a", "sim_efficiency"]


@dataclass
class Fig3aResult:
    """Series for Figure 3/4(a).

    Attributes:
        k_values: the swept ``k``.
        model_eta: balance-equation efficiencies.
        sim_eta: simulated efficiencies.
        p_reenc: per-``k`` survival probabilities the model line used.
        timing: execution telemetry of the producing run.
    """

    k_values: np.ndarray
    model_eta: np.ndarray
    sim_eta: np.ndarray
    p_reenc: np.ndarray
    timing: Optional[Telemetry] = field(default=None, compare=False)

    def format(self) -> str:
        rows = [
            [int(k), float(m), float(s), float(pr)]
            for k, m, s, pr in zip(
                self.k_values, self.model_eta, self.sim_eta, self.p_reenc
            )
        ]
        return "Figure 3/4(a): efficiency vs number of connections\n" + format_table(
            ["k", "model eta", "sim eta", "p_r(k)"], rows
        )

    def to_dict(self) -> dict:
        return {
            "experiment": "F3a",
            "k_values": to_jsonable(self.k_values),
            "model_eta": to_jsonable(self.model_eta),
            "sim_eta": to_jsonable(self.sim_eta),
            "p_reenc": to_jsonable(self.p_reenc),
            "timing": self.timing.to_dict() if self.timing else None,
        }


def sim_efficiency(
    max_conns: int,
    *,
    num_pieces: int = 60,
    ns_size: int = 30,
    initial_leechers: int = 80,
    arrival_rate: float = 4.0,
    max_time: float = 150.0,
    seed: int = 0,
    backend: str = "object",
    checkpoint_path: Optional[str] = None,
    checkpoint_every: int = 0,
) -> tuple:
    """Measure the simulated ``eta`` for one ``k``.

    Uses a dense, continuously refreshed swarm so the occupancy
    distribution reaches (quasi) steady state; the collector discards
    the warmup quarter before averaging.  With a ``checkpoint_path``
    (injected by the executor for checkpointable tasks) the run
    snapshots periodically and resumes from an existing snapshot.

    Returns:
        ``(eta, events)`` — the efficiency plus the engine's
        processed-event count for telemetry.
    """
    config = SimConfig(
        num_pieces=num_pieces,
        max_conns=max_conns,
        ns_size=ns_size,
        arrival_process="poisson",
        arrival_rate=arrival_rate,
        initial_leechers=initial_leechers,
        initial_distribution="uniform",
        initial_fill=0.5,
        num_seeds=1,
        seed_upload_slots=2,
        optimistic_unchoke_prob=0.5,
        connection_setup_prob=0.8,
        connection_failure_prob=0.1,
        matching="blind",
        piece_selection="rarest",
        max_time=max_time,
        seed=seed,
    )
    metrics = MetricsCollector(
        max_conns, entropy_every=1_000_000, occupancy_warmup=0.25
    )
    if checkpoint_path is not None:
        from repro.checkpoint.store import run_swarm_with_checkpoints

        result = run_swarm_with_checkpoints(
            config,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            metrics=metrics,
            backend=backend,
        )
        return result.metrics.efficiency(), result.events_processed
    swarm = Swarm(config, metrics=metrics, backend=backend)
    result = swarm.run()
    return metrics.efficiency(), result.events_processed


@register_experiment(
    "F3a",
    figure="Figure 3/4(a)",
    description="efficiency vs max connections, model vs simulation",
    quick_kwargs={
        "k_values": (1, 2, 3, 4),
        "sim_kwargs": {
            "initial_leechers": 50,
            "arrival_rate": 3.0,
            "max_time": 80.0,
        },
    },
)
def run_fig3a(
    k_values: Sequence[int] = tuple(range(1, 9)),
    *,
    lifetime: ConnectionLifetimeModel | None = None,
    num_pieces: int = 60,
    seed: int = 0,
    sim_kwargs: dict | None = None,
    workers: int = 1,
    backend: str = "object",
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: int = 0,
) -> Fig3aResult:
    """Reproduce Figure 3/4(a): model and simulated efficiency per ``k``."""
    if not k_values:
        raise ParameterError("k_values must be non-empty")
    if lifetime is None:
        lifetime = ConnectionLifetimeModel.for_file(num_pieces)
    executor = make_executor(workers=workers, checkpoint_dir=checkpoint_dir)
    with executor.tracked():
        model_points = efficiency_curve(list(k_values), lifetime=lifetime)
    sim_kwargs = dict(sim_kwargs or {})
    sim_kwargs.setdefault("num_pieces", num_pieces)
    sim_kwargs.setdefault("backend", backend)
    executor.telemetry.backend = sim_kwargs["backend"]
    interval = checkpoint_interval(checkpoint_dir, checkpoint_every)
    outcomes = executor.run(
        [
            TaskSpec(
                sim_efficiency,
                (k,),
                {"seed": seed + idx, **sim_kwargs},
                checkpoint_interval=interval,
                checkpoint_key=f"fig3a-k{k}",
            )
            for idx, k in enumerate(k_values)
        ]
    )
    sim_etas = []
    for eta, events in outcomes:
        sim_etas.append(eta)
        executor.record_events(events)
    return Fig3aResult(
        k_values=np.asarray(list(k_values)),
        model_eta=np.asarray([p.eta for p in model_points]),
        sim_eta=np.asarray(sim_etas),
        p_reenc=np.asarray([p.p_reenc for p in model_points]),
        timing=executor.telemetry,
    )
