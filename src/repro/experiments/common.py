"""Shared plumbing for the figure runners.

Every runner builds its parameters as canonical
:class:`~repro.api.ModelParams`, resolves its ``method`` argument
through the one :class:`~repro.core.methods.Method` vocabulary (with
the historical aliases — ``"serial"``/``"monte-carlo"``,
``"sparse"``/``"exact"`` — accepted everywhere), and constructs its
executor through :func:`make_executor`, so checkpoint wiring and
worker-count handling are identical across figures.

The figure results keep their historical display labels
(``"monte-carlo"``, not ``"serial"``) — :data:`MODEL_METHOD_LABELS`
maps the canonical methods back to them, so goldens and downstream
consumers see unchanged strings.
"""

from __future__ import annotations

from typing import Union

from repro.core.methods import Method
from repro.runtime.executor import ExperimentExecutor

__all__ = [
    "MODEL_METHOD_LABELS",
    "resolve_model_method",
    "make_executor",
    "checkpoint_interval",
]

#: Canonical method -> the label figure results historically display.
MODEL_METHOD_LABELS = {
    Method.EXACT: "exact",
    Method.BATCH: "batch",
    Method.SERIAL: "monte-carlo",
    Method.MEANFIELD: "meanfield",
}


def resolve_model_method(
    method: Union[Method, str, None], *, default: Method
) -> Method:
    """Parse a runner's ``method`` argument into the unified vocabulary.

    Accepts the canonical names
    (``exact``/``batch``/``serial``/``meanfield``) plus the historical
    aliases (``monte-carlo``, ``sparse``, ``mean-field``, ...);
    ``None`` resolves to ``default``.  Unknown values raise an
    actionable :class:`~repro.errors.ParameterError` listing the valid
    choices.
    """
    return Method.parse(
        method,
        allowed=(Method.EXACT, Method.BATCH, Method.SERIAL, Method.MEANFIELD),
        default=default,
    )


def make_executor(
    *,
    workers: int = 1,
    checkpoint_dir=None,
) -> ExperimentExecutor:
    """The executor a figure runner fans its tasks over."""
    if checkpoint_dir is not None:
        return ExperimentExecutor(workers=workers, checkpoint_dir=checkpoint_dir)
    return ExperimentExecutor(workers=workers)


def checkpoint_interval(checkpoint_dir, checkpoint_every: int) -> int:
    """Effective checkpoint interval: 0 (disabled) without a directory."""
    return checkpoint_every if checkpoint_dir is not None else 0
