"""Figure 1(a): effect of the peer-set size on the potential set.

The model chain is run for each peer-set size (PSS) and the normalised
potential-set size E[ i / s | b ] is plotted against the number of
downloaded pieces ``b``.  Paper setting: B = 200 pieces, PSS in
{5, 10, 25, 40}.  Expected shape: ~0.5 near the first piece, a plateau
near 1 around mid-download, a decline toward ~0.5 at the end; small PSS
curves run lower/noisier and visit 0 (bootstrap/last phases occur).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.chain import DownloadChain
from repro.core.exact import exact_potential_ratio
from repro.core.parameters import ModelParameters
from repro.core.timeline import potential_ratio_by_pieces
from repro.errors import ParameterError

__all__ = ["Fig1aResult", "run_fig1a"]


@dataclass
class Fig1aResult:
    """Series for Figure 1(a).

    Attributes:
        pieces: x-axis, ``0..B``.
        ratios: per PSS, the E[ i / s | b ] curve (NaN where ``b`` was
            skipped by parallel arrivals).
        params: per PSS, the model parameters used.
    """

    pieces: np.ndarray
    ratios: Dict[int, np.ndarray]
    params: Dict[int, ModelParameters]

    def format(self, *, max_rows: int = 21) -> str:
        """Printable rows: one column per PSS curve."""
        pss_values = sorted(self.ratios)
        idx = np.linspace(0, self.pieces.size - 1, max_rows).round().astype(int)
        headers = ["pieces"] + [f"PSS={s}" for s in pss_values]
        rows = []
        for i in idx:
            row = [int(self.pieces[i])]
            for s in pss_values:
                value = self.ratios[s][i]
                row.append(float(value) if np.isfinite(value) else float("nan"))
            rows.append(row)
        return "Figure 1(a): potential-set size / neighbor-set size vs pieces\n" + \
            format_table(headers, rows)


def run_fig1a(
    pss_values: Sequence[int] = (5, 10, 25, 40),
    *,
    num_pieces: int = 200,
    max_conns: int = 7,
    runs: int = 48,
    seed: int = 0,
    alpha: float = 0.2,
    gamma: float = 0.2,
    method: str = "monte-carlo",
) -> Fig1aResult:
    """Reproduce the Figure 1(a) model curves.

    Args:
        pss_values: neighbor-set sizes to sweep (paper: 5, 10, 25, 40).
        num_pieces: ``B`` (paper: 200).
        max_conns: ``k`` (paper: 7 — "more than k = 7 other peers").
        runs: Monte-Carlo trajectories per PSS (``monte-carlo`` method).
        alpha / gamma: bootstrap and last-phase escape probabilities.
        method: ``"monte-carlo"`` (default; any scale) or ``"exact"``
            (full distribution propagation — noise-free curves, small
            parameter sets only: the reachable state space grows with
            ``B * k * s``).
    """
    if not pss_values:
        raise ParameterError("pss_values must be non-empty")
    if method not in ("monte-carlo", "exact"):
        raise ParameterError(
            f"method must be 'monte-carlo' or 'exact', got {method!r}"
        )
    if method == "exact" and num_pieces > 64:
        raise ParameterError(
            "exact propagation is intended for small B (<= 64); "
            "use method='monte-carlo' for paper-scale parameters"
        )
    ratios: Dict[int, np.ndarray] = {}
    params: Dict[int, ModelParameters] = {}
    pieces = np.arange(num_pieces + 1)
    for offset, pss in enumerate(pss_values):
        model = ModelParameters(
            num_pieces=num_pieces,
            max_conns=max_conns,
            ns_size=pss,
            alpha=alpha,
            gamma=gamma,
        )
        chain = DownloadChain(model)
        if method == "exact":
            ratios[pss] = exact_potential_ratio(chain)
        else:
            result = potential_ratio_by_pieces(
                chain, runs=runs, seed=seed + offset
            )
            ratios[pss] = result.ratio
        params[pss] = model
    return Fig1aResult(pieces=pieces, ratios=ratios, params=params)
