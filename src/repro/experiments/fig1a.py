"""Figure 1(a): effect of the peer-set size on the potential set.

The model chain is run for each peer-set size (PSS) and the normalised
potential-set size E[ i / s | b ] is plotted against the number of
downloaded pieces ``b``.  Paper setting: B = 200 pieces, PSS in
{5, 10, 25, 40}.  Expected shape: ~0.5 near the first piece, a plateau
near 1 around mid-download, a decline toward ~0.5 at the end; small PSS
curves run lower/noisier and visit 0 (bootstrap/last phases occur).

The default method is now ``"exact"``: the compiled sparse operator
(:mod:`repro.core.sparse`) computes the noise-free curve directly at
paper scale, one fundamental-matrix solve per PSS.  The Monte-Carlo
methods remain for cross-validation; their replications are independent
tasks fanned out through the
:class:`~repro.runtime.executor.ExperimentExecutor`, each deriving its
own seed, so ``workers=4`` reproduces ``workers=1`` bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.analysis.reporting import format_table
from repro.api import ModelParams
from repro.core.methods import Method
from repro.core.parameters import ModelParameters
from repro.errors import ParameterError
from repro.experiments.common import (
    MODEL_METHOD_LABELS,
    make_executor,
    resolve_model_method,
)
from repro.experiments.registry import register_experiment
from repro.experiments.result import to_jsonable
from repro.runtime.executor import TaskSpec
from repro.runtime.seeding import derive_seed
from repro.runtime.tasks import (
    batch_potential_ratio_task,
    exact_potential_ratio_task,
    meanfield_potential_ratio_task,
    potential_ratio_task,
)
from repro.runtime.telemetry import Telemetry

__all__ = ["Fig1aResult", "run_fig1a"]


@dataclass
class Fig1aResult:
    """Series for Figure 1(a).

    Attributes:
        pieces: x-axis, ``0..B``.
        ratios: per PSS, the E[ i / s | b ] curve (NaN where ``b`` was
            skipped by parallel arrivals).
        params: per PSS, the model parameters used.
        method: how the curves were computed (``"exact"``,
            ``"monte-carlo"``, or ``"batch"``).
        timing: execution telemetry of the producing run.
    """

    pieces: np.ndarray
    ratios: Dict[int, np.ndarray]
    params: Dict[int, ModelParameters]
    method: str = "exact"
    timing: Optional[Telemetry] = field(default=None, compare=False)

    def format(self, *, max_rows: int = 21) -> str:
        """Printable rows: one column per PSS curve."""
        pss_values = sorted(self.ratios)
        idx = np.linspace(0, self.pieces.size - 1, max_rows).round().astype(int)
        headers = ["pieces"] + [f"PSS={s}" for s in pss_values]
        rows = []
        for i in idx:
            row = [int(self.pieces[i])]
            for s in pss_values:
                value = self.ratios[s][i]
                row.append(float(value) if np.isfinite(value) else float("nan"))
            rows.append(row)
        return "Figure 1(a): potential-set size / neighbor-set size vs pieces\n" + \
            format_table(headers, rows)

    def to_dict(self) -> dict:
        return {
            "experiment": "F1a",
            "pieces": to_jsonable(self.pieces),
            "ratios": to_jsonable(self.ratios),
            "params": {
                str(s): params.describe() for s, params in self.params.items()
            },
            "method": self.method,
            "timing": self.timing.to_dict() if self.timing else None,
        }


@register_experiment(
    "F1a",
    figure="Figure 1(a)",
    description="potential-set ratio vs pieces downloaded (model, PSS sweep)",
    quick_kwargs={"num_pieces": 60, "runs": 12, "pss_values": (5, 10, 25)},
)
def run_fig1a(
    pss_values: Sequence[int] = (5, 10, 25, 40),
    *,
    num_pieces: int = 200,
    max_conns: int = 7,
    runs: int = 48,
    seed: int = 0,
    alpha: float = 0.2,
    gamma: float = 0.2,
    method: str = "exact",
    workers: int = 1,
) -> Fig1aResult:
    """Reproduce the Figure 1(a) model curves.

    Args:
        pss_values: neighbor-set sizes to sweep (paper: 5, 10, 25, 40).
        num_pieces: ``B`` (paper: 200).
        max_conns: ``k`` (paper: 7 — "more than k = 7 other peers").
        runs: Monte-Carlo trajectories per PSS (``monte-carlo`` and
            ``batch`` methods; ignored by ``exact``).
        alpha / gamma: bootstrap and last-phase escape probabilities.
        method: ``"exact"`` (default) reads the noise-free curve off the
            compiled sparse operator's fundamental-matrix solve — one
            deterministic task per PSS, paper scale included.
            ``"meanfield"`` reads it off the large-swarm ODE limit
            (also one deterministic task per PSS, milliseconds at any
            scale).  ``"monte-carlo"`` (alias ``"serial"``; one
            trajectory per task) and ``"batch"`` (one vectorized
            :class:`~repro.core.batch.BatchChainSampler` task per PSS —
            statistically equivalent, not bit-identical) remain as
            sampling cross-checks.
        workers: executor process count; results are identical for any
            value (replications are independently seeded).
    """
    if not pss_values:
        raise ParameterError("pss_values must be non-empty")
    method = resolve_model_method(method, default=Method.EXACT)
    executor = make_executor(workers=workers)
    ratios: Dict[int, np.ndarray] = {}
    params: Dict[int, ModelParameters] = {}
    pieces = np.arange(num_pieces + 1)
    for pss in pss_values:
        params[pss] = ModelParams(
            num_pieces=num_pieces,
            max_conns=max_conns,
            ns_size=pss,
            alpha=alpha,
            gamma=gamma,
        )

    if method is Method.EXACT:
        tasks = [
            TaskSpec(exact_potential_ratio_task, (params[pss],))
            for pss in pss_values
        ]
        outcomes = executor.run(tasks)
        for offset, pss in enumerate(pss_values):
            ratio, states = outcomes[offset]
            executor.record_events(states)
            ratios[pss] = ratio
    elif method is Method.MEANFIELD:
        tasks = [
            TaskSpec(meanfield_potential_ratio_task, (params[pss],))
            for pss in pss_values
        ]
        outcomes = executor.run(tasks)
        for offset, pss in enumerate(pss_values):
            ratio, evals = outcomes[offset]
            executor.record_events(evals)
            ratios[pss] = ratio
    elif method is Method.BATCH:
        tasks = [
            TaskSpec(
                batch_potential_ratio_task,
                (params[pss], derive_seed(seed, offset), runs),
            )
            for offset, pss in enumerate(pss_values)
        ]
        outcomes = executor.run(tasks)
        for offset, pss in enumerate(pss_values):
            sums, counts, steps = outcomes[offset]
            executor.record_events(steps)
            with np.errstate(invalid="ignore", divide="ignore"):
                ratios[pss] = np.where(
                    counts > 0, sums / np.maximum(counts, 1), np.nan
                )
    else:
        tasks = [
            TaskSpec(
                potential_ratio_task,
                (params[pss], derive_seed(seed, offset, run)),
            )
            for offset, pss in enumerate(pss_values)
            for run in range(runs)
        ]
        outcomes = executor.run(tasks)
        for offset, pss in enumerate(pss_values):
            sums = np.zeros(num_pieces + 1)
            counts = np.zeros(num_pieces + 1)
            for run_sums, run_counts, steps in outcomes[
                offset * runs : (offset + 1) * runs
            ]:
                sums += run_sums
                counts += run_counts
                executor.record_events(steps)
            with np.errstate(invalid="ignore", divide="ignore"):
                ratios[pss] = np.where(
                    counts > 0, sums / np.maximum(counts, 1), np.nan
                )
    return Fig1aResult(
        pieces=pieces,
        ratios=ratios,
        params=params,
        method=MODEL_METHOD_LABELS[method],
        timing=executor.telemetry,
    )
