"""Seeding study — the paper's Section-7.2 future work, implemented.

"A seed is a peer that has acquired a complete file and still chooses
to participate in the swarm. ... we plan to study seeding as a separate
work in future."  This runner performs that study on the simulator:

* **capacity sweep** — seeds as a piece-distribution source whose
  capacity scales with count x slots (the [12]/[9] treatment the paper
  cites): measure download times and bootstrap exposure per capacity;
* **super-seeding** — the "advanced seeding technique" footnote: the
  seed offers each piece at most once until the whole file has been
  injected, maximising early piece diversity per uploaded byte;
* **post-completion lingering** — finished leechers staying as seeds
  for a while instead of departing immediately (relaxing the model's
  exit assumption).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.reporting import format_table
from repro.errors import ParameterError
from repro.experiments.result import to_jsonable
from repro.experiments.common import make_executor
from repro.runtime.executor import TaskSpec
from repro.runtime.telemetry import Telemetry
from repro.sim.config import SimConfig
from repro.sim.swarm import run_swarm

__all__ = ["SeedingPoint", "SeedingResult", "run_seeding_study"]


@dataclass(frozen=True)
class SeedingPoint:
    """One seeding configuration's outcome.

    Attributes:
        label: human-readable configuration tag.
        completed: downloads finished within the horizon.
        mean_duration: average completion time (rounds).
        p90_duration: 90th-percentile completion time.
        mean_first_piece: average rounds from join to the first piece —
            the bootstrap-phase exposure that seed capacity governs.
        seed_uploads: total pieces the seed(s) uploaded.
        completions_per_seed_upload: seeding efficiency — downloads
            completed per piece of seed capacity spent (super-seeding's
            selling point).
    """

    label: str
    completed: int
    mean_duration: float
    p90_duration: float
    mean_first_piece: float
    seed_uploads: int
    completions_per_seed_upload: float


@dataclass
class SeedingResult:
    """All points of the seeding study."""

    points: List[SeedingPoint]
    timing: Optional[Telemetry] = field(default=None, compare=False)

    def to_dict(self) -> dict:
        return {
            "experiment": "seeding",
            "points": [to_jsonable(vars(p)) for p in self.points],
            "timing": self.timing.to_dict() if self.timing else None,
        }

    def format(self) -> str:
        return "Seeding study (Section 7.2)\n" + format_table(
            ["configuration", "completed", "mean T", "p90 T", "first piece",
             "seed uploads", "done/upload"],
            [
                [p.label, p.completed, round(p.mean_duration, 1),
                 round(p.p90_duration, 1), round(p.mean_first_piece, 2),
                 p.seed_uploads, round(p.completions_per_seed_upload, 3)]
                for p in self.points
            ],
        )

    def by_label(self) -> Dict[str, SeedingPoint]:
        return {p.label: p for p in self.points}


def _measure(label: str, config: SimConfig, backend: str = "object") -> tuple:
    """One seeding configuration (executor work unit).

    Returns ``(point, events)`` — the measured point plus the engine's
    processed-event count for telemetry.
    """
    result = run_swarm(config, backend=backend)
    completed = result.metrics.completed
    durations = [c.duration for c in completed]
    first_pieces = [
        c.stats.piece_times[0] - c.joined_at
        for c in completed
        if c.stats.piece_times
    ]
    if durations:
        mean_duration = float(np.mean(durations))
        p90 = float(np.percentile(durations, 90))
    else:
        mean_duration = p90 = float("nan")
    mean_first = float(np.mean(first_pieces)) if first_pieces else float("nan")
    per_upload = (
        len(durations) / result.seed_upload_count
        if result.seed_upload_count
        else float("nan")
    )
    point = SeedingPoint(
        label=label,
        completed=len(durations),
        mean_duration=mean_duration,
        p90_duration=p90,
        mean_first_piece=mean_first,
        seed_uploads=result.seed_upload_count,
        completions_per_seed_upload=per_upload,
    )
    return point, result.events_processed


def run_seeding_study(
    *,
    num_pieces: int = 60,
    capacities: Sequence[int] = (2, 4, 8),
    include_super_seeding: bool = True,
    include_lingering: bool = True,
    arrival_rate: float = 2.0,
    initial_leechers: int = 50,
    max_time: float = 150.0,
    seed: int = 0,
    workers: int = 1,
    backend: str = "object",
) -> SeedingResult:
    """Run the seeding study and return all measured points.

    The base swarm joins *empty* (no pre-filled population), so every
    piece in circulation descends from seed uploads — the regime where
    seeding policy matters most.  Expected findings: download times
    improve with seed capacity at sharply diminishing returns (the
    swarm's own replication does the heavy lifting once every piece is
    in circulation), per-upload seeding efficiency *falls* with
    capacity, lingering ex-leechers dominate everything (free capacity
    that scales with the swarm), and super-seeding matches plain
    seeding speed while spending fewer seed uploads.
    """
    if not capacities:
        raise ParameterError("capacities must be non-empty")
    base = SimConfig(
        num_pieces=num_pieces,
        max_conns=4,
        ns_size=25,
        arrival_process="poisson",
        arrival_rate=arrival_rate,
        initial_leechers=initial_leechers,
        initial_distribution="empty",
        num_seeds=1,
        seed_upload_slots=2,
        optimistic_unchoke_prob=0.5,
        piece_selection="rarest",
        max_time=max_time,
        seed=seed,
    )
    tasks: List[TaskSpec] = []
    for capacity in capacities:
        tasks.append(
            TaskSpec(
                _measure,
                (
                    f"capacity={capacity}",
                    base.with_changes(seed_upload_slots=capacity),
                ),
                {"backend": backend},
            )
        )
    viable = max(capacities)
    policy_capacity = min(4, viable)
    if include_super_seeding:
        tasks.append(
            TaskSpec(
                _measure,
                (
                    f"super-seeding (capacity={policy_capacity})",
                    base.with_changes(
                        seed_upload_slots=policy_capacity, super_seeding=True
                    ),
                ),
                {"backend": backend},
            )
        )
    if include_lingering:
        tasks.append(
            TaskSpec(
                _measure,
                (
                    f"lingering seeds (capacity={policy_capacity}, 10 rounds)",
                    base.with_changes(
                        seed_upload_slots=policy_capacity,
                        completed_become_seeds=10.0,
                    ),
                ),
                {"backend": backend},
            )
        )
    executor = make_executor(workers=workers)
    executor.telemetry.backend = backend
    points: List[SeedingPoint] = []
    for point, events in executor.run(tasks):
        points.append(point)
        executor.record_events(events)
    return SeedingResult(points=points, timing=executor.telemetry)
