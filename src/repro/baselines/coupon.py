"""Coupon replication system (Massoulie & Vojnovic, SIGMETRICS '05).

The comparison baseline of the paper's related work: peers collect
``B`` distinct coupons (pieces).  Per round, every peer makes **one**
encounter with a peer sampled uniformly from the **entire** population
— no neighbor set, no multi-connection parallelism.  An encounter
succeeds iff the pair can swap novel coupons (mutual novelty under the
strict-exchange regime); otherwise it *fails*, which happens with
positive probability — the structural difference from BitTorrent the
paper highlights.  Peers depart as soon as they hold all coupons.

Arrivals are Poisson; each arriving peer brings one uniformly random
coupon (the exogenous piece injection of the coupon-system model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ParameterError
from repro.sim.bitfield import Bitfield
from repro.stability.entropy import entropy, replication_degrees

__all__ = ["CouponResult", "CouponSystem", "run_coupon_system"]


@dataclass(frozen=True)
class CouponResult:
    """Aggregate outcome of a coupon-system run.

    Attributes:
        rounds: rounds executed.
        completed: number of peers that collected all coupons.
        mean_sojourn: average rounds from arrival to completion.
        failed_encounter_fraction: failed / attempted encounters — the
            quantity that is structurally zero-free in BitTorrent's
            potential-set regime but positive here.
        population_series: ``(round, population)`` samples.
        entropy_series: ``(round, E)`` samples.
        efficiency: fraction of rounds in which a peer's single
            connection slot carried a transfer (the coupon analogue of
            the paper's ``eta`` with ``k = 1``).
    """

    rounds: int
    completed: int
    mean_sojourn: float
    failed_encounter_fraction: float
    population_series: List[Tuple[int, int]]
    entropy_series: List[Tuple[int, float]]
    efficiency: float


class CouponSystem:
    """Round-based coupon replication simulator."""

    def __init__(
        self,
        num_coupons: int,
        *,
        arrival_rate: float = 2.0,
        initial_peers: int = 50,
        seed: Optional[int] = None,
    ):
        if num_coupons < 1:
            raise ParameterError(f"num_coupons must be >= 1, got {num_coupons}")
        if arrival_rate < 0:
            raise ParameterError(f"arrival_rate must be >= 0, got {arrival_rate}")
        if initial_peers < 0:
            raise ParameterError(f"initial_peers must be >= 0, got {initial_peers}")
        self.num_coupons = num_coupons
        self.arrival_rate = arrival_rate
        self.rng = np.random.default_rng(seed)
        #: peer id -> (bitfield, arrival_round)
        self.peers: dict[int, Tuple[Bitfield, int]] = {}
        self._next_id = 0
        self._sojourns: List[int] = []
        self._attempted = 0
        self._failed = 0
        self._active_slot_rounds = 0
        self._peer_rounds = 0
        for _ in range(initial_peers):
            self._arrive(0)

    def _arrive(self, round_index: int) -> None:
        coupon = int(self.rng.integers(self.num_coupons))
        bitfield = Bitfield.from_pieces(self.num_coupons, [coupon])
        self.peers[self._next_id] = (bitfield, round_index)
        self._next_id += 1

    def step(self, round_index: int) -> None:
        """One round: Poisson arrivals, then uniform random encounters."""
        arrivals = int(self.rng.poisson(self.arrival_rate))
        for _ in range(arrivals):
            self._arrive(round_index)

        ids = list(self.peers)
        if len(ids) >= 2:
            order = self.rng.permutation(len(ids))
            for idx in order:
                peer_id = ids[idx]
                entry = self.peers.get(peer_id)
                if entry is None:
                    continue  # departed earlier this round
                bitfield, _ = entry
                self._peer_rounds += 1
                # Uniform whole-population sampling: the defining
                # difference from BitTorrent's neighbor-set encounters.
                partner_id = peer_id
                while partner_id == peer_id:
                    partner_id = ids[int(self.rng.integers(len(ids)))]
                partner_entry = self.peers.get(partner_id)
                if partner_entry is None:
                    continue
                partner_bf, _ = partner_entry
                self._attempted += 1
                if not bitfield.mutual_interest(partner_bf):
                    self._failed += 1
                    continue
                self._active_slot_rounds += 1
                gets = bitfield.exchangeable_pieces_from(partner_bf)
                gives = partner_bf.exchangeable_pieces_from(bitfield)
                bitfield.add(int(gets[self.rng.integers(len(gets))]))
                partner_bf.add(int(gives[self.rng.integers(len(gives))]))

        # Departures.
        for peer_id in list(self.peers):
            bitfield, arrived = self.peers[peer_id]
            if bitfield.is_complete:
                self._sojourns.append(round_index - arrived)
                del self.peers[peer_id]

    def run(self, rounds: int, *, sample_every: int = 1) -> CouponResult:
        """Run for a number of rounds and report aggregates."""
        if rounds < 1:
            raise ParameterError(f"rounds must be >= 1, got {rounds}")
        if sample_every < 1:
            raise ParameterError(f"sample_every must be >= 1, got {sample_every}")
        population: List[Tuple[int, int]] = []
        entropy_series: List[Tuple[int, float]] = []
        for round_index in range(1, rounds + 1):
            self.step(round_index)
            if round_index % sample_every == 0:
                population.append((round_index, len(self.peers)))
                bitfields = [bf for bf, _ in self.peers.values()]
                if bitfields:
                    degrees = replication_degrees(bitfields, self.num_coupons)
                    entropy_series.append((round_index, entropy(degrees)))
        mean_sojourn = float(np.mean(self._sojourns)) if self._sojourns else float("nan")
        failed_fraction = self._failed / self._attempted if self._attempted else 0.0
        efficiency = (
            self._active_slot_rounds / self._peer_rounds if self._peer_rounds else 0.0
        )
        return CouponResult(
            rounds=rounds,
            completed=len(self._sojourns),
            mean_sojourn=mean_sojourn,
            failed_encounter_fraction=failed_fraction,
            population_series=population,
            entropy_series=entropy_series,
            efficiency=efficiency,
        )


def run_coupon_system(
    num_coupons: int,
    rounds: int,
    *,
    arrival_rate: float = 2.0,
    initial_peers: int = 50,
    seed: Optional[int] = None,
) -> CouponResult:
    """Convenience wrapper: build and run a coupon system."""
    system = CouponSystem(
        num_coupons,
        arrival_rate=arrival_rate,
        initial_peers=initial_peers,
        seed=seed,
    )
    return system.run(rounds)
