"""Qiu-Srikant fluid model of BitTorrent-like networks (SIGCOMM '04).

The related-work baseline [9]: the swarm is summarised by two fluids,
``x(t)`` leechers and ``y(t)`` seeds, evolving as::

    dx/dt = lambda - theta * x - min(c * x, mu * (eta * x + y))
    dy/dt = min(c * x, mu * (eta * x + y)) - gamma_s * y

with ``lambda`` the arrival rate, ``theta`` the abort rate, ``c`` the
download capacity, ``mu`` the upload capacity, ``eta`` the
*effectiveness of file sharing* (an exogenous input — exactly the
protocol detail the multiphased model derives instead of assuming), and
``gamma_s`` the seed departure rate.

Provided: trajectory integration (``scipy.integrate.solve_ivp``), the
closed-form steady state for ``theta = 0``, a numerical steady state
for ``theta > 0``, and Little's-law mean download time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.integrate
import scipy.optimize

from repro.errors import ConvergenceError, ParameterError

__all__ = ["FluidModel", "FluidSteadyState", "FluidTrajectory"]


@dataclass(frozen=True)
class FluidSteadyState:
    """Equilibrium of the fluid ODEs.

    Attributes:
        leechers: ``x_bar``.
        seeds: ``y_bar``.
        download_constrained: True when ``c * x_bar`` (the downlink) is
            the binding capacity, False when the uplink is.
        mean_download_time: Little's-law ``T = x_bar / lambda`` (with
            the abort-corrected throughput for ``theta > 0``).
    """

    leechers: float
    seeds: float
    download_constrained: bool
    mean_download_time: float


@dataclass(frozen=True)
class FluidTrajectory:
    """Integrated fluid trajectory: aligned time / leecher / seed arrays."""

    times: np.ndarray
    leechers: np.ndarray
    seeds: np.ndarray


@dataclass(frozen=True)
class FluidModel:
    """Parameterised Qiu-Srikant fluid model.

    Attributes:
        arrival_rate: ``lambda``, peers per time unit.
        upload_rate: ``mu``, files per peer per time unit uploaded.
        download_rate: ``c``, files per peer per time unit downloaded.
        efficiency: ``eta`` in (0, 1] — sharing effectiveness.
        abort_rate: ``theta`` >= 0, leecher abandonment rate.
        seed_departure_rate: ``gamma_s`` > 0.
    """

    arrival_rate: float
    upload_rate: float = 1.0
    download_rate: float = 2.0
    efficiency: float = 1.0
    abort_rate: float = 0.0
    seed_departure_rate: float = 1.0

    def __post_init__(self) -> None:
        if self.arrival_rate < 0:
            raise ParameterError(
                f"arrival_rate must be >= 0, got {self.arrival_rate}"
            )
        if self.upload_rate <= 0 or self.download_rate <= 0:
            raise ParameterError("upload_rate and download_rate must be > 0")
        if not 0.0 < self.efficiency <= 1.0:
            raise ParameterError(
                f"efficiency must be in (0, 1], got {self.efficiency}"
            )
        if self.abort_rate < 0:
            raise ParameterError(f"abort_rate must be >= 0, got {self.abort_rate}")
        if self.seed_departure_rate <= 0:
            raise ParameterError(
                f"seed_departure_rate must be > 0, got {self.seed_departure_rate}"
            )

    # ------------------------------------------------------------------
    def service_rate(self, leechers: float, seeds: float) -> float:
        """Completed downloads per time unit at state ``(x, y)``."""
        uplink = self.upload_rate * (self.efficiency * leechers + seeds)
        downlink = self.download_rate * leechers
        return min(uplink, downlink)

    def derivatives(self, state: np.ndarray) -> np.ndarray:
        """Right-hand side of the ODE system at ``state = (x, y)``."""
        x, y = float(state[0]), float(state[1])
        x = max(x, 0.0)
        y = max(y, 0.0)
        completed = self.service_rate(x, y)
        dx = self.arrival_rate - self.abort_rate * x - completed
        dy = completed - self.seed_departure_rate * y
        return np.array([dx, dy])

    def integrate(
        self,
        horizon: float,
        *,
        x0: float = 0.0,
        y0: float = 1.0,
        points: int = 200,
    ) -> FluidTrajectory:
        """Integrate the fluid ODEs from ``(x0, y0)`` to ``horizon``."""
        if horizon <= 0:
            raise ParameterError(f"horizon must be > 0, got {horizon}")
        if points < 2:
            raise ParameterError(f"points must be >= 2, got {points}")
        times = np.linspace(0.0, horizon, points)
        solution = scipy.integrate.solve_ivp(
            lambda _t, state: self.derivatives(state),
            (0.0, horizon),
            [x0, y0],
            t_eval=times,
            method="RK45",
            max_step=horizon / points,
        )
        if not solution.success:
            raise ConvergenceError(f"fluid ODE integration failed: {solution.message}")
        leechers = np.clip(solution.y[0], 0.0, None)
        seeds = np.clip(solution.y[1], 0.0, None)
        return FluidTrajectory(times=times, leechers=leechers, seeds=seeds)

    def steady_state(self) -> FluidSteadyState:
        """Equilibrium ``(x_bar, y_bar)`` of the fluid system.

        For ``theta = 0`` the closed form applies: all arrivals
        eventually complete, ``y_bar = lambda / gamma_s`` and ``x_bar``
        solves ``min(c x, mu(eta x + y_bar)) = lambda``.  For
        ``theta > 0`` the balance is found numerically (Brent's method
        on the leecher balance equation).
        """
        lam = self.arrival_rate
        if lam == 0:
            return FluidSteadyState(0.0, 0.0, False, 0.0)
        if self.abort_rate == 0:
            y_bar = lam / self.seed_departure_rate
            # Uplink-constrained candidate: mu(eta x + y) = lambda.
            x_up = (lam / self.upload_rate - y_bar) / self.efficiency
            x_down = lam / self.download_rate
            # The binding constraint is whichever requires more leechers.
            if x_down >= x_up:
                x_bar, constrained = x_down, True
            else:
                x_bar, constrained = max(x_up, 0.0), False
            return FluidSteadyState(
                leechers=x_bar,
                seeds=y_bar,
                download_constrained=constrained,
                mean_download_time=x_bar / lam,
            )

        def leecher_balance(x: float) -> float:
            completed = self.service_rate(
                x, self._seed_balance(x)
            )
            return lam - self.abort_rate * x - completed

        upper = max(lam / min(self.upload_rate, self.download_rate), 1.0) * 10 + 10
        try:
            x_bar = scipy.optimize.brentq(leecher_balance, 0.0, upper)
        except ValueError as exc:
            raise ConvergenceError(
                f"no steady state found in [0, {upper}]"
            ) from exc
        y_bar = self._seed_balance(x_bar)
        throughput = lam - self.abort_rate * x_bar
        constrained = (
            self.download_rate * x_bar
            < self.upload_rate * (self.efficiency * x_bar + y_bar)
        )
        mean_time = x_bar / throughput if throughput > 0 else float("inf")
        return FluidSteadyState(
            leechers=x_bar,
            seeds=y_bar,
            download_constrained=constrained,
            mean_download_time=mean_time,
        )

    def _seed_balance(self, x: float) -> float:
        """Seed level balancing inflow at leecher level ``x``.

        Solves ``min(c x, mu(eta x + y)) = gamma_s * y`` for ``y``.
        """
        # Uplink branch: mu(eta x + y) = gamma_s y  ->  y = mu eta x / (gamma_s - mu)
        if self.seed_departure_rate > self.upload_rate:
            y_up = (
                self.upload_rate * self.efficiency * x
                / (self.seed_departure_rate - self.upload_rate)
            )
        else:
            y_up = float("inf")
        y_down = self.download_rate * x / self.seed_departure_rate
        y = min(y_up, y_down)
        return max(y, 0.0)
