"""Baselines the paper positions itself against (Section 2.2).

* :mod:`repro.baselines.coupon` — the coupon replication system of
  Massoulie & Vojnovic [8]: encounters drawn uniformly from the *whole*
  swarm (no neighbor set), a *single* connection per encounter, and a
  positive probability of failed encounters.  The paper argues
  BitTorrent's neighbor-set-limited, multi-connection dynamics differ
  materially; this implementation makes the comparison runnable.
* :mod:`repro.baselines.fluid` — the Qiu-Srikant fluid model [9]:
  aggregate leecher/seed ODEs that hide protocol dynamics behind an
  efficiency parameter ``eta`` — the "fundamental limitation" the
  paper's protocol-level model addresses.
"""

from repro.baselines.coupon import CouponResult, CouponSystem, run_coupon_system
from repro.baselines.fluid import FluidModel, FluidSteadyState, FluidTrajectory

__all__ = [
    "CouponResult",
    "CouponSystem",
    "run_coupon_system",
    "FluidModel",
    "FluidSteadyState",
    "FluidTrajectory",
]
