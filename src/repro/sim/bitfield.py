"""Compact piece bitfields.

A :class:`Bitfield` tracks which of a file's ``B`` pieces a peer holds,
backed by a single Python integer used as a bitmask.  All the swarm's
hot-path queries — mutual interest, exchangeable pieces, rarity
filtering — reduce to integer bit operations, which keeps the
simulator's per-round cost low even for thousands of peers.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.errors import ParameterError

__all__ = ["Bitfield"]

if hasattr(int, "bit_count"):  # Python >= 3.10
    def _popcount(mask: int) -> int:
        return mask.bit_count()
else:  # pragma: no cover - exercised only on Python 3.9
    def _popcount(mask: int) -> int:
        return bin(mask).count("1")


class Bitfield:
    """Set of held pieces over a fixed universe ``0 .. num_pieces - 1``."""

    __slots__ = ("num_pieces", "_mask", "_full_mask", "_count")

    def __init__(self, num_pieces: int, mask: int = 0):
        if num_pieces < 1:
            raise ParameterError(f"num_pieces must be >= 1, got {num_pieces}")
        self.num_pieces = num_pieces
        self._full_mask = (1 << num_pieces) - 1
        if mask & ~self._full_mask:
            raise ParameterError("mask has bits outside the piece universe")
        self._mask = mask
        self._count = _popcount(mask)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def full(cls, num_pieces: int) -> "Bitfield":
        """A seed's bitfield: every piece held."""
        return cls(num_pieces, (1 << num_pieces) - 1)

    @classmethod
    def from_pieces(cls, num_pieces: int, pieces) -> "Bitfield":
        """Bitfield holding exactly the given piece indices."""
        mask = 0
        for piece in pieces:
            if not 0 <= piece < num_pieces:
                raise ParameterError(
                    f"piece {piece} outside 0..{num_pieces - 1}"
                )
            mask |= 1 << piece
        return cls(num_pieces, mask)

    def copy(self) -> "Bitfield":
        return Bitfield(self.num_pieces, self._mask)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, piece: int) -> bool:
        """Mark ``piece`` as held; returns False if it was already held."""
        if not 0 <= piece < self.num_pieces:
            raise ParameterError(f"piece {piece} outside 0..{self.num_pieces - 1}")
        bit = 1 << piece
        if self._mask & bit:
            return False
        self._mask |= bit
        self._count += 1
        return True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def has(self, piece: int) -> bool:
        if not 0 <= piece < self.num_pieces:
            raise ParameterError(f"piece {piece} outside 0..{self.num_pieces - 1}")
        return bool(self._mask & (1 << piece))

    @property
    def count(self) -> int:
        """Number of pieces held."""
        return self._count

    @property
    def mask(self) -> int:
        """Raw integer bitmask (read-only view)."""
        return self._mask

    @property
    def is_complete(self) -> bool:
        return self._mask == self._full_mask

    @property
    def is_empty(self) -> bool:
        return self._mask == 0

    def missing_count(self) -> int:
        return self.num_pieces - self._count

    def first_missing(self) -> Optional[int]:
        """Lowest piece index not held (None when complete)."""
        inverted = ~self._mask & self._full_mask
        if not inverted:
            return None
        return (inverted & -inverted).bit_length() - 1

    def pieces(self) -> Iterator[int]:
        """Iterate held piece indices in increasing order."""
        mask = self._mask
        while mask:
            low = mask & -mask
            yield low.bit_length() - 1
            mask ^= low

    def exchangeable_from(self, other: "Bitfield") -> int:
        """Bitmask of pieces ``other`` holds that we lack."""
        self._check_compatible(other)
        return other._mask & ~self._mask & self._full_mask

    def exchangeable_pieces_from(self, other: "Bitfield") -> List[int]:
        """Piece indices ``other`` could upload to us."""
        return list(_iter_bits(self.exchangeable_from(other)))

    def mutual_interest(self, other: "Bitfield") -> bool:
        """Strict tit-for-tat tradability: each side offers something new.

        True iff ``other`` holds a piece we lack **and** we hold a piece
        ``other`` lacks — the paper's potential-set membership test.
        The xor form needs three bigint ops instead of six: ``diff``
        already confines both directions to the piece universe, so
        ``diff & other`` is "theirs-not-ours" and ``diff & self`` is
        "ours-not-theirs".
        """
        self._check_compatible(other)
        diff = self._mask ^ other._mask
        return bool(diff & other._mask) and bool(diff & self._mask)

    def interested_in(self, other: "Bitfield") -> bool:
        """One-directional interest: ``other`` has a piece we lack."""
        return bool(self.exchangeable_from(other))

    def _check_compatible(self, other: "Bitfield") -> None:
        if self.num_pieces != other.num_pieces:
            raise ParameterError(
                f"bitfields cover different files: "
                f"{self.num_pieces} vs {other.num_pieces} pieces"
            )

    # ------------------------------------------------------------------
    # Dunders
    # ------------------------------------------------------------------
    def __contains__(self, piece: int) -> bool:
        return self.has(piece)

    def __len__(self) -> int:
        return self._count

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitfield):
            return NotImplemented
        return self.num_pieces == other.num_pieces and self._mask == other._mask

    def __hash__(self) -> int:
        return hash((self.num_pieces, self._mask))

    def __repr__(self) -> str:
        return f"Bitfield({self._count}/{self.num_pieces})"


def _iter_bits(mask: int) -> Iterator[int]:
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low
