"""Swarm orchestrator: ties engine, tracker, peers and policies together.

One protocol **round** lasts ``piece_time`` and corresponds to one step
of the download-evolution chain (each active connection moves one piece
each way per round).  A round executes, in order:

1. lingering-seed departures (leechers that stayed as seeds past their
   time) — permanent origin seeds never leave;
2. connection maintenance — drop pairs that lost mutual interest or
   failed exogenously (:mod:`repro.sim.choking`);
3. potential-set computation for every leecher (the ``i`` coordinate);
4. slot filling — bilateral matching over potential sets;
5. tit-for-tat piece exchange — one piece each way per connection,
   selected rarest-first or randomly;
6. seed uploads (free pieces, no reciprocation) and optimistic-unchoke
   donations to empty-handed neighbors (the bootstrap channel);
7. per-peer stats, bootstrap-trap reporting, completions/departures,
   peer-set shaking, neighbor-set refills, and metrics.

Piece **rarity** for rarest-first is maintained incrementally as a
global replication count by default (O(1) per acquisition).  Real
clients estimate rarity from HAVE messages within their neighbor set;
``rarity_view="neighborhood"`` computes that exact limited view at
O(s * B) per peer per round for studies where the distinction matters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.errors import ParameterError, SimulationError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultStats
from repro.sim.bitfield import Bitfield
from repro.sim.choking import (
    ConnectionStats,
    drop_stale_connections,
    fill_open_slots,
)
from repro.sim.config import SimConfig
from repro.sim.engine import DiscreteEventEngine, Event
from repro.sim.metrics import MetricsCollector
from repro.sim.peer import Peer
from repro.runtime.profiler import RoundProfiler
from repro.sim.peer_selection import (
    IncrementalPotentialSets,
    is_bootstrap_trapped,
)
from repro.sim.piece_selection import neighborhood_rarity, select_piece
from repro.sim.seeds import plan_seed_uploads
from repro.sim.shake import maybe_shake
from repro.sim.tracker import Tracker

__all__ = ["Swarm", "SwarmResult", "run_swarm"]


@dataclass
class SwarmResult:
    """Everything a run produced.

    Attributes:
        config: the configuration that produced this result.
        metrics: the collector with population/entropy/occupancy series.
        instrumented: full :class:`Peer` objects of instrumented peers
            (their stats survive departure).
        total_rounds: protocol rounds executed.
        final_leechers / final_seeds: population at the horizon.
        tracker_population_log: the tracker's (time, leechers, seeds)
            records — the paper's "tracker statistics".
        connection_stats: accumulated connection survival/formation
            counts, whose ratios are the measured ``p_r`` and ``p_n``.
        seed_upload_count: total pieces granted by seeds over the run.
        events_processed: discrete events the engine executed — the
            per-run work unit the runtime telemetry aggregates.
        wall_time: wall-clock seconds spent inside :meth:`Swarm.run`.
        fault_stats: counters of injected faults (None when the swarm
            ran without a :class:`~repro.faults.plan.FaultPlan`).
        round_profile: per-stage wall seconds from the
            :class:`~repro.runtime.profiler.RoundProfiler` (None unless
            the swarm ran with ``profile=True``).
        resumed_from_round: round the run was restored at when it came
            from a checkpoint (None for an uninterrupted run).  Excluded
            from the result fingerprint — the replayed trajectory is
            identical either way.
        checkpoints_written: snapshots this run wrote (also excluded
            from the fingerprint).
        backend: which swarm engine produced the result (``"object"``
            or ``"soa"``; also excluded from the fingerprint).
    """

    config: SimConfig
    metrics: MetricsCollector
    instrumented: List[Peer]
    total_rounds: int
    final_leechers: int
    final_seeds: int
    tracker_population_log: List[Tuple[float, int, int]]
    connection_stats: ConnectionStats
    seed_upload_count: int
    events_processed: int = 0
    wall_time: float = 0.0
    fault_stats: Optional[FaultStats] = None
    round_profile: Optional[Dict[str, float]] = None
    resumed_from_round: Optional[int] = None
    checkpoints_written: int = 0
    backend: str = "object"
    #: Per-shard round profiles keyed ``"shard0"``.. plus the
    #: coordinator's ``"coordinator"`` comms profile (sharded backend
    #: with ``profile=True`` only; excluded from the fingerprint like
    #: every other wall-clock observable).
    shard_profiles: Optional[Dict[str, Dict[str, float]]] = None
    #: Shared-memory fabric byte accounting (``bytes_broadcast``,
    #: ``bytes_migrated``, ``bytes_per_round``) for multi-shard runs;
    #: None elsewhere.  A wall-clock-adjacent observable, excluded from
    #: the fingerprint.
    comms: Optional[Dict[str, float]] = None

    def fingerprint(self) -> str:
        """SHA-256 over every deterministic output of the run.

        Two runs of the same trajectory — uninterrupted, or snapshotted
        and resumed at any round boundary — share this value; see
        :mod:`repro.checkpoint.fingerprint`.
        """
        from repro.checkpoint.fingerprint import result_fingerprint

        return result_fingerprint(self)


#: Valid values for the ``backend`` constructor argument.
BACKENDS = ("object", "soa", "sharded")


class Swarm:
    """A configurable BitTorrent swarm simulation.

    Args:
        config: the :class:`SimConfig`.
        backend: ``"object"`` (this class: per-peer Python objects, the
            fingerprint reference, full feature set), ``"soa"`` (the
            vectorized structure-of-arrays engine in
            :mod:`repro.sim.soa`; orders of magnitude faster at scale,
            statistically equivalent, supports the paper-scale config
            subset) or ``"sharded"`` (the SoA slab partitioned across
            ``shards=N`` worker processes — :mod:`repro.sim.sharded`;
            million-peer swarms, same config subset as ``"soa"``).
            ``Swarm(config, backend="soa")`` transparently constructs a
            :class:`~repro.sim.soa.SoaSwarm`, and
            ``Swarm(config, backend="sharded", shards=N)`` a
            :class:`~repro.sim.sharded.ShardedSwarm`.
        instrument_first: instrument the first N leechers to enter the
            swarm (initial population first, then arrivals) — they log
            per-round potential-set and connection series.
        instrumented_avoid_seeds: instrumented peers refuse seed uploads
            and optimistic donations, mirroring the paper's measurement
            client which "did not allow ... interact[ion] with the
            seeds" to isolate strict tit-for-tat behaviour.
        instrumented_start_empty: instrumented peers always join with no
            pieces, even when the surrounding initial population is
            pre-filled — the measurement client starts a fresh download.
        rarity_view: ``"global"`` (incremental swarm-wide counts) or
            ``"neighborhood"`` (exact per-peer limited view).
        metrics: optionally supply a pre-configured collector.
        faults: optional :class:`~repro.faults.plan.FaultPlan`.  The
            resulting injector draws from its own seed-derived stream,
            so a zero-intensity plan reproduces the fault-free run
            bit-for-bit (see ``docs/FAULTS.md``).
        profile: bucket per-round wall time by stage with a
            :class:`~repro.runtime.profiler.RoundProfiler`; the profile
            lands on :attr:`SwarmResult.round_profile`.  Disabled, the
            round loop pays only a few ``is None`` checks.
        checkpoint_every: write a snapshot every this many rounds (0
            disables checkpointing).
        checkpoint_path: where snapshots land (atomic overwrite of the
            same file; see :mod:`repro.checkpoint.format`).  Required
            when ``checkpoint_every > 0``.
    """

    def __new__(cls, config: Optional[SimConfig] = None, **kwargs):
        backend = kwargs.get("backend", "object")
        if backend not in BACKENDS:
            raise ParameterError(
                f"unknown swarm backend {backend!r}; valid backends are "
                f"{', '.join(repr(b) for b in BACKENDS)} "
                f"(e.g. Swarm(config, backend='soa') or "
                f"repro-bt run --backend soa)"
            )
        if cls is Swarm and backend == "soa":
            from repro.sim.soa import SoaSwarm

            return super().__new__(SoaSwarm)
        if cls is Swarm and backend == "sharded":
            from repro.sim.sharded import ShardedSwarm

            return super().__new__(ShardedSwarm)
        return super().__new__(cls)

    def __init__(
        self,
        config: SimConfig,
        *,
        backend: str = "object",
        instrument_first: int = 0,
        instrumented_avoid_seeds: bool = False,
        instrumented_start_empty: bool = True,
        rarity_view: str = "global",
        metrics: Optional[MetricsCollector] = None,
        faults: Optional[FaultPlan] = None,
        profile: bool = False,
        checkpoint_every: int = 0,
        checkpoint_path: Optional[str] = None,
    ):
        if backend != "object":
            raise ParameterError(
                f"Swarm.__init__ implements the 'object' backend, got "
                f"backend={backend!r}"
            )
        self.backend = "object"
        if instrument_first < 0:
            raise ParameterError(
                f"instrument_first must be >= 0, got {instrument_first}"
            )
        if rarity_view not in ("global", "neighborhood"):
            raise ParameterError(
                f"rarity_view must be 'global' or 'neighborhood', "
                f"got {rarity_view!r}"
            )
        self.config = config
        self.rng = np.random.default_rng(config.seed)
        self.engine = DiscreteEventEngine()
        self.tracker = Tracker(
            config.ns_size,
            self.rng,
            bias_bootstrap=config.tracker_bias_bootstrap,
            accept_cap=max(int(config.ns_size * config.ns_accept_factor),
                           config.ns_size),
        )
        self.metrics = metrics or MetricsCollector(config.max_conns)
        self.instrument_first = instrument_first
        self.instrumented_avoid_seeds = instrumented_avoid_seeds
        self.instrumented_start_empty = instrumented_start_empty
        self.rarity_view = rarity_view
        self.instrumented_peers: List[Peer] = []
        #: Global replication counts, maintained incrementally.
        self.piece_counts = np.zeros(config.num_pieces, dtype=np.int64)
        self._global_rarity: Optional[np.ndarray] = None
        self._rarity_round = -1
        #: Dirty-flag potential-set cache (subscribes to tracker
        #: mutations; bitfield/seed-flag changes are reported below).
        self._potential_sets = IncrementalPotentialSets(
            self.tracker, strict_tft=config.strict_tft
        )
        self.connection_stats = ConnectionStats()
        #: Per-stage round profiler (None unless ``profile=True``).
        self.profiler: Optional[RoundProfiler] = (
            RoundProfiler() if profile else None
        )
        #: Total pieces granted by seeds (capacity accounting).
        self.seed_upload_count = 0
        self._rounds = 0
        self._setup_done = False
        if checkpoint_every < 0:
            raise ParameterError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        if checkpoint_every > 0 and checkpoint_path is None:
            raise ParameterError(
                "checkpoint_every > 0 requires a checkpoint_path"
            )
        self.checkpoint_every = checkpoint_every
        self.checkpoint_path = checkpoint_path
        self.checkpoints_written = 0
        #: Round a restore re-entered at (None for a fresh swarm).
        self.resumed_from_round: Optional[int] = None
        #: Fault injection (None when no plan is attached).
        self.fault_injector: Optional[FaultInjector] = None
        if faults is not None:
            self.fault_injector = FaultInjector(faults, config.seed)
            self.tracker.fault_injector = self.fault_injector
            # The injector learns the simulation clock from the engine's
            # pre-dispatch hook (tracker announces carry no time).
            self.engine.add_pre_dispatch_hook(self.fault_injector.observe)
        self.engine.register("round", self._on_round)
        self.engine.register("arrival", self._on_arrival)

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def setup(self) -> None:
        """Create the initial population and schedule the event skeleton."""
        if self._setup_done:
            raise SimulationError("setup() called twice")
        self._setup_done = True
        config = self.config

        for _ in range(config.num_seeds):
            self._spawn_peer(0.0, is_seed=True)

        for _ in range(config.initial_leechers):
            self._spawn_peer(0.0, initial_pieces=self._initial_mask())

        if config.arrival_process == "flash":
            for _ in range(config.flash_size):
                self._spawn_peer(0.0)
        elif config.arrival_process == "poisson" and config.arrival_rate > 0:
            self._schedule_next_arrival()

        expected_rounds = int(config.max_time / config.piece_time)
        self.metrics.set_expected_rounds(expected_rounds)
        self.engine.schedule_at(config.piece_time, Event("round"))

    def _initial_mask(self) -> Optional[int]:
        """Bitmask for an initial-population leecher per the config."""
        config = self.config
        if config.initial_distribution == "empty":
            return None
        prob = np.full(config.num_pieces, config.initial_fill)
        if config.initial_distribution == "skewed":
            prob[: config.skewed_pieces] *= config.skew_factor
        held = self.rng.random(config.num_pieces) < prob
        mask = 0
        for piece in np.flatnonzero(held):
            mask |= 1 << int(piece)
        # A complete "initial leecher" would depart instantly; drop one
        # random piece so it participates at least one round.
        if mask == (1 << config.num_pieces) - 1:
            drop = int(self.rng.integers(config.num_pieces))
            mask &= ~(1 << drop)
        return mask

    def _spawn_peer(
        self,
        time: float,
        *,
        is_seed: bool = False,
        initial_pieces: Optional[int] = None,
    ) -> Peer:
        instrument = (
            not is_seed and len(self.instrumented_peers) < self.instrument_first
        )
        peer = Peer(
            self.tracker.new_peer_id(),
            self.config.num_pieces,
            joined_at=time,
            is_seed=is_seed,
            instrumented=instrument,
        )
        if instrument and self.instrumented_start_empty:
            initial_pieces = None
        if initial_pieces:
            peer.bitfield = Bitfield(self.config.num_pieces, initial_pieces)
        if not is_seed and self.config.bandwidth_classes is not None:
            fractions = [frac for frac, _cap in self.config.bandwidth_classes]
            chosen = int(self.rng.choice(len(fractions), p=fractions))
            peer.upload_capacity = int(self.config.bandwidth_classes[chosen][1])
        self.tracker.register(peer)
        self.tracker.announce(peer)
        if is_seed:
            self.piece_counts += 1
        else:
            for piece in peer.bitfield.pieces():
                self.piece_counts[piece] += 1
        if instrument:
            self.instrumented_peers.append(peer)
        return peer

    # ------------------------------------------------------------------
    # Arrivals
    # ------------------------------------------------------------------
    def _schedule_next_arrival(self) -> None:
        delay = float(self.rng.exponential(1.0 / self.config.arrival_rate))
        when = self.engine.now + delay
        if when <= self.config.max_time:
            self.engine.schedule_at(when, Event("arrival"))

    def _on_arrival(self, time: float, event: Event) -> None:
        self._spawn_peer(time)
        self._schedule_next_arrival()

    # ------------------------------------------------------------------
    # The protocol round
    # ------------------------------------------------------------------
    def _on_round(self, time: float, event: Event) -> None:
        config = self.config
        self._rounds += 1
        profiler = self.profiler
        if profiler is not None:
            profiler.begin_round()

        self._depart_lingering_seeds(time)
        self._handle_aborts(time)
        self._inject_churn(time)
        leechers = list(self.tracker.leechers())

        if leechers:
            drop_stale_connections(
                leechers,
                self.tracker,
                self.rng,
                failure_prob=config.connection_failure_prob,
                strict_tft=config.strict_tft,
                stats=self.connection_stats,
                injector=self.fault_injector,
            )
            if profiler is not None:
                profiler.lap("maintenance")
            potential = self._potential_sets.compute(leechers)
            if profiler is not None:
                profiler.lap("potential")
            fill_open_slots(
                leechers,
                potential,
                self.tracker,
                config.max_conns,
                self.rng,
                setup_prob=config.connection_setup_prob,
                matching=config.matching,
                stats=self.connection_stats,
                injector=self.fault_injector,
            )
            if profiler is not None:
                profiler.lap("matching")
            acquisitions = self._exchange_pieces(leechers, time)
            if profiler is not None:
                profiler.lap("exchange")
            acquisitions += self._seed_uploads(time)
            acquisitions += self._optimistic_donations(leechers, time)
            if profiler is not None:
                profiler.lap("seeds")
            self._record_round_stats(leechers, potential, time)
            self._handle_completions(time)
            self._handle_shakes(time)
            self._refill_neighbor_sets(time)
        else:
            potential = {}
            if profiler is not None:
                profiler.lap("maintenance")

        self.tracker.log_population(time)
        self.metrics.on_round_end(time, self.tracker, {
            pid: len(members) for pid, members in potential.items()
        })
        if profiler is not None:
            profiler.lap("bookkeeping")

        next_time = time + config.piece_time
        if next_time <= config.max_time and (
            len(self.tracker) > 0 or self.engine.pending_events > 0
        ):
            self.engine.schedule_at(next_time, Event("round"))

        # Snapshot AFTER scheduling the follow-up round, so the captured
        # event queue already carries the continuation — a resumed run
        # re-enters the loop exactly where the interrupted one would.
        if (
            self.checkpoint_every > 0
            and self._rounds % self.checkpoint_every == 0
        ):
            self.write_checkpoint()

    def _depart_lingering_seeds(self, time: float) -> None:
        for peer in list(self.tracker.seeds()):
            if peer.seed_until is not None and time >= peer.seed_until:
                self.tracker.deregister(peer.peer_id)
                self.piece_counts -= 1  # a full bitfield leaves

    def _handle_aborts(self, time: float) -> None:
        """Leechers abandon at rate ``abort_rate`` (the fluid theta).

        The per-leecher uniforms are drawn as one vectorized call; a
        batch of ``m`` draws consumes the generator stream identically
        to ``m`` sequential ``rng.random()`` calls, so the per-peer
        abort decisions are bit-identical to the old scalar loop.
        """
        rate = self.config.abort_rate
        if rate <= 0.0:
            return
        peers = list(self.tracker.leechers())
        if not peers:
            return
        draws = self.rng.random(len(peers))
        for peer, u in zip(peers, draws):
            if u < rate:
                self.metrics.on_peer_abort(peer, time)
                self.tracker.deregister(peer.peer_id)
                for piece in peer.bitfield.pieces():
                    self.piece_counts[piece] -= 1

    def _inject_churn(self, time: float) -> None:
        """Fault-injected churn: leechers abort at the plan's hazard rate.

        Draws come from the injector's own stream, so the swarm's RNG
        consumption — and hence every fault-free draw sequence — is
        untouched by attaching a plan.  One vectorized
        :meth:`~repro.faults.injector.FaultInjector.churn_mask` call
        replaces the per-peer draws with an identical stream order.
        """
        injector = self.fault_injector
        if injector is None or injector.plan.churn_hazard <= 0.0:
            return
        peers = list(self.tracker.leechers())
        if not peers:
            return
        mask = injector.churn_mask(len(peers))
        for peer, churned in zip(peers, mask):
            if churned:
                self.metrics.on_peer_abort(peer, time)
                self.tracker.deregister(peer.peer_id)
                for piece in peer.bitfield.pieces():
                    self.piece_counts[piece] -= 1

    # -- piece exchange ---------------------------------------------------
    def _rarity_for(self, peer: Peer):
        if self.rarity_view == "neighborhood":
            return neighborhood_rarity(peer, self.tracker)
        # Global view: snapshot at most once per round (piece counts
        # move within a round, but rarest-first is a heuristic ranking;
        # the one-round-stale view is the standard fidelity/cost trade).
        # The snapshot is the raw count array — O(B) copy instead of the
        # old O(B) dict build — which select_piece indexes directly;
        # every count matches the old ``{piece: count if count > 0}``
        # view, so selections are bit-identical.
        if self._rarity_round != self._rounds:
            self._rarity_round = self._rounds
            snapshot = self.piece_counts.copy()
            snapshot.setflags(write=False)
            self._global_rarity = snapshot
        return self._global_rarity

    def _grant_piece(self, receiver: Peer, piece: int, time: float) -> bool:
        """Apply one transfer toward ``piece``; False if it was a duplicate.

        At whole-piece granularity (``blocks_per_piece == 1``) the piece
        lands immediately.  At sub-piece granularity each call delivers
        one block; the piece joins the bitfield — and becomes tradable,
        per the paper's "a peer can start serving a block only after the
        entire piece is received and its correctness is verified" — only
        once all blocks have arrived.
        """
        if receiver.bitfield.has(piece):
            return False
        blocks = self.config.blocks_per_piece
        if blocks > 1:
            received = receiver.block_progress.get(piece, 0) + 1
            if received < blocks:
                receiver.block_progress[piece] = received
                return True
            receiver.block_progress.pop(piece, None)
        if not receiver.bitfield.add(piece):
            return False
        receiver.record_piece(time, piece)
        self.piece_counts[piece] += 1
        self._potential_sets.mark_neighborhood_dirty(receiver)
        return True

    def _select_for(
        self,
        receiver: Peer,
        sender: Peer,
        rarity: Dict[int, int],
    ) -> Optional[int]:
        """Piece choice for one transfer direction, block-aware.

        At sub-piece granularity, real clients finish partial pieces
        before starting new ones (strict piece priority); a partial
        piece the sender holds is therefore chosen first.
        """
        config = self.config
        if config.blocks_per_piece > 1 and receiver.block_progress:
            partials = [
                piece
                for piece in receiver.block_progress
                if sender.bitfield.has(piece)
            ]
            if partials:
                return int(partials[int(self.rng.integers(len(partials)))])
        return select_piece(
            receiver.bitfield,
            sender.bitfield,
            config.piece_selection,
            self.rng,
            rarity=rarity,
            random_first_cutoff=config.random_first_cutoff,
        )

    def _exchange_pieces(self, leechers: List[Peer], time: float) -> int:
        """Strict tit-for-tat swaps: one piece each way per connection.

        Under heterogeneous bandwidth each leecher's uploads per round
        are capped at its ``upload_capacity``; a strict-TFT swap needs
        one unit of budget on *both* sides.
        """
        config = self.config
        pairs: List[Tuple[Peer, Peer]] = []
        for peer in leechers:
            # Sorted partner order: pair order feeds the permutation
            # draw below and must not depend on set memory layout
            # (checkpoint restores rebuild these sets from scratch).
            for partner_id in sorted(peer.partners):
                if partner_id > peer.peer_id:
                    partner = self.tracker.get(partner_id)
                    if partner is not None and not partner.is_seed:
                        pairs.append((peer, partner))
        if not pairs:
            return 0
        budgets: Dict[int, int] = {}
        if config.bandwidth_classes is not None:
            for peer in leechers:
                if peer.upload_capacity is not None:
                    budgets[peer.peer_id] = peer.upload_capacity
        transferred = 0
        order = self.rng.permutation(len(pairs))
        for idx in order:
            a, b = pairs[idx]
            if budgets:
                if budgets.get(a.peer_id, 1) < 1 or budgets.get(b.peer_id, 1) < 1:
                    continue  # an endpoint's uplink is saturated this round
            rarity_a = self._rarity_for(a)
            rarity_b = self._rarity_for(b)
            gift_to_a = self._select_for(a, b, rarity_a)
            gift_to_b = self._select_for(b, a, rarity_b)
            if config.strict_tft and (gift_to_a is None or gift_to_b is None):
                # The earlier transfers of this round consumed the
                # remaining novelty: no one-sided gifts under strict TFT.
                continue
            if gift_to_a is not None:
                transferred += self._grant_piece(a, gift_to_a, time)
                if budgets and b.peer_id in budgets:
                    budgets[b.peer_id] -= 1  # b uploaded to a
            if gift_to_b is not None:
                transferred += self._grant_piece(b, gift_to_b, time)
                if budgets and a.peer_id in budgets:
                    budgets[a.peer_id] -= 1  # a uploaded to b
        return transferred

    def _seed_uploads(self, time: float) -> int:
        config = self.config
        blocked: Optional[Set[int]] = None
        if self.instrumented_avoid_seeds:
            blocked = {p.peer_id for p in self.instrumented_peers}
        granted = 0
        for seed in list(self.tracker.seeds()):
            grants = plan_seed_uploads(
                seed,
                self.tracker,
                config.seed_upload_slots,
                config.piece_selection,
                self.rng,
                super_seeding=config.super_seeding,
                rarity=self._rarity_for(seed),
                blocked_receivers=blocked,
                random_first_cutoff=config.random_first_cutoff,
            )
            for receiver_id, piece in grants:
                receiver = self.tracker.get(receiver_id)
                if receiver is not None:
                    granted += self._grant_piece(receiver, piece, time)
        self.seed_upload_count += granted
        return granted

    def _optimistic_donations(self, leechers: List[Peer], time: float) -> int:
        """Optimistic unchokes: free pieces for neighbors that can't pay.

        Each round, with probability ``optimistic_unchoke_prob``, a peer
        uploads one piece for free to a neighbor that cannot reciprocate
        ("through optimistic unchoking from other downloaders").  Like
        BitTorrent's optimistic-unchoke slot, this capacity is *in
        addition to* the ``k`` regular slots.

        Target selection follows ``config.optimistic_targets``:
        ``"starved"`` serves any interested neighbor with nothing novel
        to offer the donor (the protocol's actual behaviour — and the
        escape hatch for bootstrap- and last-phase-trapped peers whose
        piece sets are subsets of their neighborhood's); ``"empty"``
        restricts the channel to zero-piece newcomers.
        """
        config = self.config
        if config.optimistic_unchoke_prob <= 0.0:
            return 0
        donated = 0
        for donor in leechers:
            if donor.bitfield.count < 1:
                continue
            if self.rng.random() >= config.optimistic_unchoke_prob:
                continue
            eligible = []
            # Sorted neighbor order: ``eligible`` is indexed by an RNG
            # draw, so its order must survive checkpoint/restore.
            for nid in sorted(donor.neighbors):
                neighbor = self.tracker.get(nid)
                if neighbor is None or neighbor.is_seed:
                    continue
                if config.optimistic_targets == "empty":
                    if neighbor.bitfield.is_empty:
                        eligible.append(nid)
                else:
                    # Starved: wants something from the donor but has
                    # nothing novel to trade back.
                    if neighbor.bitfield.interested_in(
                        donor.bitfield
                    ) and not donor.bitfield.interested_in(neighbor.bitfield):
                        eligible.append(nid)
            if not eligible:
                continue
            receiver = self.tracker.get(
                int(eligible[self.rng.integers(len(eligible))])
            )
            if receiver is None:
                continue
            piece = select_piece(
                receiver.bitfield,
                donor.bitfield,
                config.piece_selection,
                self.rng,
                rarity=self._rarity_for(receiver),
                random_first_cutoff=config.random_first_cutoff,
            )
            if piece is not None:
                donated += self._grant_piece(receiver, piece, time)
        return donated

    # -- bookkeeping -------------------------------------------------------
    def _record_round_stats(
        self,
        leechers: List[Peer],
        potential: Dict[int, List[int]],
        time: float,
    ) -> None:
        for peer in leechers:
            size = len(potential.get(peer.peer_id, ()))
            peer.record_round(time, size)
            if self.config.tracker_bias_bootstrap:
                self.tracker.report_bootstrap_trapped(
                    peer.peer_id, is_bootstrap_trapped(peer, size)
                )

    def _handle_completions(self, time: float) -> None:
        config = self.config
        for peer in list(self.tracker.leechers()):
            if not peer.bitfield.is_complete:
                continue
            self.metrics.on_peer_complete(peer, time)
            if config.completed_become_seeds > 0:
                peer.is_seed = True
                peer.seed_until = time + config.completed_become_seeds
                # The seed flag removes the peer from every neighbor's
                # potential set; invalidate the whole neighborhood.
                self._potential_sets.mark_neighborhood_dirty(peer)
                # Sever trading connections symmetrically: seeds upload
                # outside the tit-for-tat slots.
                for partner_id in list(peer.partners):
                    partner = self.tracker.get(partner_id)
                    if partner is not None:
                        partner.partners.discard(peer.peer_id)
                peer.partners.clear()
            else:
                self.tracker.deregister(peer.peer_id)
                self.piece_counts -= 1

    def _handle_shakes(self, time: float) -> None:
        threshold = self.config.shake_threshold
        if threshold is None:
            return
        for peer in list(self.tracker.leechers()):
            maybe_shake(
                peer, self.tracker, threshold, time,
                injector=self.fault_injector,
            )

    def _refill_neighbor_sets(self, time: float) -> None:
        config = self.config
        interval_rounds = max(int(config.announce_interval / config.piece_time), 1)
        if self._rounds % interval_rounds != 0:
            return
        for peer in list(self.tracker.leechers()):
            if len(peer.neighbors) < config.ns_size:
                self.tracker.announce(peer)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Full snapshot document (schema v1) of the current state.

        Valid between engine events — in practice, at round boundaries;
        the periodic ``checkpoint_every`` hook calls this at the end of
        a round.  Imports are lazy to keep ``repro.sim`` importable
        without the checkpoint package (and to avoid an import cycle).
        """
        from repro.checkpoint.schema import snapshot_swarm

        return snapshot_swarm(self)

    def write_checkpoint(self, path: Optional[str] = None) -> None:
        """Atomically write the current snapshot to ``path``.

        Defaults to the configured ``checkpoint_path``.
        """
        from repro.checkpoint.format import write_checkpoint

        target = path if path is not None else self.checkpoint_path
        if target is None:
            raise ParameterError("no checkpoint path configured")
        write_checkpoint(self.snapshot(), target)
        self.checkpoints_written += 1

    @classmethod
    def resume(cls, snapshot: dict, **swarm_kwargs) -> "Swarm":
        """Rebuild a swarm from a snapshot document, ready to :meth:`run`.

        The continuation is bit-identical to the uninterrupted run: the
        resulting :class:`SwarmResult` has the same
        :meth:`~SwarmResult.fingerprint`.  ``swarm_kwargs`` carries
        run-control options only (``profile``, ``checkpoint_path``,
        ``checkpoint_every``); everything simulation-defining comes from
        the snapshot.
        """
        from repro.checkpoint.schema import restore_swarm

        return restore_swarm(snapshot, **swarm_kwargs)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self) -> SwarmResult:
        """Run to the configured horizon and return the result bundle."""
        start = time.perf_counter()
        if not self._setup_done:
            self.setup()
        self.engine.run_until(self.config.max_time)
        leech, seeds = self.tracker.counts()
        return SwarmResult(
            config=self.config,
            metrics=self.metrics,
            instrumented=self.instrumented_peers,
            total_rounds=self._rounds,
            final_leechers=leech,
            final_seeds=seeds,
            tracker_population_log=list(self.tracker.population_log),
            connection_stats=self.connection_stats,
            seed_upload_count=self.seed_upload_count,
            events_processed=self.engine.processed_events,
            wall_time=time.perf_counter() - start,
            fault_stats=(
                self.fault_injector.stats if self.fault_injector else None
            ),
            round_profile=(
                self.profiler.as_dict() if self.profiler is not None else None
            ),
            resumed_from_round=self.resumed_from_round,
            checkpoints_written=self.checkpoints_written,
            backend="object",
        )


def run_swarm(config: SimConfig, **swarm_kwargs) -> SwarmResult:
    """Convenience wrapper: build, set up, and run a swarm.

    Accepts every :class:`Swarm` constructor keyword, including
    ``backend="soa"`` for the vectorized engine and
    ``backend="sharded", shards=N`` for the multiprocess engine.
    """
    swarm = Swarm(config, **swarm_kwargs)
    return swarm.run()
