"""Discrete-event BitTorrent swarm simulator (paper Section 4.1).

A Python equivalent of the paper's C++ simulator: peers arrive in a
Poisson stream (or flash crowd), maintain symmetric neighbor sets
obtained from a tracker, trade pieces under strict tit-for-tat with up
to ``k`` simultaneous connections, select pieces rarest-first (or
randomly), and depart as soon as they hold all ``B`` pieces.  The
number of pieces ``B``, the maximum connections ``k``, the peer-set
size ``s`` and the time to download a piece are configurable — exactly
the knobs the paper lists.

Layering:

* :mod:`repro.sim.engine` — generic event loop (heapq, deterministic
  tie-breaking);
* :mod:`repro.sim.bitfield`, :mod:`repro.sim.peer` — piece bookkeeping;
* :mod:`repro.sim.tracker` — registry, neighbor handout, population log;
* :mod:`repro.sim.peer_selection` / :mod:`repro.sim.piece_selection` /
  :mod:`repro.sim.choking` — the protocol's two decision points;
* :mod:`repro.sim.seeds` — seed upload behaviour, super-seeding;
* :mod:`repro.sim.shake` — the Section-7.1 peer-set shaking mitigation;
* :mod:`repro.sim.swarm` — the orchestrator tying them together;
* :mod:`repro.sim.metrics` — observers producing every series the
  paper's figures need.
"""

from repro.sim.bitfield import Bitfield
from repro.sim.config import SimConfig
from repro.sim.engine import DiscreteEventEngine, Event
from repro.sim.metrics import MetricsCollector
from repro.sim.peer import Peer
from repro.sim.scenarios import SCENARIOS
from repro.sim.swarm import Swarm, SwarmResult, run_swarm
from repro.sim.tracker import Tracker

__all__ = [
    "Bitfield",
    "SimConfig",
    "DiscreteEventEngine",
    "Event",
    "MetricsCollector",
    "Peer",
    "SCENARIOS",
    "Swarm",
    "SwarmResult",
    "run_swarm",
    "Tracker",
]
