"""Peer-selection primitives: potential sets and encounter candidates.

The paper's *potential set* of a peer is "the subset of peers in its NS
that have at least one piece to trade with the peer at a given instance
of time" — under strict tit-for-tat this requires **mutual** novelty
(each side holds a piece the other lacks).  The potential-set size is
the ``i`` coordinate of the download-evolution chain, and its per-round
evolution is the quantity validated in Figures 1 and 2.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.sim.peer import Peer
from repro.sim.tracker import Tracker

__all__ = [
    "potential_set",
    "potential_set_sizes",
    "IncrementalPotentialSets",
    "is_bootstrap_trapped",
]


def potential_set(peer: Peer, tracker: Tracker, *, strict_tft: bool = True) -> List[int]:
    """Neighbor ids with which ``peer`` can trade right now.

    Seeds never appear in a potential set: the potential set models
    tit-for-tat *trading* partners, and seeds have nothing to receive.
    (Seed uploads are handled separately, by :mod:`repro.sim.seeds`.)

    Args:
        strict_tft: when True (the paper's assumption), membership
            requires mutual novelty; when False, one-directional
            interest (the neighbor has something for ``peer``) suffices.
    """
    members: List[int] = []
    mine = peer.bitfield
    # Canonical (sorted) neighbor order: member order feeds the swarm's
    # RNG-indexed draws, and Python set iteration order depends on the
    # set's internal layout — which a checkpoint restore cannot
    # reproduce.  Sorting makes the run a pure function of the visible
    # state, which is what makes resume ≡ uninterrupted possible.
    for neighbor_id in sorted(peer.neighbors):
        neighbor = tracker.get(neighbor_id)
        if neighbor is None or neighbor.is_seed:
            continue
        theirs = neighbor.bitfield
        if strict_tft:
            if mine.mutual_interest(theirs):
                members.append(neighbor_id)
        else:
            if mine.interested_in(theirs):
                members.append(neighbor_id)
    return members


def potential_set_sizes(
    peers: List[Peer], tracker: Tracker, *, strict_tft: bool = True
) -> Dict[int, List[int]]:
    """Potential sets for many peers at once: ``{peer_id: member_ids}``."""
    return {
        peer.peer_id: potential_set(peer, tracker, strict_tft=strict_tft)
        for peer in peers
    }


class IncrementalPotentialSets:
    """Dirty-flag cache of per-peer potential sets.

    Recomputing every leecher's potential set every round costs
    O(N * s) bigint mutual-interest checks even when almost nothing
    changed.  This cache keeps the last computed member list per peer
    and recomputes only peers invalidated since — which makes each
    round's cost proportional to the *churn* (pieces granted,
    connections announced, departures) instead of the population.

    A peer's potential set depends on exactly: its own neighbor set and
    bitfield, and each neighbor's bitfield, seed flag, and registration.
    Because neighbor relations are symmetric, every one of those inputs
    is invalidated by marking the mutated peer *and its neighbors*
    dirty.  The cache subscribes to the tracker's neighbor-mutation and
    departure notifications; bitfield and seed-flag changes are reported
    by the swarm through :meth:`mark_neighborhood_dirty`.

    Recomputation calls the same :func:`potential_set` over the same
    (unmutated) neighbor sets, so cached results are **bit-identical**
    to a from-scratch computation — including member order, which
    follows neighbor-set iteration order.
    """

    def __init__(self, tracker: Tracker, *, strict_tft: bool = True):
        self.tracker = tracker
        self.strict_tft = strict_tft
        self._cache: Dict[int, List[int]] = {}
        self._dirty: Set[int] = set()
        tracker.add_neighbor_listener(self._dirty.add)
        tracker.add_departure_listener(self._forget)

    def _forget(self, peer_id: int) -> None:
        self._cache.pop(peer_id, None)
        self._dirty.discard(peer_id)

    def mark_dirty(self, peer_id: int) -> None:
        """Invalidate one peer's cached potential set."""
        self._dirty.add(peer_id)

    def mark_neighborhood_dirty(self, peer: Peer) -> None:
        """Invalidate ``peer`` and every peer holding it as a neighbor.

        Call after a change to ``peer``'s bitfield or seed flag — both
        alter the potential sets of its whole (symmetric) neighborhood.
        """
        self._dirty.add(peer.peer_id)
        self._dirty.update(peer.neighbors)

    def compute(self, peers: List[Peer]) -> Dict[int, List[int]]:
        """Potential sets for ``peers``: ``{peer_id: member_ids}``.

        Clean peers are served from cache; dirty (or never-seen) peers
        are recomputed.  The result is value-identical to
        :func:`potential_set_sizes` over the same peers.
        """
        dirty = self._dirty
        cache = self._cache
        result: Dict[int, List[int]] = {}
        for peer in peers:
            pid = peer.peer_id
            members = cache.get(pid)
            if members is None or pid in dirty:
                members = potential_set(
                    peer, self.tracker, strict_tft=self.strict_tft
                )
                cache[pid] = members
            result[pid] = members
        dirty.clear()
        return result


def is_bootstrap_trapped(peer: Peer, potential_size: int) -> bool:
    """True when the peer is stuck in the paper's bootstrap phase.

    The bootstrap trap is the state ``(0, 1, 0)`` of the model: the peer
    holds its first piece (or none) but nobody in its neighborhood can
    trade with it.
    """
    return (not peer.is_seed) and peer.bitfield.count <= 1 and potential_size == 0
