"""Peer-selection primitives: potential sets and encounter candidates.

The paper's *potential set* of a peer is "the subset of peers in its NS
that have at least one piece to trade with the peer at a given instance
of time" — under strict tit-for-tat this requires **mutual** novelty
(each side holds a piece the other lacks).  The potential-set size is
the ``i`` coordinate of the download-evolution chain, and its per-round
evolution is the quantity validated in Figures 1 and 2.
"""

from __future__ import annotations

from typing import Dict, List

from repro.sim.peer import Peer
from repro.sim.tracker import Tracker

__all__ = ["potential_set", "potential_set_sizes", "is_bootstrap_trapped"]


def potential_set(peer: Peer, tracker: Tracker, *, strict_tft: bool = True) -> List[int]:
    """Neighbor ids with which ``peer`` can trade right now.

    Seeds never appear in a potential set: the potential set models
    tit-for-tat *trading* partners, and seeds have nothing to receive.
    (Seed uploads are handled separately, by :mod:`repro.sim.seeds`.)

    Args:
        strict_tft: when True (the paper's assumption), membership
            requires mutual novelty; when False, one-directional
            interest (the neighbor has something for ``peer``) suffices.
    """
    members: List[int] = []
    mine = peer.bitfield
    for neighbor_id in peer.neighbors:
        neighbor = tracker.get(neighbor_id)
        if neighbor is None or neighbor.is_seed:
            continue
        theirs = neighbor.bitfield
        if strict_tft:
            if mine.mutual_interest(theirs):
                members.append(neighbor_id)
        else:
            if mine.interested_in(theirs):
                members.append(neighbor_id)
    return members


def potential_set_sizes(
    peers: List[Peer], tracker: Tracker, *, strict_tft: bool = True
) -> Dict[int, List[int]]:
    """Potential sets for many peers at once: ``{peer_id: member_ids}``."""
    return {
        peer.peer_id: potential_set(peer, tracker, strict_tft=strict_tft)
        for peer in peers
    }


def is_bootstrap_trapped(peer: Peer, potential_size: int) -> bool:
    """True when the peer is stuck in the paper's bootstrap phase.

    The bootstrap trap is the state ``(0, 1, 0)`` of the model: the peer
    holds its first piece (or none) but nobody in its neighborhood can
    trade with it.
    """
    return (not peer.is_seed) and peer.bitfield.count <= 1 and potential_size == 0
