"""Seed upload behaviour (paper Sections 2.1 and 7.2).

Seeds hold the complete file and "do not enforce the tit-for-tat piece
trading", so downloaders get pieces from them for free.  The paper's
model treats seeds as the source of first pieces in the bootstrap phase
and — following [12] and [9] — as "a central piece distribution source
with the capacity of the source scaled by the number of seeds"; the
``seed_upload_slots`` configurable is exactly that capacity, in pieces
per round.

Two policies are provided:

* **plain seeding** — each round, each seed uploads to up to
  ``slots`` randomly chosen interested neighbors, choosing pieces with
  the configured piece-selection policy;
* **super-seeding** (Section 7.2's "advanced seeding technique") — the
  seed masquerades as a leecher and offers each piece at most once
  until every piece has been injected into the swarm, maximising
  initial piece diversity per uploaded byte.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.sim.peer import Peer
from repro.sim.piece_selection import select_piece
from repro.sim.tracker import Tracker

__all__ = ["plan_seed_uploads"]


def plan_seed_uploads(
    seed: Peer,
    tracker: Tracker,
    slots: int,
    policy: str,
    rng: np.random.Generator,
    *,
    super_seeding: bool = False,
    rarity: Optional[Dict[int, int]] = None,
    blocked_receivers: Optional[set] = None,
    random_first_cutoff: int = 4,
) -> List[Tuple[int, int]]:
    """Plan this round's uploads for one seed.

    Args:
        seed: the uploading seed.
        tracker: swarm registry (to resolve neighbor ids).
        slots: upload capacity in pieces this round.
        policy: piece-selection policy for the receivers.
        rng: random source.
        super_seeding: restrict offers to not-yet-injected pieces until
            the whole file has been injected once.
        rarity: optional neighborhood rarity map (receiver-side
            rarest-first would need per-receiver maps; a shared swarm
            view is an acceptable approximation for seeds).
        blocked_receivers: peer ids this seed must not serve (used by
            the trace collector, whose instrumented client "did not
            allow ... interact[ion] with the seeds").

    Returns:
        ``(receiver_id, piece)`` grants, at most ``slots`` of them, at
        most one per receiver per seed per round.
    """
    if slots <= 0:
        return []
    interested: List[Peer] = []
    # Sorted neighbor order: the permutation below indexes into this
    # list, so its order must be a pure function of the visible state
    # (set layout is not restorable from a checkpoint).
    for neighbor_id in sorted(seed.neighbors):
        if blocked_receivers and neighbor_id in blocked_receivers:
            continue
        neighbor = tracker.get(neighbor_id)
        if neighbor is None or neighbor.is_seed:
            continue
        if not neighbor.bitfield.is_complete:
            interested.append(neighbor)
    if not interested:
        return []

    # Super-seeding: only offer pieces not yet injected; reset once the
    # full file has been distributed at least once.
    offer_restriction: Optional[set] = None
    if super_seeding:
        remaining = set(range(seed.bitfield.num_pieces)) - seed.seeded_pieces
        if not remaining:
            seed.seeded_pieces.clear()
            remaining = set(range(seed.bitfield.num_pieces))
        offer_restriction = remaining

    grants: List[Tuple[int, int]] = []
    order = [interested[j] for j in rng.permutation(len(interested))]
    for receiver in order[:slots]:
        exclude = None
        if offer_restriction is not None:
            # Exclude everything outside the restriction set.
            exclude = set(range(seed.bitfield.num_pieces)) - offer_restriction
        piece = select_piece(
            receiver.bitfield,
            seed.bitfield,
            policy,
            rng,
            rarity=rarity,
            exclude=exclude,
            random_first_cutoff=random_first_cutoff,
        )
        if piece is None:
            continue
        grants.append((receiver.peer_id, piece))
        if offer_restriction is not None:
            seed.seeded_pieces.add(piece)
            offer_restriction.discard(piece)
    return grants
