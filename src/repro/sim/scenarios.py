"""Curated swarm scenarios.

The experiments and benches each tune their own :class:`SimConfig`;
this module collects the recurring regimes behind them as named,
documented factories so downstream users can start from a situation
rather than twenty keyword arguments.  Every factory returns a plain
validated :class:`SimConfig`; pass overrides for anything specific.
"""

from __future__ import annotations

from repro.errors import ParameterError
from repro.sim.config import SimConfig

__all__ = [
    "steady_state",
    "flash_crowd",
    "cold_start",
    "starved_neighborhoods",
    "heterogeneous_bandwidth",
    "streaming",
    "SCENARIOS",
]


def steady_state(num_pieces: int = 60, *, seed: int = 0, **overrides) -> SimConfig:
    """A healthy steady swarm: Poisson arrivals balancing departures.

    Diverse half-filled initial population, realistic neighbor sets,
    one origin seed.  The regime behind the efficiency measurements.
    """
    base = dict(
        num_pieces=num_pieces,
        max_conns=4,
        ns_size=30,
        arrival_process="poisson",
        arrival_rate=3.0,
        initial_leechers=80,
        initial_distribution="uniform",
        initial_fill=0.5,
        num_seeds=1,
        seed_upload_slots=2,
        optimistic_unchoke_prob=0.5,
        piece_selection="rarest",
        max_time=150.0,
        seed=seed,
    )
    base.update(overrides)
    return SimConfig(**base)


def flash_crowd(
    num_pieces: int = 40, crowd: int = 200, *, seed: int = 0, **overrides
) -> SimConfig:
    """A burst of empty peers at t = 0 served by one origin seed.

    Completed peers linger briefly so capacity compounds — the regime
    where the [12] logarithmic-makespan result shows
    (`bench_extension_flash_crowd.py`).
    """
    if crowd < 1:
        raise ParameterError(f"crowd must be >= 1, got {crowd}")
    base = dict(
        num_pieces=num_pieces,
        max_conns=4,
        ns_size=25,
        arrival_process="flash",
        flash_size=crowd,
        arrival_rate=0.0,
        initial_leechers=0,
        num_seeds=1,
        seed_upload_slots=4,
        optimistic_unchoke_prob=0.6,
        piece_selection="rarest",
        completed_become_seeds=30.0,
        max_time=400.0,
        seed=seed,
    )
    base.update(overrides)
    return SimConfig(**base)


def cold_start(num_pieces: int = 60, *, seed: int = 0, **overrides) -> SimConfig:
    """Everything descends from the origin seed (empty initial swarm).

    The regime where seeding policy matters most (the Section-7.2
    study); undersupply the seed and the swarm starves.
    """
    base = dict(
        num_pieces=num_pieces,
        max_conns=4,
        ns_size=25,
        arrival_process="poisson",
        arrival_rate=2.0,
        initial_leechers=50,
        initial_distribution="empty",
        num_seeds=1,
        seed_upload_slots=4,
        optimistic_unchoke_prob=0.5,
        piece_selection="rarest",
        max_time=150.0,
        seed=seed,
    )
    base.update(overrides)
    return SimConfig(**base)


def starved_neighborhoods(
    num_pieces: int = 120, *, seed: int = 0, **overrides
) -> SimConfig:
    """Small, static, clustered neighbor sets: the last-piece regime.

    No neighbor-set refills and a hard inbound-acceptance cap — the
    setting of the Figure 3/4(d) shaking experiment, where the last
    download phase bites hardest.
    """
    base = dict(
        num_pieces=num_pieces,
        max_conns=4,
        ns_size=8,
        arrival_process="poisson",
        arrival_rate=1.0,
        initial_leechers=50,
        initial_distribution="uniform",
        initial_fill=0.5,
        num_seeds=1,
        seed_upload_slots=2,
        optimistic_unchoke_prob=0.5,
        optimistic_targets="empty",
        piece_selection="rarest",
        announce_interval=1000.0,
        ns_accept_factor=1.0,
        max_time=500.0,
        seed=seed,
    )
    base.update(overrides)
    return SimConfig(**base)


def heterogeneous_bandwidth(
    num_pieces: int = 60, *, seed: int = 0, **overrides
) -> SimConfig:
    """Half slow (1 upload/round), half fast (4/round) leechers.

    Under strict tit-for-tat the reciprocity coupling makes slow
    uploaders slow downloaders too
    (`bench_extension_heterogeneous.py`).
    """
    base = dict(
        num_pieces=num_pieces,
        max_conns=4,
        ns_size=25,
        arrival_process="poisson",
        arrival_rate=2.0,
        initial_leechers=60,
        initial_distribution="uniform",
        initial_fill=0.5,
        num_seeds=1,
        seed_upload_slots=2,
        bandwidth_classes=((0.5, 1), (0.5, 4)),
        piece_selection="rarest",
        max_time=120.0,
        seed=seed,
    )
    base.update(overrides)
    return SimConfig(**base)


def streaming(num_pieces: int = 40, *, seed: int = 0, **overrides) -> SimConfig:
    """Tight-bandwidth swarm with windowed in-order selection.

    Pairs with :mod:`repro.analysis.streaming`: bandwidth-style
    reciprocity plus a sliding in-order window — the scheduling regime
    where streaming startup delays beat rarest-first.
    """
    base = dict(
        num_pieces=num_pieces,
        max_conns=2,
        ns_size=20,
        arrival_process="poisson",
        arrival_rate=1.5,
        initial_leechers=30,
        initial_distribution="uniform",
        initial_fill=0.5,
        num_seeds=1,
        seed_upload_slots=2,
        piece_selection="windowed",
        strict_tft=False,
        max_time=120.0,
        seed=seed,
    )
    base.update(overrides)
    return SimConfig(**base)


#: Name -> factory registry (CLI / docs discovery).
SCENARIOS = {
    "steady-state": steady_state,
    "flash-crowd": flash_crowd,
    "cold-start": cold_start,
    "starved-neighborhoods": starved_neighborhoods,
    "heterogeneous-bandwidth": heterogeneous_bandwidth,
    "streaming": streaming,
}
