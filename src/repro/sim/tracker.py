"""Tracker: peer registry, neighbor-set handout, population statistics.

The tracker is the swarm's only centralised component, exactly as in
BitTorrent: it knows who is present, hands random peer lists to
announcing clients (which creates the *symmetric* neighbor relation the
paper describes), and logs the swarm population over time — the
"tracker statistics" the paper used to select stable swarms for its
measurements.

The optional *bootstrap bias* implements the Section 4.3 suggestion:
"the tracker can bias new peer arrivals into the neighborhood of the
peers which are trapped in the bootstrap phase."

When a :class:`~repro.faults.injector.FaultInjector` is attached (via
:attr:`Tracker.fault_injector`), announces that fall inside a tracker
outage window degrade: ``"empty"`` windows return no peers at all,
``"stale"`` windows are served from a registry snapshot taken when the
window opened (departed peers waste the handout).
"""

from __future__ import annotations

from typing import (  # noqa: F401
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

import numpy as np

from repro.errors import SimulationError
from repro.sim.peer import Peer

__all__ = ["Tracker"]


class Tracker:
    """Central registry and neighbor-handout service."""

    def __init__(
        self,
        ns_size: int,
        rng: np.random.Generator,
        *,
        bias_bootstrap: bool = False,
        accept_cap: Optional[int] = None,
    ):
        self.ns_size = ns_size
        #: Leechers accept incoming neighbor relations up to this size —
        #: above their own *request* target ``ns_size``, as real clients
        #: accept inbound connections beyond the peer count they ask the
        #: tracker for.  A hard cap at ``ns_size`` would partition a
        #: burst of sequential announces into disjoint cliques (early
        #: peers fill up on each other and decline everyone after),
        #: quantising piece flow to clique-sized waves.
        self.accept_cap = accept_cap if accept_cap is not None else 2 * ns_size
        if self.accept_cap < ns_size:
            raise SimulationError(
                f"accept_cap {self.accept_cap} below ns_size {ns_size}"
            )
        self.bias_bootstrap = bias_bootstrap
        #: Optional fault injector; when set, announces consult its
        #: outage schedule (see module docstring).
        self.fault_injector = None
        self._rng = rng
        self._peers: Dict[int, Peer] = {}
        self._next_id = 0
        #: Callbacks fired with a peer id whenever that peer's neighbor
        #: set mutates (announce handouts, deregister scrubs, shakes).
        #: The incremental potential-set cache subscribes here.
        self._neighbor_listeners: List[Callable[[int], None]] = []
        #: Callbacks fired with a peer id when the peer deregisters.
        self._departure_listeners: List[Callable[[int], None]] = []
        #: Peer ids the swarm reported as stuck in the bootstrap phase.
        self._bootstrap_trapped: Set[int] = set()
        #: ``(time, leechers, seeds)`` samples — the tracker statistics.
        self.population_log: List[Tuple[float, int, int]] = []

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def new_peer_id(self) -> int:
        peer_id = self._next_id
        self._next_id += 1
        return peer_id

    def register(self, peer: Peer) -> None:
        if peer.peer_id in self._peers:
            raise SimulationError(f"peer {peer.peer_id} registered twice")
        self._peers[peer.peer_id] = peer

    def deregister(self, peer_id: int) -> Peer:
        """Remove a peer and scrub it from all neighbor sets/connections."""
        peer = self._peers.pop(peer_id, None)
        if peer is None:
            raise SimulationError(f"peer {peer_id} not registered")
        for neighbor_id in list(peer.neighbors):
            neighbor = self._peers.get(neighbor_id)
            if neighbor is not None:
                neighbor.neighbors.discard(peer_id)
                neighbor.partners.discard(peer_id)
                self.notify_neighbors_changed(neighbor_id)
        peer.neighbors.clear()
        peer.partners.clear()
        self._bootstrap_trapped.discard(peer_id)
        for listener in self._departure_listeners:
            listener(peer_id)
        return peer

    def get(self, peer_id: int) -> Optional[Peer]:
        return self._peers.get(peer_id)

    def __contains__(self, peer_id: int) -> bool:
        return peer_id in self._peers

    def __len__(self) -> int:
        return len(self._peers)

    def peers(self) -> Iterator[Peer]:
        """Iterate all peers in id order (deterministic)."""
        for peer_id in sorted(self._peers):
            yield self._peers[peer_id]

    def leechers(self) -> Iterator[Peer]:
        return (p for p in self.peers() if not p.is_seed)

    def seeds(self) -> Iterator[Peer]:
        return (p for p in self.peers() if p.is_seed)

    def counts(self) -> Tuple[int, int]:
        """``(leechers, seeds)`` currently registered."""
        leech = sum(1 for p in self._peers.values() if not p.is_seed)
        return leech, len(self._peers) - leech

    # ------------------------------------------------------------------
    # Mutation observers
    # ------------------------------------------------------------------
    def add_neighbor_listener(self, listener: Callable[[int], None]) -> None:
        """Subscribe to neighbor-set mutations (called with the peer id)."""
        self._neighbor_listeners.append(listener)

    def add_departure_listener(self, listener: Callable[[int], None]) -> None:
        """Subscribe to peer departures (called with the departed id)."""
        self._departure_listeners.append(listener)

    def notify_neighbors_changed(self, peer_id: int) -> None:
        """Report that ``peer_id``'s neighbor set mutated.

        Public so out-of-tracker mutation sites (peer-set shaking, which
        tears neighbor relations down directly) can keep subscribers —
        notably the incremental potential-set cache — consistent.
        """
        for listener in self._neighbor_listeners:
            listener(peer_id)

    # ------------------------------------------------------------------
    # Neighbor handout
    # ------------------------------------------------------------------
    def announce(self, peer: Peer, *, want: Optional[int] = None) -> int:
        """Hand the announcing peer up to ``want`` new neighbors.

        Fills the peer's neighbor set toward ``ns_size`` with a random
        sample of other registered peers (biased toward bootstrap-
        trapped peers when enabled).  The relation is made symmetric
        immediately: each granted neighbor also records the announcer.
        A candidate already holding ``accept_cap`` neighbors declines.

        Returns:
            Number of neighbors actually added.
        """
        if peer.peer_id not in self._peers:
            raise SimulationError(
                f"peer {peer.peer_id} must be registered before announcing"
            )
        deficit = self.ns_size - len(peer.neighbors)
        if want is not None:
            deficit = min(deficit, want)
        if deficit <= 0:
            return 0

        pool = self._peers
        stale = False
        if self.fault_injector is not None:
            outage = self.fault_injector.announce_outage()
            if outage is not None:
                if outage.mode == "empty":
                    self.fault_injector.record_empty_announce()
                    return 0
                # Stale: answer from the snapshot taken when the window
                # opened; departed ids survive in it and waste handouts.
                pool = self.fault_injector.stale_peer_ids(
                    outage, sorted(self._peers)
                )
                stale = True

        candidates = [
            pid
            for pid in pool
            if pid != peer.peer_id and pid not in peer.neighbors
        ]
        if not candidates:
            return 0

        ordered = self._order_candidates(candidates)
        if stale:
            # A stale list is a fixed handout of `deficit` contacts;
            # departed or declining entries waste their attempt instead
            # of falling through to the next candidate.
            ordered = ordered[:deficit]
        added = 0
        for candidate_id in ordered:
            if added >= deficit:
                break
            other = self._peers.get(candidate_id)
            if other is None:
                continue  # stale-snapshot id: the peer departed meanwhile
            # Seeds accept any number of neighbors (they only upload);
            # leechers decline once at their inbound acceptance cap.
            if not other.is_seed and len(other.neighbors) >= self.accept_cap:
                continue
            peer.neighbors.add(candidate_id)
            other.neighbors.add(peer.peer_id)
            self.notify_neighbors_changed(candidate_id)
            added += 1
        if added:
            self.notify_neighbors_changed(peer.peer_id)
        return added

    def _order_candidates(self, candidates: List[int]) -> List[int]:
        """Random candidate order, trapped peers first when biased."""
        permuted = [candidates[j] for j in self._rng.permutation(len(candidates))]
        if not self.bias_bootstrap or not self._bootstrap_trapped:
            return permuted
        trapped = [pid for pid in permuted if pid in self._bootstrap_trapped]
        rest = [pid for pid in permuted if pid not in self._bootstrap_trapped]
        return trapped + rest

    # ------------------------------------------------------------------
    # Bootstrap-bias bookkeeping (Section 4.3)
    # ------------------------------------------------------------------
    def report_bootstrap_trapped(self, peer_id: int, trapped: bool) -> None:
        """Swarm feedback: mark/unmark a peer as stuck in bootstrap."""
        if trapped and peer_id in self._peers:
            self._bootstrap_trapped.add(peer_id)
        else:
            self._bootstrap_trapped.discard(peer_id)

    @property
    def bootstrap_trapped(self) -> Set[int]:
        """Read-only view of currently trapped peer ids."""
        return set(self._bootstrap_trapped)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def log_population(self, time: float) -> None:
        leech, seeds = self.counts()
        self.population_log.append((time, leech, seeds))
