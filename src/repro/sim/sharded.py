"""Sharded swarm: the SoA slab partitioned across worker processes.

:class:`ShardedSwarm` runs the PR-8 structure-of-arrays round kernels
on ``N`` forked worker processes, each owning one shard of the peer
population, while the coordinator process owns everything global: the
arrival process, global piece-replication counts (the rarest-first
view), peer-id allocation, cross-shard migration routing, the metrics
collector, and coordinated checkpoints.

Design contract (mirrors ``docs/RUNTIME.md``):

* **Lockstep rounds over a zero-copy data plane.** Every shard
  advances exactly one protocol round per coordinator cycle.  The hot
  per-round payloads — the global replication-count broadcast (for
  rarest-first), immigrant peer rows, the shard's round report, and
  its emigrant rows — travel through the preallocated shared-memory
  fabric of :mod:`repro.sim.shm` (double-buffered numpy views, stamped
  per round); the pipe carries only the low-rate control plane
  (init / step barrier with arrivals + quotas / snapshot / stop).
  Rows use the same column layout as the checkpoint store block, so a
  migration batch *is* a slice of a snapshot.
* **Splittable seeding.** Shard ``i`` of generation ``g`` seeds its
  engine from ``derive_seed(seed, SHARD_NS, 1 + g, shards, i)``; the
  coordinator's tracker stream is ``derive_seed(seed, SHARD_NS, 0)``.
  Fault injectors derive from the shard seed, so each shard draws an
  independent fault stream (the PR-1 seeding contract).
* **``shards=1`` is exact.** A single-shard swarm hosts one unmodified
  in-process :class:`~repro.sim.soa.SoaSwarm`, so its fingerprint is
  identical to ``backend="soa"`` (the fingerprint excludes the backend
  label).  ``shards >= 2`` changes the trajectory (per-shard neighbor
  sets, coordinator-owned arrivals) and is held to the statistical
  equivalence gates instead.
* **Checkpoint = shard snapshots + coordinator block.** The sharded
  document embeds one soa-flavored document per shard, so elastic
  re-sharding is checkpoint -> repartition (rows rehashed by
  ``peer_id % M``) -> resume, and a worker death rolls every shard
  back to the last coordinated snapshot and replays — fingerprint
  identical to the uninterrupted run (the PR-2 recovery guarantee).
"""

from __future__ import annotations

import multiprocessing
import time as _time
import traceback
from multiprocessing import resource_tracker as _resource_tracker
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import CheckpointError, ParameterError, SimulationError
from repro.faults.plan import FaultPlan, FaultStats
from repro.runtime.profiler import SHARD_COORD_STAGES, RoundProfiler
from repro.runtime.seeding import derive_seed
from repro.runtime.telemetry import Telemetry
from repro.sim.config import SimConfig
from repro.sim.engine import Event
from repro.sim.metrics import MetricsCollector
from repro.sim.shm import ShardFabric, WorkerFabric
from repro.sim.soa import SoaSwarm, unpack_rows
from repro.sim.swarm import ConnectionStats, Swarm, SwarmResult

__all__ = ["ShardEngine", "ShardedSwarm", "restore_sharded_swarm", "SHARD_NS"]

#: Seed-derivation namespace for the sharded backend (PR-1 contract:
#: every independent stream hangs off the root seed under a distinct
#: path, so no shard shares a stream with the tracker or the faults).
SHARD_NS = 0x5AAD

#: Columns a peer carries across a shard boundary — exactly the
#: per-peer columns of the checkpoint store block.  Neighbor rows and
#: trading pairs are intentionally absent: migration severs relations
#: and the migrant re-announces at its destination, like a churn
#: re-arrival.
MIGRATION_COLUMNS = (
    "peer_id",
    "is_seed",
    "shaken",
    "counts",
    "bits",
    "joined_at",
    "seed_until",
    "first_piece_at",
    "prelast_at",
    "shaken_at",
    "upload_capacity",
    "seeded",
)

_FLOAT_COLUMNS = ("joined_at", "seed_until", "first_piece_at",
                  "prelast_at", "shaken_at")
_WORD_COLUMNS = ("bits", "seeded")
_BOOL_COLUMNS = ("is_seed", "shaken")


class _WorkerDied(Exception):
    """A shard worker process died mid-protocol (crash or SIGKILL)."""

    def __init__(self, shard: int):
        super().__init__(f"shard worker {shard} died")
        self.shard = shard


def _split(total: int, shards: int, index: int) -> int:
    """Size of partition ``index`` when ``total`` splits over ``shards``."""
    return total // shards + (1 if index < total % shards else 0)


# ----------------------------------------------------------------------
# Migration row helpers
# ----------------------------------------------------------------------
def _concat_rows(parts: List[dict]) -> Optional[dict]:
    parts = [p for p in parts if p is not None and p["peer_id"].size]
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return {
        name: np.concatenate([p[name] for p in parts])
        for name in MIGRATION_COLUMNS
    }


def _rows_to_json(rows: Optional[dict]) -> Optional[dict]:
    """Checkpoint (JSON-safe) encoding of one migration row batch."""
    if rows is None:
        return None
    from repro.checkpoint.schema import _opt

    doc: dict = {}
    for name in MIGRATION_COLUMNS:
        column = rows[name]
        if name in _WORD_COLUMNS:
            doc[name] = [[int(w) for w in row] for row in column]
        elif name in _BOOL_COLUMNS:
            doc[name] = [bool(v) for v in column]
        elif name in _FLOAT_COLUMNS:
            doc[name] = [_opt(v) for v in column]
        else:
            doc[name] = [int(v) for v in column]
    return doc


def _rows_from_json(doc: Optional[dict], num_words: int) -> Optional[dict]:
    if doc is None or not doc["peer_id"]:
        return None
    from repro.checkpoint.schema import _nan_column

    rows: dict = {}
    for name in MIGRATION_COLUMNS:
        column = doc[name]
        if name in _WORD_COLUMNS:
            rows[name] = np.array(
                [[int(w) for w in row] for row in column], dtype=np.uint64
            ).reshape(len(column), num_words)
        elif name in _BOOL_COLUMNS:
            rows[name] = np.asarray(column, dtype=bool)
        elif name in _FLOAT_COLUMNS:
            rows[name] = _nan_column(column)
        else:
            rows[name] = np.asarray(column, dtype=np.int64)
    return rows


def _rows_from_store_block(st: dict, num_words: int) -> Optional[dict]:
    """Alive-peer rows of a snapshot ``store`` block, migration-shaped."""
    if not st["slots"]:
        return None
    doc = {name: st[name] for name in MIGRATION_COLUMNS}
    return _rows_from_json(doc, num_words)


def _select_rows(rows: dict, mask: np.ndarray) -> Optional[dict]:
    if not mask.any():
        return None
    return {name: rows[name][mask] for name in MIGRATION_COLUMNS}


# ----------------------------------------------------------------------
# The per-shard engine
# ----------------------------------------------------------------------
class ShardEngine(SoaSwarm):
    """One shard's round engine: an SoA swarm driven by a coordinator.

    Differences from a standalone :class:`SoaSwarm`:

    * rarest-first reads the coordinator-broadcast *global* replication
      counts instead of the shard-local ones;
    * the round event chain never dies while the coordinator keeps
      stepping (an empty shard may be repopulated by migration);
    * arrivals are injected by the coordinator with explicit globally
      unique peer ids (the shard never draws arrival times itself);
    * every round emits a report (populations, replication counts,
      trading-scope connection counts, completion/abort deltas) for
      the coordinator's metrics collector.
    """

    def __init__(self, config: SimConfig, **kwargs):
        super().__init__(config, **kwargs)
        self._global_counts: Optional[np.ndarray] = None
        self._round_report: Optional[dict] = None
        self._completed_reported = 0
        self._aborted_reported = 0

    # -- coordinator-facing hooks --------------------------------------
    def _rarity_snapshot(self) -> np.ndarray:
        if self._global_counts is not None:
            return self._global_counts
        return super()._rarity_snapshot()

    def _on_round(self, time: float, event: Event) -> None:
        super()._on_round(time, event)
        # Keep the lockstep alive even when this shard is empty: the
        # global swarm may still be running and migration or arrivals
        # can repopulate us.  (Shards schedule no arrival events, so an
        # empty queue here means the parent declined to reschedule.)
        next_time = time + self.config.piece_time
        if self.engine.pending_events == 0 and next_time <= self.config.max_time:
            self.engine.schedule_at(next_time, Event("round"))

    def _log_round(self, time: float, pot_full: np.ndarray) -> None:
        super()._log_round(time, pot_full)
        store = self.store
        conn_counts = None
        leech_end = np.flatnonzero(store.alive & ~store.is_seed)
        if leech_end.size:
            partner_counts = self._partner_degrees()[leech_end]
            if self.metrics.occupancy_scope == "trading":
                in_scope = (store.counts[leech_end] >= 1) & (
                    pot_full[leech_end] >= 1
                )
                conn_counts = partner_counts[in_scope]
            else:
                conn_counts = partner_counts
        stats = self.connection_stats
        self._round_report = {
            "time": time,
            "n_leech": self._n_leech,
            "n_seeds": self._n_seeds,
            "piece_counts": self.piece_counts.copy(),
            "conn_counts": conn_counts,
            "stats": (stats.survived, stats.dropped,
                      stats.attempts, stats.formed),
            "seed_uploads": self.seed_upload_count,
            "completed": list(
                self.metrics.completed[self._completed_reported:]
            ),
            "aborted": list(self.metrics.aborted[self._aborted_reported:]),
        }
        self._completed_reported = len(self.metrics.completed)
        self._aborted_reported = len(self.metrics.aborted)

    # -- cross-shard peer exchange -------------------------------------
    def spawn_arrivals(self, times: np.ndarray, ids: np.ndarray) -> None:
        """Admit coordinator-assigned arrivals (empty leechers)."""
        count = times.size
        if count == 0:
            return
        store = self.store
        slots = store.allocate(count)
        self._alive_dirty = True
        store.peer_id[slots] = ids
        self._id_to_slot.update(
            zip(np.asarray(ids).tolist(), slots.tolist())
        )
        store.joined_at[slots] = times
        self._n_leech += count
        config = self.config
        if config.bandwidth_classes is not None:
            fractions = [f for f, _ in config.bandwidth_classes]
            caps = np.array(
                [int(c) for _, c in config.bandwidth_classes], dtype=np.int64
            )
            chosen = self.rng.choice(len(fractions), size=count, p=fractions)
            store.upload_capacity[slots] = caps[chosen]
        self._pending_announce.extend(slots.tolist())

    def absorb_rows(self, rows: dict) -> None:
        """Admit immigrant peers; they re-announce next round."""
        ids = np.asarray(rows["peer_id"], dtype=np.int64)
        count = ids.size
        if count == 0:
            return
        store = self.store
        slots = store.allocate(count)
        self._alive_dirty = True
        store.peer_id[slots] = ids
        self._id_to_slot.update(zip(ids.tolist(), slots.tolist()))
        store.is_seed[slots] = rows["is_seed"]
        store.shaken[slots] = rows["shaken"]
        store.counts[slots] = rows["counts"]
        store.bits[slots] = rows["bits"]
        store.joined_at[slots] = rows["joined_at"]
        store.seed_until[slots] = rows["seed_until"]
        store.first_piece_at[slots] = rows["first_piece_at"]
        store.prelast_at[slots] = rows["prelast_at"]
        store.shaken_at[slots] = rows["shaken_at"]
        store.upload_capacity[slots] = rows["upload_capacity"]
        store.seeded[slots] = rows["seeded"]
        self.piece_counts += unpack_rows(
            store.bits[slots], self.config.num_pieces
        ).sum(axis=0)
        seeds = int(np.asarray(rows["is_seed"]).sum())
        self._n_seeds += seeds
        self._n_leech += count - seeds
        self._pending_announce.extend(slots.tolist())

    def extract_emigrants(self, count: int) -> Optional[dict]:
        """Remove up to ``count`` random alive peers, returning their rows."""
        alive = self._alive_slots()
        count = min(int(count), int(alive.size))
        if count <= 0:
            return None
        pick = alive[np.sort(self.rng.permutation(alive.size)[:count])]
        store = self.store
        rows = {
            name: getattr(store, name)[pick].copy()
            for name in MIGRATION_COLUMNS
        }
        self._remove_peers(pick)
        return rows

    # -- the lockstep entry point --------------------------------------
    def step_round(
        self,
        global_counts: Optional[np.ndarray],
        immigrants: Optional[dict],
        arrivals: Optional[Tuple[np.ndarray, np.ndarray]],
        emigrate: int,
    ) -> dict:
        """Run exactly one round under the coordinator's instructions."""
        self._global_counts = global_counts
        if immigrants is not None:
            self.absorb_rows(immigrants)
        if arrivals is not None:
            self.spawn_arrivals(arrivals[0], arrivals[1])
        if self.engine.step() is None:
            raise SimulationError("shard round queue drained unexpectedly")
        report = self._round_report
        self._round_report = None
        report["emigrants"] = (
            self.extract_emigrants(emigrate) if emigrate > 0 else None
        )
        return report

    def state_summary(self) -> dict:
        """Report-shaped summary of current state (no round advanced)."""
        stats = self.connection_stats
        return {
            "time": None,
            "n_leech": self._n_leech,
            "n_seeds": self._n_seeds,
            "piece_counts": self.piece_counts.copy(),
            "conn_counts": None,
            "stats": (stats.survived, stats.dropped,
                      stats.attempts, stats.formed),
            "seed_uploads": self.seed_upload_count,
            "completed": [],
            "aborted": [],
            "emigrants": None,
        }


def _shard_metrics(max_conns: int, opts: dict) -> MetricsCollector:
    """A shard's local collector: an internal ledger, entropy disabled
    (the coordinator computes global entropy from summed counts)."""
    return MetricsCollector(
        max_conns,
        entropy_every=1_000_000_000,
        entropy_includes_seeds=bool(opts["entropy_includes_seeds"]),
        occupancy_warmup=float(opts["occupancy_warmup"]),
        occupancy_scope=str(opts["occupancy_scope"]),
    )


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _shard_worker(conn) -> None:
    """Shard worker main loop: one command in, one reply out.

    Control messages (and the variable-size completion/abort records)
    ride the pipe; the per-round broadcast, migration rows, and the
    integer round report go through the attached :class:`WorkerFabric`.
    The worker only ever closes its attached segments — the
    coordinator owns and unlinks them.
    """
    engine: Optional[ShardEngine] = None
    fabric: Optional[WorkerFabric] = None
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                return  # coordinator went away; die quietly
            command, payload = message
            if command == "stop":
                return
            try:
                if command == "init":
                    engine = ShardEngine(
                        payload["config"],
                        backend="soa",
                        metrics=_shard_metrics(
                            payload["config"].max_conns,
                            payload["metrics_opts"],
                        ),
                        faults=payload["faults"],
                        profile=payload["profile"],
                    )
                    engine._next_id = payload["id_start"]
                    engine.setup()
                    fabric = WorkerFabric(payload["fabric"])
                    conn.send(("ok", engine.state_summary()))
                elif command == "restore":
                    from repro.checkpoint.schema import _restore_soa_swarm

                    engine = _restore_soa_swarm(
                        payload["document"],
                        swarm_cls=ShardEngine,
                        profile=payload["profile"],
                    )
                    engine._completed_reported = len(engine.metrics.completed)
                    engine._aborted_reported = len(engine.metrics.aborted)
                    fabric = WorkerFabric(payload["fabric"])
                    conn.send(("ok", engine.state_summary()))
                elif command == "adopt":
                    engine = ShardEngine(
                        payload["config"],
                        backend="soa",
                        metrics=_shard_metrics(
                            payload["config"].max_conns,
                            payload["metrics_opts"],
                        ),
                        faults=payload["faults"],
                        profile=payload["profile"],
                    )
                    engine._setup_done = True
                    engine._rounds = payload["rounds"]
                    engine.metrics.set_expected_rounds(
                        int(payload["config"].max_time
                            / payload["config"].piece_time)
                    )
                    if payload["rows"] is not None:
                        engine.absorb_rows(payload["rows"])
                    engine.engine.schedule_at(
                        payload["next_round_time"], Event("round")
                    )
                    fabric = WorkerFabric(payload["fabric"])
                    conn.send(("ok", engine.state_summary()))
                elif command == "step":
                    fabric.apply_updates(payload.get("fabric_updates"))
                    round_index = payload["round"]
                    busy_start = _time.perf_counter()
                    report = engine.step_round(
                        fabric.read_broadcast(round_index),
                        fabric.read_inbox(round_index),
                        payload["arrivals"],
                        payload["emigrate"],
                    )
                    busy = _time.perf_counter() - busy_start
                    fabric.write_outbox(
                        report.pop("emigrants"), round_index
                    )
                    fabric.write_report(report, round_index)
                    conn.send(("report", {
                        "time": report["time"],
                        "completed": report["completed"],
                        "aborted": report["aborted"],
                        "busy": busy,
                    }))
                elif command == "snapshot":
                    from repro.checkpoint.schema import snapshot_soa_swarm

                    conn.send(("doc", snapshot_soa_swarm(engine)))
                elif command == "final":
                    conn.send(("final", {
                        "fault_stats": (
                            engine.fault_injector.stats
                            if engine.fault_injector is not None
                            else None
                        ),
                        "profile": (
                            engine.profiler.as_dict()
                            if engine.profiler is not None
                            else None
                        ),
                        "events": engine.engine.processed_events,
                    }))
                else:  # pragma: no cover - protocol misuse
                    conn.send(("error", f"unknown command {command!r}"))
            except Exception:  # noqa: BLE001 - report, then die
                conn.send(("error", traceback.format_exc()))
                return
    finally:
        if engine is not None:
            # Drop the broadcast view so the fabric's mappings close
            # cleanly (a live numpy view would pin the mmap).
            engine._global_counts = None
        if fabric is not None:
            fabric.close()
        conn.close()


# ----------------------------------------------------------------------
# The coordinator
# ----------------------------------------------------------------------
class ShardedSwarm(Swarm):
    """Coordinator for a swarm partitioned across shard processes.

    Args:
        config: the :class:`SimConfig` (same knobs as every backend).
        backend: must be ``"sharded"``.
        shards: worker count.  ``1`` hosts a single in-process
            :class:`SoaSwarm` (bit-identical to ``backend="soa"``);
            ``>= 2`` forks one process per shard.
        shard_mix: per-round probability that an alive peer migrates to
            a uniformly random other shard (coordinator-drawn, batched
            at round boundaries).  ``0`` disables migration.
        max_worker_restarts: how many worker deaths to survive by
            rolling back to the last coordinated snapshot (or round 0
            when none exists) before giving up.
        metrics / faults / profile / checkpoint_every / checkpoint_path:
            as for :class:`~repro.sim.swarm.Swarm`.
    """

    def __init__(
        self,
        config: SimConfig,
        *,
        backend: str = "sharded",
        shards: int = 2,
        shard_mix: float = 0.02,
        max_worker_restarts: int = 3,
        instrument_first: int = 0,
        instrumented_avoid_seeds: bool = False,
        instrumented_start_empty: bool = True,
        rarity_view: str = "global",
        metrics: Optional[MetricsCollector] = None,
        faults: Optional[FaultPlan] = None,
        profile: bool = False,
        checkpoint_every: int = 0,
        checkpoint_path: Optional[str] = None,
    ):
        if backend != "sharded":
            raise ParameterError(
                f"ShardedSwarm is the 'sharded' backend, got "
                f"backend={backend!r}"
            )
        if shards < 1:
            raise ParameterError(f"shards must be >= 1, got {shards}")
        if not 0.0 <= shard_mix <= 1.0:
            raise ParameterError(
                f"shard_mix must be in [0, 1], got {shard_mix}"
            )
        SoaSwarm._check_supported(
            config, instrument_first, instrumented_avoid_seeds, rarity_view
        )
        if checkpoint_every < 0:
            raise ParameterError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        if checkpoint_every > 0 and checkpoint_path is None:
            raise ParameterError(
                "checkpoint_every > 0 requires a checkpoint_path"
            )
        self.backend = "sharded"
        self.config = config
        self.shards = int(shards)
        self.shard_mix = float(shard_mix)
        self.max_worker_restarts = int(max_worker_restarts)
        self.metrics = metrics or MetricsCollector(config.max_conns)
        self.fault_plan = faults
        self.profile = bool(profile)
        self.instrumented_start_empty = instrumented_start_empty
        self.rarity_view = rarity_view
        self.checkpoint_every = checkpoint_every
        self.checkpoint_path = checkpoint_path
        self.checkpoints_written = 0
        self.resumed_from_round: Optional[int] = None
        self.worker_restarts = 0
        self.telemetry: Optional[Telemetry] = None
        self.shard_profiles: Optional[Dict[str, Dict[str, float]]] = None

        self._solo: Optional[SoaSwarm] = None
        self._procs: list = []
        self._conns: list = []
        self._started = False
        self._finished = False
        self._restore_docs: Optional[List[dict]] = None
        self._adopt_rows: Optional[List[Optional[dict]]] = None
        self._last_document: Optional[dict] = None
        self._fabric: Optional[ShardFabric] = None
        self._bytes_broadcast = 0
        self._bytes_migrated = 0
        self._comms_profiler: Optional[RoundProfiler] = None

        if self.shards == 1:
            self._solo = SoaSwarm(
                config,
                metrics=self.metrics,
                faults=faults,
                profile=profile,
                instrumented_start_empty=instrumented_start_empty,
                rarity_view=rarity_view,
            )
            return

        self._init_coordinator_state()

    # ------------------------------------------------------------------
    # Coordinator state
    # ------------------------------------------------------------------
    def _init_coordinator_state(self) -> None:
        config = self.config
        self._generation = 0
        self._tracker_rng = np.random.default_rng(
            derive_seed(config.seed, SHARD_NS, 0)
        )
        self._rounds = 0
        self._next_round_time = config.piece_time
        self._population_log: List[Tuple[float, int, int]] = []
        self._global_next_id = 0
        self._next_arrival: Optional[float] = None
        self._pending_rows: List[Optional[dict]] = [None] * self.shards
        self._shard_state: List[Optional[dict]] = [None] * self.shards
        self._carried = {
            "survived": 0, "dropped": 0, "attempts": 0, "formed": 0,
            "seed_uploads": 0, "events": 0,
        }
        self._carried_faults: Optional[FaultStats] = (
            FaultStats() if self.fault_plan is not None else None
        )

    def _shard_seed(self, index: int) -> int:
        return derive_seed(
            self.config.seed, SHARD_NS, 1 + self._generation,
            self.shards, index,
        )

    def _shard_config(self, index: int) -> SimConfig:
        """Shard ``index``'s partition of the global configuration."""
        config = self.config
        flash = (
            _split(config.flash_size, self.shards, index)
            if config.arrival_process == "flash"
            else 0
        )
        return config.with_changes(
            seed=self._shard_seed(index),
            num_seeds=_split(config.num_seeds, self.shards, index),
            initial_leechers=_split(
                config.initial_leechers, self.shards, index
            ),
            arrival_process=(
                "flash" if config.arrival_process == "flash" else "none"
            ),
            # Rate is unused under "none" but sizes the shard's slab
            # for the arrivals the coordinator will route its way.
            arrival_rate=config.arrival_rate / self.shards,
            flash_size=flash,
        )

    def _adopt_config(self, index: int) -> SimConfig:
        """An empty shard config for repartitioned (adopted) peers."""
        return self.config.with_changes(
            seed=self._shard_seed(index),
            num_seeds=0,
            initial_leechers=0,
            arrival_process="none",
            arrival_rate=self.config.arrival_rate / self.shards,
            flash_size=0,
        )

    def _metrics_opts(self) -> dict:
        return {
            "entropy_includes_seeds": self.metrics.entropy_includes_seeds,
            "occupancy_warmup": self.metrics.occupancy_warmup,
            "occupancy_scope": self.metrics.occupancy_scope,
        }

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn_processes(self) -> None:
        context = multiprocessing.get_context("fork")
        # Start the resource tracker *before* forking so every worker
        # shares the coordinator's tracker: attach registrations and the
        # coordinator's unlink then net out in one ledger instead of a
        # per-child tracker unlinking live segments at worker exit.
        _resource_tracker.ensure_running()
        self._procs = []
        self._conns = []
        for _ in range(self.shards):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_shard_worker, args=(child_conn,), daemon=True
            )
            process.start()
            child_conn.close()
            self._procs.append(process)
            self._conns.append(parent_conn)

    def _send(self, index: int, message) -> None:
        try:
            self._conns[index].send(message)
        except (BrokenPipeError, EOFError, OSError) as exc:
            raise _WorkerDied(index) from exc

    def _recv(self, index: int):
        try:
            kind, payload = self._conns[index].recv()
        except (EOFError, OSError) as exc:
            raise _WorkerDied(index) from exc
        if kind == "error":
            raise SimulationError(
                f"shard worker {index} failed:\n{payload}"
            )
        return payload

    def worker_pids(self) -> List[int]:
        """PIDs of the live shard workers (for fault-injection tests)."""
        return [process.pid for process in self._procs]

    def close(self) -> None:
        """Tear down workers and unlink the fabric (idempotent)."""
        for index, conn in enumerate(self._conns):
            try:
                conn.send(("stop", None))
            except (BrokenPipeError, OSError):
                pass
            conn.close()
        for process in self._procs:
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=2.0)
        self._procs = []
        self._conns = []
        if self._fabric is not None:
            self._fold_fabric_bytes()
            self._fabric.close()
            self._fabric = None

    def _fold_fabric_bytes(self) -> None:
        """Accumulate the fabric's byte counters (survives recovery)."""
        fabric = self._fabric
        if fabric is None:
            return
        self._bytes_broadcast += fabric.bytes_broadcast
        self._bytes_migrated += fabric.bytes_migrated
        fabric.bytes_broadcast = 0
        fabric.bytes_migrated = 0

    def fabric_segment_names(self) -> List[str]:
        """Names of the live shared-memory segments (lifecycle tests)."""
        if self._fabric is None:
            return []
        return self._fabric.segment_names()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            if self._procs or getattr(self, "_fabric", None) is not None:
                self.close()
        except Exception:  # noqa: BLE001
            pass

    # ------------------------------------------------------------------
    # Startup
    # ------------------------------------------------------------------
    def _create_fabric(self) -> None:
        """Allocate the shared-memory fabric, sized for this start.

        Sizing is only a head start — the per-round
        :meth:`ShardFabric.ensure` call is the hard guarantee, growing
        any block whose coming round would not fit.
        """
        config = self.config
        expected = (
            config.num_seeds + config.initial_leechers + config.flash_size
        ) // self.shards + 1
        conn_rows = max(64, expected)
        for state in self._shard_state:
            if state is not None:
                conn_rows = max(
                    conn_rows, state["n_leech"] + state["n_seeds"]
                )
        if self._adopt_rows is not None:
            for rows in self._adopt_rows:
                if rows is not None:
                    conn_rows = max(conn_rows, int(rows["peer_id"].size))
        self._fabric = ShardFabric(
            self.shards,
            config.num_pieces,
            _bits_words(config.num_pieces),
            conn_rows=conn_rows,
            migration_rows=64,
        )

    def _ensure_started(self) -> None:
        if self._started:
            return
        self._started = True
        if self._solo is not None:
            if not self._solo._setup_done:
                self._solo.setup()
            return
        self._spawn_processes()
        # The fabric is created *after* the fork so children never
        # inherit coordinator-owned SharedMemory objects; workers
        # attach by name from the spec in their init payload.
        self._create_fabric()
        if self.profile and self._comms_profiler is None:
            self._comms_profiler = RoundProfiler(SHARD_COORD_STAGES)
        if self._restore_docs is not None:
            for index, document in enumerate(self._restore_docs):
                self._send(index, ("restore", {
                    "document": document, "profile": self.profile,
                    "fabric": self._fabric.spec(index),
                }))
        elif self._adopt_rows is not None:
            for index in range(self.shards):
                self._send(index, ("adopt", {
                    "config": self._adopt_config(index),
                    "metrics_opts": self._metrics_opts(),
                    "faults": self.fault_plan,
                    "profile": self.profile,
                    "rows": self._adopt_rows[index],
                    "rounds": self._rounds,
                    "next_round_time": self._next_round_time,
                    "fabric": self._fabric.spec(index),
                }))
        else:
            id_start = 0
            for index in range(self.shards):
                shard_config = self._shard_config(index)
                self._send(index, ("init", {
                    "config": shard_config,
                    "metrics_opts": self._metrics_opts(),
                    "faults": self.fault_plan,
                    "profile": self.profile,
                    "id_start": id_start,
                    "fabric": self._fabric.spec(index),
                }))
                id_start += (
                    shard_config.num_seeds
                    + shard_config.initial_leechers
                    + shard_config.flash_size
                )
            self._global_next_id = id_start
            if (
                self.config.arrival_process == "poisson"
                and self.config.arrival_rate > 0
            ):
                self._next_arrival = float(
                    self._tracker_rng.exponential(
                        1.0 / self.config.arrival_rate
                    )
                )
                if self._next_arrival > self.config.max_time:
                    self._next_arrival = None
            self.metrics.set_expected_rounds(
                int(self.config.max_time / self.config.piece_time)
            )
        for index in range(self.shards):
            summary = self._recv(index)
            if self._shard_state[index] is None:
                self._shard_state[index] = summary
        self._adopt_rows = None

    # ------------------------------------------------------------------
    # The lockstep round cycle
    # ------------------------------------------------------------------
    def _global_population(self) -> int:
        total = 0
        for state in self._shard_state:
            total += state["n_leech"] + state["n_seeds"]
        for rows in self._pending_rows:
            if rows is not None:
                total += int(rows["peer_id"].size)
        return total

    def _global_counts(self) -> np.ndarray:
        counts = np.zeros(self.config.num_pieces, dtype=np.int64)
        for state in self._shard_state:
            counts += state["piece_counts"]
        return counts

    def _advance_cycle(self) -> bool:
        """One coordinated round across every shard.

        RNG discipline: every coordinator draw happens in the
        message-build phase, in fixed order (arrival times, arrival
        shard assignment, per-shard emigrant quotas ascending, then
        emigrant destinations in source-shard order next cycle).
        Coordinator state other than the RNG mutates only after all
        replies arrived, so a worker death never leaves a half-applied
        round: recovery restores the RNG with everything else.
        """
        config = self.config
        time = self._next_round_time
        if time > config.max_time:
            return False
        has_future_arrival = self._next_arrival is not None
        if self._global_population() == 0 and not has_future_arrival:
            return False

        # -- arrivals since the previous round, routed to shards
        arrival_times: List[List[float]] = [[] for _ in range(self.shards)]
        arrival_ids: List[List[int]] = [[] for _ in range(self.shards)]
        while self._next_arrival is not None and self._next_arrival <= time:
            shard = int(self._tracker_rng.integers(0, self.shards))
            arrival_times[shard].append(self._next_arrival)
            arrival_ids[shard].append(self._global_next_id)
            self._global_next_id += 1
            gap = float(
                self._tracker_rng.exponential(1.0 / config.arrival_rate)
            )
            self._next_arrival += gap
            if self._next_arrival > config.max_time:
                self._next_arrival = None

        # -- emigrant quotas (none on the final round: in-flight rows
        #    would have nowhere to land)
        last_round = time + config.piece_time > config.max_time
        quotas = [0] * self.shards
        if self.shards > 1 and self.shard_mix > 0.0 and not last_round:
            for index in range(self.shards):
                state = self._shard_state[index]
                population = state["n_leech"] + state["n_seeds"]
                if population > 0:
                    quotas[index] = int(
                        self._tracker_rng.binomial(population, self.shard_mix)
                    )

        fabric = self._fabric
        prof = self._comms_profiler
        round_index = self._rounds + 1
        if prof is not None:
            prof.begin_round()
        fabric.write_broadcast(self._global_counts(), round_index)
        for index in range(self.shards):
            arrivals = None
            if arrival_times[index]:
                arrivals = (
                    np.asarray(arrival_times[index], dtype=np.float64),
                    np.asarray(arrival_ids[index], dtype=np.int64),
                )
            pending = self._pending_rows[index]
            incoming = (
                0 if pending is None else int(pending["peer_id"].size)
            )
            state = self._shard_state[index]
            # The coordinator knows every upcoming row count before the
            # step message goes out, so growth is always pre-arranged.
            updates = fabric.ensure(
                index,
                conn_rows=(state["n_leech"] + state["n_seeds"]
                           + incoming + len(arrival_times[index])),
                inbox_rows=incoming,
                outbox_rows=quotas[index],
            )
            fabric.write_inbox(index, pending, round_index)
            self._send(index, ("step", {
                "round": round_index,
                "arrivals": arrivals,
                "emigrate": quotas[index],
                "fabric_updates": updates,
            }))
        if prof is not None:
            prof.lap("comms")
        wait_start = _time.perf_counter()
        replies = [self._recv(index) for index in range(self.shards)]
        if prof is not None:
            # The barrier wait minus the slowest worker's compute is
            # fabric overhead; the compute itself is the shards' work.
            waited = _time.perf_counter() - wait_start
            busy = max(reply["busy"] for reply in replies)
            prof.charge("comms", max(waited - busy, 0.0))
            prof.mark()

        # -- all replies in hand: commit the round
        self._pending_rows = [None] * self.shards
        outbound: List[List[dict]] = [[] for _ in range(self.shards)]
        reports: List[dict] = []
        for index, reply in enumerate(replies):
            report = fabric.read_report(index, round_index)
            report["time"] = reply["time"]
            report["completed"] = reply["completed"]
            report["aborted"] = reply["aborted"]
            reports.append(report)
            self._shard_state[index] = report
            emigrants = fabric.read_outbox(index, round_index)
            if emigrants is not None and self.shards > 1:
                destinations = self._tracker_rng.integers(
                    0, self.shards - 1, size=emigrants["peer_id"].size
                )
                destinations[destinations >= index] += 1
                for target in range(self.shards):
                    part = _select_rows(emigrants, destinations == target)
                    if part is not None:
                        outbound[target].append(part)
        for target in range(self.shards):
            self._pending_rows[target] = _concat_rows(outbound[target])
        if prof is not None:
            prof.lap("comms")

        n_leech = sum(report["n_leech"] for report in reports)
        n_seeds = sum(report["n_seeds"] for report in reports)
        for report in reports:
            for record in report["completed"]:
                self.metrics.completed.append(record)
            for abort_time, pieces in report["aborted"]:
                self.metrics.record_abort(abort_time, pieces)
        metrics = self.metrics
        degrees = None
        if (metrics.rounds_observed + 1) % metrics.entropy_every == 0:
            degrees = self._global_counts()
            if not metrics.entropy_includes_seeds:
                degrees = degrees - n_seeds
        conn_parts = [
            report["conn_counts"] for report in reports
            if report["conn_counts"] is not None
        ]
        conn_counts = np.concatenate(conn_parts) if conn_parts else None
        self._population_log.append((time, n_leech, n_seeds))
        metrics.record_round(
            time, n_leech, n_seeds, degrees=degrees, conn_counts=conn_counts
        )
        # Connection counts are views into the report blocks; drop them
        # now so block growth / close never has a dangling export.
        for report in reports:
            report["conn_counts"] = None
        if prof is not None:
            prof.lap("bookkeeping")

        self._rounds += 1
        self._next_round_time = time + config.piece_time
        if (
            self.checkpoint_every > 0
            and self._rounds % self.checkpoint_every == 0
        ):
            self.write_checkpoint()
        return True

    def step_round(self) -> bool:
        """Advance one coordinated round; ``False`` when the run ended."""
        self._ensure_started()
        if self._solo is not None:
            return self._solo_step()
        while True:
            try:
                return self._advance_cycle()
            except _WorkerDied:
                self._recover()

    # ------------------------------------------------------------------
    # Crash recovery (the PR-2 machinery, shard-shaped)
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Roll every shard back to the last coordinated snapshot.

        All workers are torn down — shards advance in lockstep, so a
        single dead worker leaves the others one message ahead of any
        recoverable cut.  Replay from the snapshot (or from round 0
        when checkpointing is off) is deterministic, so the finished
        run is fingerprint-identical to an uninterrupted one.
        """
        self.worker_restarts += 1
        if self.worker_restarts > self.max_worker_restarts:
            raise SimulationError(
                f"a shard worker died and the restart budget "
                f"({self.max_worker_restarts}) is exhausted"
            )
        self.close()
        if self._last_document is not None:
            self._load_coordinator_block(self._last_document)
            self._restore_docs = list(self._last_document["shard_docs"])
            self._adopt_rows = None
        else:
            checkpoints = self.checkpoints_written
            self._init_coordinator_state()
            self.checkpoints_written = checkpoints
            self._restore_docs = None
            self._adopt_rows = None
            _reset_metrics_in_place(self.metrics)
        self._started = False
        self._ensure_started()

    def _load_coordinator_block(self, document: dict) -> None:
        """Reset coordinator state from a sharded snapshot document."""
        from repro.checkpoint.schema import _restore_metrics

        coord = document["coordinator"]
        self._generation = int(coord["generation"])
        self._tracker_rng = np.random.default_rng(0)
        self._tracker_rng.bit_generator.state = coord["rng"]
        self._rounds = int(coord["rounds"])
        self._next_round_time = float(coord["next_round_time"])
        self._population_log = [
            (float(t), int(le), int(se))
            for t, le, se in coord["population_log"]
        ]
        self._global_next_id = int(coord["global_next_id"])
        self._next_arrival = (
            None if coord["next_arrival"] is None
            else float(coord["next_arrival"])
        )
        words = _bits_words(self.config.num_pieces)
        self._pending_rows = [
            _rows_from_json(rows, words) for rows in coord["pending_rows"]
        ]
        self._shard_state = [
            {
                "time": None,
                "n_leech": int(state["n_leech"]),
                "n_seeds": int(state["n_seeds"]),
                "piece_counts": np.asarray(
                    state["piece_counts"], dtype=np.int64
                ),
                "conn_counts": None,
                "stats": tuple(int(v) for v in state["stats"]),
                "seed_uploads": int(state["seed_uploads"]),
                "completed": [],
                "aborted": [],
            }
            for state in coord["shard_state"]
        ]
        self._carried = {
            key: int(value) for key, value in coord["carried"].items()
        }
        self._carried_faults = (
            None if coord["carried_faults"] is None
            else _fault_stats_from_dict(coord["carried_faults"])
        )
        restored = _restore_metrics(coord["metrics"])
        _copy_metrics_in_place(self.metrics, restored)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Coordinated snapshot: coordinator block + one doc per shard."""
        from repro.checkpoint.schema import (
            SCHEMA_VERSION,
            _sanitize_rng_state,
            _snapshot_metrics,
            _triples,
            snapshot_soa_swarm,
        )

        if self._solo is not None:
            return {
                "schema_version": SCHEMA_VERSION,
                "backend": "sharded",
                "shards": 1,
                "config": self.config.to_dict(),
                "faults_plan": (
                    None if self.fault_plan is None
                    else self.fault_plan.to_dict()
                ),
                "solo": snapshot_soa_swarm(self._solo),
            }
        self._ensure_started()
        for index in range(self.shards):
            self._send(index, ("snapshot", None))
        shard_docs = [self._recv(index) for index in range(self.shards)]
        return {
            "schema_version": SCHEMA_VERSION,
            "backend": "sharded",
            "shards": self.shards,
            "config": self.config.to_dict(),
            "faults_plan": (
                None if self.fault_plan is None
                else self.fault_plan.to_dict()
            ),
            "coordinator": {
                "generation": self._generation,
                "rng": _sanitize_rng_state(
                    self._tracker_rng.bit_generator.state
                ),
                "rounds": self._rounds,
                "next_round_time": self._next_round_time,
                "population_log": _triples(self._population_log),
                "global_next_id": self._global_next_id,
                "next_arrival": self._next_arrival,
                "pending_rows": [
                    _rows_to_json(rows) for rows in self._pending_rows
                ],
                "shard_state": [
                    {
                        "n_leech": state["n_leech"],
                        "n_seeds": state["n_seeds"],
                        "piece_counts": [
                            int(c) for c in state["piece_counts"]
                        ],
                        "stats": [int(v) for v in state["stats"]],
                        "seed_uploads": int(state["seed_uploads"]),
                    }
                    for state in self._shard_state
                ],
                "carried": dict(self._carried),
                "carried_faults": (
                    None if self._carried_faults is None
                    else self._carried_faults.to_dict()
                ),
                "metrics": _snapshot_metrics(self.metrics),
            },
            "shard_docs": shard_docs,
        }

    def write_checkpoint(self, path: Optional[str] = None) -> None:
        """Write a coordinated snapshot (atomic container overwrite)."""
        from repro.checkpoint.format import write_checkpoint

        target = path or self.checkpoint_path
        if target is None:
            raise ParameterError(
                "write_checkpoint() needs a path argument or a "
                "checkpoint_path configured at construction"
            )
        document = self.snapshot()
        write_checkpoint(document, target)
        self.checkpoints_written += 1
        if self._solo is None:
            self._last_document = document

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def _solo_step(self) -> bool:
        inner = self._solo
        before = inner._rounds
        while True:
            if inner.engine.step() is None:
                return False
            if inner._rounds != before:
                break
        if (
            self.checkpoint_every > 0
            and inner._rounds % self.checkpoint_every == 0
        ):
            self.write_checkpoint()
        return True

    def run(self) -> SwarmResult:
        """Run to the horizon; returns the aggregated result bundle."""
        if self._finished:
            raise SimulationError("run() called twice")
        start = _time.perf_counter()
        self._ensure_started()
        if self._solo is not None:
            while self._solo_step():
                pass
            self._finished = True
            return self._solo_result(start)
        try:
            while self.step_round():
                pass
            result = self._finalize(start)
        finally:
            self.close()
        self._finished = True
        return result

    def _solo_result(self, start: float) -> SwarmResult:
        inner = self._solo
        profile = (
            inner.profiler.as_dict() if inner.profiler is not None else None
        )
        wall_time = _time.perf_counter() - start
        self.shard_profiles = (
            {"shard0": dict(profile)} if profile is not None else None
        )
        self.telemetry = Telemetry(
            wall_time=wall_time,
            workers=1,
            events=inner.engine.processed_events,
            backend="sharded",
            shards=1,
            round_profile=dict(profile) if profile else {},
        )
        return SwarmResult(
            config=self.config,
            metrics=inner.metrics,
            instrumented=[],
            total_rounds=inner._rounds,
            final_leechers=inner._n_leech,
            final_seeds=inner._n_seeds,
            tracker_population_log=list(inner._population_log),
            connection_stats=inner.connection_stats,
            seed_upload_count=inner.seed_upload_count,
            events_processed=inner.engine.processed_events,
            wall_time=wall_time,
            fault_stats=(
                inner.fault_injector.stats
                if inner.fault_injector is not None
                else None
            ),
            round_profile=profile,
            resumed_from_round=(
                self.resumed_from_round
                if self.resumed_from_round is not None
                else inner.resumed_from_round
            ),
            checkpoints_written=self.checkpoints_written,
            backend="sharded",
            shard_profiles=self.shard_profiles,
        )

    def _finalize(self, start: float) -> SwarmResult:
        for index in range(self.shards):
            self._send(index, ("final", None))
        finals = [self._recv(index) for index in range(self.shards)]

        stats = ConnectionStats()
        stats.survived = self._carried["survived"]
        stats.dropped = self._carried["dropped"]
        stats.attempts = self._carried["attempts"]
        stats.formed = self._carried["formed"]
        seed_uploads = self._carried["seed_uploads"]
        events = self._carried["events"]
        n_leech = 0
        n_seeds = 0
        for state in self._shard_state:
            survived, dropped, attempts, formed = state["stats"]
            stats.survived += survived
            stats.dropped += dropped
            stats.attempts += attempts
            stats.formed += formed
            seed_uploads += state["seed_uploads"]
            n_leech += state["n_leech"]
            n_seeds += state["n_seeds"]
        fault_stats = None
        if self.fault_plan is not None:
            fault_stats = FaultStats()
            if self._carried_faults is not None:
                fault_stats.merge(self._carried_faults)
            for final in finals:
                if final["fault_stats"] is not None:
                    fault_stats.merge(final["fault_stats"])
        profiles = {}
        aggregate: Dict[str, float] = {}
        for index, final in enumerate(finals):
            events += final["events"]
            if final["profile"] is not None:
                profiles[f"shard{index}"] = dict(final["profile"])
                for stage, seconds in final["profile"].items():
                    aggregate[stage] = aggregate.get(stage, 0.0) + seconds
        if self._comms_profiler is not None:
            coord_profile = self._comms_profiler.as_dict()
            profiles["coordinator"] = dict(coord_profile)
            for stage, seconds in coord_profile.items():
                aggregate[stage] = aggregate.get(stage, 0.0) + seconds
        self._fold_fabric_bytes()
        comms = {
            "bytes_broadcast": self._bytes_broadcast,
            "bytes_migrated": self._bytes_migrated,
            "bytes_per_round": (
                (self._bytes_broadcast + self._bytes_migrated)
                / max(self._rounds, 1)
            ),
        }
        wall_time = _time.perf_counter() - start
        self.shard_profiles = profiles or None
        self.telemetry = Telemetry(
            wall_time=wall_time,
            workers=self.shards,
            events=events,
            resumes=self.worker_restarts,
            backend="sharded",
            shards=self.shards,
            round_profile=dict(aggregate),
            bytes_broadcast=self._bytes_broadcast,
            bytes_migrated=self._bytes_migrated,
        )
        return SwarmResult(
            config=self.config,
            metrics=self.metrics,
            instrumented=[],
            total_rounds=self._rounds,
            final_leechers=n_leech,
            final_seeds=n_seeds,
            tracker_population_log=list(self._population_log),
            connection_stats=stats,
            seed_upload_count=seed_uploads,
            events_processed=events,
            wall_time=wall_time,
            fault_stats=fault_stats,
            round_profile=aggregate or None,
            resumed_from_round=self.resumed_from_round,
            checkpoints_written=self.checkpoints_written,
            backend="sharded",
            shard_profiles=self.shard_profiles,
            comms=comms,
        )


# ----------------------------------------------------------------------
# Restore / repartition
# ----------------------------------------------------------------------
def _bits_words(num_pieces: int) -> int:
    from repro.sim.soa import words_for

    return words_for(num_pieces)


def _fault_stats_from_dict(doc: dict) -> FaultStats:
    return FaultStats(**{
        key: int(value) for key, value in doc.items() if key != "total"
    })


def _copy_metrics_in_place(
    target: MetricsCollector, source: MetricsCollector
) -> None:
    """Make ``target`` (a caller-held reference) mirror ``source``."""
    target.population_series = source.population_series
    target.entropy_series = source.entropy_series
    target.aborted = source.aborted
    target.completed = source.completed
    target.rounds_observed = source.rounds_observed
    target._occupancy_sums = source._occupancy_sums
    target._occupancy_rounds = source._occupancy_rounds
    target._expected_total_rounds = source._expected_total_rounds


def _reset_metrics_in_place(metrics: MetricsCollector) -> None:
    metrics.population_series = []
    metrics.entropy_series = []
    metrics.aborted = []
    metrics.completed = []
    metrics.rounds_observed = 0
    metrics._occupancy_sums = np.zeros(
        metrics.max_conns + 1, dtype=np.float64
    )
    metrics._occupancy_rounds = 0


def restore_sharded_swarm(
    document: dict,
    *,
    shards: Optional[int] = None,
    **swarm_kwargs,
) -> ShardedSwarm:
    """Rebuild a :class:`ShardedSwarm` from a coordinated snapshot.

    ``shards`` resumes at a *different* worker count (elastic
    re-sharding): peer rows from every shard document (plus in-flight
    migrants) are repartitioned by ``peer_id % shards``, relations are
    severed (every peer re-announces), and cumulative shard statistics
    fold into the coordinator's carried totals.  Same-count resume is
    exact and fingerprint-preserving; a repartitioned resume is a new
    (deterministic) trajectory.
    """
    from repro.checkpoint.schema import _restore_soa_swarm

    config = SimConfig.from_dict(document["config"])
    doc_shards = int(document["shards"])
    target = doc_shards if shards is None else int(shards)
    if target < 1:
        raise CheckpointError(f"shards must be >= 1, got {target}")
    plan = (
        None if document.get("faults_plan") is None
        else FaultPlan.from_dict(document["faults_plan"])
    )

    if doc_shards == 1:
        inner_kwargs = {
            key: value for key, value in swarm_kwargs.items()
            if key in ("profile",)
        }
        inner = _restore_soa_swarm(document["solo"], **inner_kwargs)
        if target == 1:
            swarm = ShardedSwarm(
                config, shards=1, metrics=inner.metrics,
                faults=plan, **swarm_kwargs,
            )
            swarm._solo = inner
            swarm.resumed_from_round = inner._rounds
            return swarm
        # Repartition a solo snapshot onto >= 2 workers: synthesize a
        # one-shard coordinated document and fall through.
        document = _sharded_document_from_solo(document, inner)
        doc_shards = 1

    if target == doc_shards:
        swarm = ShardedSwarm(
            config, shards=target, faults=plan, **swarm_kwargs,
        )
        swarm._load_coordinator_block(document)
        swarm._restore_docs = list(document["shard_docs"])
        swarm.resumed_from_round = swarm._rounds
        return swarm
    return _repartition(document, config, plan, target, swarm_kwargs)


def _sharded_document_from_solo(document: dict, inner: SoaSwarm) -> dict:
    """Lift a ``shards=1`` (solo) snapshot into coordinator form."""
    from repro.checkpoint.schema import _snapshot_metrics, _triples

    solo = document["solo"]
    sw = solo["swarm"]
    return {
        "schema_version": document["schema_version"],
        "backend": "sharded",
        "shards": 1,
        "config": document["config"],
        "faults_plan": document.get("faults_plan"),
        "coordinator": {
            "generation": 0,
            "rng": sw["rng"],
            "rounds": int(sw["rounds"]),
            "next_round_time": (
                (inner._rounds + 1) * inner.config.piece_time
            ),
            "population_log": _triples(inner._population_log),
            "global_next_id": int(sw["next_id"]),
            "next_arrival": None,
            "pending_rows": [None],
            "shard_state": [{
                "n_leech": int(sw["n_leech"]),
                "n_seeds": int(sw["n_seeds"]),
                "piece_counts": list(sw["piece_counts"]),
                "stats": [
                    sw["connection_stats"]["survived"],
                    sw["connection_stats"]["dropped"],
                    sw["connection_stats"]["attempts"],
                    sw["connection_stats"]["formed"],
                ],
                "seed_uploads": int(sw["seed_upload_count"]),
            }],
            "carried": {
                "survived": 0, "dropped": 0, "attempts": 0, "formed": 0,
                "seed_uploads": 0, "events": 0,
            },
            "carried_faults": None,
            "metrics": _snapshot_metrics(inner.metrics),
        },
        "shard_docs": [solo],
    }


def _repartition(
    document: dict,
    config: SimConfig,
    plan: Optional[FaultPlan],
    target: int,
    swarm_kwargs: dict,
) -> ShardedSwarm:
    """Checkpoint -> repartition -> resume at a new shard count."""
    from repro.checkpoint.schema import _restore_metrics

    if target < 2:
        raise CheckpointError(
            "re-sharding to shards=1 is not supported; resume with the "
            "original shard count or >= 2 workers"
        )
    coord = document["coordinator"]
    words = _bits_words(config.num_pieces)

    swarm = ShardedSwarm(config, shards=target, faults=plan, **swarm_kwargs)
    swarm._generation = int(coord["generation"]) + 1
    swarm._tracker_rng = np.random.default_rng(0)
    swarm._tracker_rng.bit_generator.state = coord["rng"]
    swarm._rounds = int(coord["rounds"])
    swarm._next_round_time = float(coord["next_round_time"])
    swarm._population_log = [
        (float(t), int(le), int(se)) for t, le, se in coord["population_log"]
    ]
    swarm._global_next_id = int(coord["global_next_id"])
    swarm._next_arrival = (
        None if coord["next_arrival"] is None
        else float(coord["next_arrival"])
    )
    restored_metrics = _restore_metrics(coord["metrics"])
    _copy_metrics_in_place(swarm.metrics, restored_metrics)

    # Fold every old shard's cumulative counters into the carried base;
    # fresh workers restart their counters from zero.
    carried = {key: int(value) for key, value in coord["carried"].items()}
    carried_faults = (
        None if coord["carried_faults"] is None
        else _fault_stats_from_dict(coord["carried_faults"])
    )
    for state in coord["shard_state"]:
        survived, dropped, attempts, formed = state["stats"]
        carried["survived"] += int(survived)
        carried["dropped"] += int(dropped)
        carried["attempts"] += int(attempts)
        carried["formed"] += int(formed)
        carried["seed_uploads"] += int(state["seed_uploads"])
    for shard_doc in document["shard_docs"]:
        carried["events"] += int(shard_doc["engine"]["processed"])
        faults_doc = shard_doc.get("faults")
        if faults_doc is not None and plan is not None:
            if carried_faults is None:
                carried_faults = FaultStats()
            carried_faults.merge(_fault_stats_from_dict(faults_doc["stats"]))
    swarm._carried = carried
    swarm._carried_faults = carried_faults

    # Gather every alive peer (plus in-flight migrants) and rehash.
    parts: List[dict] = []
    for shard_doc in document["shard_docs"]:
        rows = _rows_from_store_block(shard_doc["store"], words)
        if rows is not None:
            parts.append(rows)
    for rows_doc in coord["pending_rows"]:
        rows = _rows_from_json(rows_doc, words)
        if rows is not None:
            parts.append(rows)
    merged = _concat_rows(parts)
    adopt: List[Optional[dict]] = [None] * target
    shard_state: List[dict] = []
    for index in range(target):
        if merged is not None:
            part = _select_rows(
                merged, (merged["peer_id"] % target) == index
            )
        else:
            part = None
        adopt[index] = part
        if part is None:
            n_seeds = 0
            n_leech = 0
            counts = np.zeros(config.num_pieces, dtype=np.int64)
        else:
            n_seeds = int(part["is_seed"].sum())
            n_leech = int(part["peer_id"].size) - n_seeds
            counts = unpack_rows(
                np.ascontiguousarray(part["bits"]), config.num_pieces
            ).sum(axis=0).astype(np.int64)
        shard_state.append({
            "time": None,
            "n_leech": n_leech,
            "n_seeds": n_seeds,
            "piece_counts": counts,
            "conn_counts": None,
            "stats": (0, 0, 0, 0),
            "seed_uploads": 0,
            "completed": [],
            "aborted": [],
        })
    swarm._pending_rows = [None] * target
    swarm._shard_state = shard_state
    swarm._adopt_rows = adopt
    swarm.resumed_from_round = swarm._rounds
    return swarm
