"""Choking: connection maintenance and formation.

BitTorrent's choking algorithm decides which neighbors a peer actively
trades with.  Under the paper's assumptions (homogeneous bandwidth,
strict tit-for-tat) the upload-rate preference degenerates to: keep
connections that still have something to trade, and fill open slots
from the potential set.  Two emergent quantities of the model live
here:

* the **re-encounter probability** ``p_r`` — a kept connection is one
  that survived both interest exhaustion and the exogenous
  ``connection_failure_prob`` churn;
* the **new-connection probability** ``p_n`` — slot filling is a
  bilateral matching over potential sets, so an attempt can fail when
  the counterpart has no open slot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

import numpy as np

from repro.errors import ParameterError
from repro.sim.peer import Peer
from repro.sim.tracker import Tracker

__all__ = ["ConnectionStats", "drop_stale_connections", "fill_open_slots"]


@dataclass
class ConnectionStats:
    """Accumulated connection-event counts over a run.

    These are the empirical counterparts of the model's two connection
    parameters, which the paper defines as system averages: ``p_r``,
    "the probability (averaged over all peers in the system) that an
    established encounter does not fail", and ``p_n``, "the probability
    that a new connection is established".

    Attributes:
        survived: connection-rounds where an established pair persisted.
        dropped: connection-rounds where an established pair ended
            (interest exhaustion or exogenous churn).
        attempts: slot-filling attempts made.
        formed: attempts that produced a connection.
    """

    survived: int = 0
    dropped: int = 0
    attempts: int = 0
    formed: int = 0

    def p_reenc(self) -> float:
        """Measured per-round survival probability (NaN if unobserved)."""
        total = self.survived + self.dropped
        return self.survived / total if total else float("nan")

    def p_new(self) -> float:
        """Measured formation success probability (NaN if unobserved)."""
        return self.formed / self.attempts if self.attempts else float("nan")

    def merge(self, other: "ConnectionStats") -> None:
        """Fold another accumulator into this one."""
        self.survived += other.survived
        self.dropped += other.dropped
        self.attempts += other.attempts
        self.formed += other.formed


def drop_stale_connections(
    leechers: List[Peer],
    tracker: Tracker,
    rng: np.random.Generator,
    *,
    failure_prob: float = 0.0,
    strict_tft: bool = True,
    stats: Optional[ConnectionStats] = None,
    injector=None,
) -> int:
    """Tear down connections that lost mutual interest (or randomly fail).

    Iterates each connected pair once (via the lower peer id) and
    removes it when the endpoints can no longer trade under the active
    tit-for-tat regime, or — with probability ``failure_prob`` — due to
    exogenous churn.  Returns the number of connections dropped; when a
    :class:`ConnectionStats` accumulator is supplied, survivals and
    drops are recorded on it (the measured ``p_r``).

    A :class:`~repro.faults.injector.FaultInjector` adds an independent
    break probability on top of the nominal churn (drawn from the
    injector's own stream), driving the measured ``p_r`` below its
    nominal value without perturbing the swarm's RNG.
    """
    dropped = 0
    leecher_ids: Set[int] = {p.peer_id for p in leechers}
    for peer in leechers:
        for partner_id in sorted(peer.partners):
            if partner_id in leecher_ids and partner_id < peer.peer_id:
                # Pair already visited from the lower-id endpoint.
                continue
            partner = tracker.get(partner_id)
            if partner is None:
                peer.partners.discard(partner_id)
                dropped += 1
                continue
            alive = (
                peer.bitfield.mutual_interest(partner.bitfield)
                if strict_tft
                else (
                    peer.bitfield.interested_in(partner.bitfield)
                    or partner.bitfield.interested_in(peer.bitfield)
                )
            )
            if alive and failure_prob > 0.0 and rng.random() < failure_prob:
                alive = False
            if alive and injector is not None and injector.break_connection():
                alive = False
            if not alive:
                peer.partners.discard(partner_id)
                partner.partners.discard(peer.peer_id)
                dropped += 1
                if stats is not None:
                    stats.dropped += 1
            elif stats is not None:
                stats.survived += 1
    return dropped


def fill_open_slots(
    leechers: List[Peer],
    potential: Dict[int, List[int]],
    tracker: Tracker,
    max_conns: int,
    rng: np.random.Generator,
    *,
    setup_prob: float = 1.0,
    matching: str = "blind",
    stats: Optional[ConnectionStats] = None,
    injector=None,
) -> int:
    """Fill open slots from potential sets (connection formation).

    Peers are processed in random order (homogeneous bandwidth leaves no
    rate ranking to prefer).  Two matching disciplines:

    * ``"blind"`` (default) — per open slot, the peer contacts **one**
      uniformly drawn potential-set member it is not already trading
      with; the connection forms iff that candidate has an open slot
      (the model's formation condition: the partner must not be in
      class ``k``) and the handshake completes this round (probability
      ``setup_prob``, the sim-side ``p_n``).  Decentralised peers know
      nothing about a neighbor's slot occupancy before contacting it,
      so busy candidates waste the attempt — the emergent friction
      behind the paper's ``(1 - x_{i-1} + x_i - x_k)`` formation rate.
    * ``"greedy"`` — per open slot, candidates are tried in random
      order until an open one accepts: an idealised matchmaker, useful
      as an upper-bound ablation.

    A :class:`~repro.faults.injector.FaultInjector` can veto an
    otherwise-successful handshake (a timeout), lowering the measured
    ``p_n`` below the nominal ``setup_prob`` without touching the
    swarm's RNG stream.

    Returns the number of new connections formed.
    """
    if matching not in ("blind", "greedy"):
        raise ParameterError(
            f"matching must be 'blind' or 'greedy', got {matching!r}"
        )
    formed = 0
    order = [leechers[j] for j in rng.permutation(len(leechers))]
    for peer in order:
        open_slots = peer.open_slots(max_conns)
        if open_slots <= 0:
            continue
        members = potential.get(peer.peer_id)
        if not members:
            continue
        candidates = [m for m in members if m not in peer.partners]
        if not candidates:
            continue
        if matching == "blind":
            for _ in range(open_slots):
                if stats is not None:
                    stats.attempts += 1
                candidate_id = candidates[int(rng.integers(len(candidates)))]
                candidate = tracker.get(candidate_id)
                if (
                    candidate is None
                    or candidate.is_seed
                    or candidate_id in peer.partners
                    or candidate.open_slots(max_conns) <= 0
                ):
                    continue  # busy or stale candidate: attempt wasted
                if setup_prob < 1.0 and rng.random() >= setup_prob:
                    continue  # handshake did not complete within the round
                if injector is not None and injector.fail_handshake():
                    continue  # injected handshake timeout
                peer.partners.add(candidate_id)
                candidate.partners.add(peer.peer_id)
                formed += 1
                if stats is not None:
                    stats.formed += 1
        else:
            shuffled = [candidates[j] for j in rng.permutation(len(candidates))]
            for candidate_id in shuffled:
                if peer.open_slots(max_conns) <= 0:
                    break
                if stats is not None:
                    stats.attempts += 1
                candidate = tracker.get(candidate_id)
                if candidate is None or candidate.is_seed:
                    continue
                if candidate.open_slots(max_conns) <= 0:
                    continue
                if setup_prob < 1.0 and rng.random() >= setup_prob:
                    continue
                if injector is not None and injector.fail_handshake():
                    continue  # injected handshake timeout
                peer.partners.add(candidate_id)
                candidate.partners.add(peer.peer_id)
                formed += 1
                if stats is not None:
                    stats.formed += 1
    return formed
