"""Zero-copy shared-memory data plane for the sharded swarm backend.

The PR-9 sharded backend moved every per-round payload over pickled
``multiprocessing.Pipe`` messages, which made the fabric
serialization-bound: the global replication-count broadcast, each
shard's round report, and the migration row batches were re-pickled
every round.  This module gives the coordinator and its shard workers
a preallocated shared-memory fabric instead; the pipe stays as a
low-rate control plane (init / step barrier / snapshot / stop).

Layout
------

* one **broadcast block** (all shards attach): the global piece
  replication counts, double-buffered;
* per shard, a **report block**: the integer round report (populations,
  connection-stats deltas, seed uploads, piece counts) plus the
  trading-scope connection-count region, double-buffered;
* per shard, an **inbox** and an **outbox** migration block: the
  checkpoint-shaped migration columns, double-buffered.

Every block is double-buffered on ``round_index % 2`` with an ``int64``
round stamp written *after* the payload; a reader validating the stamp
therefore never sees a torn or stale plane — the coordinator only
advances to round ``k+1`` after every shard replied for round ``k``,
so the other slot is always quiescent.

Capacity growth (migration bursts, population growth) is
coordinator-driven: the coordinator knows every upcoming row count
before it sends the step message, calls :meth:`ShardFabric.ensure`,
and ships the replacement segment names in the step payload; workers
re-attach before touching the block.  Old segments are unlinked
immediately (attached handles keep the mapping alive until both sides
close).

Lifecycle: the coordinator owns every segment and unlinks all of them
in :meth:`ShardFabric.close`; workers only ever ``close()`` their
attached handles.  ``close`` is idempotent and tolerant of
half-created state so abnormal exits (worker SIGKILL, coordinator
exceptions) still leave ``/dev/shm`` clean.
"""

from __future__ import annotations

import secrets
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import SimulationError

__all__ = ["ShardFabric", "WorkerFabric", "migration_row_bytes"]

#: Prefix of every fabric segment name: lifecycle tests and the CI leak
#: check probe ``/dev/shm`` for stale ``rbt-*`` entries.
SEGMENT_PREFIX = "rbt-"


def _migration_spec(words: int) -> Tuple[Tuple[str, type, int], ...]:
    """Ordered (name, dtype, width) column layout of a migration plane.

    Eight-byte columns first so every numeric column lands 8-aligned;
    the two one-byte bool columns close the plane.  The names mirror
    ``repro.sim.sharded.MIGRATION_COLUMNS`` exactly.
    """
    return (
        ("peer_id", np.int64, 1),
        ("counts", np.int64, 1),
        ("upload_capacity", np.int64, 1),
        ("bits", np.uint64, words),
        ("seeded", np.uint64, words),
        ("joined_at", np.float64, 1),
        ("seed_until", np.float64, 1),
        ("first_piece_at", np.float64, 1),
        ("prelast_at", np.float64, 1),
        ("shaken_at", np.float64, 1),
        ("is_seed", np.bool_, 1),
        ("shaken", np.bool_, 1),
    )


#: Columns stored two-dimensional, ``(rows, words)``, even at one word.
_WORD_COLUMN_NAMES = ("bits", "seeded")


def migration_row_bytes(words: int) -> int:
    """Bytes one peer row occupies in a migration plane."""
    return 66 + 16 * words


def _pad8(nbytes: int) -> int:
    return nbytes + (-nbytes) % 8


# ----------------------------------------------------------------------
# Segments
# ----------------------------------------------------------------------
class _Segment:
    """One shared-memory segment, either owned (created) or attached."""

    __slots__ = ("shm", "owner")

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool):
        self.shm = shm
        self.owner = owner

    @classmethod
    def create(cls, kind: str, size: int) -> "_Segment":
        for _ in range(16):
            # Short random names (< 31 chars with the leading slash,
            # the portable limit); `secrets` so segment naming never
            # touches a simulation RNG stream.
            name = f"{SEGMENT_PREFIX}{kind}-{secrets.token_hex(4)}"
            try:
                shm = shared_memory.SharedMemory(
                    name=name, create=True, size=size
                )
            except FileExistsError:  # pragma: no cover - collision
                continue
            return cls(shm, True)
        raise SimulationError(  # pragma: no cover - 16 collisions
            f"could not allocate a shared-memory segment for {kind!r}"
        )

    @classmethod
    def attach(cls, name: str) -> "_Segment":
        return cls(shared_memory.SharedMemory(name=name), False)

    @property
    def name(self) -> str:
        return self.shm.name

    @property
    def buf(self):
        return self.shm.buf

    def close(self) -> None:
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover - a view outlived us
            # A numpy view still references the mapping; the fd is gone
            # either way and unlink below removes the name, so nothing
            # leaks — the mapping dies with the process.
            pass

    def unlink(self) -> None:
        if not self.owner:
            return
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


# ----------------------------------------------------------------------
# Double-buffered blocks
# ----------------------------------------------------------------------
class _BroadcastBlock:
    """The global replication counts: 2 stamps + 2 int64 planes."""

    def __init__(self, segment: _Segment, num_pieces: int):
        self.segment = segment
        buf = segment.buf
        self.stamps = np.ndarray((2,), dtype=np.int64, buffer=buf)
        self.planes = np.ndarray(
            (2, num_pieces), dtype=np.int64, buffer=buf, offset=16
        )

    @staticmethod
    def nbytes(num_pieces: int) -> int:
        return 16 + 2 * 8 * num_pieces

    def write(self, counts: np.ndarray, round_index: int) -> None:
        slot = round_index & 1
        self.planes[slot, :] = counts
        self.stamps[slot] = round_index

    def read(self, round_index: int) -> np.ndarray:
        slot = round_index & 1
        if int(self.stamps[slot]) != round_index:
            raise SimulationError(
                f"broadcast stamp mismatch: wanted round {round_index}, "
                f"slot holds {int(self.stamps[slot])}"
            )
        view = self.planes[slot]
        view.flags.writeable = False
        return view

    def release(self) -> None:
        self.stamps = None
        self.planes = None


#: Integer scalars of a round report, in plane order (before the piece
#: counts).  ``conn_len`` is the connection-count region length, ``-1``
#: encoding ``None`` (shard had no in-scope leechers this round).
_REPORT_SCALARS = (
    "n_leech", "n_seeds", "survived", "dropped", "attempts", "formed",
    "seed_uploads", "conn_len",
)


class _ReportBlock:
    """One shard's round report: scalars + piece counts + conn region."""

    def __init__(self, segment: _Segment, num_pieces: int, conn_rows: int):
        self.segment = segment
        self.num_pieces = num_pieces
        self.conn_rows = conn_rows
        width = len(_REPORT_SCALARS) + num_pieces
        buf = segment.buf
        self.stamps = np.ndarray((2,), dtype=np.int64, buffer=buf)
        self.planes = np.ndarray(
            (2, width), dtype=np.int64, buffer=buf, offset=16
        )
        self.conn = np.ndarray(
            (2, conn_rows), dtype=np.int64, buffer=buf,
            offset=16 + 2 * 8 * width,
        )

    @staticmethod
    def nbytes(num_pieces: int, conn_rows: int) -> int:
        width = len(_REPORT_SCALARS) + num_pieces
        return 16 + 2 * 8 * width + 2 * 8 * conn_rows

    def write(self, report: dict, round_index: int) -> None:
        slot = round_index & 1
        plane = self.planes[slot]
        survived, dropped, attempts, formed = report["stats"]
        conn_counts = report["conn_counts"]
        if conn_counts is None:
            conn_len = -1
        else:
            conn_len = int(conn_counts.size)
            if conn_len > self.conn_rows:
                raise SimulationError(
                    f"report conn region overflow: {conn_len} counts, "
                    f"capacity {self.conn_rows}"
                )
            self.conn[slot, :conn_len] = conn_counts
        plane[0] = report["n_leech"]
        plane[1] = report["n_seeds"]
        plane[2] = survived
        plane[3] = dropped
        plane[4] = attempts
        plane[5] = formed
        plane[6] = report["seed_uploads"]
        plane[7] = conn_len
        plane[8:] = report["piece_counts"]
        self.stamps[slot] = round_index

    def read(self, round_index: int) -> dict:
        slot = round_index & 1
        if int(self.stamps[slot]) != round_index:
            raise SimulationError(
                f"report stamp mismatch: wanted round {round_index}, "
                f"slot holds {int(self.stamps[slot])}"
            )
        plane = self.planes[slot]
        conn_len = int(plane[7])
        conn_counts = None if conn_len < 0 else self.conn[slot, :conn_len]
        return {
            "n_leech": int(plane[0]),
            "n_seeds": int(plane[1]),
            "piece_counts": plane[8:].copy(),
            "conn_counts": conn_counts,
            "stats": (int(plane[2]), int(plane[3]),
                      int(plane[4]), int(plane[5])),
            "seed_uploads": int(plane[6]),
        }

    def release(self) -> None:
        self.stamps = None
        self.planes = None
        self.conn = None


class _MigrationBlock:
    """A batch of migration rows: [stamp, count] header + columns."""

    def __init__(self, segment: _Segment, rows: int, words: int):
        self.segment = segment
        self.rows = rows
        self.words = words
        plane_bytes = self.plane_nbytes(rows, words)
        buf = segment.buf
        self.headers: List[np.ndarray] = []
        self.columns: List[Dict[str, np.ndarray]] = []
        for slot in range(2):
            base = slot * plane_bytes
            self.headers.append(
                np.ndarray((2,), dtype=np.int64, buffer=buf, offset=base)
            )
            offset = base + 16
            cols: Dict[str, np.ndarray] = {}
            for name, dtype, width in _migration_spec(words):
                # The bitfield columns are (rows, words) even at one
                # word; every other column is flat.
                shape = (
                    (rows, width) if name in _WORD_COLUMN_NAMES
                    else (rows,)
                )
                cols[name] = np.ndarray(
                    shape, dtype=dtype, buffer=buf, offset=offset
                )
                offset += rows * width * np.dtype(dtype).itemsize
            self.columns.append(cols)

    @staticmethod
    def plane_nbytes(rows: int, words: int) -> int:
        return 16 + _pad8(rows * migration_row_bytes(words))

    @classmethod
    def nbytes(cls, rows: int, words: int) -> int:
        return 2 * cls.plane_nbytes(rows, words)

    def write(self, rows: Optional[dict], round_index: int) -> None:
        slot = round_index & 1
        header = self.headers[slot]
        count = 0 if rows is None else int(rows["peer_id"].size)
        if count > self.rows:
            raise SimulationError(
                f"migration block overflow: {count} rows, "
                f"capacity {self.rows}"
            )
        if count:
            cols = self.columns[slot]
            for name in cols:
                cols[name][:count] = rows[name]
        header[1] = count
        header[0] = round_index

    def read(self, round_index: int) -> Optional[dict]:
        slot = round_index & 1
        header = self.headers[slot]
        if int(header[0]) != round_index:
            raise SimulationError(
                f"migration stamp mismatch: wanted round {round_index}, "
                f"slot holds {int(header[0])}"
            )
        count = int(header[1])
        if count == 0:
            return None
        cols = self.columns[slot]
        return {name: cols[name][:count] for name in cols}

    def release(self) -> None:
        self.headers = []
        self.columns = []


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------
class ShardFabric:
    """The coordinator's end: owns (and ultimately unlinks) every block.

    Args:
        shards: worker count.
        num_pieces: file size in pieces (broadcast / report width).
        words: bitfield words per peer (migration column width).
        conn_rows: initial per-shard connection-count region capacity.
        migration_rows: initial inbox/outbox row capacity per shard.
    """

    def __init__(
        self,
        shards: int,
        num_pieces: int,
        words: int,
        *,
        conn_rows: int = 64,
        migration_rows: int = 64,
    ):
        self.shards = int(shards)
        self.num_pieces = int(num_pieces)
        self.words = int(words)
        self.row_bytes = migration_row_bytes(words)
        self.bytes_broadcast = 0
        self.bytes_migrated = 0
        self.grows = 0
        self._closed = False
        conn_rows = max(int(conn_rows), 1)
        migration_rows = max(int(migration_rows), 1)

        self._bcast_seg: Optional[_Segment] = None
        self._bcast: Optional[_BroadcastBlock] = None
        # Per shard: [segment, block, capacity] triples, replaced by
        # ensure() when a round needs more room.
        self._report: List[list] = []
        self._inbox: List[list] = []
        self._outbox: List[list] = []
        try:
            self._bcast_seg = _Segment.create(
                "bc", _BroadcastBlock.nbytes(num_pieces)
            )
            self._bcast = _BroadcastBlock(self._bcast_seg, num_pieces)
            for index in range(self.shards):
                self._report.append(
                    self._new_report(index, conn_rows)
                )
                self._inbox.append(
                    self._new_migration("in", index, migration_rows)
                )
                self._outbox.append(
                    self._new_migration("out", index, migration_rows)
                )
        except BaseException:
            self.close()
            raise

    def _new_report(self, index: int, conn_rows: int) -> list:
        segment = _Segment.create(
            f"rp{index}", _ReportBlock.nbytes(self.num_pieces, conn_rows)
        )
        return [segment, _ReportBlock(segment, self.num_pieces, conn_rows),
                conn_rows]

    def _new_migration(self, kind: str, index: int, rows: int) -> list:
        segment = _Segment.create(
            f"{kind}{index}", _MigrationBlock.nbytes(rows, self.words)
        )
        return [segment, _MigrationBlock(segment, rows, self.words), rows]

    # -- wiring --------------------------------------------------------
    def spec(self, index: int) -> dict:
        """Attachment spec for shard ``index`` (ships in init payloads)."""
        return {
            "num_pieces": self.num_pieces,
            "words": self.words,
            "bcast": self._bcast_seg.name,
            "report": (self._report[index][0].name,
                       self._report[index][2]),
            "inbox": (self._inbox[index][0].name, self._inbox[index][2]),
            "outbox": (self._outbox[index][0].name,
                       self._outbox[index][2]),
        }

    def _grow(self, slot_list: List[list], index: int, needed: int,
              factory) -> Tuple[str, int]:
        capacity = max(int(needed), 2 * slot_list[index][2])
        old_segment, old_block, _ = slot_list[index]
        slot_list[index] = factory(capacity)
        old_block.release()
        old_segment.close()
        # Unlink immediately: the name disappears now; any still-open
        # worker handle keeps the old mapping alive until it re-attaches.
        old_segment.unlink()
        self.grows += 1
        return slot_list[index][0].name, capacity

    def ensure(
        self, index: int, *, conn_rows: int, inbox_rows: int,
        outbox_rows: int,
    ) -> Optional[dict]:
        """Grow shard ``index``'s blocks for the coming round.

        Returns the ``{kind: (name, capacity)}`` updates the worker
        must re-attach, or ``None`` when everything already fits.
        """
        updates: dict = {}
        if conn_rows > self._report[index][2]:
            updates["report"] = self._grow(
                self._report, index, conn_rows,
                lambda rows: self._new_report(index, rows),
            )
        if inbox_rows > self._inbox[index][2]:
            updates["inbox"] = self._grow(
                self._inbox, index, inbox_rows,
                lambda rows: self._new_migration("in", index, rows),
            )
        if outbox_rows > self._outbox[index][2]:
            updates["outbox"] = self._grow(
                self._outbox, index, outbox_rows,
                lambda rows: self._new_migration("out", index, rows),
            )
        return updates or None

    # -- the per-round data plane --------------------------------------
    def write_broadcast(self, counts: np.ndarray, round_index: int) -> None:
        self._bcast.write(counts, round_index)
        # Delivered once per shard: each worker reads the full plane.
        self.bytes_broadcast += self.shards * 8 * self.num_pieces

    def write_inbox(self, index: int, rows: Optional[dict],
                    round_index: int) -> None:
        self._inbox[index][1].write(rows, round_index)
        if rows is not None:
            self.bytes_migrated += (
                int(rows["peer_id"].size) * self.row_bytes
            )

    def read_outbox(self, index: int, round_index: int) -> Optional[dict]:
        rows = self._outbox[index][1].read(round_index)
        if rows is not None:
            self.bytes_migrated += (
                int(rows["peer_id"].size) * self.row_bytes
            )
        return rows

    def read_report(self, index: int, round_index: int) -> dict:
        return self._report[index][1].read(round_index)

    # -- lifecycle -----------------------------------------------------
    def segment_names(self) -> List[str]:
        names = []
        if self._bcast_seg is not None:
            names.append(self._bcast_seg.name)
        for slot_list in (self._report, self._inbox, self._outbox):
            for entry in slot_list:
                names.append(entry[0].name)
        return names

    def close(self) -> None:
        """Release every view, then close and unlink every segment."""
        if self._closed:
            return
        self._closed = True
        if self._bcast is not None:
            self._bcast.release()
        segments = [] if self._bcast_seg is None else [self._bcast_seg]
        for slot_list in (self._report, self._inbox, self._outbox):
            for segment, block, _ in slot_list:
                block.release()
                segments.append(segment)
        self._bcast = None
        self._bcast_seg = None
        self._report = []
        self._inbox = []
        self._outbox = []
        for segment in segments:
            segment.close()
            segment.unlink()


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class WorkerFabric:
    """One shard worker's attached end of the fabric (never unlinks)."""

    def __init__(self, spec: dict):
        self.num_pieces = int(spec["num_pieces"])
        self.words = int(spec["words"])
        self._closed = False
        self._bcast_seg = _Segment.attach(spec["bcast"])
        self._bcast = _BroadcastBlock(self._bcast_seg, self.num_pieces)
        name, conn_rows = spec["report"]
        self._report_seg = _Segment.attach(name)
        self._report = _ReportBlock(
            self._report_seg, self.num_pieces, conn_rows
        )
        name, rows = spec["inbox"]
        self._inbox_seg = _Segment.attach(name)
        self._inbox = _MigrationBlock(self._inbox_seg, rows, self.words)
        name, rows = spec["outbox"]
        self._outbox_seg = _Segment.attach(name)
        self._outbox = _MigrationBlock(self._outbox_seg, rows, self.words)

    def apply_updates(self, updates: Optional[dict]) -> None:
        """Re-attach the blocks the coordinator grew for this round."""
        if not updates:
            return
        if "report" in updates:
            name, conn_rows = updates["report"]
            self._report.release()
            self._report_seg.close()
            self._report_seg = _Segment.attach(name)
            self._report = _ReportBlock(
                self._report_seg, self.num_pieces, conn_rows
            )
        if "inbox" in updates:
            name, rows = updates["inbox"]
            self._inbox.release()
            self._inbox_seg.close()
            self._inbox_seg = _Segment.attach(name)
            self._inbox = _MigrationBlock(self._inbox_seg, rows, self.words)
        if "outbox" in updates:
            name, rows = updates["outbox"]
            self._outbox.release()
            self._outbox_seg.close()
            self._outbox_seg = _Segment.attach(name)
            self._outbox = _MigrationBlock(
                self._outbox_seg, rows, self.words
            )

    def read_broadcast(self, round_index: int) -> np.ndarray:
        return self._bcast.read(round_index)

    def read_inbox(self, round_index: int) -> Optional[dict]:
        return self._inbox.read(round_index)

    def write_outbox(self, rows: Optional[dict],
                     round_index: int) -> None:
        self._outbox.write(rows, round_index)

    def write_report(self, report: dict, round_index: int) -> None:
        self._report.write(report, round_index)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._bcast.release()
        self._report.release()
        self._inbox.release()
        self._outbox.release()
        for segment in (self._bcast_seg, self._report_seg,
                        self._inbox_seg, self._outbox_seg):
            segment.close()
